// Quickstart: index an XML snippet and run a keyword search.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "engine/xksearch.h"

namespace {

constexpr const char* kBibliography = R"(
<bibliography>
  <book year="1994">
    <title>Transaction Processing</title>
    <author>Jim Gray</author>
    <author>Andreas Reuter</author>
  </book>
  <book year="2000">
    <title>Database System Implementation</title>
    <author>Hector Garcia-Molina</author>
    <author>Jeffrey Ullman</author>
    <author>Jennifer Widom</author>
  </book>
  <article year="2005">
    <title>Efficient Keyword Search for Smallest LCAs in XML Databases</title>
    <author>Yu Xu</author>
    <author>Yannis Papakonstantinou</author>
  </article>
</bibliography>
)";

}  // namespace

int main() {
  using xksearch::Result;
  using xksearch::SearchResult;
  using xksearch::XKSearch;

  // 1. Parse and index the document (Dewey numbers, keyword lists,
  //    frequency table — everything the paper's Figure 6 builds).
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromXml(kBibliography);
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  // 2. Run a keyword search. The result is the set of Smallest LCAs:
  //    the tightest subtrees containing every keyword.
  const std::vector<std::string> query = {"keyword", "xu"};
  Result<SearchResult> result = (*system)->Search(query);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("query: {keyword, xu}  algorithm: %s  answers: %zu\n\n",
              ToString(result->algorithm).c_str(), result->nodes.size());

  // 3. Show each answer subtree.
  for (const xksearch::DeweyId& node : result->nodes) {
    Result<std::string> snippet = (*system)->Snippet(node);
    std::printf("[%s] %s\n", node.ToString().c_str(),
                snippet.ok() ? snippet->c_str() : "<error>");
  }

  std::printf("\nper-query cost: %s\n", result->stats.ToString().c_str());
  return 0;
}
