// The paper's running example (Figure 1, School.xml): the query
// {John, Ben} and its three smallest answer subtrees, computed by all
// three algorithms, plus the Section 5 All-LCA extension.

#include <cstdio>
#include <string>

#include "engine/xksearch.h"
#include "gen/school.h"
#include "xml/parser.h"

int main() {
  using namespace xksearch;  // NOLINT: example brevity

  Document school = BuildSchoolDocument();
  std::printf("School.xml (%zu nodes):\n%s\n", school.node_count(),
              SerializeXml(school, /*indent=*/true).c_str());

  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(school));
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }

  std::printf("keyword frequencies: john=%llu ben=%llu\n\n",
              static_cast<unsigned long long>((*system)->Frequency("john")),
              static_cast<unsigned long long>((*system)->Frequency("ben")));

  // All three algorithms return the same three SLCAs: Ben is the TA of
  // John's CS2A class, Ben is a student in the CS3A class John teaches,
  // and both play on the baseball team.
  for (AlgorithmChoice choice :
       {AlgorithmChoice::kIndexedLookupEager, AlgorithmChoice::kScanEager,
        AlgorithmChoice::kStack}) {
    SearchOptions options;
    options.algorithm = choice;
    Result<SearchResult> result = (*system)->Search({"John", "Ben"}, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s ---\n", ToString(result->algorithm).c_str());
    for (const DeweyId& node : result->nodes) {
      Result<std::string> snippet = (*system)->Snippet(node, 200);
      std::printf("  slca %-10s %s\n", node.ToString().c_str(),
                  snippet.ok() ? snippet->c_str() : "<error>");
    }
    std::printf("  cost: %s\n\n", result->stats.ToString().c_str());
  }

  // Section 5: every LCA, not only the smallest ones. Ancestors such as
  // <classes> and the document root now qualify too.
  SearchOptions all_lca;
  all_lca.semantics = Semantics::kAllLca;
  Result<SearchResult> lcas = (*system)->Search({"John", "Ben"}, all_lca);
  if (!lcas.ok()) {
    std::fprintf(stderr, "%s\n", lcas.status().ToString().c_str());
    return 1;
  }
  std::printf("--- all LCAs (Section 5) ---\n");
  for (const DeweyId& node : lcas->nodes) {
    const Document& doc = (*system)->document();
    Result<NodeId> n = doc.FindByDewey(node);
    std::printf("  lca %-10s <%s>\n", node.ToString().c_str(),
                n.ok() ? std::string(doc.tag(*n)).c_str() : "?");
  }
  return 0;
}
