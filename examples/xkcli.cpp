// Command-line XKSearch: index an XML file and answer keyword queries,
// either from the command line or interactively — a terminal version of
// the paper's online DBLP demo.
//
// Usage:
//   xkcli <file.xml> [keyword ...]      run one query and exit
//   xkcli <file.xml>                    interactive prompt (one query
//                                       per line; blank line to quit)
//   xkcli <a.xml> <b.xml> ... -- [kw..] search a whole collection
// Prefix a query with "lca:" (all LCAs, Section 5) or "elca:" (XRANK
// exhaustive LCAs), "explain:" for an execution report, or "il:",
// "scan:", "stack:" to force an algorithm.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/collection.h"
#include "engine/xksearch.h"

namespace {

using xksearch::AlgorithmChoice;
using xksearch::SearchOptions;

bool ConsumePrefix(std::string* line, const std::string& prefix) {
  if (line->rfind(prefix, 0) != 0) return false;
  line->erase(0, prefix.size());
  return true;
}

void RunQuery(const xksearch::XKSearch& system, std::string line) {
  SearchOptions options;
  if (ConsumePrefix(&line, "explain:")) {
    std::vector<std::string> keywords;
    std::istringstream words(line);
    std::string word;
    while (words >> word) keywords.push_back(word);
    if (keywords.empty()) return;
    xksearch::Result<std::string> report = system.Explain(keywords, options);
    std::printf("%s", report.ok() ? report->c_str()
                                  : report.status().ToString().c_str());
    return;
  }
  if (ConsumePrefix(&line, "lca:")) {
    options.semantics = xksearch::Semantics::kAllLca;
  } else if (ConsumePrefix(&line, "elca:")) {
    options.semantics = xksearch::Semantics::kElca;
  }
  if (ConsumePrefix(&line, "il:")) {
    options.algorithm = AlgorithmChoice::kIndexedLookupEager;
  } else if (ConsumePrefix(&line, "scan:")) {
    options.algorithm = AlgorithmChoice::kScanEager;
  } else if (ConsumePrefix(&line, "stack:")) {
    options.algorithm = AlgorithmChoice::kStack;
  }

  std::vector<std::string> keywords;
  std::istringstream words(line);
  std::string word;
  while (words >> word) keywords.push_back(word);
  if (keywords.empty()) return;

  xksearch::Result<xksearch::SearchResult> result =
      system.Search(keywords, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  const char* kind = options.semantics == xksearch::Semantics::kAllLca
                         ? "LCAs"
                         : options.semantics == xksearch::Semantics::kElca
                               ? "ELCAs"
                               : "SLCAs";
  std::printf("%zu %s via %s   [%s]\n", result->nodes.size(), kind,
              ToString(result->algorithm).c_str(),
              result->stats.ToString().c_str());
  for (const xksearch::DeweyId& node : result->nodes) {
    xksearch::Result<std::string> snippet = system.Snippet(node, 240);
    std::printf("  [%s] %s\n", node.ToString().c_str(),
                snippet.ok() ? snippet->c_str() : "<snippet error>");
  }
}

void RunCollectionQuery(const xksearch::Collection& collection,
                        std::string line) {
  SearchOptions options;
  std::vector<std::string> keywords;
  std::istringstream words(line);
  std::string word;
  while (words >> word) keywords.push_back(word);
  if (keywords.empty()) return;
  xksearch::Result<std::vector<xksearch::Collection::DocumentHit>> hits =
      collection.Search(keywords, options);
  if (!hits.ok()) {
    std::printf("error: %s\n", hits.status().ToString().c_str());
    return;
  }
  std::printf("%zu documents with answers\n", hits->size());
  for (const auto& hit : *hits) {
    std::printf("  %s: %zu answers\n", hit.document.c_str(),
                hit.result.nodes.size());
    const xksearch::XKSearch* system = collection.Find(hit.document);
    const size_t show = std::min<size_t>(hit.result.nodes.size(), 2);
    for (size_t i = 0; i < show && system != nullptr; ++i) {
      xksearch::Result<std::string> snippet =
          system->Snippet(hit.result.nodes[i], 160);
      std::printf("    [%s] %s\n", hit.result.nodes[i].ToString().c_str(),
                  snippet.ok() ? snippet->c_str() : "<error>");
    }
  }
}

int RunCollectionMode(const std::vector<std::string>& files,
                      const std::vector<std::string>& keywords) {
  xksearch::Collection collection;
  for (const std::string& file : files) {
    xksearch::Status st = collection.AddFile(file);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), st.ToString().c_str());
      return 1;
    }
  }
  std::printf("collection of %zu documents\n", collection.size());
  if (!keywords.empty()) {
    std::string line;
    for (const std::string& kw : keywords) line += kw + " ";
    RunCollectionQuery(collection, line);
    return 0;
  }
  std::string line;
  std::printf("query> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line) && !line.empty()) {
    RunCollectionQuery(collection, line);
    std::printf("query> ");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.xml> [keyword ...]\n", argv[0]);
    return 2;
  }

  // Collection mode: several XML files, optionally "--" then keywords.
  std::vector<std::string> files;
  std::vector<std::string> keywords_after_dashdash;
  bool seen_dashdash = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      seen_dashdash = true;
    } else if (seen_dashdash) {
      keywords_after_dashdash.push_back(arg);
    } else if (arg.size() > 4 && arg.substr(arg.size() - 4) == ".xml") {
      files.push_back(arg);
    } else {
      files.clear();  // mixed args: fall through to single-file mode
      break;
    }
  }
  if (files.size() > 1) {
    return RunCollectionMode(files, keywords_after_dashdash);
  }
  xksearch::Result<std::unique_ptr<xksearch::XKSearch>> system =
      xksearch::XKSearch::BuildFromFile(argv[1]);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %s: %zu nodes, %zu keywords\n", argv[1],
              (*system)->document().node_count(),
              (*system)->index().term_count());

  if (argc > 2) {
    std::string line;
    for (int i = 2; i < argc; ++i) {
      if (i > 2) line += ' ';
      line += argv[i];
    }
    RunQuery(**system, line);
    return 0;
  }

  std::string line;
  std::printf("query> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line) && !line.empty()) {
    RunQuery(**system, line);
    std::printf("query> ");
    std::fflush(stdout);
  }
  return 0;
}
