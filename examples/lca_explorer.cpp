// Explores the Section 5 extension: all Lowest Common Ancestors versus
// only the smallest ones, on random trees of configurable depth, with
// per-query operation counts — illustrating why the ancestor-checking
// pass is cheap on the shallow trees XML databases actually have.
//
// Usage: lca_explorer [node_count] [max_depth]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "engine/xksearch.h"
#include "gen/random_tree.h"

int main(int argc, char** argv) {
  using namespace xksearch;  // NOLINT: example brevity

  RandomTreeOptions tree;
  tree.node_count = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 4000;
  tree.max_depth =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 6;
  tree.vocab_size = 5;

  Rng rng(2026);
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(GenerateRandomDocument(&rng, tree));
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("random tree: %zu nodes, depth <= %u\n\n",
              (*system)->document().node_count(), tree.max_depth);

  for (const std::vector<std::string>& query :
       {std::vector<std::string>{"w0", "w1"},
        std::vector<std::string>{"w0", "w1", "w2"},
        std::vector<std::string>{"w3", "w4"}}) {
    std::string shown;
    for (const std::string& kw : query) shown += kw + " ";

    Result<SearchResult> slca = (*system)->Search(query);
    SearchOptions lca_options;
    lca_options.semantics = Semantics::kAllLca;
    Result<SearchResult> lca = (*system)->Search(query, lca_options);
    if (!slca.ok() || !lca.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf("query { %s}\n", shown.c_str());
    std::printf("  slca: %4zu results   cost: %s\n", slca->nodes.size(),
                slca->stats.ToString().c_str());
    std::printf("  lca : %4zu results   cost: %s\n", lca->nodes.size(),
                lca->stats.ToString().c_str());

    // Every SLCA is an LCA; the extras are the qualifying ancestors.
    size_t extras = lca->nodes.size() - slca->nodes.size();
    std::printf("  -> %zu ancestor LCAs beyond the smallest ones\n\n",
                extras);
  }
  return 0;
}
