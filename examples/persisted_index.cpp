// Persisted-index workflow: build the on-disk B+tree index once, then
// answer queries in a later "session" from the files alone — the way the
// paper's XKSearch server runs, where the B-trees live in Berkeley DB
// files and only the frequency table is loaded at startup.
//
// Usage: persisted_index [index_dir]

#include <cstdio>
#include <string>

#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "gen/dblp_generator.h"

int main(int argc, char** argv) {
  using namespace xksearch;  // NOLINT: example brevity

  const std::string prefix =
      std::string(argc > 1 ? argv[1] : "/tmp") + "/xks_demo_index";

  // ---- Session 1: parse, index, persist, exit. ----
  {
    DblpOptions gen;
    gen.papers = 5000;
    gen.plants = {{"needle", 5}, {"haystack", 2500}};
    Result<Document> doc = GenerateDblp(gen);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    XKSearch::BuildOptions build;
    build.build_disk_index = true;
    build.disk_path_prefix = prefix;
    build.persist_document = true;  // enables snippets in later sessions
    Result<std::unique_ptr<XKSearch>> system =
        XKSearch::BuildFromDocument(std::move(*doc), build);
    if (!system.ok()) {
      std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
      return 1;
    }
    std::printf("session 1: indexed %zu nodes into %s.{il,scan,dict}\n",
                (*system)->document().node_count(), prefix.c_str());
  }  // everything in memory is gone here

  // ---- Session 2: reopen the files, query without the document. ----
  Result<std::unique_ptr<DiskSearcher>> searcher = DiskSearcher::Open(prefix);
  if (!searcher.ok()) {
    std::fprintf(stderr, "%s\n", searcher.status().ToString().c_str());
    return 1;
  }
  std::printf("session 2: reopened index (needle=%llu haystack=%llu)\n",
              static_cast<unsigned long long>((*searcher)->Frequency("needle")),
              static_cast<unsigned long long>(
                  (*searcher)->Frequency("haystack")));

  Result<SearchResult> result = (*searcher)->Search({"needle", "haystack"});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query {needle, haystack} via %s: %zu answers, %s\n",
              ToString(result->algorithm).c_str(), result->nodes.size(),
              result->stats.ToString().c_str());
  for (const DeweyId& node : result->nodes) {
    Result<std::string> snippet = (*searcher)->Snippet(node, 120);
    std::printf("  [%s] %s\n", node.ToString().c_str(),
                snippet.ok() ? snippet->c_str() : "<no snippet>");
  }
  searcher->reset();  // close the files before updating them

  // ---- Session 3: incremental maintenance, no rebuild. ----
  {
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(prefix);
    if (!updater.ok()) {
      std::fprintf(stderr, "%s\n", updater.status().ToString().c_str());
      return 1;
    }
    // A document edit added "needle" to the first venue's first paper
    // title (its text node is 0.0.1.0.0.0).
    Result<DeweyId> node = DeweyId::Parse("0.0.1.0.0.0");
    Status st = (*updater)->AddPosting("needle", *node);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    st = (*updater)->Finish();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("session 3: added one 'needle' posting in place\n");
  }

  Result<std::unique_ptr<DiskSearcher>> again = DiskSearcher::Open(prefix);
  if (!again.ok()) {
    std::fprintf(stderr, "%s\n", again.status().ToString().c_str());
    return 1;
  }
  Result<SearchResult> updated = (*again)->Search({"needle", "haystack"});
  if (!updated.ok()) {
    std::fprintf(stderr, "%s\n", updated.status().ToString().c_str());
    return 1;
  }
  std::printf("after update: %zu answers (needle frequency now %llu)\n",
              updated->nodes.size(),
              static_cast<unsigned long long>((*again)->Frequency("needle")));
  // The persisted document makes the answers renderable too.
  if (!updated->nodes.empty()) {
    Result<std::string> snippet = (*again)->Snippet(updated->nodes[0], 160);
    std::printf("first answer: %s\n",
                snippet.ok() ? snippet->c_str() : "<no snippet>");
  }
  return 0;
}
