// A laptop-scale stand-in for the paper's DBLP demo: generates a
// DBLP-shaped corpus with keywords planted at controlled frequencies,
// builds the two disk B+tree layouts, and answers keyword queries with
// the algorithm the frequency table recommends.
//
// Usage: dblp_search [papers] [keyword keyword ...]
//   papers   corpus size (default 20000)
//   keywords query to run (default: a skewed and a balanced query)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/xksearch.h"
#include "gen/dblp_generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void RunQuery(const xksearch::XKSearch& system,
              const std::vector<std::string>& keywords, bool use_disk) {
  xksearch::SearchOptions options;
  options.use_disk_index = use_disk;
  std::string shown;
  for (const std::string& kw : keywords) shown += kw + " ";

  const Clock::time_point start = Clock::now();
  xksearch::Result<xksearch::SearchResult> result =
      system.Search(keywords, options);
  const double elapsed = MillisSince(start);
  if (!result.ok()) {
    std::fprintf(stderr, "query '%s' failed: %s\n", shown.c_str(),
                 result.status().ToString().c_str());
    return;
  }
  std::printf("query { %s} via %s (%s): %zu answers in %.2f ms\n",
              shown.c_str(), ToString(result->algorithm).c_str(),
              use_disk ? "disk" : "memory", result->nodes.size(), elapsed);
  std::printf("  %s\n", result->stats.ToString().c_str());
  const size_t show = std::min<size_t>(result->nodes.size(), 3);
  for (size_t i = 0; i < show; ++i) {
    xksearch::Result<std::string> snippet =
        system.Snippet(result->nodes[i], 160);
    std::printf("  [%s] %s\n", result->nodes[i].ToString().c_str(),
                snippet.ok() ? snippet->c_str() : "<error>");
  }
  if (result->nodes.size() > show) {
    std::printf("  ... %zu more\n", result->nodes.size() - show);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xksearch;  // NOLINT: example brevity

  const size_t papers =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;

  // Plant keywords at the frequency classes the paper's experiments use.
  DblpOptions gen;
  gen.papers = papers;
  gen.plants = {
      {"xanadu", std::min<uint64_t>(10, papers)},      // rare
      {"quorum", std::min<uint64_t>(1000, papers)},    // medium
      {"zeppelin", std::min<uint64_t>(papers / 2, papers)},  // frequent
  };
  std::printf("generating DBLP-shaped corpus with %zu papers...\n", papers);
  Result<Document> doc = GenerateDblp(gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }

  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;  // page-level behaviour without tmp files
  const Clock::time_point start = Clock::now();
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "indexed %zu nodes, %zu terms, %llu postings in %.0f ms "
      "(il=%u pages, scan=%u pages)\n\n",
      (*system)->document().node_count(), (*system)->index().term_count(),
      static_cast<unsigned long long>((*system)->index().total_postings()),
      MillisSince(start), (*system)->disk_index()->il_page_count(),
      (*system)->disk_index()->scan_page_count());

  if (argc > 2) {
    std::vector<std::string> keywords(argv + 2, argv + argc);
    RunQuery(**system, keywords, /*use_disk=*/false);
    RunQuery(**system, keywords, /*use_disk=*/true);
    return 0;
  }

  // Skewed frequencies: the Indexed Lookup Eager algorithm shines.
  RunQuery(**system, {"xanadu", "zeppelin"}, /*use_disk=*/false);
  RunQuery(**system, {"xanadu", "zeppelin"}, /*use_disk=*/true);
  // Similar frequencies: the engine switches to Scan Eager.
  RunQuery(**system, {"quorum", "xanadu", "zeppelin"}, /*use_disk=*/false);
  RunQuery(**system, {"zeppelin", "quorum"}, /*use_disk=*/false);
  return 0;
}
