// Serving-layer demo: wrap an indexed corpus in a QueryService and
// drive it the way a front end would — async submissions, repeated hot
// queries that hit the result cache, and a metrics report at the end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/xkserve_demo

#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "serve/query_service.h"

int main() {
  using xksearch::Result;
  using xksearch::XKSearch;
  using xksearch::serve::QueryResponse;
  using xksearch::serve::QueryService;
  using xksearch::serve::QueryServiceOptions;

  // 1. Build a small DBLP-shaped corpus with a few planted keywords so
  //    the demo queries have non-trivial answers.
  xksearch::DblpOptions gen;
  gen.papers = 2000;
  gen.seed = 7;
  gen.plants = {{"skyline", 12}, {"join", 150}, {"index", 900}};
  Result<xksearch::Document> doc = GenerateDblp(gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "corpus: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  if (!system.ok()) {
    std::fprintf(stderr, "build: %s\n", system.status().ToString().c_str());
    return 1;
  }

  // 2. Stand up the serving layer: 4 workers, bounded queue, result
  //    cache checked before dispatch.
  QueryServiceOptions options;
  options.pool.workers = 4;
  options.pool.queue_capacity = 64;
  QueryService service(system->get(), options);

  // 3. Two waves of async submissions. Wave 1 is all distinct queries,
  //    so every one executes on the pool and populates the cache. Wave 2
  //    repeats them (keyword order shuffled — the cache key is
  //    canonicalized), so they resolve as cache hits at submit time.
  const std::vector<std::vector<std::string>> wave1 = {
      {"skyline", "join"}, {"join", "index"}, {"skyline", "index"},
      {"index"},
  };
  const std::vector<std::vector<std::string>> wave2 = {
      {"join", "skyline"}, {"index", "join"}, {"index", "skyline"},
      {"index"},
  };
  for (const std::vector<std::vector<std::string>>* wave : {&wave1, &wave2}) {
    std::vector<std::future<Result<QueryResponse>>> futures;
    futures.reserve(wave->size());
    for (const std::vector<std::string>& query : *wave) {
      futures.push_back(service.Submit(query));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<QueryResponse> response = futures[i].get();
      if (!response.ok()) {
        std::fprintf(stderr, "query %zu: %s\n", i,
                     response.status().ToString().c_str());
        return 1;
      }
      std::string text;
      for (const std::string& word : (*wave)[i]) {
        if (!text.empty()) text += ' ';
        text += word;
      }
      std::printf("{%s}: %zu SLCAs, %s, %lld us\n", text.c_str(),
                  response->result.nodes.size(),
                  response->cache_hit ? "cache hit" : "executed",
                  static_cast<long long>(response->latency.count() / 1000));
    }
  }

  // 4. One synchronous call, then the operational picture.
  Result<QueryResponse> sync = service.Search({"skyline"});
  if (!sync.ok()) {
    std::fprintf(stderr, "sync: %s\n", sync.status().ToString().c_str());
    return 1;
  }
  std::printf("{skyline}: %zu SLCAs (sync)\n\n", sync->result.nodes.size());

  std::printf("%s", service.MetricsReport().c_str());
  service.Shutdown();
  return 0;
}
