#ifndef XKSEARCH_SLCA_BRUTE_FORCE_H_
#define XKSEARCH_SLCA_BRUTE_FORCE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dewey/dewey_id.h"
#include "index/inverted_index.h"
#include "xml/document.h"

namespace xksearch {

/// \brief Removes every node that is a (proper) ancestor of another node
/// in the set; input ids need not be sorted, output is sorted, unique.
/// This is the paper's removeAncestor operator.
std::vector<DeweyId> RemoveAncestors(std::vector<DeweyId> ids);

/// \brief The O(d * prod |Si|) brute force of Section 3: enumerates every
/// combination, takes its LCA, then removes ancestors. Tiny inputs only —
/// used as a correctness oracle and as the baseline the paper argues
/// against (it is also blocking: nothing can be reported early).
std::vector<DeweyId> BruteForceSlca(
    const std::vector<std::vector<DeweyId>>& lists);

/// \brief All LCAs over every combination (the Section 5 problem), by the
/// same exhaustive enumeration.
std::vector<DeweyId> BruteForceAllLca(
    const std::vector<std::vector<DeweyId>>& lists);

/// \brief Linear-time ground truth computed on the document tree.
///
/// Marks each node with the keywords its subtree covers; a node is an
/// SLCA iff its subtree covers all keywords and no child subtree does,
/// and an LCA iff its subtree covers all keywords and the witnesses are
/// not confined to a single child (or the node holds a keyword itself).
/// Independent of the paper's algorithms, so it is a meaningful oracle.
class TreeOracle {
 public:
  /// `lists[i]` is the keyword list of keyword i over `doc`.
  TreeOracle(const Document& doc, const std::vector<std::vector<DeweyId>>& lists);

  std::vector<DeweyId> Slca() const { return slca_; }
  std::vector<DeweyId> AllLca() const { return lca_; }
  /// Exhaustive LCAs (XRANK semantics): covering nodes that keep at
  /// least one occurrence of every keyword outside covering descendants.
  std::vector<DeweyId> Elca() const { return elca_; }

 private:
  std::vector<DeweyId> slca_;
  std::vector<DeweyId> lca_;
  std::vector<DeweyId> elca_;
};

/// Convenience: looks up the query keywords in `index` and runs the
/// oracle. Unknown keywords yield empty results.
Result<std::vector<DeweyId>> OracleSlca(const Document& doc,
                                        const InvertedIndex& index,
                                        const std::vector<std::string>& keywords);
Result<std::vector<DeweyId>> OracleAllLca(
    const Document& doc, const InvertedIndex& index,
    const std::vector<std::string>& keywords);
Result<std::vector<DeweyId>> OracleElca(
    const Document& doc, const InvertedIndex& index,
    const std::vector<std::string>& keywords);

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_BRUTE_FORCE_H_
