#ifndef XKSEARCH_SLCA_PACKED_LIST_H_
#define XKSEARCH_SLCA_PACKED_LIST_H_

#include "common/stats.h"
#include "dewey/packed_list.h"
#include "slca/keyword_list.h"

namespace xksearch {

/// \brief KeywordList over a PackedDeweyList: the default in-memory hot
/// match path.
///
/// lm/rm are a block binary search over the packed list's skip table
/// followed by an in-block decode-and-compare; with `hinted` (the
/// default) every probe remembers its position and the next one gallops
/// forward from there, exploiting the nondecreasing-probe property of
/// the eager SLCA chains (Indexed Lookup Eager's per-list probe
/// sequences become near-sequential). Hinted and cold probing return
/// identical answers for arbitrary targets — a regressing target falls
/// back to the cold binary search — so the hint is purely a speedup.
///
/// All comparisons run on DeweyViews into the probe's reused scratch;
/// the only DeweyId materialized per match operation is the one it
/// returns. Component comparisons are charged to stats->dewey_comparisons
/// and postings to stats->postings_read exactly like VectorKeywordList,
/// and the match-operation counts of Table 1 are identical across the
/// two layouts (the fuzz harness cross-checks this).
///
/// Not thread-safe (the probe hint is mutable state); build one per
/// query, like every other KeywordList adapter.
class PackedKeywordList : public KeywordList {
 public:
  /// `list` must stay alive for the lifetime of this object.
  PackedKeywordList(const PackedDeweyList* list, QueryStats* stats,
                    bool hinted = true)
      : list_(list), stats_(stats), hinted_(hinted) {}

  uint64_t size() const override { return list_->size(); }
  Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) override;
  Result<bool> RightMatch(const DeweyId& v, DeweyId* out) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;
  /// Packed chunks split at block boundaries: the skip table's eagerly
  /// decoded block firsts give chunk seeds and exact element counts with
  /// zero arena reads, so planning is free.
  Result<std::vector<ListChunk>> PlanChunks(size_t max_chunks,
                                            uint64_t min_elements) override;
  Result<std::unique_ptr<KeywordListIterator>> NewChunkIterator(
      const ListChunk& chunk) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIteratorAt(
      const DeweyId& start, DeweyId* prev, bool* prev_valid) override;
  Result<std::unique_ptr<KeywordList>> CloneWithStats(
      QueryStats* stats) override;

 private:
  const PackedDeweyList* list_;
  QueryStats* stats_;
  bool hinted_;
  PackedDeweyList::Probe probe_;
};

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_PACKED_LIST_H_
