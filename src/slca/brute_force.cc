#include "slca/brute_force.h"

#include <algorithm>
#include <unordered_map>

namespace xksearch {

namespace {

void SortUnique(std::vector<DeweyId>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

/// Calls `visit` with the LCA of every combination across `lists`.
void ForEachCombinationLca(const std::vector<std::vector<DeweyId>>& lists,
                           size_t depth, const DeweyId& acc,
                           const std::function<void(const DeweyId&)>& visit) {
  if (depth == lists.size()) {
    visit(acc);
    return;
  }
  for (const DeweyId& id : lists[depth]) {
    ForEachCombinationLca(lists, depth + 1,
                          depth == 0 ? id : acc.Lca(id), visit);
  }
}

bool AnyEmpty(const std::vector<std::vector<DeweyId>>& lists) {
  if (lists.empty()) return true;
  for (const auto& list : lists) {
    if (list.empty()) return true;
  }
  return false;
}

}  // namespace

std::vector<DeweyId> RemoveAncestors(std::vector<DeweyId> ids) {
  SortUnique(&ids);
  // In document order, all descendants of a node follow it contiguously,
  // so a node has a descendant in the set iff its immediate successor is
  // one.
  std::vector<DeweyId> out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i + 1 < ids.size() && ids[i].IsAncestorOf(ids[i + 1])) continue;
    out.push_back(ids[i]);
  }
  return out;
}

std::vector<DeweyId> BruteForceSlca(
    const std::vector<std::vector<DeweyId>>& lists) {
  return RemoveAncestors(BruteForceAllLca(lists));
}

std::vector<DeweyId> BruteForceAllLca(
    const std::vector<std::vector<DeweyId>>& lists) {
  std::vector<DeweyId> all;
  if (AnyEmpty(lists)) return all;
  ForEachCombinationLca(lists, 0, DeweyId(),
                        [&](const DeweyId& id) { all.push_back(id); });
  SortUnique(&all);
  return all;
}

TreeOracle::TreeOracle(const Document& doc,
                       const std::vector<std::vector<DeweyId>>& lists) {
  const size_t k = lists.size();
  if (AnyEmpty(lists) || doc.empty() || k > 64) return;
  const uint64_t full_mask = k == 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;

  // Direct-containment mask per node.
  std::unordered_map<DeweyId, uint64_t, DeweyId::Hash> direct;
  for (size_t i = 0; i < k; ++i) {
    for (const DeweyId& id : lists[i]) direct[id] |= uint64_t{1} << i;
  }

  // Per-keyword occurrence counts of each node itself.
  std::unordered_map<DeweyId, std::vector<uint32_t>, DeweyId::Hash>
      direct_counts;
  for (size_t i = 0; i < k; ++i) {
    for (const DeweyId& id : lists[i]) {
      auto [it, inserted] =
          direct_counts.try_emplace(id, std::vector<uint32_t>(k, 0));
      ++it->second[i];
    }
  }

  // Postorder subtree masks and "free" occurrence counts (occurrences
  // not absorbed by a covering descendant — XRANK's ELCA exclusion).
  // Nodes are created parent-before-child in the arena, so a reverse
  // index sweep visits children before parents.
  std::vector<uint64_t> subtree(doc.node_count(), 0);
  std::vector<std::vector<uint32_t>> free_counts(
      doc.node_count(), std::vector<uint32_t>(k, 0));
  for (size_t n = doc.node_count(); n-- > 0;) {
    const NodeId node = static_cast<NodeId>(n);
    const DeweyId id = doc.DeweyOf(node);
    auto it = direct.find(id);
    if (it != direct.end()) subtree[n] |= it->second;
    auto counts = direct_counts.find(id);
    if (counts != direct_counts.end()) free_counts[n] = counts->second;
    for (NodeId c : doc.children(node)) {
      subtree[n] |= subtree[c];
      if (subtree[c] != full_mask) {
        for (size_t i = 0; i < k; ++i) free_counts[n][i] += free_counts[c][i];
      }
    }
  }

  for (size_t n = 0; n < doc.node_count(); ++n) {
    if (subtree[n] != full_mask) continue;
    const NodeId node = static_cast<NodeId>(n);
    const DeweyId id = doc.DeweyOf(node);

    bool child_covers = false;
    size_t children_with_keywords = 0;
    for (NodeId c : doc.children(node)) {
      if (subtree[c] == full_mask) child_covers = true;
      if (subtree[c] != 0) ++children_with_keywords;
    }
    if (!child_covers) slca_.push_back(id);

    auto it = direct.find(id);
    const bool holds_keyword = it != direct.end() && it->second != 0;
    // For a single keyword the LCA of a singleton combination is the node
    // itself, so only instance nodes qualify; with k >= 2, witnesses
    // spread over two children also pin the LCA to this node.
    if (holds_keyword || (k >= 2 && children_with_keywords >= 2)) {
      lca_.push_back(id);
    }

    const bool all_free = std::all_of(free_counts[n].begin(),
                                      free_counts[n].end(),
                                      [](uint32_t c) { return c > 0; });
    if (all_free) elca_.push_back(id);
  }
  // Preorder arena order coincides with document order.
  std::sort(slca_.begin(), slca_.end());
  std::sort(lca_.begin(), lca_.end());
  std::sort(elca_.begin(), elca_.end());
}

namespace {

Result<std::vector<std::vector<DeweyId>>> LookupLists(
    const InvertedIndex& index, const std::vector<std::string>& keywords) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query needs at least one keyword");
  }
  std::vector<std::vector<DeweyId>> lists;
  lists.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    lists.push_back(index.Materialize(kw));
  }
  return lists;
}

}  // namespace

Result<std::vector<DeweyId>> OracleSlca(
    const Document& doc, const InvertedIndex& index,
    const std::vector<std::string>& keywords) {
  XKS_ASSIGN_OR_RETURN(auto lists, LookupLists(index, keywords));
  return TreeOracle(doc, lists).Slca();
}

Result<std::vector<DeweyId>> OracleAllLca(
    const Document& doc, const InvertedIndex& index,
    const std::vector<std::string>& keywords) {
  XKS_ASSIGN_OR_RETURN(auto lists, LookupLists(index, keywords));
  return TreeOracle(doc, lists).AllLca();
}

Result<std::vector<DeweyId>> OracleElca(
    const Document& doc, const InvertedIndex& index,
    const std::vector<std::string>& keywords) {
  XKS_ASSIGN_OR_RETURN(auto lists, LookupLists(index, keywords));
  return TreeOracle(doc, lists).Elca();
}

}  // namespace xksearch
