#ifndef XKSEARCH_SLCA_ALL_LCA_H_
#define XKSEARCH_SLCA_ALL_LCA_H_

#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "slca/keyword_list.h"
#include "slca/slca.h"

namespace xksearch {

/// \brief The All-LCA problem (paper Section 5, Algorithm 3).
///
/// Every LCA of the keyword lists is an ancestor-or-self of some SLCA, so
/// the algorithm pipelines on the Indexed Lookup Eager SLCA stream: each
/// SLCA is an LCA and is emitted immediately; each ancestor of an SLCA is
/// checked *exactly once* with at most 2k right-match probes — one probe
/// at the ancestor itself catches a witness to the left of (or at) the
/// ancestor, one probe at the "uncle" (the next sibling of the child on
/// the path) catches a witness to the right of the child's subtree.
/// Consecutive SLCAs share ancestors above their LCA; the walk for each
/// SLCA therefore stops at the LCA with its successor, which makes the
/// total cost O(|slca| * d) checks — efficient on shallow trees.
///
/// Results are emitted as discovered (descendants may precede ancestors);
/// use ComputeAllLcaList for a document-ordered vector.
Status FindAllLca(const std::vector<KeywordList*>& lists,
                  const SlcaOptions& options, QueryStats* stats,
                  const ResultCallback& emit);

/// \brief Decides whether `w` is an LCA of the lists, given a child `u`
/// of `w` whose subtree is known to contain every keyword. This is the
/// paper's checkLCA subroutine.
Result<bool> CheckLca(const DeweyId& w, const DeweyId& u,
                      const std::vector<KeywordList*>& lists,
                      QueryStats* stats);

/// Convenience wrapper: collects and sorts into document order.
Result<std::vector<DeweyId>> ComputeAllLcaList(
    const std::vector<KeywordList*>& lists, const SlcaOptions& options = {},
    QueryStats* stats = nullptr);

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_ALL_LCA_H_
