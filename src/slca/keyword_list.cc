#include "slca/keyword_list.h"

#include <algorithm>

namespace xksearch {

namespace {

class VectorIterator : public KeywordListIterator {
 public:
  VectorIterator(const std::vector<DeweyId>* ids, QueryStats* stats,
                 size_t begin = 0, size_t end = SIZE_MAX)
      : ids_(ids),
        stats_(stats),
        pos_(begin),
        end_(std::min(end, ids->size())) {}

  bool Next(DeweyId* out) override {
    if (pos_ >= end_) return false;
    *out = (*ids_)[pos_++];
    if (stats_ != nullptr) ++stats_->postings_read;
    return true;
  }

  /// Vector lists have no encoding to batch-decode, but exposing ids
  /// through the same arena keeps the blocked consumers on one code
  /// path (and the charging contract: the cursor counts, not us).
  bool DecodeBlockInto(DecodedBlock* out) override {
    out->Clear();
    const size_t n = std::min<size_t>(kDecodeRun, end_ - std::min(pos_, end_));
    for (size_t i = 0; i < n; ++i) out->Append((*ids_)[pos_ + i].view());
    pos_ += n;
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  static constexpr size_t kDecodeRun = 32;

  const std::vector<DeweyId>* ids_;
  QueryStats* stats_;
  size_t pos_ = 0;
  size_t end_;
  Status status_;
};

class DiskIterator : public KeywordListIterator {
 public:
  explicit DiskIterator(DiskIndex::PostingCursor cursor)
      : cursor_(std::move(cursor)) {}

  bool Next(DeweyId* out) override { return cursor_.Next(out); }
  bool DecodeBlockInto(DecodedBlock* out) override {
    return cursor_.DecodeBlockInto(out);
  }
  const Status& status() const override { return cursor_.status(); }

 private:
  DiskIndex::PostingCursor cursor_;
};

class EmptyIterator : public KeywordListIterator {
 public:
  bool Next(DeweyId*) override { return false; }
  const Status& status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::vector<std::pair<uint64_t, uint64_t>> PartitionUnits(
    uint64_t units, size_t max_chunks, uint64_t min_units) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  if (units == 0 || max_chunks <= 1) return out;
  if (min_units == 0) min_units = 1;
  const uint64_t chunks = std::min<uint64_t>(
      max_chunks, std::max<uint64_t>(1, units / min_units));
  if (chunks <= 1) return out;
  // Spread the remainder over the leading chunks so sizes differ by at
  // most one unit.
  const uint64_t base = units / chunks;
  const uint64_t extra = units % chunks;
  uint64_t begin = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    const uint64_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, len);
    begin += len;
  }
  return out;
}

size_t VectorKeywordList::LowerBound(const DeweyId& v) const {
  size_t lo = 0, hi = ids_->size();
  DeweyCmpCharge charge(stats_);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if ((*ids_)[mid].Compare(v, charge.slot()) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<bool> VectorKeywordList::LeftMatch(const DeweyId& v, DeweyId* out) {
  const size_t pos = LowerBound(v);
  // The equality probe is a Dewey comparison like any other: charge it
  // through Compare so cmp accounting is uniform across the vector and
  // packed implementations (it used to go through operator==, silently
  // uncounted).
  DeweyCmpCharge charge(stats_);
  if (pos < ids_->size() && (*ids_)[pos].Compare(v, charge.slot()) == 0) {
    *out = (*ids_)[pos];
    return true;
  }
  if (pos == 0) return false;
  *out = (*ids_)[pos - 1];
  return true;
}

Result<bool> VectorKeywordList::RightMatch(const DeweyId& v, DeweyId* out) {
  const size_t pos = LowerBound(v);
  if (pos >= ids_->size()) return false;
  *out = (*ids_)[pos];
  return true;
}

Result<std::unique_ptr<KeywordListIterator>> VectorKeywordList::NewIterator() {
  return std::unique_ptr<KeywordListIterator>(
      new VectorIterator(ids_, stats_));
}

Result<std::vector<ListChunk>> VectorKeywordList::PlanChunks(
    size_t max_chunks, uint64_t min_elements) {
  std::vector<ListChunk> chunks;
  for (const auto& [begin, count] :
       PartitionUnits(ids_->size(), max_chunks, min_elements)) {
    ListChunk chunk;
    chunk.first = (*ids_)[static_cast<size_t>(begin)];
    chunk.begin = begin;
    chunk.count = count;
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

Result<std::unique_ptr<KeywordListIterator>> VectorKeywordList::NewChunkIterator(
    const ListChunk& chunk) {
  return std::unique_ptr<KeywordListIterator>(
      new VectorIterator(ids_, stats_, static_cast<size_t>(chunk.begin),
                         static_cast<size_t>(chunk.begin + chunk.count)));
}

Result<std::unique_ptr<KeywordListIterator>> VectorKeywordList::NewIteratorAt(
    const DeweyId& start, DeweyId* prev, bool* prev_valid) {
  const size_t pos = LowerBound(start);
  *prev_valid = pos > 0;
  if (pos > 0) *prev = (*ids_)[pos - 1];
  return std::unique_ptr<KeywordListIterator>(
      new VectorIterator(ids_, stats_, pos));
}

Result<std::unique_ptr<KeywordList>> VectorKeywordList::CloneWithStats(
    QueryStats* stats) {
  return std::unique_ptr<KeywordList>(new VectorKeywordList(ids_, stats));
}

Result<bool> DiskKeywordList::LeftMatch(const DeweyId& v, DeweyId* out) {
  return index_->LeftMatch(term_, v, out, stats_);
}

Result<bool> DiskKeywordList::RightMatch(const DeweyId& v, DeweyId* out) {
  return index_->RightMatch(term_, v, out, stats_);
}

Result<std::unique_ptr<KeywordListIterator>> DiskKeywordList::NewIterator() {
  XKS_ASSIGN_OR_RETURN(DiskIndex::PostingCursor cursor,
                       index_->OpenPostings(term_, stats_));
  return std::unique_ptr<KeywordListIterator>(
      new DiskIterator(std::move(cursor)));
}

Result<std::vector<ListChunk>> DiskKeywordList::PlanChunks(
    size_t max_chunks, uint64_t min_elements) {
  std::vector<ListChunk> chunks;
  if (max_chunks <= 1 || frequency_ == 0) return chunks;
  XKS_ASSIGN_OR_RETURN(std::vector<DiskIndex::ScanBlockRef> blocks,
                       index_->ScanBlockRefs(term_, stats_));
  if (blocks.size() <= 1) return chunks;
  // Translate the element threshold into blocks via the average fill;
  // block payload budgets make fills near-uniform, so chunk work stays
  // balanced even though exact per-block counts are unknown.
  const uint64_t avg_fill =
      std::max<uint64_t>(1, frequency_ / blocks.size());
  const uint64_t min_blocks = (min_elements + avg_fill - 1) / avg_fill;
  for (const auto& [begin, count] :
       PartitionUnits(blocks.size(), max_chunks, min_blocks)) {
    ListChunk chunk;
    chunk.first = std::move(blocks[static_cast<size_t>(begin)].first);
    chunk.begin = begin;
    chunk.count = count;
    chunk.opaque = std::move(blocks[static_cast<size_t>(begin)].key);
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

Result<std::unique_ptr<KeywordListIterator>> DiskKeywordList::NewChunkIterator(
    const ListChunk& chunk) {
  XKS_ASSIGN_OR_RETURN(
      DiskIndex::PostingCursor cursor,
      index_->OpenPostingsAtBlock(term_, chunk.opaque, chunk.count, stats_));
  return std::unique_ptr<KeywordListIterator>(
      new DiskIterator(std::move(cursor)));
}

Result<std::unique_ptr<KeywordListIterator>> DiskKeywordList::NewIteratorAt(
    const DeweyId& start, DeweyId* prev, bool* prev_valid) {
  XKS_ASSIGN_OR_RETURN(
      DiskIndex::PostingCursor cursor,
      index_->OpenPostingsFrom(term_, start, prev, prev_valid, stats_));
  return std::unique_ptr<KeywordListIterator>(
      new DiskIterator(std::move(cursor)));
}

Result<std::unique_ptr<KeywordList>> DiskKeywordList::CloneWithStats(
    QueryStats* stats) {
  return std::unique_ptr<KeywordList>(
      new DiskKeywordList(index_, term_, frequency_, stats));
}

Result<std::unique_ptr<KeywordListIterator>> EmptyKeywordList::NewIterator() {
  return std::unique_ptr<KeywordListIterator>(new EmptyIterator());
}

}  // namespace xksearch
