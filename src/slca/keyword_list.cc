#include "slca/keyword_list.h"

namespace xksearch {

namespace {

class VectorIterator : public KeywordListIterator {
 public:
  VectorIterator(const std::vector<DeweyId>* ids, QueryStats* stats)
      : ids_(ids), stats_(stats) {}

  bool Next(DeweyId* out) override {
    if (pos_ >= ids_->size()) return false;
    *out = (*ids_)[pos_++];
    if (stats_ != nullptr) ++stats_->postings_read;
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  const std::vector<DeweyId>* ids_;
  QueryStats* stats_;
  size_t pos_ = 0;
  Status status_;
};

class DiskIterator : public KeywordListIterator {
 public:
  explicit DiskIterator(DiskIndex::PostingCursor cursor)
      : cursor_(std::move(cursor)) {}

  bool Next(DeweyId* out) override { return cursor_.Next(out); }
  const Status& status() const override { return cursor_.status(); }

 private:
  DiskIndex::PostingCursor cursor_;
};

class EmptyIterator : public KeywordListIterator {
 public:
  bool Next(DeweyId*) override { return false; }
  const Status& status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

size_t VectorKeywordList::LowerBound(const DeweyId& v) const {
  size_t lo = 0, hi = ids_->size();
  DeweyCmpCharge charge(stats_);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if ((*ids_)[mid].Compare(v, charge.slot()) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<bool> VectorKeywordList::LeftMatch(const DeweyId& v, DeweyId* out) {
  const size_t pos = LowerBound(v);
  // The equality probe is a Dewey comparison like any other: charge it
  // through Compare so cmp accounting is uniform across the vector and
  // packed implementations (it used to go through operator==, silently
  // uncounted).
  DeweyCmpCharge charge(stats_);
  if (pos < ids_->size() && (*ids_)[pos].Compare(v, charge.slot()) == 0) {
    *out = (*ids_)[pos];
    return true;
  }
  if (pos == 0) return false;
  *out = (*ids_)[pos - 1];
  return true;
}

Result<bool> VectorKeywordList::RightMatch(const DeweyId& v, DeweyId* out) {
  const size_t pos = LowerBound(v);
  if (pos >= ids_->size()) return false;
  *out = (*ids_)[pos];
  return true;
}

Result<std::unique_ptr<KeywordListIterator>> VectorKeywordList::NewIterator() {
  return std::unique_ptr<KeywordListIterator>(
      new VectorIterator(ids_, stats_));
}

Result<bool> DiskKeywordList::LeftMatch(const DeweyId& v, DeweyId* out) {
  return index_->LeftMatch(term_, v, out, stats_);
}

Result<bool> DiskKeywordList::RightMatch(const DeweyId& v, DeweyId* out) {
  return index_->RightMatch(term_, v, out, stats_);
}

Result<std::unique_ptr<KeywordListIterator>> DiskKeywordList::NewIterator() {
  XKS_ASSIGN_OR_RETURN(DiskIndex::PostingCursor cursor,
                       index_->OpenPostings(term_, stats_));
  return std::unique_ptr<KeywordListIterator>(
      new DiskIterator(std::move(cursor)));
}

Result<std::unique_ptr<KeywordListIterator>> EmptyKeywordList::NewIterator() {
  return std::unique_ptr<KeywordListIterator>(new EmptyIterator());
}

}  // namespace xksearch
