#ifndef XKSEARCH_SLCA_PARALLEL_H_
#define XKSEARCH_SLCA_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "serve/thread_pool.h"
#include "slca/keyword_list.h"
#include "slca/slca.h"

namespace xksearch {

/// \brief Process-wide cap on extra intra-query workers.
///
/// Chunked SLCA execution composes with the other fan-out layers (the
/// serve pool across queries, scatter-gather across shards); without a
/// shared cap, Q concurrent queries × S shards × C chunks could request
/// Q·S·C threads of work for a machine with a handful of cores. Every
/// *extra* chunk worker (beyond the coordinating thread, which always
/// runs its own chunk) takes a token; a chunk that gets no token simply
/// runs inline on the coordinator — results are identical either way, so
/// the budget only shapes execution, never answers.
class ConcurrencyBudget {
 public:
  explicit ConcurrencyBudget(size_t tokens) : tokens_(tokens) {}

  ConcurrencyBudget(const ConcurrencyBudget&) = delete;
  ConcurrencyBudget& operator=(const ConcurrencyBudget&) = delete;

  /// Takes one token; false when none are available.
  bool TryAcquire() {
    size_t cur = tokens_.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (tokens_.compare_exchange_weak(cur, cur - 1,
                                        std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void Release() { tokens_.fetch_add(1, std::memory_order_relaxed); }

  size_t available() const { return tokens_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> tokens_;
};

/// \brief Intra-query execution knobs for the chunked eager algorithms.
///
/// Deliberately kept OUT of SearchOptions equality/hashing (like the
/// serving layer's shard_exec): chunked and sequential execution produce
/// the same result set, so cached results stay valid across executor
/// configurations.
struct ParallelExecOptions {
  /// Pool the extra chunk workers run on; nullptr = sequential. The
  /// coordinating thread always executes at least its own chunk, so the
  /// pool is never waited on for forward progress (a chunk that cannot
  /// be enqueued runs inline).
  serve::ThreadPool* pool = nullptr;
  /// Optional shared token budget capping the total number of extra
  /// chunk workers across nested shard x chunk fan-out; nullptr = only
  /// the pool's own capacity limits concurrency.
  ConcurrencyBudget* budget = nullptr;
  /// Upper bound on chunks per query; <= 1 disables chunking.
  size_t max_chunks = 1;
  /// Minimum S1 elements per chunk; splitting below this threshold costs
  /// more in seam work and task dispatch than the chunk saves.
  uint64_t min_chunk_elements = 1024;
};

/// \brief Chunked Indexed Lookup Eager / Scan Eager execution.
///
/// Partitions S1 (the smallest list) into contiguous chunks, runs the
/// per-chunk eager chain on pool workers — lm/rm probes hit the shared
/// immutable arenas and the sharded buffer pools concurrently, no
/// per-chunk copies — then a sequential stitch pass over the per-chunk
/// ordered candidate outputs re-applies Lemma 1 (discard a candidate
/// that is <= , i.e. an ancestor of, its cross-seam successor's chain
/// value) and Lemma 2 (confirm a chunk's final pending candidate against
/// the next chunk's first surviving candidate), emitting in document
/// order with SlcaOptions::block_size buffered delivery. Per-chunk
/// QueryStats are summed into `stats`.
///
/// The result set, `match_ops` and `results` counters are exactly those
/// of the sequential algorithm (the differential fuzzer asserts this);
/// comparison/posting/page counters can differ by small seam terms.
///
/// Falls back to the sequential ComputeSlca — bit-identical behaviour —
/// when chunking is off (max_chunks <= 1, null pool), the algorithm is
/// kStack (inherently a full k-way merge), or the backend/list is too
/// small to split.
Status ComputeSlcaParallel(SlcaAlgorithm algorithm,
                           const std::vector<KeywordList*>& lists,
                           const SlcaOptions& options,
                           const ParallelExecOptions& exec, QueryStats* stats,
                           const ResultCallback& emit);

namespace internal {

/// One chunk's ordered candidate output, pre-stitch: `confirmed` are the
/// candidates confirmed by an in-chunk successor (Lemma 2 locally),
/// `pending` the chunk's final running-maximum candidate whose
/// confirmation needs the next chunk (or end of query). `results` is NOT
/// charged by chunk workers — only the stitch emits.
struct ChunkOutput {
  Status status;
  std::vector<DeweyId> confirmed;
  DeweyId pending;
  bool has_pending = false;
  QueryStats stats;
};

/// The sequential seam pass, exposed for direct unit testing: feeds one
/// chunk's output through the cross-seam Lemma 1/2 filter and emits
/// confirmed results (charging stats->results) in document order.
class Stitcher {
 public:
  Stitcher(size_t block_size, QueryStats* stats, const ResultCallback& emit)
      : block_size_(block_size == 0 ? 1 : block_size),
        stats_(stats),
        emit_(emit) {}

  /// Folds in the next chunk's output, in chunk order.
  void Add(const ChunkOutput& chunk);
  /// Confirms the final pending candidate and flushes buffered results.
  void Finish();

 private:
  void Deliver(const DeweyId& id);
  void FlushBlock();

  size_t block_size_;
  QueryStats* stats_;
  const ResultCallback& emit_;
  DeweyId pending_;  // cross-chunk running candidate (the "g" of the proof)
  bool has_pending_ = false;
  std::vector<DeweyId> buffered_;
};

}  // namespace internal

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_PARALLEL_H_
