#ifndef XKSEARCH_SLCA_ELCA_H_
#define XKSEARCH_SLCA_ELCA_H_

#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "slca/keyword_list.h"
#include "slca/slca.h"

namespace xksearch {

/// \brief Exhaustive LCAs — the answer semantics of XRANK [13], which the
/// paper's Stack algorithm was adapted from.
///
/// A node v is an ELCA iff its subtree still contains every keyword
/// after excluding all occurrences that lie under a descendant of v
/// whose own subtree contains every keyword. Every SLCA is an ELCA
/// (nothing below it can absorb occurrences) and every ELCA is an LCA,
/// so slca ⊆ elca ⊆ lca; ELCA keeps an ancestor only when it has
/// *fresh* witnesses of its own.
///
/// On School.xml with {john, ben}: <classes> contains both keywords but
/// only via the two class answers below it, so it is an LCA yet not an
/// ELCA; a <class> that mentioned John again outside any answer subtree
/// would be.
///
/// The implementation is the XRANK-style sort-merge stack: entries carry
/// per-keyword *free occurrence counts*; a popped entry whose subtree
/// covers all keywords is an ELCA iff every free count is positive, and
/// such an entry contributes nothing to its parent's free counts (its
/// occurrences are absorbed). Cost O(k d sum |Si|), like Stack.
/// Results are emitted in postorder; use ComputeElcaList for document
/// order.
Status ElcaStack(const std::vector<KeywordList*>& lists,
                 const SlcaOptions& options, QueryStats* stats,
                 const ResultCallback& emit);

/// Convenience wrapper: collects and sorts into document order.
Result<std::vector<DeweyId>> ComputeElcaList(
    const std::vector<KeywordList*>& lists, const SlcaOptions& options = {},
    QueryStats* stats = nullptr);

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_ELCA_H_
