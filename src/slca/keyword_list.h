#ifndef XKSEARCH_SLCA_KEYWORD_LIST_H_
#define XKSEARCH_SLCA_KEYWORD_LIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "storage/disk_index.h"

namespace xksearch {

/// \brief Forward scan over a keyword list in Dewey order.
class KeywordListIterator {
 public:
  virtual ~KeywordListIterator() = default;

  /// Produces the next id; false at end of list. Check status() afterwards
  /// to distinguish clean exhaustion from an I/O or corruption error.
  virtual bool Next(DeweyId* out) = 0;
  virtual const Status& status() const = 0;
};

/// \brief A keyword list `S`: the nodes directly containing one keyword,
/// sorted by Dewey id (paper Section 2).
///
/// The SLCA algorithms are written against this interface so they run
/// unchanged over in-memory vectors (main-memory complexity analysis) and
/// over the disk index (disk-access analysis). Implementations charge
/// their work to the QueryStats supplied at construction.
class KeywordList {
 public:
  virtual ~KeywordList() = default;

  /// List size |S| (the keyword frequency).
  virtual uint64_t size() const = 0;

  /// lm(v, S): the node of S with the greatest id <= v, or false if none.
  /// One lm call is one "match operation" in the paper's cost model.
  virtual Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) = 0;

  /// rm(v, S): the node of S with the smallest id >= v, or false if none.
  virtual Result<bool> RightMatch(const DeweyId& v, DeweyId* out) = 0;

  /// Opens a fresh scan from the head of the list.
  virtual Result<std::unique_ptr<KeywordListIterator>> NewIterator() = 0;
};

/// \brief In-memory list over a sorted vector; lm/rm are binary searches
/// costing O(d log |S|) Dewey component comparisons, as in Table 1.
class VectorKeywordList : public KeywordList {
 public:
  /// `ids` must stay alive and sorted for the lifetime of this object.
  VectorKeywordList(const std::vector<DeweyId>* ids, QueryStats* stats)
      : ids_(ids), stats_(stats) {}

  uint64_t size() const override { return ids_->size(); }
  Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) override;
  Result<bool> RightMatch(const DeweyId& v, DeweyId* out) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;

 private:
  // First index with ids_[i] >= v.
  size_t LowerBound(const DeweyId& v) const;

  const std::vector<DeweyId>* ids_;
  QueryStats* stats_;
};

/// \brief Disk-backed list: lm/rm probe the Indexed Lookup B+tree,
/// iteration streams the Scan-layout posting blocks.
class DiskKeywordList : public KeywordList {
 public:
  DiskKeywordList(const DiskIndex* index, uint32_t term, uint64_t frequency,
                  QueryStats* stats)
      : index_(index), term_(term), frequency_(frequency), stats_(stats) {}

  uint64_t size() const override { return frequency_; }
  Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) override;
  Result<bool> RightMatch(const DeweyId& v, DeweyId* out) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;

 private:
  const DiskIndex* index_;
  uint32_t term_;
  uint64_t frequency_;
  QueryStats* stats_;
};

/// \brief An always-empty list, used for keywords absent from the index
/// (the SLCA result is then empty, but algorithms still need k lists).
class EmptyKeywordList : public KeywordList {
 public:
  uint64_t size() const override { return 0; }
  Result<bool> LeftMatch(const DeweyId&, DeweyId*) override { return false; }
  Result<bool> RightMatch(const DeweyId&, DeweyId*) override { return false; }
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;
};

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_KEYWORD_LIST_H_
