#ifndef XKSEARCH_SLCA_KEYWORD_LIST_H_
#define XKSEARCH_SLCA_KEYWORD_LIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/decode_kernels.h"
#include "dewey/dewey_id.h"
#include "storage/disk_index.h"

namespace xksearch {

/// \brief Forward scan over a keyword list in Dewey order.
class KeywordListIterator {
 public:
  virtual ~KeywordListIterator() = default;

  /// Produces the next id; false at end of list. Check status() afterwards
  /// to distinguish clean exhaustion from an I/O or corruption error.
  virtual bool Next(DeweyId* out) = 0;
  virtual const Status& status() const = 0;

  /// Batch hook: replaces `out` with the iterator's next run of decoded
  /// entries (typically one storage block) and returns true. An empty
  /// `out` then means end of list (check status() for errors, as with
  /// Next). Returns false when the backend has no blocked path — the
  /// caller falls back to Next for good. Implementations do NOT charge
  /// postings_read here; the consuming cursor charges per entry it
  /// actually delivers, so stats are identical across both paths.
  virtual bool DecodeBlockInto(DecodedBlock* out) {
    (void)out;
    return false;
  }
};

/// \brief Block-at-a-time consumption adapter over a KeywordListIterator.
///
/// Pulls whole decoded arenas through DecodeBlockInto when the backend
/// supports it (packed, vector and disk lists all do) and serves views
/// out of the arena with zero per-entry decode or allocation; falls back
/// permanently to entry-at-a-time Next otherwise. Charges postings_read
/// once per delivered entry — exactly what the wrapped iterator would
/// have charged — so the two paths are indistinguishable in QueryStats.
class BlockedListCursor {
 public:
  /// `iter` must outlive the cursor. `stats` may be null.
  BlockedListCursor(KeywordListIterator* iter, QueryStats* stats)
      : iter_(iter), stats_(stats) {}

  /// The next entry as a view (valid until the next NextView call);
  /// false at end of list or error (check iterator status()).
  bool NextView(DeweyView* out) {
    if (blocked_) {
      if (pos_ < block_.count()) {
        *out = block_.entry(pos_++);
        if (stats_ != nullptr) ++stats_->postings_read;
        return true;
      }
      if (iter_->DecodeBlockInto(&block_)) {
        pos_ = 0;
        if (block_.empty()) return false;
        *out = block_.entry(pos_++);
        if (stats_ != nullptr) ++stats_->postings_read;
        return true;
      }
      blocked_ = false;
    }
    if (!iter_->Next(&scratch_)) return false;
    *out = scratch_.view();
    return true;
  }

 private:
  KeywordListIterator* iter_;
  QueryStats* stats_;
  DecodedBlock block_;
  size_t pos_ = 0;
  bool blocked_ = true;  // until the first DecodeBlockInto refusal
  DeweyId scratch_;      // fallback materialization target
};

/// \brief One contiguous range of a keyword list, produced by
/// KeywordList::PlanChunks for chunked (intra-query parallel) execution.
///
/// `first` is the chunk's first element; the remaining fields are
/// backend-private addressing (element index, packed-block index, or an
/// encoded scan-tree key) that only the producing list interprets, via
/// NewChunkIterator. Chunks tile the list: concatenating the chunk
/// iterators in order reproduces NewIterator exactly.
struct ListChunk {
  /// First element of the chunk (the seed for per-chunk scan cursors on
  /// the *other* lists of the query).
  DeweyId first;
  /// Backend-private start position (element or block index).
  uint64_t begin = 0;
  /// Backend-private extent (element or block count).
  uint64_t count = 0;
  /// Backend-private cursor seed (the disk layer's encoded block key).
  std::string opaque;
};

/// Shared chunk-planning arithmetic: splits `units` work units (elements
/// or blocks) into at most `max_chunks` contiguous (begin, count) ranges
/// of at least `min_units` each, sizes differing by at most one. Returns
/// an empty vector when no real split results (fewer than two chunks).
std::vector<std::pair<uint64_t, uint64_t>> PartitionUnits(
    uint64_t units, size_t max_chunks, uint64_t min_units);

/// \brief A keyword list `S`: the nodes directly containing one keyword,
/// sorted by Dewey id (paper Section 2).
///
/// The SLCA algorithms are written against this interface so they run
/// unchanged over in-memory vectors (main-memory complexity analysis) and
/// over the disk index (disk-access analysis). Implementations charge
/// their work to the QueryStats supplied at construction.
class KeywordList {
 public:
  virtual ~KeywordList() = default;

  /// List size |S| (the keyword frequency).
  virtual uint64_t size() const = 0;

  /// lm(v, S): the node of S with the greatest id <= v, or false if none.
  /// One lm call is one "match operation" in the paper's cost model.
  virtual Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) = 0;

  /// rm(v, S): the node of S with the smallest id >= v, or false if none.
  virtual Result<bool> RightMatch(const DeweyId& v, DeweyId* out) = 0;

  /// Opens a fresh scan from the head of the list.
  virtual Result<std::unique_ptr<KeywordListIterator>> NewIterator() = 0;

  /// Partitions the list into at most `max_chunks` contiguous chunks of
  /// at least `min_elements` each (the last may be smaller only because
  /// the list ran out), in list order, tiling the whole list. Returns an
  /// empty vector when the backend does not support chunked execution or
  /// the list is too small to split; callers then run sequentially.
  /// Planning work (if any) is charged to the stats object the list was
  /// constructed with.
  virtual Result<std::vector<ListChunk>> PlanChunks(size_t max_chunks,
                                                    uint64_t min_elements) {
    (void)max_chunks;
    (void)min_elements;
    return std::vector<ListChunk>();
  }

  /// Opens an iterator over exactly one chunk previously produced by
  /// PlanChunks on this list (or on a CloneWithStats sibling).
  virtual Result<std::unique_ptr<KeywordListIterator>> NewChunkIterator(
      const ListChunk& chunk) {
    (void)chunk;
    return Status::NotSupported("keyword list does not support chunks");
  }

  /// Opens an iterator positioned at the first element >= `start`, and
  /// reports the greatest element < `start` through `prev`/`prev_valid`
  /// (the predecessor). The pair (predecessor, cursor front) are adjacent
  /// list elements — exactly the state a sequential forward scan holds
  /// after passing `start` — which is what seeds the Scan Eager variant's
  /// per-chunk cursors. When the first element equals `start` exactly,
  /// blocked backends may leave the predecessor unreported (the exact
  /// hit itself pins any probe target the predecessor could have
  /// pinned, so seeded scans lose nothing). Positioning work is not
  /// charged as postings read (the elements skipped are not consumed by
  /// the algorithm).
  virtual Result<std::unique_ptr<KeywordListIterator>> NewIteratorAt(
      const DeweyId& start, DeweyId* prev, bool* prev_valid) {
    (void)start;
    (void)prev;
    (void)prev_valid;
    return Status::NotSupported("keyword list does not support seeks");
  }

  /// A new adapter over the same underlying list that charges its work to
  /// `stats` instead — one per chunk worker, so per-chunk QueryStats can
  /// be accumulated without sharing mutable adapter state across threads.
  virtual Result<std::unique_ptr<KeywordList>> CloneWithStats(
      QueryStats* stats) {
    (void)stats;
    return Status::NotSupported("keyword list does not support rebinding");
  }
};

/// \brief In-memory list over a sorted vector; lm/rm are binary searches
/// costing O(d log |S|) Dewey component comparisons, as in Table 1.
class VectorKeywordList : public KeywordList {
 public:
  /// `ids` must stay alive and sorted for the lifetime of this object.
  VectorKeywordList(const std::vector<DeweyId>* ids, QueryStats* stats)
      : ids_(ids), stats_(stats) {}

  uint64_t size() const override { return ids_->size(); }
  Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) override;
  Result<bool> RightMatch(const DeweyId& v, DeweyId* out) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;
  Result<std::vector<ListChunk>> PlanChunks(size_t max_chunks,
                                            uint64_t min_elements) override;
  Result<std::unique_ptr<KeywordListIterator>> NewChunkIterator(
      const ListChunk& chunk) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIteratorAt(
      const DeweyId& start, DeweyId* prev, bool* prev_valid) override;
  Result<std::unique_ptr<KeywordList>> CloneWithStats(
      QueryStats* stats) override;

 private:
  // First index with ids_[i] >= v.
  size_t LowerBound(const DeweyId& v) const;

  const std::vector<DeweyId>* ids_;
  QueryStats* stats_;
};

/// \brief Disk-backed list: lm/rm probe the Indexed Lookup B+tree,
/// iteration streams the Scan-layout posting blocks.
class DiskKeywordList : public KeywordList {
 public:
  DiskKeywordList(const DiskIndex* index, uint32_t term, uint64_t frequency,
                  QueryStats* stats)
      : index_(index), term_(term), frequency_(frequency), stats_(stats) {}

  uint64_t size() const override { return frequency_; }
  Result<bool> LeftMatch(const DeweyId& v, DeweyId* out) override;
  Result<bool> RightMatch(const DeweyId& v, DeweyId* out) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;
  /// Disk chunks are ranges of scan-layout blocks: planning walks the
  /// term's block keys (each key embeds the block's first Dewey id, so
  /// chunk seeds decode straight from keys) and `min_elements` is
  /// translated into a minimum block count via the term's average block
  /// fill. The key walk's page accesses are charged to this query.
  Result<std::vector<ListChunk>> PlanChunks(size_t max_chunks,
                                            uint64_t min_elements) override;
  Result<std::unique_ptr<KeywordListIterator>> NewChunkIterator(
      const ListChunk& chunk) override;
  Result<std::unique_ptr<KeywordListIterator>> NewIteratorAt(
      const DeweyId& start, DeweyId* prev, bool* prev_valid) override;
  Result<std::unique_ptr<KeywordList>> CloneWithStats(
      QueryStats* stats) override;

 private:
  const DiskIndex* index_;
  uint32_t term_;
  uint64_t frequency_;
  QueryStats* stats_;
};

/// \brief An always-empty list, used for keywords absent from the index
/// (the SLCA result is then empty, but algorithms still need k lists).
class EmptyKeywordList : public KeywordList {
 public:
  uint64_t size() const override { return 0; }
  Result<bool> LeftMatch(const DeweyId&, DeweyId*) override { return false; }
  Result<bool> RightMatch(const DeweyId&, DeweyId*) override { return false; }
  Result<std::unique_ptr<KeywordListIterator>> NewIterator() override;
  Result<std::unique_ptr<KeywordList>> CloneWithStats(QueryStats*) override {
    return std::unique_ptr<KeywordList>(new EmptyKeywordList());
  }
};

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_KEYWORD_LIST_H_
