#ifndef XKSEARCH_SLCA_SLCA_H_
#define XKSEARCH_SLCA_SLCA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "slca/keyword_list.h"

namespace xksearch {

/// Receives each result node as soon as it is confirmed ("eager",
/// pipelined delivery — paper Section 3.1).
using ResultCallback = std::function<void(const DeweyId&)>;

/// \brief Tuning knobs shared by the SLCA algorithms.
struct SlcaOptions {
  /// The paper's buffer size B for the Indexed Lookup Eager algorithm:
  /// nodes of S1 are processed in blocks of `block_size`, and confirmed
  /// SLCAs are delivered at block boundaries. 1 = maximally eager (first
  /// answer as early as possible); larger values batch delivery. Does not
  /// affect the result set.
  size_t block_size = 1;
};

/// \brief One step of the Indexed Lookup chain (paper Properties 1-3):
/// returns slca({x}, S), i.e. the deeper of lca(x, lm(x, S)) and
/// lca(x, rm(x, S)). Returns the empty id iff the list is empty.
/// Charges two match operations and up to two LCA computations to `stats`.
Result<DeweyId> MatchStep(const DeweyId& x, KeywordList* list,
                          QueryStats* stats);

/// \brief The Indexed Lookup Eager algorithm (paper Algorithm 1/2).
///
/// `lists[0]` should be the smallest list (the query engine orders lists
/// by frequency); correctness does not depend on the order, only cost.
/// For each v in S1 the chain of MatchStep calls over lists[1..k-1]
/// computes slca({v}, S2, ..., Sk); Lemma 1 discards out-of-order
/// candidates and Lemma 2 confirms a candidate as soon as its successor
/// is not its descendant. Main-memory cost O(k d |S1| log |S|).
/// Results arrive through `emit` in document order, duplicate-free.
Status IndexedLookupEagerSlca(const std::vector<KeywordList*>& lists,
                              const SlcaOptions& options, QueryStats* stats,
                              const ResultCallback& emit);

/// \brief The Scan Eager variant (paper Section 3.2): identical driver,
/// but lm/rm are implemented by advancing one cursor per keyword list,
/// exploiting the fact that probes into each list are nondecreasing.
/// Cost O(d * sum |Si| + k d |S1|); preferable when frequencies are close.
Status ScanEagerSlca(const std::vector<KeywordList*>& lists,
                     const SlcaOptions& options, QueryStats* stats,
                     const ResultCallback& emit);

/// \brief The Stack algorithm (paper Section 3.3): XRANK's sort-merge
/// stack [13] modified to return SLCAs. Merges all k lists in document
/// order and maintains a stack of Dewey components with per-keyword
/// containment flags. Cost O(k d * sum |Si|); always reads every list
/// in full.
Status StackSlca(const std::vector<KeywordList*>& lists,
                 const SlcaOptions& options, QueryStats* stats,
                 const ResultCallback& emit);

enum class SlcaAlgorithm {
  kIndexedLookupEager,
  kScanEager,
  kStack,
};

std::string ToString(SlcaAlgorithm algorithm);

/// Dispatches to one of the three algorithms.
Status ComputeSlca(SlcaAlgorithm algorithm,
                   const std::vector<KeywordList*>& lists,
                   const SlcaOptions& options, QueryStats* stats,
                   const ResultCallback& emit);

/// Convenience wrapper collecting the results into a vector.
Result<std::vector<DeweyId>> ComputeSlcaList(
    SlcaAlgorithm algorithm, const std::vector<KeywordList*>& lists,
    const SlcaOptions& options = {}, QueryStats* stats = nullptr);

}  // namespace xksearch

#endif  // XKSEARCH_SLCA_SLCA_H_
