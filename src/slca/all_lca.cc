#include "slca/all_lca.h"

#include <algorithm>

namespace xksearch {

Result<bool> CheckLca(const DeweyId& w, const DeweyId& u,
                      const std::vector<KeywordList*>& lists,
                      QueryStats* stats) {
  const DeweyId uncle = u.NextSibling();
  for (KeywordList* list : lists) {
    if (stats != nullptr) stats->match_ops += 2;
    DeweyId y;
    // A witness at w itself or in the left part of subtree(w): the
    // smallest instance >= w that is under w but not under u. (If the
    // left part is empty this probe lands inside subtree(u), which
    // proves nothing — subtree(u) is known to contain every keyword.)
    XKS_ASSIGN_OR_RETURN(bool found, list->RightMatch(w, &y));
    if (found && w.IsAncestorOrSelf(y) && !u.IsAncestorOrSelf(y)) return true;
    // A witness in the right part: the smallest instance at or after the
    // uncle of u; if it is still under w it lies right of subtree(u).
    XKS_ASSIGN_OR_RETURN(found, list->RightMatch(uncle, &y));
    if (found && w.IsAncestorOrSelf(y)) return true;
  }
  return false;
}

Status FindAllLca(const std::vector<KeywordList*>& lists,
                  const SlcaOptions& options, QueryStats* stats,
                  const ResultCallback& emit) {
  if (lists.size() == 1) {
    // Degenerate case: the LCA of a singleton combination is the node
    // itself, so the LCA set is the whole keyword list. (CheckLca's
    // witness argument needs a second keyword to pin an ancestor.)
    XKS_ASSIGN_OR_RETURN(std::unique_ptr<KeywordListIterator> it,
                         lists[0]->NewIterator());
    DeweyId id;
    while (it->Next(&id)) {
      if (stats != nullptr) ++stats->results;
      emit(id);
    }
    return it->status();
  }

  DeweyId prev;
  bool have_prev = false;
  Status check_status;

  // Walks the ancestors of `s` from its parent up to (and excluding)
  // depth `stop_depth`, checking each for LCA-ness. The child on the path
  // certifies that every keyword occurs below the ancestor.
  auto check_path = [&](const DeweyId& s, size_t stop_depth) {
    for (size_t wd = s.depth() - 1; wd > stop_depth; --wd) {
      const DeweyId w = s.Prefix(wd);
      const DeweyId u = s.Prefix(wd + 1);
      Result<bool> is_lca = CheckLca(w, u, lists, stats);
      if (!is_lca.ok()) {
        check_status = is_lca.status();
        return;
      }
      if (*is_lca) {
        if (stats != nullptr) ++stats->results;
        emit(w);
      }
    }
  };

  XKS_RETURN_NOT_OK(IndexedLookupEagerSlca(
      lists, options, stats, [&](const DeweyId& s) {
        if (!check_status.ok()) return;
        // Every SLCA is itself an LCA. (The SLCA machinery already
        // counted it in stats->results.)
        emit(s);
        if (have_prev) {
          // Ancestors of `prev` above lca(prev, s) are shared with `s`
          // and will be handled when s (or a later SLCA) is finished.
          check_path(prev, prev.CommonPrefixLength(s));
        }
        prev = s;
        have_prev = true;
      }));
  XKS_RETURN_NOT_OK(check_status);
  if (have_prev) {
    // The last SLCA owns the remaining path all the way to the root.
    check_path(prev, 0);
    XKS_RETURN_NOT_OK(check_status);
  }
  return Status::OK();
}

Result<std::vector<DeweyId>> ComputeAllLcaList(
    const std::vector<KeywordList*>& lists, const SlcaOptions& options,
    QueryStats* stats) {
  std::vector<DeweyId> out;
  XKS_RETURN_NOT_OK(FindAllLca(lists, options, stats,
                               [&](const DeweyId& id) { out.push_back(id); }));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xksearch
