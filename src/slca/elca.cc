#include "slca/elca.h"

#include <algorithm>
#include <memory>

namespace xksearch {

Status ElcaStack(const std::vector<KeywordList*>& lists,
                 const SlcaOptions& options, QueryStats* stats,
                 const ResultCallback& emit) {
  (void)options;
  if (lists.empty()) {
    return Status::InvalidArgument("ELCA query needs at least one keyword");
  }
  if (lists.size() > 64) {
    return Status::InvalidArgument("at most 64 keyword lists supported");
  }
  const size_t k = lists.size();
  const uint64_t full_mask = k == 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
  for (KeywordList* list : lists) {
    if (list->size() == 0) return Status::OK();
  }

  // K-way merge heads, as in StackSlca.
  std::vector<std::unique_ptr<KeywordListIterator>> iters(k);
  std::vector<DeweyId> heads(k);
  std::vector<bool> head_valid(k);
  for (size_t i = 0; i < k; ++i) {
    XKS_ASSIGN_OR_RETURN(iters[i], lists[i]->NewIterator());
    head_valid[i] = iters[i]->Next(&heads[i]);
    XKS_RETURN_NOT_OK(iters[i]->status());
  }

  // Stack entry j describes the node at Dewey prefix path[0..j]: which
  // keywords its subtree covers, and how many occurrences of each remain
  // "free" — not absorbed by a covering (full-mask) descendant.
  struct Entry {
    uint64_t mask = 0;
    std::vector<uint32_t> free_counts;
    explicit Entry(size_t keywords) : free_counts(keywords, 0) {}
  };
  std::vector<Entry> stack;
  std::vector<uint32_t> path;

  auto pop_one = [&]() {
    Entry top = std::move(stack.back());
    const DeweyId node(
        std::vector<uint32_t>(path.begin(), path.begin() + stack.size()));
    stack.pop_back();
    path.pop_back();
    if (top.mask == full_mask) {
      // A covering node: an ELCA iff every keyword kept a free witness.
      const bool elca =
          std::all_of(top.free_counts.begin(), top.free_counts.end(),
                      [](uint32_t c) { return c > 0; });
      if (elca) {
        if (stats != nullptr) ++stats->results;
        emit(node);
      }
      // Either way the parent sees no free occurrences from this child:
      // they are absorbed by a covering descendant (XRANK's exclusion).
      if (!stack.empty()) stack.back().mask |= top.mask;
    } else if (!stack.empty()) {
      stack.back().mask |= top.mask;
      for (size_t i = 0; i < top.free_counts.size(); ++i) {
        stack.back().free_counts[i] += top.free_counts[i];
      }
    }
  };

  DeweyCmpCharge charge(stats);
  for (;;) {
    size_t min_idx = k;
    for (size_t i = 0; i < k; ++i) {
      if (!head_valid[i]) continue;
      if (min_idx == k ||
          heads[i].Compare(heads[min_idx], charge.slot()) < 0) {
        min_idx = i;
      }
    }
    if (min_idx == k) break;
    const DeweyId& id = heads[min_idx];

    size_t shared = 0;
    const size_t limit = std::min(path.size(), id.depth());
    while (shared < limit && path[shared] == id.component(shared)) ++shared;
    if (stats != nullptr) ++stats->lca_ops;
    while (stack.size() > shared) pop_one();

    for (size_t j = shared; j < id.depth(); ++j) {
      stack.emplace_back(k);
      path.push_back(id.component(j));
    }
    stack.back().mask |= uint64_t{1} << min_idx;
    ++stack.back().free_counts[min_idx];

    head_valid[min_idx] = iters[min_idx]->Next(&heads[min_idx]);
    XKS_RETURN_NOT_OK(iters[min_idx]->status());
  }
  while (!stack.empty()) pop_one();
  return Status::OK();
}

Result<std::vector<DeweyId>> ComputeElcaList(
    const std::vector<KeywordList*>& lists, const SlcaOptions& options,
    QueryStats* stats) {
  std::vector<DeweyId> out;
  XKS_RETURN_NOT_OK(ElcaStack(lists, options, stats,
                              [&](const DeweyId& id) { out.push_back(id); }));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xksearch
