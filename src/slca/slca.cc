#include "slca/slca.h"

#include <cassert>
#include <optional>

namespace xksearch {

namespace {

/// Applies Lemma 1 and Lemma 2 to the stream of per-v results
/// slca({v}, S2..Sk) and delivers confirmed SLCAs, buffered in blocks of
/// `block_size` offers (the paper's buffer size B).
class EagerEmitter {
 public:
  EagerEmitter(size_t block_size, QueryStats* stats,
               const ResultCallback& emit)
      : block_size_(block_size == 0 ? 1 : block_size),
        stats_(stats),
        emit_(emit) {}

  /// Feeds the next chain result, in S1 order.
  void Offer(const DeweyId& x) {
    if (!have_candidate_) {
      candidate_ = x;
      have_candidate_ = true;
    } else {
      DeweyCmpCharge charge(stats_);
      const int order = x.Compare(candidate_, charge.slot());
      if (order > 0) {
        // Lemma 2: the candidate is confirmed unless x is its descendant.
        if (!candidate_.IsAncestorOf(x)) Confirm(candidate_);
        candidate_ = x;
      }
      // order <= 0: Lemma 1 — an out-of-order (or duplicate) result is an
      // ancestor node and is discarded.
    }
    if (++offers_in_block_ >= block_size_) FlushBlock();
  }

  /// The last candidate standing is always an SLCA.
  void Finish() {
    if (have_candidate_) Confirm(candidate_);
    FlushBlock();
  }

 private:
  void Confirm(const DeweyId& id) {
    if (stats_ != nullptr) ++stats_->results;
    buffered_.push_back(id);
  }

  void FlushBlock() {
    for (const DeweyId& id : buffered_) emit_(id);
    buffered_.clear();
    offers_in_block_ = 0;
  }

  size_t block_size_;
  QueryStats* stats_;
  const ResultCallback& emit_;
  DeweyId candidate_;
  bool have_candidate_ = false;
  std::vector<DeweyId> buffered_;
  size_t offers_in_block_ = 0;
};

/// Combines the two match results around x (paper Property 1):
/// deeper(lca(x, lm), lca(x, rm)).
DeweyId CombineMatches(const DeweyId& x, bool lm_ok, const DeweyId& lm,
                       bool rm_ok, const DeweyId& rm, QueryStats* stats) {
  DeweyId left;
  DeweyId right;
  if (lm_ok) {
    left = x.Lca(lm);
    if (stats != nullptr) ++stats->lca_ops;
  }
  if (rm_ok) {
    right = x.Lca(rm);
    if (stats != nullptr) ++stats->lca_ops;
  }
  return Deeper(left, right);
}

/// Cursor-based lm/rm over one keyword list for the Scan Eager variant.
///
/// Probe targets regress only to ancestors of earlier targets (every
/// chain value is an ancestor-or-self of its S1 node, and S1 is scanned
/// in order), so a forward-only cursor suffices: if the last passed
/// element turns out to be a descendant of the current target x, some
/// list element lies inside subtree(x) and the step result is pinned to
/// x itself.
class ScanMatcher {
 public:
  ScanMatcher(QueryStats* stats) : stats_(stats) {}  // NOLINT

  Status Init(KeywordList* list) {
    XKS_ASSIGN_OR_RETURN(iter_, list->NewIterator());
    cursor_.emplace(iter_.get(), stats_);
    DeweyView v;
    cur_valid_ = cursor_->NextView(&v);
    if (cur_valid_) cur_.AssignFrom(v);
    return iter_->status();
  }

  /// Computes slca({x}, S) for this list by scanning.
  Result<DeweyId> Step(const DeweyId& x) {
    if (stats_ != nullptr) stats_->match_ops += 2;  // one lm + one rm
    DeweyCmpCharge charge(stats_);
    while (cur_valid_ && cur_.Compare(x, charge.slot()) < 0) {
      std::swap(prev_, cur_);
      prev_valid_ = true;
      DeweyView v;
      cur_valid_ = cursor_->NextView(&v);
      if (cur_valid_) cur_.AssignFrom(v);
      XKS_RETURN_NOT_OK(iter_->status());
    }
    if (prev_valid_ && x.IsAncestorOrSelf(prev_)) {
      // A passed element sits under x, so rm(x) is under x too and
      // lca(x, rm(x)) = x — the deepest possible outcome.
      return x;
    }
    return CombineMatches(x, prev_valid_, prev_, cur_valid_, cur_, stats_);
  }

 private:
  std::unique_ptr<KeywordListIterator> iter_;
  std::optional<BlockedListCursor> cursor_;
  QueryStats* stats_;
  DeweyId prev_;
  DeweyId cur_;
  bool prev_valid_ = false;
  bool cur_valid_ = false;
};

bool AnyListEmpty(const std::vector<KeywordList*>& lists) {
  for (KeywordList* list : lists) {
    if (list->size() == 0) return true;
  }
  return false;
}

Status ValidateLists(const std::vector<KeywordList*>& lists) {
  if (lists.empty()) {
    return Status::InvalidArgument("SLCA query needs at least one keyword");
  }
  if (lists.size() > 64) {
    return Status::InvalidArgument("at most 64 keyword lists supported");
  }
  return Status::OK();
}

}  // namespace

Result<DeweyId> MatchStep(const DeweyId& x, KeywordList* list,
                          QueryStats* stats) {
  if (stats != nullptr) stats->match_ops += 2;
  DeweyId lm;
  DeweyId rm;
  XKS_ASSIGN_OR_RETURN(const bool lm_ok, list->LeftMatch(x, &lm));
  XKS_ASSIGN_OR_RETURN(const bool rm_ok, list->RightMatch(x, &rm));
  return CombineMatches(x, lm_ok, lm, rm_ok, rm, stats);
}

Status IndexedLookupEagerSlca(const std::vector<KeywordList*>& lists,
                              const SlcaOptions& options, QueryStats* stats,
                              const ResultCallback& emit) {
  XKS_RETURN_NOT_OK(ValidateLists(lists));
  if (AnyListEmpty(lists)) return Status::OK();

  XKS_ASSIGN_OR_RETURN(std::unique_ptr<KeywordListIterator> s1,
                       lists[0]->NewIterator());
  BlockedListCursor s1_cursor(s1.get(), stats);
  EagerEmitter emitter(options.block_size, stats, emit);
  DeweyView v;
  DeweyId x;
  while (s1_cursor.NextView(&v)) {
    x.AssignFrom(v);
    for (size_t i = 1; i < lists.size(); ++i) {
      XKS_ASSIGN_OR_RETURN(x, MatchStep(x, lists[i], stats));
    }
    emitter.Offer(x);
  }
  XKS_RETURN_NOT_OK(s1->status());
  emitter.Finish();
  return Status::OK();
}

Status ScanEagerSlca(const std::vector<KeywordList*>& lists,
                     const SlcaOptions& options, QueryStats* stats,
                     const ResultCallback& emit) {
  XKS_RETURN_NOT_OK(ValidateLists(lists));
  if (AnyListEmpty(lists)) return Status::OK();

  XKS_ASSIGN_OR_RETURN(std::unique_ptr<KeywordListIterator> s1,
                       lists[0]->NewIterator());
  std::vector<ScanMatcher> matchers;
  matchers.reserve(lists.size() - 1);
  for (size_t i = 1; i < lists.size(); ++i) {
    matchers.emplace_back(stats);
    XKS_RETURN_NOT_OK(matchers.back().Init(lists[i]));
  }

  BlockedListCursor s1_cursor(s1.get(), stats);
  EagerEmitter emitter(options.block_size, stats, emit);
  DeweyView v;
  DeweyId x;
  while (s1_cursor.NextView(&v)) {
    x.AssignFrom(v);
    for (ScanMatcher& matcher : matchers) {
      XKS_ASSIGN_OR_RETURN(x, matcher.Step(x));
    }
    emitter.Offer(x);
  }
  XKS_RETURN_NOT_OK(s1->status());
  emitter.Finish();
  return Status::OK();
}

Status StackSlca(const std::vector<KeywordList*>& lists,
                 const SlcaOptions& options, QueryStats* stats,
                 const ResultCallback& emit) {
  (void)options;  // The Stack algorithm has no buffer-size knob.
  XKS_RETURN_NOT_OK(ValidateLists(lists));
  if (AnyListEmpty(lists)) return Status::OK();

  const size_t k = lists.size();
  const uint64_t full_mask = k == 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;

  // K-way merge heads.
  std::vector<std::unique_ptr<KeywordListIterator>> iters(k);
  std::vector<DeweyId> heads(k);
  std::vector<bool> head_valid(k);
  for (size_t i = 0; i < k; ++i) {
    XKS_ASSIGN_OR_RETURN(iters[i], lists[i]->NewIterator());
    head_valid[i] = iters[i]->Next(&heads[i]);
    XKS_RETURN_NOT_OK(iters[i]->status());
  }

  // Stack entry j describes the subtree rooted at the node whose Dewey
  // number is path[0..j]: which keywords it contains (directly or via
  // popped descendants) and whether an SLCA was already found below it.
  struct Entry {
    uint64_t flags = 0;
    bool slca_below = false;
  };
  std::vector<Entry> stack;
  std::vector<uint32_t> path;

  auto pop_one = [&]() {
    const Entry top = stack.back();
    const DeweyId node(
        std::vector<uint32_t>(path.begin(), path.begin() + stack.size()));
    stack.pop_back();
    path.pop_back();
    if (top.slca_below) {
      if (!stack.empty()) stack.back().slca_below = true;
    } else if (top.flags == full_mask) {
      if (stats != nullptr) ++stats->results;
      emit(node);
      if (!stack.empty()) stack.back().slca_below = true;
    } else if (!stack.empty()) {
      stack.back().flags |= top.flags;
    }
  };

  DeweyCmpCharge charge(stats);
  for (;;) {
    // Select the smallest head (k is tiny, linear selection beats a heap).
    size_t min_idx = k;
    for (size_t i = 0; i < k; ++i) {
      if (!head_valid[i]) continue;
      if (min_idx == k ||
          heads[i].Compare(heads[min_idx], charge.slot()) < 0) {
        min_idx = i;
      }
    }
    if (min_idx == k) break;
    const DeweyId& id = heads[min_idx];

    // Pop everything that is not an ancestor-or-self of the new node.
    size_t shared = 0;
    const size_t limit = std::min(path.size(), id.depth());
    while (shared < limit && path[shared] == id.component(shared)) ++shared;
    if (stats != nullptr) ++stats->lca_ops;
    while (stack.size() > shared) pop_one();

    // Push the new node's remaining components and mark its keyword.
    for (size_t j = shared; j < id.depth(); ++j) {
      stack.emplace_back();
      path.push_back(id.component(j));
    }
    stack.back().flags |= uint64_t{1} << min_idx;

    head_valid[min_idx] = iters[min_idx]->Next(&heads[min_idx]);
    XKS_RETURN_NOT_OK(iters[min_idx]->status());
  }
  while (!stack.empty()) pop_one();
  return Status::OK();
}

std::string ToString(SlcaAlgorithm algorithm) {
  switch (algorithm) {
    case SlcaAlgorithm::kIndexedLookupEager:
      return "IndexedLookupEager";
    case SlcaAlgorithm::kScanEager:
      return "ScanEager";
    case SlcaAlgorithm::kStack:
      return "Stack";
  }
  return "Unknown";
}

Status ComputeSlca(SlcaAlgorithm algorithm,
                   const std::vector<KeywordList*>& lists,
                   const SlcaOptions& options, QueryStats* stats,
                   const ResultCallback& emit) {
  switch (algorithm) {
    case SlcaAlgorithm::kIndexedLookupEager:
      return IndexedLookupEagerSlca(lists, options, stats, emit);
    case SlcaAlgorithm::kScanEager:
      return ScanEagerSlca(lists, options, stats, emit);
    case SlcaAlgorithm::kStack:
      return StackSlca(lists, options, stats, emit);
  }
  return Status::InvalidArgument("unknown SLCA algorithm");
}

Result<std::vector<DeweyId>> ComputeSlcaList(
    SlcaAlgorithm algorithm, const std::vector<KeywordList*>& lists,
    const SlcaOptions& options, QueryStats* stats) {
  std::vector<DeweyId> out;
  XKS_RETURN_NOT_OK(ComputeSlca(algorithm, lists, options, stats,
                                [&](const DeweyId& id) { out.push_back(id); }));
  return out;
}

}  // namespace xksearch
