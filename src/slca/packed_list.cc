#include "slca/packed_list.h"

#include <algorithm>
#include <utility>

namespace xksearch {

namespace {

constexpr uint64_t kNoLimit = ~uint64_t{0};

class PackedIterator : public KeywordListIterator {
 public:
  PackedIterator(PackedDeweyList::Decoder decoder, QueryStats* stats,
                 uint64_t limit = kNoLimit)
      : decoder_(std::move(decoder)), stats_(stats), remaining_(limit) {}

  /// Hands the iterator one already-decoded entry to return first (the
  /// seek in NewIteratorAt necessarily decodes the lower bound before
  /// knowing it reached it).
  void PushBack(DeweyId id) {
    pushed_ = std::move(id);
    has_pushed_ = true;
  }

  bool Next(DeweyId* out) override {
    if (remaining_ == 0) return false;
    if (has_pushed_) {
      has_pushed_ = false;
      *out = std::move(pushed_);
    } else if (!decoder_.Next(out)) {
      return false;
    }
    --remaining_;
    if (stats_ != nullptr) ++stats_->postings_read;
    return true;
  }

  bool DecodeBlockInto(DecodedBlock* out) override {
    if (remaining_ == 0) {
      out->Clear();
      return true;
    }
    if (has_pushed_) {
      out->Clear();
      has_pushed_ = false;
      out->Append(pushed_.view());
      --remaining_;
      return true;
    }
    const size_t n = decoder_.DecodeRunInto(
        out, remaining_ == kNoLimit ? ~size_t{0}
                                    : static_cast<size_t>(remaining_));
    remaining_ -= remaining_ == kNoLimit ? 0 : n;
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  PackedDeweyList::Decoder decoder_;
  QueryStats* stats_;
  uint64_t remaining_;
  DeweyId pushed_;
  bool has_pushed_ = false;
  Status status_;
};

}  // namespace

Result<bool> PackedKeywordList::LeftMatch(const DeweyId& v, DeweyId* out) {
  DeweyCmpCharge charge(stats_);
  const PackedDeweyList::SeekResult r =
      list_->Seek(v.view(), hinted_, &probe_, charge.slot());
  if (r.exact) {
    out->AssignFrom(list_->lower_bound(probe_));
    return true;
  }
  if (r.has_predecessor) {
    out->AssignFrom(list_->predecessor(probe_));
    return true;
  }
  return false;
}

Result<bool> PackedKeywordList::RightMatch(const DeweyId& v, DeweyId* out) {
  DeweyCmpCharge charge(stats_);
  const PackedDeweyList::SeekResult r =
      list_->Seek(v.view(), hinted_, &probe_, charge.slot());
  if (!r.has_lower_bound) return false;
  out->AssignFrom(list_->lower_bound(probe_));
  return true;
}

Result<std::unique_ptr<KeywordListIterator>> PackedKeywordList::NewIterator() {
  return std::unique_ptr<KeywordListIterator>(
      new PackedIterator(PackedDeweyList::Decoder(list_), stats_));
}

Result<std::vector<ListChunk>> PackedKeywordList::PlanChunks(
    size_t max_chunks, uint64_t min_elements) {
  std::vector<ListChunk> chunks;
  const size_t block_size = list_->block_size();
  const uint64_t min_blocks =
      (min_elements + block_size - 1) / block_size;
  for (const auto& [begin, count] :
       PartitionUnits(list_->block_count(), max_chunks, min_blocks)) {
    ListChunk chunk;
    chunk.first.AssignFrom(list_->block_first(static_cast<size_t>(begin)));
    chunk.begin = begin;
    chunk.count = count;
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

Result<std::unique_ptr<KeywordListIterator>> PackedKeywordList::NewChunkIterator(
    const ListChunk& chunk) {
  // chunk.begin/count are block indices; the element extent of blocks
  // [begin, begin + count) is exact from the fixed block geometry.
  const uint64_t first_entry = chunk.begin * list_->block_size();
  const uint64_t end_entry = std::min<uint64_t>(
      list_->size(), (chunk.begin + chunk.count) * list_->block_size());
  return std::unique_ptr<KeywordListIterator>(new PackedIterator(
      PackedDeweyList::Decoder(list_, static_cast<size_t>(chunk.begin)),
      stats_, end_entry - first_entry));
}

Result<std::unique_ptr<KeywordListIterator>> PackedKeywordList::NewIteratorAt(
    const DeweyId& start, DeweyId* prev, bool* prev_valid) {
  *prev_valid = false;
  const size_t blocks = list_->block_count();
  DeweyCmpCharge charge(stats_);
  // Last block whose first entry is <= start (binary search on the skip
  // table, no decoding).
  size_t lo = 0, hi = blocks;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (list_->block_first(mid).Compare(start.view(), charge.slot()) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    // Every entry is >= start; scan from the head, no predecessor.
    return std::unique_ptr<KeywordListIterator>(
        new PackedIterator(PackedDeweyList::Decoder(list_), stats_));
  }
  const size_t b = lo - 1;
  // Decode block b forward to the first entry >= start, tracking the
  // predecessor. If the whole block is < start, the lower bound is the
  // next block's first entry (or the end of the list) and the block's
  // last entry is the predecessor. An exact hit on a block first leaves
  // the predecessor unreported, which is harmless for the scan-chunk
  // seeding: the exact hit itself pins any regressed ancestor target.
  PackedDeweyList::Decoder decoder(list_, b);
  const size_t entries =
      std::min(list_->size() - b * list_->block_size(), list_->block_size());
  DeweyId id;
  for (size_t i = 0; i < entries; ++i) {
    if (!decoder.Next(&id)) break;
    if (id.Compare(start, charge.slot()) >= 0) {
      auto iter = std::make_unique<PackedIterator>(std::move(decoder), stats_);
      iter->PushBack(std::move(id));
      return std::unique_ptr<KeywordListIterator>(std::move(iter));
    }
    *prev = id;
    *prev_valid = true;
  }
  return std::unique_ptr<KeywordListIterator>(
      new PackedIterator(PackedDeweyList::Decoder(list_, b + 1), stats_));
}

Result<std::unique_ptr<KeywordList>> PackedKeywordList::CloneWithStats(
    QueryStats* stats) {
  return std::unique_ptr<KeywordList>(
      new PackedKeywordList(list_, stats, hinted_));
}

}  // namespace xksearch
