#include "slca/packed_list.h"

namespace xksearch {

namespace {

class PackedIterator : public KeywordListIterator {
 public:
  PackedIterator(const PackedDeweyList* list, QueryStats* stats)
      : decoder_(list), stats_(stats) {}

  bool Next(DeweyId* out) override {
    if (!decoder_.Next(out)) return false;
    if (stats_ != nullptr) ++stats_->postings_read;
    return true;
  }

  const Status& status() const override { return status_; }

 private:
  PackedDeweyList::Decoder decoder_;
  QueryStats* stats_;
  Status status_;
};

}  // namespace

Result<bool> PackedKeywordList::LeftMatch(const DeweyId& v, DeweyId* out) {
  DeweyCmpCharge charge(stats_);
  const PackedDeweyList::SeekResult r =
      list_->Seek(v.view(), hinted_, &probe_, charge.slot());
  if (r.exact) {
    out->AssignFrom(list_->lower_bound(probe_));
    return true;
  }
  if (r.has_predecessor) {
    out->AssignFrom(list_->predecessor(probe_));
    return true;
  }
  return false;
}

Result<bool> PackedKeywordList::RightMatch(const DeweyId& v, DeweyId* out) {
  DeweyCmpCharge charge(stats_);
  const PackedDeweyList::SeekResult r =
      list_->Seek(v.view(), hinted_, &probe_, charge.slot());
  if (!r.has_lower_bound) return false;
  out->AssignFrom(list_->lower_bound(probe_));
  return true;
}

Result<std::unique_ptr<KeywordListIterator>> PackedKeywordList::NewIterator() {
  return std::unique_ptr<KeywordListIterator>(
      new PackedIterator(list_, stats_));
}

}  // namespace xksearch
