#include "slca/parallel.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace xksearch {

namespace internal {

void Stitcher::Add(const ChunkOutput& chunk) {
  for (const DeweyId& c : chunk.confirmed) {
    if (has_pending_) {
      DeweyCmpCharge charge(stats_);
      // Lemma 1 across the seam: the cross-chunk running candidate is the
      // true running maximum at this point of the S1 order; a locally
      // confirmed candidate that does not exceed it was confirmed against
      // an underestimate and is really an out-of-order ancestor — drop it.
      if (c.Compare(pending_, charge.slot()) <= 0) continue;
      // Lemma 2: c is the pending candidate's first larger successor.
      if (!pending_.IsAncestorOf(c)) Deliver(pending_);
      has_pending_ = false;
    }
    // c survived its in-chunk witness and (if present) the cross-chunk
    // candidate, so it is a definite SLCA.
    Deliver(c);
  }
  if (!chunk.has_pending) return;
  if (has_pending_) {
    DeweyCmpCharge charge(stats_);
    if (chunk.pending.Compare(pending_, charge.slot()) <= 0) return;
    if (!pending_.IsAncestorOf(chunk.pending)) Deliver(pending_);
  }
  pending_ = chunk.pending;
  has_pending_ = true;
}

void Stitcher::Finish() {
  // The final candidate standing is always an SLCA (same as the
  // sequential emitter's Finish).
  if (has_pending_) Deliver(pending_);
  has_pending_ = false;
  FlushBlock();
}

void Stitcher::Deliver(const DeweyId& id) {
  if (stats_ != nullptr) ++stats_->results;
  buffered_.push_back(id);
  if (buffered_.size() >= block_size_) FlushBlock();
}

void Stitcher::FlushBlock() {
  for (const DeweyId& id : buffered_) emit_(id);
  buffered_.clear();
}

}  // namespace internal

namespace {

using internal::ChunkOutput;

/// The chunk-local half of the eager emitter: applies Lemma 1/2 against
/// the chunk's own running candidate, but publishes survivors into the
/// ChunkOutput instead of emitting — confirmation is only tentative until
/// the stitch pass has seen the preceding chunks' candidates, and
/// stats->results is charged at true emission time only.
class ChunkCollector {
 public:
  ChunkCollector(QueryStats* stats, ChunkOutput* out)
      : stats_(stats), out_(out) {}

  void Offer(const DeweyId& x) {
    if (!have_candidate_) {
      candidate_ = x;
      have_candidate_ = true;
      return;
    }
    DeweyCmpCharge charge(stats_);
    const int order = x.Compare(candidate_, charge.slot());
    if (order > 0) {
      if (!candidate_.IsAncestorOf(x)) out_->confirmed.push_back(candidate_);
      candidate_ = x;
    }
    // order <= 0: Lemma 1 — drop, the chunk candidate only grows.
  }

  void Finish() {
    if (!have_candidate_) return;
    out_->pending = candidate_;
    out_->has_pending = true;
  }

 private:
  QueryStats* stats_;
  ChunkOutput* out_;
  DeweyId candidate_;
  bool have_candidate_ = false;
};

/// Scan Eager's forward cursor, seeded mid-list for a chunk: the cursor
/// starts at the lower bound of the chunk's first S1 element with `prev`
/// the list element just before it. That pair is exactly the state a
/// sequential cursor can reach, because every probe target is an
/// ancestor-or-self of its S1 node: any list element e with
/// target <= e < s1_first lies inside the target's subtree (Dewey
/// intervals nest), so skipping it past `prev` only ever skips elements
/// the pinned check `x.IsAncestorOrSelf(prev)` already accounts for.
class SeededScanMatcher {
 public:
  explicit SeededScanMatcher(QueryStats* stats) : stats_(stats) {}

  Status Init(KeywordList* list, const DeweyId& seed) {
    XKS_ASSIGN_OR_RETURN(iter_,
                         list->NewIteratorAt(seed, &prev_, &prev_valid_));
    cursor_.emplace(iter_.get(), stats_);
    DeweyView v;
    cur_valid_ = cursor_->NextView(&v);
    if (cur_valid_) cur_.AssignFrom(v);
    return iter_->status();
  }

  /// Identical to the sequential ScanMatcher::Step, including its
  /// match-operation charge, so match_ops parity holds per S1 element.
  Result<DeweyId> Step(const DeweyId& x) {
    if (stats_ != nullptr) stats_->match_ops += 2;  // one lm + one rm
    DeweyCmpCharge charge(stats_);
    while (cur_valid_ && cur_.Compare(x, charge.slot()) < 0) {
      std::swap(prev_, cur_);
      prev_valid_ = true;
      DeweyView v;
      cur_valid_ = cursor_->NextView(&v);
      if (cur_valid_) cur_.AssignFrom(v);
      XKS_RETURN_NOT_OK(iter_->status());
    }
    if (prev_valid_ && x.IsAncestorOrSelf(prev_)) {
      return x;
    }
    DeweyId left;
    DeweyId right;
    if (prev_valid_) {
      left = x.Lca(prev_);
      if (stats_ != nullptr) ++stats_->lca_ops;
    }
    if (cur_valid_) {
      right = x.Lca(cur_);
      if (stats_ != nullptr) ++stats_->lca_ops;
    }
    return Deeper(left, right);
  }

 private:
  std::unique_ptr<KeywordListIterator> iter_;
  std::optional<BlockedListCursor> cursor_;
  QueryStats* stats_;
  DeweyId prev_;
  DeweyId cur_;
  bool prev_valid_ = false;
  bool cur_valid_ = false;
};

/// Runs the eager chain over one S1 chunk. Every keyword list is rebound
/// through CloneWithStats so probe-hint state and stats charging are
/// chunk-private; the underlying arenas / disk cursors are shared and
/// read concurrently.
Status RunChunkImpl(SlcaAlgorithm algorithm,
                    const std::vector<KeywordList*>& lists,
                    const ListChunk& chunk, ChunkOutput* out) {
  QueryStats* stats = &out->stats;
  XKS_ASSIGN_OR_RETURN(std::unique_ptr<KeywordList> s1,
                       lists[0]->CloneWithStats(stats));
  XKS_ASSIGN_OR_RETURN(std::unique_ptr<KeywordListIterator> iter,
                       s1->NewChunkIterator(chunk));
  std::vector<std::unique_ptr<KeywordList>> others;
  others.reserve(lists.size() - 1);
  for (size_t i = 1; i < lists.size(); ++i) {
    XKS_ASSIGN_OR_RETURN(std::unique_ptr<KeywordList> clone,
                         lists[i]->CloneWithStats(stats));
    others.push_back(std::move(clone));
  }

  ChunkCollector collector(stats, out);
  BlockedListCursor s1_cursor(iter.get(), stats);
  DeweyView v;
  DeweyId x;
  if (algorithm == SlcaAlgorithm::kScanEager) {
    std::vector<SeededScanMatcher> matchers;
    matchers.reserve(others.size());
    for (const auto& list : others) {
      matchers.emplace_back(stats);
      XKS_RETURN_NOT_OK(matchers.back().Init(list.get(), chunk.first));
    }
    while (s1_cursor.NextView(&v)) {
      x.AssignFrom(v);
      for (SeededScanMatcher& matcher : matchers) {
        XKS_ASSIGN_OR_RETURN(x, matcher.Step(x));
      }
      collector.Offer(x);
    }
  } else {
    while (s1_cursor.NextView(&v)) {
      x.AssignFrom(v);
      for (const auto& list : others) {
        XKS_ASSIGN_OR_RETURN(x, MatchStep(x, list.get(), stats));
      }
      collector.Offer(x);
    }
  }
  XKS_RETURN_NOT_OK(iter->status());
  collector.Finish();
  return Status::OK();
}

}  // namespace

Status ComputeSlcaParallel(SlcaAlgorithm algorithm,
                           const std::vector<KeywordList*>& lists,
                           const SlcaOptions& options,
                           const ParallelExecOptions& exec, QueryStats* stats,
                           const ResultCallback& emit) {
  // The Stack algorithm is a full k-way merge with global stack state —
  // it has no chunk decomposition; argument errors are delegated so the
  // messages come from one place.
  if (exec.pool == nullptr || exec.max_chunks <= 1 ||
      algorithm == SlcaAlgorithm::kStack || lists.empty() ||
      lists.size() > 64) {
    return ComputeSlca(algorithm, lists, options, stats, emit);
  }
  for (KeywordList* list : lists) {
    if (list->size() == 0) return Status::OK();
  }
  XKS_ASSIGN_OR_RETURN(
      std::vector<ListChunk> chunks,
      lists[0]->PlanChunks(exec.max_chunks, exec.min_chunk_elements));
  if (chunks.size() <= 1) {
    return ComputeSlca(algorithm, lists, options, stats, emit);
  }

  const size_t n = chunks.size();
  std::vector<ChunkOutput> outputs(n);
  std::vector<uint8_t> is_async(n, 0);  // written only before the wait loop
  std::vector<uint8_t> done(n, 0);      // guarded by mu
  std::mutex mu;
  std::condition_variable cv;

  // Chunk 0 always runs on this thread (first results reach the emitter
  // as early as possible); chunks 1..n-1 go to the pool, each holding one
  // budget token while in flight. A chunk that gets no token or is
  // rejected by the pool's admission control simply stays synchronous —
  // the wait loop below runs it inline when its turn comes.
  for (size_t j = 1; j < n; ++j) {
    if (exec.budget != nullptr && !exec.budget->TryAcquire()) continue;
    auto task = [&, j]() {
      outputs[j].status = RunChunkImpl(algorithm, lists, chunks[j], &outputs[j]);
      if (exec.budget != nullptr) exec.budget->Release();
      // Notify while holding the lock: the coordinator owns the latch
      // storage and may destroy it the moment it observes done.
      std::lock_guard<std::mutex> lock(mu);
      done[j] = 1;
      cv.notify_all();
    };
    if (exec.pool->Submit(std::move(task)).ok()) {
      is_async[j] = 1;
    } else if (exec.budget != nullptr) {
      exec.budget->Release();
    }
  }

  // Consume chunks strictly in S1 order, stitching and emitting each as
  // soon as it (and all its predecessors) completed. Even after an error
  // every async chunk is awaited — their tasks reference this frame.
  internal::Stitcher stitcher(options.block_size, stats, emit);
  Status failure;
  for (size_t j = 0; j < n; ++j) {
    if (is_async[j]) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done[j] != 0; });
    } else {
      outputs[j].status =
          RunChunkImpl(algorithm, lists, chunks[j], &outputs[j]);
    }
    *stats += outputs[j].stats;
    if (!outputs[j].status.ok()) {
      if (failure.ok()) failure = outputs[j].status;
    } else if (failure.ok()) {
      stitcher.Add(outputs[j]);
    }
  }
  XKS_RETURN_NOT_OK(failure);
  stitcher.Finish();
  return Status::OK();
}

}  // namespace xksearch
