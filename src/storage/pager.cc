#include "storage/pager.h"

#include <cerrno>
#include <cstring>

namespace xksearch {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) return Errno("cannot create", path);
  return std::unique_ptr<FilePageStore>(new FilePageStore(path, f, 0));
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return Errno("cannot open", path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Errno("cannot seek", path);
  }
  const long size = std::ftell(f);
  if (size < 0 || size % static_cast<long>(kPageSize) != 0) {
    std::fclose(f);
    return Status::Corruption("file size not a multiple of page size: " + path);
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(
      path, f, static_cast<PageId>(size / static_cast<long>(kPageSize))));
}

FilePageStore::~FilePageStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FilePageStore::ReadPage(PageId id, Page* out) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("seek failed in", path_);
  }
  if (std::fread(out->data.data(), 1, kPageSize, file_) != kPageSize) {
    return Errno("short read in", path_);
  }
  return Status::OK();
}

Status FilePageStore::WritePage(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  if (std::fseek(file_, static_cast<long>(id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Errno("seek failed in", path_);
  }
  if (std::fwrite(page.data.data(), 1, kPageSize, file_) != kPageSize) {
    return Errno("short write in", path_);
  }
  return Status::OK();
}

Result<PageId> FilePageStore::AllocatePage() {
  static const Page kZeroPage = [] {
    Page p;
    p.Zero();
    return p;
  }();
  const PageId id = page_count_;
  ++page_count_;
  Status st = WritePage(id, kZeroPage);
  if (!st.ok()) {
    --page_count_;
    return st;
  }
  return id;
}

Status FilePageStore::Sync() {
  if (std::fflush(file_) != 0) return Errno("flush failed in", path_);
  return Status::OK();
}

Status MemPageStore::ReadPage(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  *out = *pages_[id];
  return Status::OK();
}

Status MemPageStore::WritePage(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  *pages_[id] = page;
  return Status::OK();
}

Result<PageId> MemPageStore::AllocatePage() {
  pages_.push_back(std::make_unique<Page>());
  pages_.back()->Zero();
  return static_cast<PageId>(pages_.size() - 1);
}

}  // namespace xksearch
