#include "storage/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>

#include <cerrno>
#include <cstring>

namespace xksearch {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

constexpr off_t PageOffset(PageId id) {
  return static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
}

}  // namespace

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", path);
  return std::unique_ptr<FilePageStore>(new FilePageStore(path, fd, 0));
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("cannot stat", path);
  }
  if (st.st_size < 0 || st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("file size not a multiple of page size: " + path);
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(
      path, fd,
      static_cast<PageId>(st.st_size / static_cast<off_t>(kPageSize))));
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePageStore::ReadPage(PageId id, Page* out) {
  if (id >= page_count()) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pread(fd_, out->data.data() + done, kPageSize - done,
                              PageOffset(id) + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read failed in", path_);
    }
    if (n == 0) return Errno("short read in", path_);
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FilePageStore::WritePage(PageId id, const Page& page) {
  if (id >= page_count()) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n = ::pwrite(fd_, page.data.data() + done, kPageSize - done,
                               PageOffset(id) + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed in", path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<PageId> FilePageStore::AllocatePage() {
  static const Page kZeroPage = [] {
    Page p;
    p.Zero();
    return p;
  }();
  const PageId id = page_count_.fetch_add(1, std::memory_order_acq_rel);
  size_t done = 0;
  while (done < kPageSize) {
    const ssize_t n =
        ::pwrite(fd_, kZeroPage.data.data() + done, kPageSize - done,
                 PageOffset(id) + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      page_count_.fetch_sub(1, std::memory_order_acq_rel);
      return Errno("write failed in", path_);
    }
    done += static_cast<size_t>(n);
  }
  return id;
}

Status FilePageStore::ReadPages(const PageId* ids, size_t count,
                                Page* const* pages) {
  // Runs are capped well under IOV_MAX; 64 pages is 256 KiB per syscall,
  // past the point where a longer vector buys anything.
  constexpr size_t kMaxRun = 64;
  const PageId limit = page_count();
  size_t i = 0;
  while (i < count) {
    if (ids[i] >= limit) {
      return Status::OutOfRange("page " + std::to_string(ids[i]) +
                                " out of range");
    }
    size_t run = 1;
    while (i + run < count && run < kMaxRun &&
           ids[i + run] == ids[i] + static_cast<PageId>(run)) {
      ++run;
    }
    if (ids[i + run - 1] >= limit) {
      return Status::OutOfRange("page " + std::to_string(ids[i + run - 1]) +
                                " out of range");
    }
    if (run == 1) {
      XKS_RETURN_NOT_OK(ReadPage(ids[i], pages[i]));
      ++i;
      continue;
    }
    // One preadv per contiguous run, with the iovec array rebuilt from
    // the current byte offset after a partial read.
    const size_t total = run * kPageSize;
    const off_t base = PageOffset(ids[i]);
    size_t done = 0;
    while (done < total) {
      struct iovec iov[kMaxRun];
      size_t iovcnt = 0;
      size_t skip = done;
      for (size_t k = 0; k < run; ++k) {
        if (skip >= kPageSize) {
          skip -= kPageSize;
          continue;
        }
        iov[iovcnt].iov_base = pages[i + k]->data.data() + skip;
        iov[iovcnt].iov_len = kPageSize - skip;
        skip = 0;
        ++iovcnt;
      }
      const ssize_t n = ::preadv(fd_, iov, static_cast<int>(iovcnt),
                                 base + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("vectored read failed in", path_);
      }
      if (n == 0) return Errno("short read in", path_);
      done += static_cast<size_t>(n);
    }
    i += run;
  }
  return Status::OK();
}

Status FilePageStore::Sync() {
  if (::fsync(fd_) != 0) return Errno("sync failed in", path_);
  return Status::OK();
}

Status FilePageStore::Truncate(PageId page_count) {
  if (::ftruncate(fd_, PageOffset(page_count)) != 0) {
    return Errno("truncate failed in", path_);
  }
  page_count_.store(page_count, std::memory_order_release);
  return Status::OK();
}

void FilePageStore::Prefetch(PageId first, size_t count) {
  const PageId n = page_count();
  if (first >= n || count == 0) return;
  if (count > static_cast<size_t>(n - first)) {
    count = static_cast<size_t>(n - first);
  }
  (void)::posix_fadvise(fd_, PageOffset(first),
                        static_cast<off_t>(count * kPageSize),
                        POSIX_FADV_WILLNEED);
}

Status MemPageStore::ReadPage(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  *out = *pages_[id];
  return Status::OK();
}

Status MemPageStore::WritePage(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  *pages_[id] = page;
  return Status::OK();
}

Result<PageId> MemPageStore::AllocatePage() {
  pages_.push_back(std::make_unique<Page>());
  pages_.back()->Zero();
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPageStore::Truncate(PageId page_count) {
  while (pages_.size() > page_count) pages_.pop_back();
  while (pages_.size() < page_count) {
    pages_.push_back(std::make_unique<Page>());
    pages_.back()->Zero();
  }
  return Status::OK();
}

}  // namespace xksearch
