#include "storage/fault_injection.h"

#include <algorithm>
#include <thread>

namespace xksearch {

FaultInjectingPageStore::FaultInjectingPageStore(PageStore* inner,
                                                 uint64_t rng_seed)
    : inner_(inner), rng_(rng_seed) {}

FaultInjectingPageStore::FaultInjectingPageStore(
    std::unique_ptr<PageStore> inner, uint64_t rng_seed)
    : inner_(inner.get()), owned_inner_(std::move(inner)), rng_(rng_seed) {}

void FaultInjectingPageStore::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(ActiveRule{std::move(rule), 0, 0});
}

void FaultInjectingPageStore::FailNthRead(uint64_t n, StatusCode code) {
  FaultRule rule;
  rule.op = FaultRule::Op::kRead;
  rule.skip = n == 0 ? 0 : n - 1;
  rule.code = code;
  rule.message = "injected fault on read " + std::to_string(n);
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::FailNthWrite(uint64_t n, StatusCode code) {
  FaultRule rule;
  rule.op = FaultRule::Op::kWrite;
  rule.skip = n == 0 ? 0 : n - 1;
  rule.code = code;
  rule.message = "injected fault on write " + std::to_string(n);
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::FailNthSync(uint64_t n, StatusCode code) {
  FaultRule rule;
  rule.op = FaultRule::Op::kSync;
  rule.skip = n == 0 ? 0 : n - 1;
  rule.code = code;
  rule.message = "injected fault on sync " + std::to_string(n);
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::FailPageReads(PageId page, uint64_t times) {
  FaultRule rule;
  rule.op = FaultRule::Op::kRead;
  rule.page = page;
  rule.fire_limit = times;
  rule.message = "injected fault reading page " + std::to_string(page);
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::FailReadsWithProbability(double p,
                                                       uint64_t times) {
  FaultRule rule;
  rule.op = FaultRule::Op::kRead;
  rule.probability = p;
  rule.fire_limit = times;
  rule.message = "injected probabilistic read fault";
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::TornWriteOnPage(PageId page) {
  FaultRule rule;
  rule.kind = FaultRule::Kind::kTornWrite;
  rule.op = FaultRule::Op::kWrite;
  rule.page = page;
  rule.message = "injected torn write on page " + std::to_string(page);
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::AddReadLatency(
    std::chrono::microseconds latency) {
  FaultRule rule;
  rule.kind = FaultRule::Kind::kLatency;
  rule.op = FaultRule::Op::kRead;
  rule.fire_limit = FaultRule::kForever;
  rule.latency = latency;
  AddRule(std::move(rule));
}

void FaultInjectingPageStore::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

Status FaultInjectingPageStore::Consult(FaultRule::Op op, PageId id,
                                        bool* torn) {
  if (!armed()) return Status::OK();
  std::chrono::microseconds sleep{0};
  Status injected;  // OK unless an error rule fires
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ActiveRule& active : rules_) {
      const FaultRule& rule = active.rule;
      if (rule.op != FaultRule::Op::kAny && rule.op != op) continue;
      if (rule.page.has_value() && *rule.page != id) continue;
      const uint64_t match = active.matched++;
      if (match < rule.skip) continue;
      if (active.fired >= rule.fire_limit) continue;
      if (rule.probability < 1.0 && !rng_.Bernoulli(rule.probability)) {
        continue;
      }
      ++active.fired;
      if (rule.kind == FaultRule::Kind::kLatency) {
        // Latency stacks with other rules; keep scanning for errors.
        sleep += rule.latency;
        continue;
      }
      if (rule.kind == FaultRule::Kind::kTornWrite) *torn = true;
      injected = Status(rule.code, rule.message);
      break;
    }
  }
  // Sleep outside the schedule lock so latency injection delays only this
  // operation, not every concurrent one.
  if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
  if (!injected.ok()) injected_errors_.fetch_add(1, std::memory_order_relaxed);
  return injected;
}

Status FaultInjectingPageStore::CrashGate(bool is_sync) {
  if (dead_.load(std::memory_order_acquire)) {
    return Status::IoError("simulated crash: store is down");
  }
  std::shared_ptr<CrashSchedule> schedule;
  {
    std::lock_guard<std::mutex> lock(mu_);
    schedule = crash_;
  }
  if (schedule == nullptr) return Status::OK();
  if (schedule->TickOp(is_sync)) {
    // The fatal operation: kill the whole simulated process, this store
    // included, before the operation reaches any inner file.
    schedule->CrashAll();
    return Status::IoError("simulated crash at durable operation " +
                           std::to_string(schedule->operations()));
  }
  return Status::OK();
}

void FaultInjectingPageStore::RecordUndo(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!track_unsynced_ || id >= synced_count_) return;
  if (undo_.count(id) != 0) return;
  auto image = std::make_unique<Page>();
  if (!inner_->ReadPage(id, image.get()).ok()) return;
  undo_.emplace(id, std::move(image));
}

void FaultInjectingPageStore::SetCrashSchedule(
    std::shared_ptr<CrashSchedule> schedule) {
  schedule->Attach(this);
  std::lock_guard<std::mutex> lock(mu_);
  crash_ = std::move(schedule);
  track_unsynced_ = true;
  synced_count_ = inner_->page_count();
  undo_.clear();
}

void FaultInjectingPageStore::SimulateCrash() {
  dead_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (!track_unsynced_) return;
  // Roll the inner store back to its last-synced state: unsynced growth
  // is cut off, unsynced overwrites revert to their undo images.
  while (inner_->page_count() < synced_count_) {
    if (!inner_->AllocatePage().ok()) break;
  }
  for (const auto& [id, image] : undo_) {
    if (id < synced_count_) (void)inner_->WritePage(id, *image);
  }
  (void)inner_->Truncate(synced_count_);
  undo_.clear();
}

void CrashSchedule::CrashAll() {
  std::vector<FaultInjectingPageStore*> stores;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stores = stores_;
  }
  for (FaultInjectingPageStore* store : stores) store->SimulateCrash();
}

Status FaultInjectingPageStore::ReadPage(PageId id, Page* out) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (dead_.load(std::memory_order_acquire)) {
    return Status::IoError("simulated crash: store is down");
  }
  bool torn = false;
  XKS_RETURN_NOT_OK(Consult(FaultRule::Op::kRead, id, &torn));
  return inner_->ReadPage(id, out);
}

Status FaultInjectingPageStore::WritePage(PageId id, const Page& page) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  XKS_RETURN_NOT_OK(CrashGate(/*is_sync=*/false));
  bool torn = false;
  const Status injected = Consult(FaultRule::Op::kWrite, id, &torn);
  if (injected.ok()) {
    RecordUndo(id);
    return inner_->WritePage(id, page);
  }
  if (torn) {
    // Half the new bytes land, the rest keeps whatever the store held
    // (zeros if the page was never written): a crashed partial write.
    RecordUndo(id);
    Page partial;
    if (!inner_->ReadPage(id, &partial).ok()) partial.Zero();
    std::copy(page.data.begin(), page.data.begin() + kPageSize / 2,
              partial.data.begin());
    (void)inner_->WritePage(id, partial);
  }
  return injected;
}

Result<PageId> FaultInjectingPageStore::AllocatePage() {
  // Allocation extends the file with a zero page: a write.
  writes_.fetch_add(1, std::memory_order_relaxed);
  XKS_RETURN_NOT_OK(CrashGate(/*is_sync=*/false));
  bool torn = false;
  XKS_RETURN_NOT_OK(Consult(FaultRule::Op::kWrite, page_count(), &torn));
  return inner_->AllocatePage();
}

Status FaultInjectingPageStore::Truncate(PageId page_count) {
  // Resizing the file is a durable mutation: same clock, same rules as
  // a write.
  writes_.fetch_add(1, std::memory_order_relaxed);
  XKS_RETURN_NOT_OK(CrashGate(/*is_sync=*/false));
  bool torn = false;
  XKS_RETURN_NOT_OK(Consult(FaultRule::Op::kWrite, page_count, &torn));
  // Shrinking below the synced size destroys durable pages; save them
  // so SimulateCrash can resurrect exactly the synced state.
  const PageId inner_count = inner_->page_count();
  for (PageId id = page_count; id < inner_count; ++id) {
    RecordUndo(id);
  }
  return inner_->Truncate(page_count);
}

Status FaultInjectingPageStore::Sync() {
  syncs_.fetch_add(1, std::memory_order_relaxed);
  XKS_RETURN_NOT_OK(CrashGate(/*is_sync=*/true));
  bool torn = false;
  XKS_RETURN_NOT_OK(Consult(FaultRule::Op::kSync, page_count(), &torn));
  XKS_RETURN_NOT_OK(inner_->Sync());
  // Everything the inner store holds is durable now: new sync epoch.
  std::lock_guard<std::mutex> lock(mu_);
  undo_.clear();
  synced_count_ = inner_->page_count();
  return Status::OK();
}

}  // namespace xksearch
