#ifndef XKSEARCH_STORAGE_NODE_FORMAT_H_
#define XKSEARCH_STORAGE_NODE_FORMAT_H_

// Internal page layout shared by the bulk-loaded reader (bptree.cc) and
// the mutable tree (bptree_mut.cc). Not part of the public API.
//
// Meta page (page 0):
//   [u32 magic][u32 version][u32 root][u32 height][u64 entries]
//   [u32 first_leaf][u32 user_len][user bytes...]
// Node page:
//   [u8 type][u16 count][u32 link_a][u32 link_b][u16 slots x count][heap]
// where a slot points at [varint klen][key][varint vlen][value]; leaf
// nodes use link_a/link_b as next/prev leaf, internal nodes use link_a
// as the leftmost child and store each further child as a 4-byte value.

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace xksearch {
namespace node_format {

inline constexpr uint32_t kMagic = 0x54424B58;  // "XKBT"
inline constexpr uint32_t kVersion = 1;
inline constexpr size_t kMetaMagic = 0;
inline constexpr size_t kMetaVersion = 4;
inline constexpr size_t kMetaRoot = 8;
inline constexpr size_t kMetaHeight = 12;
inline constexpr size_t kMetaEntryCount = 16;
inline constexpr size_t kMetaFirstLeaf = 24;
inline constexpr size_t kMetaUserLen = 28;
inline constexpr size_t kMetaUserData = 32;

inline constexpr uint8_t kNodeInternal = 0;
inline constexpr uint8_t kNodeLeaf = 1;
inline constexpr size_t kNodeType = 0;
inline constexpr size_t kNodeCount = 1;
inline constexpr size_t kNodeLinkA = 3;
inline constexpr size_t kNodeLinkB = 7;
inline constexpr size_t kNodeHeader = 11;
inline constexpr size_t kNodeCapacity = kPageSize - kNodeHeader;

size_t VarintSize(size_t v);
void PutVarintTo(uint8_t* dst, size_t* off, uint32_t v);
bool ReadVarintFrom(const uint8_t* src, size_t limit, size_t* off,
                    uint32_t* v);

/// Serialized size of one entry including its slot.
inline size_t EntrySize(std::string_view key, std::string_view value) {
  return VarintSize(key.size()) + key.size() + VarintSize(value.size()) +
         value.size() + 2;
}

/// Read-side view over a node page (zero-copy).
class NodeView {
 public:
  explicit NodeView(const Page& page) : page_(page) {}

  bool IsLeaf() const { return page_.ReadU8(kNodeType) == kNodeLeaf; }
  size_t count() const { return page_.ReadU16(kNodeCount); }
  PageId link_a() const { return page_.ReadU32(kNodeLinkA); }
  PageId link_b() const { return page_.ReadU32(kNodeLinkB); }

  bool Entry(size_t i, std::string_view* key, std::string_view* value) const;
  std::string_view Key(size_t i) const;

  /// First slot with key >= / > `key`.
  size_t LowerBound(std::string_view key) const;
  size_t UpperBound(std::string_view key) const;

  /// Internal nodes: child page routing.
  PageId ChildFor(std::string_view key) const;
  PageId Child(size_t idx) const;

 private:
  const Page& page_;
};

/// Fully-decoded node for the mutable tree's parse-modify-rewrite cycle.
/// Internal nodes keep the leftmost child in `link_a` and each entry's
/// value is its 4-byte child page id.
struct ParsedNode {
  bool leaf = true;
  PageId link_a = kInvalidPage;
  PageId link_b = kInvalidPage;
  std::vector<std::pair<std::string, std::string>> entries;

  static Result<ParsedNode> ReadFrom(const Page& page);
  void WriteTo(Page* page) const;

  /// Bytes this node needs when serialized (header + slots + heap).
  size_t SerializedSize() const;

  PageId ChildAt(size_t idx) const {
    if (idx == 0) return link_a;
    assert(entries[idx - 1].second.size() == 4);
    PageId child;
    std::memcpy(&child, entries[idx - 1].second.data(), 4);
    return child;
  }

  static std::string EncodeChild(PageId child) {
    return std::string(reinterpret_cast<const char*>(&child), 4);
  }
};

}  // namespace node_format
}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_NODE_FORMAT_H_
