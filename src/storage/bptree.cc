#include "storage/bptree.h"

#include <cassert>
#include <cstring>

#include "storage/node_format.h"

namespace xksearch {

namespace {

using node_format::kMagic;
using node_format::kVersion;
using node_format::kMetaMagic;
using node_format::kMetaVersion;
using node_format::kMetaRoot;
using node_format::kMetaHeight;
using node_format::kMetaEntryCount;
using node_format::kMetaFirstLeaf;
using node_format::kMetaUserLen;
using node_format::kMetaUserData;
using node_format::kNodeInternal;
using node_format::kNodeLeaf;
using node_format::kNodeType;
using node_format::kNodeCount;
using node_format::kNodeLinkA;
using node_format::kNodeLinkB;
using node_format::kNodeHeader;
using node_format::kNodeCapacity;
using node_format::NodeView;
using node_format::PutVarintTo;
using node_format::VarintSize;

}  // namespace

int CompareBytes(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

BPlusTreeBuilder::BPlusTreeBuilder(PageStore* store) : store_(store) {
  assert(store_->page_count() == 0 && "builder requires an empty store");
  // Reserve page 0 for the meta page.
  auto meta = store_->AllocatePage();
  assert(meta.ok() && meta.ValueOrDie() == 0);
  (void)meta;
}

size_t BPlusTreeBuilder::EntrySize(const PendingEntry& e) {
  return VarintSize(e.key.size()) + e.key.size() +
         VarintSize(e.value.size()) + e.value.size() + 2 /* slot */;
}

Status BPlusTreeBuilder::Add(std::string_view key, std::string_view value) {
  assert(!finished_);
  if (entry_count_ > 0 && CompareBytes(key, last_key_) <= 0) {
    return Status::InvalidArgument(
        "B+tree bulk load requires strictly increasing keys");
  }
  last_key_.assign(key);
  ++entry_count_;
  return AddToLevel(0, PendingEntry{std::string(key), std::string(value)});
}

Status BPlusTreeBuilder::AddToLevel(size_t level, PendingEntry entry) {
  if (level >= levels_.size()) levels_.emplace_back();
  const size_t esize = EntrySize(entry);
  if (esize > kNodeCapacity) {
    return Status::InvalidArgument("entry too large for a page: " +
                                   std::to_string(esize) + " bytes");
  }
  LevelState& st = levels_[level];
  if (!st.entries.empty() && st.bytes + esize > kNodeCapacity) {
    XKS_RETURN_NOT_OK(FlushLevel(level, /*finishing=*/false));
  }
  levels_[level].entries.push_back(std::move(entry));
  levels_[level].bytes += esize;
  return Status::OK();
}

Status BPlusTreeBuilder::WriteNode(size_t level, const LevelState& state,
                                   PageId page_id, PageId next_leaf) {
  Page page;
  page.Zero();
  const bool leaf = level == 0;
  page.WriteU8(kNodeType, leaf ? kNodeLeaf : kNodeInternal);

  size_t begin = 0;
  size_t n = state.entries.size();
  if (!leaf) {
    // The first pending entry becomes the leftmost child; its key is the
    // separator the parent holds, so it is not stored here.
    assert(n >= 1 && state.entries[0].value.size() == 4);
    uint32_t child0;
    std::memcpy(&child0, state.entries[0].value.data(), 4);
    page.WriteU32(kNodeLinkA, child0);
    begin = 1;
    n -= 1;
  } else {
    page.WriteU32(kNodeLinkA, next_leaf);
    page.WriteU32(kNodeLinkB, state.prev_page);
  }
  page.WriteU16(kNodeCount, static_cast<uint16_t>(n));

  size_t heap = kNodeHeader + 2 * n;
  for (size_t i = 0; i < n; ++i) {
    const PendingEntry& e = state.entries[begin + i];
    page.WriteU16(kNodeHeader + 2 * i, static_cast<uint16_t>(heap));
    PutVarintTo(page.data.data(), &heap, static_cast<uint32_t>(e.key.size()));
    std::memcpy(page.bytes(heap), e.key.data(), e.key.size());
    heap += e.key.size();
    PutVarintTo(page.data.data(), &heap, static_cast<uint32_t>(e.value.size()));
    std::memcpy(page.bytes(heap), e.value.data(), e.value.size());
    heap += e.value.size();
    assert(heap <= kPageSize);
  }
  return store_->WritePage(page_id, page);
}

Status BPlusTreeBuilder::FlushLevel(size_t level, bool finishing) {
  LevelState& st = levels_[level];
  if (st.entries.empty()) return Status::OK();

  XKS_ASSIGN_OR_RETURN(PageId page_id, store_->AllocatePage());
  XKS_RETURN_NOT_OK(WriteNode(level, st, page_id, kInvalidPage));

  if (level == 0) {
    if (first_leaf_ == kInvalidPage) first_leaf_ = page_id;
    if (st.prev_page != kInvalidPage) {
      // Patch the previous leaf's next pointer now that we know our id.
      Page prev;
      XKS_RETURN_NOT_OK(store_->ReadPage(st.prev_page, &prev));
      prev.WriteU32(kNodeLinkA, page_id);
      XKS_RETURN_NOT_OK(store_->WritePage(st.prev_page, prev));
    }
  }

  PendingEntry up;
  up.key = st.entries[0].key;
  up.value.assign(reinterpret_cast<const char*>(&page_id), 4);

  st.entries.clear();
  st.bytes = 0;
  st.prev_page = page_id;

  if (!finishing) {
    XKS_RETURN_NOT_OK(AddToLevel(level + 1, std::move(up)));
  }
  return Status::OK();
}

Status BPlusTreeBuilder::Finish() {
  assert(!finished_);
  finished_ = true;

  PageId root = kInvalidPage;
  uint32_t height = 0;
  for (size_t level = 0; level < levels_.size(); ++level) {
    LevelState& st = levels_[level];
    const bool is_top = level + 1 == levels_.size();
    if (is_top && st.prev_page == kInvalidPage) {
      // Everything pending at the top level fits in one node: the root.
      XKS_RETURN_NOT_OK(FlushLevel(level, /*finishing=*/true));
      root = st.prev_page;
      height = static_cast<uint32_t>(level + 1);
      break;
    }
    // More than one node at this level: flush the remainder and let the
    // separators it pushed up decide the parent level.
    if (!st.entries.empty()) {
      XKS_RETURN_NOT_OK(FlushLevel(level, /*finishing=*/false));
    }
  }

  Page meta;
  meta.Zero();
  meta.WriteU32(kMetaMagic, kMagic);
  meta.WriteU32(kMetaVersion, kVersion);
  meta.WriteU32(kMetaRoot, root);
  meta.WriteU32(kMetaHeight, height);
  meta.WriteU64(kMetaEntryCount, entry_count_);
  meta.WriteU32(kMetaFirstLeaf, first_leaf_);
  if (kMetaUserData + metadata_.size() > kPageSize) {
    return Status::InvalidArgument("B+tree metadata blob too large");
  }
  meta.WriteU32(kMetaUserLen, static_cast<uint32_t>(metadata_.size()));
  if (!metadata_.empty()) {
    std::memcpy(meta.bytes(kMetaUserData), metadata_.data(),
                metadata_.size());
  }
  XKS_RETURN_NOT_OK(store_->WritePage(0, meta));
  return store_->Sync();
}

Result<BPlusTree> BPlusTree::Open(BufferPool* pool) {
  XKS_ASSIGN_OR_RETURN(PageRef meta_ref, pool->Fetch(0));
  const Page& meta = meta_ref.page();
  if (meta.ReadU32(kMetaMagic) != kMagic) {
    return Status::Corruption("not a B+tree file (bad magic)");
  }
  if (meta.ReadU32(kMetaVersion) != kVersion) {
    return Status::Corruption("unsupported B+tree version");
  }
  const uint32_t user_len = meta.ReadU32(kMetaUserLen);
  if (kMetaUserData + user_len > kPageSize) {
    return Status::Corruption("metadata blob overflows meta page");
  }
  std::vector<uint8_t> metadata(meta.bytes(kMetaUserData),
                                meta.bytes(kMetaUserData) + user_len);
  return BPlusTree(pool, meta.ReadU32(kMetaRoot), meta.ReadU32(kMetaHeight),
                   meta.ReadU64(kMetaEntryCount), meta.ReadU32(kMetaFirstLeaf),
                   std::move(metadata));
}

Result<PageId> BPlusTree::FindLeaf(std::string_view key,
                                   QueryStats* stats) const {
  if (root_ == kInvalidPage) {
    return Status::NotFound("tree is empty");
  }
  PageId cur = root_;
  for (uint32_t level = height_; level > 1; --level) {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(cur, stats));
    NodeView node(ref.page());
    if (node.IsLeaf()) {
      return Status::Corruption("unexpected leaf above leaf level");
    }
    cur = node.ChildFor(key);
  }
  return cur;
}

Result<std::string> BPlusTree::Get(std::string_view key,
                                   QueryStats* stats) const {
  Cursor cursor(this);
  cursor.set_stats(stats);
  XKS_RETURN_NOT_OK(cursor.Seek(key));
  if (!cursor.Valid() || CompareBytes(cursor.key(), key) != 0) {
    return Status::NotFound("key not present");
  }
  return std::string(cursor.value());
}

Status BPlusTree::Cursor::LoadLeaf(PageId leaf) {
  if (leaf == kInvalidPage) {
    Invalidate();
    return Status::OK();
  }
  XKS_ASSIGN_OR_RETURN(PageRef ref, tree_->pool_->Fetch(leaf, stats_));
  leaf_ref_ = std::move(ref);
  leaf_ = leaf;
  slot_count_ = NodeView(leaf_ref_.page()).count();
  return Status::OK();
}

Status BPlusTree::Cursor::PositionAt(size_t slot) {
  NodeView node(leaf_ref_.page());
  if (!node.Entry(slot, &key_, &value_)) {
    Invalidate();
    return Status::Corruption("malformed leaf entry");
  }
  slot_ = slot;
  valid_ = true;
  return Status::OK();
}

Status BPlusTree::Cursor::Seek(std::string_view key) {
  Invalidate();
  if (tree_->root_ == kInvalidPage) return Status::OK();
  XKS_ASSIGN_OR_RETURN(PageId leaf, tree_->FindLeaf(key, stats_));
  XKS_RETURN_NOT_OK(LoadLeaf(leaf));
  NodeView node(leaf_ref_.page());
  size_t slot = node.LowerBound(key);
  if (slot == slot_count_) {
    // All keys in this leaf are smaller; the match starts the next leaf.
    const PageId next = node.link_a();
    XKS_RETURN_NOT_OK(LoadLeaf(next));
    if (leaf_ref_.valid() && slot_count_ > 0) {
      return PositionAt(0);
    }
    Invalidate();
    return Status::OK();
  }
  return PositionAt(slot);
}

Status BPlusTree::Cursor::SeekForPrev(std::string_view key) {
  Invalidate();
  if (tree_->root_ == kInvalidPage) return Status::OK();
  XKS_ASSIGN_OR_RETURN(PageId leaf, tree_->FindLeaf(key, stats_));
  XKS_RETURN_NOT_OK(LoadLeaf(leaf));
  NodeView node(leaf_ref_.page());
  const size_t ub = node.UpperBound(key);
  if (ub == 0) {
    // Every key in this leaf is greater; the match ends the previous leaf.
    const PageId prev = node.link_b();
    XKS_RETURN_NOT_OK(LoadLeaf(prev));
    if (leaf_ref_.valid() && slot_count_ > 0) {
      return PositionAt(slot_count_ - 1);
    }
    Invalidate();
    return Status::OK();
  }
  return PositionAt(ub - 1);
}

Status BPlusTree::Cursor::SeekToFirst() {
  Invalidate();
  XKS_RETURN_NOT_OK(LoadLeaf(tree_->first_leaf_));
  if (leaf_ref_.valid() && slot_count_ > 0) return PositionAt(0);
  Invalidate();
  return Status::OK();
}

Status BPlusTree::Cursor::SeekToLast() {
  Invalidate();
  if (tree_->root_ == kInvalidPage) return Status::OK();
  PageId cur = tree_->root_;
  for (uint32_t level = tree_->height_; level > 1; --level) {
    XKS_ASSIGN_OR_RETURN(PageRef ref, tree_->pool_->Fetch(cur, stats_));
    NodeView node(ref.page());
    cur = node.Child(node.count());
  }
  XKS_RETURN_NOT_OK(LoadLeaf(cur));
  if (leaf_ref_.valid() && slot_count_ > 0) {
    return PositionAt(slot_count_ - 1);
  }
  Invalidate();
  return Status::OK();
}

Status BPlusTree::Cursor::Next() {
  assert(valid_);
  if (slot_ + 1 < slot_count_) return PositionAt(slot_ + 1);
  const PageId next = NodeView(leaf_ref_.page()).link_a();
  if (readahead_ > 0 && next != kInvalidPage) {
    // Forward scan crossing a leaf boundary: speculatively pull in the
    // pages after the one we are about to read. Bulk-loaded leaves are
    // laid out almost contiguously, so next+1..next+K are (mostly) the
    // upcoming leaves of this scan.
    tree_->pool_->Readahead(next + 1, readahead_, stats_);
  }
  XKS_RETURN_NOT_OK(LoadLeaf(next));
  if (leaf_ref_.valid() && slot_count_ > 0) return PositionAt(0);
  Invalidate();
  return Status::OK();
}

Status BPlusTree::Cursor::Prev() {
  assert(valid_);
  if (slot_ > 0) return PositionAt(slot_ - 1);
  const PageId prev = NodeView(leaf_ref_.page()).link_b();
  XKS_RETURN_NOT_OK(LoadLeaf(prev));
  if (leaf_ref_.valid() && slot_count_ > 0) {
    return PositionAt(slot_count_ - 1);
  }
  Invalidate();
  return Status::OK();
}

}  // namespace xksearch
