#ifndef XKSEARCH_STORAGE_FAULT_INJECTION_H_
#define XKSEARCH_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace xksearch {

/// \brief One deterministic fault to inject into a PageStore operation.
///
/// A rule matches an operation by kind (read/write), optionally by PageId,
/// skips its first `skip` matches, then fires on up to `fire_limit`
/// subsequent matches (each gated by `probability`, drawn from the store's
/// deterministic RNG). What "firing" does depends on `kind`:
///
///  * kError      — the operation does not touch the inner store and
///                  returns Status(code, message).
///  * kTornWrite  — (writes only) the first half of the page reaches the
///                  inner store, the second half keeps its old bytes, and
///                  the operation reports an error: the classic torn/short
///                  write a crashed process leaves behind.
///  * kLatency    — the operation sleeps for `latency`, then proceeds
///                  normally (fault-free slow disk; widens race windows in
///                  concurrency tests deterministically).
struct FaultRule {
  enum class Kind { kError, kTornWrite, kLatency };
  /// kWrite also matches page allocations and truncates (they extend or
  /// shrink the file: writes). kSync matches fsync barriers. kAny
  /// matches everything.
  enum class Op { kRead, kWrite, kSync, kAny };

  static constexpr uint64_t kForever = ~uint64_t{0};

  Kind kind = Kind::kError;
  Op op = Op::kAny;
  /// Restrict the rule to one page; nullopt matches every page.
  std::optional<PageId> page;
  /// Matching operations ignored before the rule starts firing ("fail the
  /// Nth read" = skip N-1).
  uint64_t skip = 0;
  /// How many matching operations the rule fires on before it exhausts
  /// itself; kForever never recovers, 1 is a transient-then-recover fault.
  uint64_t fire_limit = 1;
  /// Per-match chance of firing, drawn from the store's seeded RNG.
  double probability = 1.0;
  StatusCode code = StatusCode::kIoError;
  std::string message = "injected fault";
  std::chrono::microseconds latency{0};
};

class FaultInjectingPageStore;

/// \brief Deterministic process-death clock shared by every store of one
/// simulated process.
///
/// Each durable operation — page write, allocation, truncate or fsync —
/// on any attached FaultInjectingPageStore ticks one global clock, so
/// "the Nth write of the batch" means the Nth across il, scan, dict and
/// WAL stores together, in the single-writer order the updater issues
/// them. When the configured point is reached, the triggering operation
/// does not reach its inner store and EVERY attached store simulates a
/// crash at once (unsynced writes rolled back, all later operations
/// failing with IoError) — one process dies, not one file.
///
/// With no crash point configured the schedule just counts: a fault-free
/// "counting run" of a batch yields operations(), the domain the
/// crash-point sweep iterates over. The clock ticks regardless of
/// Arm()/Disarm(), which gate only FaultRules.
class CrashSchedule {
 public:
  /// Crash when the `n`th durable operation (1-based) is attempted.
  void CrashAtOperation(uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    crash_at_op_ = n;
  }
  /// Crash when the `n`th fsync (1-based) is attempted: the batch's
  /// barrier discipline is only provable by dying on barriers too.
  void CrashAtSync(uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    crash_at_sync_ = n;
  }

  /// Durable operations observed so far (including the fatal one).
  uint64_t operations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_;
  }
  /// Fsyncs observed so far.
  uint64_t syncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_;
  }
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }

 private:
  friend class FaultInjectingPageStore;

  void Attach(FaultInjectingPageStore* store) {
    std::lock_guard<std::mutex> lock(mu_);
    stores_.push_back(store);
  }
  /// Advances the clock; true when this operation is the crash point.
  bool TickOp(bool is_sync) {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return false;
    ++ops_;
    if (is_sync) ++syncs_;
    if ((crash_at_op_ != 0 && ops_ == crash_at_op_) ||
        (crash_at_sync_ != 0 && is_sync && syncs_ == crash_at_sync_)) {
      crashed_ = true;
      return true;
    }
    return false;
  }
  /// Kills every attached store (called outside mu_-holding paths of the
  /// stores themselves; their SimulateCrash takes their own locks).
  void CrashAll();

  mutable std::mutex mu_;
  std::vector<FaultInjectingPageStore*> stores_;
  uint64_t ops_ = 0;
  uint64_t syncs_ = 0;
  uint64_t crash_at_op_ = 0;
  uint64_t crash_at_sync_ = 0;
  bool crashed_ = false;
};

/// \brief A PageStore decorator that injects deterministic faults.
///
/// Wraps any PageStore and applies a schedule of FaultRules to its reads
/// and writes, returning real Status errors (never aborting), so the
/// error paths of everything above the store — buffer pool, B+trees,
/// disk index, searcher, serving layer — can be driven from tests.
///
/// The schedule is inert until Arm() (or arm_on_add); a test can build
/// an index through the wrapper fault-free, then arm the schedule for
/// the query phase. All bookkeeping is internal to this class: rules,
/// match counters and the RNG live behind one mutex, so concurrent
/// readers (the sharded buffer pool) observe one deterministic global
/// operation order under tsan.
class FaultInjectingPageStore : public PageStore {
 public:
  /// Non-owning wrap; `inner` must outlive this store.
  explicit FaultInjectingPageStore(PageStore* inner, uint64_t rng_seed = 1);
  /// Owning wrap (the decorator pattern DiskIndexOptions::store_decorator
  /// uses).
  explicit FaultInjectingPageStore(std::unique_ptr<PageStore> inner,
                                   uint64_t rng_seed = 1);

  // PageStore interface; every call consults the armed schedule first.
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override { return inner_->page_count(); }
  /// Intercepted like reads and writes: a rule with Op::kSync makes the
  /// fsync fail (counted in injected_errors), and the crash schedule can
  /// pick a barrier as its kill point. On a successful forward the
  /// store's unsynced-write tracking is checkpointed: everything written
  /// so far would survive a SimulateCrash().
  Status Sync() override;
  Status Truncate(PageId page_count) override;
  void Prefetch(PageId first, size_t count) override {
    if (crashed()) return;
    inner_->Prefetch(first, count);
  }

  /// Attaches this store to a shared crash schedule and starts tracking
  /// unsynced writes (undo images) so SimulateCrash can drop them. The
  /// current inner contents count as synced.
  void SetCrashSchedule(std::shared_ptr<CrashSchedule> schedule);

  /// The moment of process death for this store: rolls the inner store
  /// back to its last-synced state (undo images + truncate to the
  /// last-synced size) and fails every subsequent operation with
  /// IoError. Dropping ALL unsynced writes is the adversarial corner of
  /// the POSIX contract — any durable subset a real kernel might keep is
  /// at least as easy to recover from, because the WAL's checksummed
  /// prefix scan never applies a batch whose commit frame is missing.
  void SimulateCrash();

  /// True once this store has crashed (directly or via its schedule).
  bool crashed() const { return dead_.load(std::memory_order_acquire); }

  /// Adds a rule to the schedule and returns it for chaining-style use.
  void AddRule(FaultRule rule);

  // Convenience schedule builders for the common shapes.

  /// Fail the Nth read (1-based) across all pages, once.
  void FailNthRead(uint64_t n, StatusCode code = StatusCode::kIoError);
  /// Fail the Nth write (1-based) across all pages, once.
  void FailNthWrite(uint64_t n, StatusCode code = StatusCode::kIoError);
  /// Fail the Nth fsync (1-based), once.
  void FailNthSync(uint64_t n, StatusCode code = StatusCode::kIoError);
  /// Fail every read of `page` for `times` matches (default: forever).
  void FailPageReads(PageId page, uint64_t times = FaultRule::kForever);
  /// Fail each read independently with probability `p` (deterministic in
  /// the store's seed), at most `times` times.
  void FailReadsWithProbability(double p,
                                uint64_t times = FaultRule::kForever);
  /// Tear the next write of `page`: half the bytes land, then an error.
  void TornWriteOnPage(PageId page);
  /// Delay every read by `latency` (no error). Widens concurrency windows.
  void AddReadLatency(std::chrono::microseconds latency);

  /// Removes every rule (pending and exhausted) and disarms nothing else:
  /// operation counters keep counting.
  void ClearFaults();

  /// Faults only fire while armed; latency rules are also suppressed when
  /// disarmed. Building through a disarmed wrapper is exactly pass-through.
  void Arm() { armed_.store(true, std::memory_order_release); }
  void Disarm() { armed_.store(false, std::memory_order_release); }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Total operations observed (armed or not).
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  /// Operations that returned an injected error (kError or kTornWrite).
  uint64_t injected_errors() const {
    return injected_errors_.load(std::memory_order_relaxed);
  }

  PageStore* inner() const { return inner_; }

 private:
  struct ActiveRule {
    FaultRule rule;
    uint64_t matched = 0;  // matching ops seen so far
    uint64_t fired = 0;    // times the rule has fired
  };

  /// Consults the schedule for one operation. Returns the error to
  /// report, or OK to proceed; sets `*torn` when a torn write fired.
  Status Consult(FaultRule::Op op, PageId id, bool* torn);

  /// Death check + crash-clock tick for one durable operation; returns
  /// the IoError to report when the store is (or just became) dead.
  Status CrashGate(bool is_sync);
  /// Saves the pre-image of `id` once per sync epoch (only pages the
  /// last fsync made durable need undo).
  void RecordUndo(PageId id);

  PageStore* inner_;
  std::unique_ptr<PageStore> owned_inner_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> dead_{false};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> injected_errors_{0};

  std::mutex mu_;
  std::vector<ActiveRule> rules_;  // guarded by mu_
  Rng rng_;                        // guarded by mu_
  std::shared_ptr<CrashSchedule> crash_;            // guarded by mu_
  PageId synced_count_ = 0;                         // guarded by mu_
  std::map<PageId, std::unique_ptr<Page>> undo_;    // guarded by mu_
  bool track_unsynced_ = false;                     // guarded by mu_
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_FAULT_INJECTION_H_
