#ifndef XKSEARCH_STORAGE_DISK_INDEX_H_
#define XKSEARCH_STORAGE_DISK_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/codec.h"
#include "dewey/decode_kernels.h"
#include "dewey/dewey_id.h"
#include "index/inverted_index.h"
#include "index/tokenizer.h"
#include "storage/bptree.h"
#include "storage/bptree_mut.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace xksearch {

/// \brief Options for building / opening a disk index.
struct DiskIndexOptions {
  /// Back the index by MemPageStore instead of files. Page-level behaviour
  /// (buffer pool, "disk accesses") is identical; only persistence differs.
  bool in_memory = false;
  /// Buffer-pool frames for the Indexed Lookup tree.
  size_t il_pool_pages = 8192;
  /// Buffer-pool frames for the Scan/Stack tree.
  size_t scan_pool_pages = 8192;
  /// Target payload bytes per posting block in the scan layout.
  size_t scan_block_bytes = 3600;
  /// Lock shards per buffer pool (0 = pick automatically). More shards
  /// means less mutex contention between concurrent queries; 1 gives the
  /// old single-LRU behaviour (useful for deterministic cache tests).
  size_t pool_shards = 0;
  /// Leaf readahead: pages speculatively loaded when a posting scan
  /// crosses a leaf boundary. 0 (the default) disables readahead, which
  /// keeps per-query disk-access counts exactly comparable with the
  /// paper's figures; serving setups chasing latency turn it on.
  size_t readahead_pages = 0;
  /// Level-table Dewey compression for IL keys (paper Section 4); when
  /// false a fixed 32-bit-per-component codec is used (ablation X2).
  bool compress_dewey = true;
  /// Prefix-delta compression inside posting blocks (ablation X2).
  bool delta_compress = true;
  /// Crash consistency for incremental updates (file mode only): the
  /// updater stages every batch behind a write-ahead log at
  /// `<prefix>.wal` and Open/DiskIndexUpdater::Open replay any
  /// committed-but-unapplied batch before touching the trees, making
  /// each batch atomic across il/scan/dict. Off restores the legacy
  /// in-place write path (no `.wal` file, no atomicity).
  bool use_wal = true;
  /// Test hook: wraps each page store the index creates (Build, Open and
  /// the updater) before any pool or tree touches it. `name` is "il",
  /// "scan", "dict" or "wal". Fault-injection tests interpose
  /// FaultInjectingPageStore here; returning the store unchanged is
  /// always valid.
  std::function<std::unique_ptr<PageStore>(std::unique_ptr<PageStore>,
                                           std::string_view name)>
      store_decorator;
};

/// \brief The XKSearch on-disk index (paper Section 4).
///
/// Holds the two B+tree organizations the paper describes:
///  * the **Indexed Lookup tree**: one B+tree whose composite keys are
///    (keyword, Dewey id) — keywords primary, Dewey numbers secondary —
///    so lm/rm match operations are single tree probes;
///  * the **Scan tree**: keyword lists chopped into delta-compressed
///    blocks keyed by (keyword, block#), read sequentially by the Scan
///    Eager and Stack algorithms.
///
/// The keyword dictionary (the paper's frequency table) is loaded into an
/// in-memory hash table at open, mirroring XKSearch's initializer.
///
/// All read operations (FindTerm, RightMatch, LeftMatch, OpenPostings
/// and the cursors they return) are safe to call from any number of
/// threads concurrently: the trees and dictionary are immutable after
/// open and the buffer pools are sharded and thread-safe. Each call
/// charges its page accesses to the per-query stats object it is given,
/// so accounting never crosses queries. DropCaches/WarmCaches are safe
/// too, though DropCaches fails while any query holds a pinned page.
class DiskIndex {
 public:
  struct TermInfo {
    uint32_t id;
    uint64_t frequency;
  };

  /// Builds both layouts (plus the dictionary) from an in-memory index.
  /// In file mode this writes `<prefix>.il`, `<prefix>.scan` and
  /// `<prefix>.dict`.
  static Result<std::unique_ptr<DiskIndex>> Build(
      const InvertedIndex& src, const std::string& path_prefix,
      const DiskIndexOptions& options = {});

  /// Opens a previously built file-backed index.
  static Result<std::unique_ptr<DiskIndex>> Open(
      const std::string& path_prefix, const DiskIndexOptions& options = {});

  DiskIndex(const DiskIndex&) = delete;
  DiskIndex& operator=(const DiskIndex&) = delete;

  /// Dictionary lookup; nullptr if the keyword does not occur.
  const TermInfo* FindTerm(std::string_view keyword) const;

  /// Right match rm(v, S): smallest id in the term's list that is >= v.
  /// Returns false (and leaves `out` untouched) when there is none.
  Result<bool> RightMatch(uint32_t term, const DeweyId& v, DeweyId* out,
                          QueryStats* stats = nullptr) const;

  /// Left match lm(v, S): greatest id in the term's list that is <= v.
  Result<bool> LeftMatch(uint32_t term, const DeweyId& v, DeweyId* out,
                         QueryStats* stats = nullptr) const;

  /// \brief Sequential reader over one keyword list in the scan layout.
  ///
  /// Each loaded scan block is batch-decoded in one kernel call
  /// (decode_kernels.h) into a reused DecodedBlock arena; Next serves
  /// views out of that arena, and DecodeBlockInto hands whole arenas to
  /// blocked consumers without re-decoding.
  class PostingCursor {
   public:
    /// Produces the next id; false at end of list. Check status()
    /// afterwards to distinguish exhaustion from corruption.
    bool Next(DeweyId* out);
    /// Replaces `out` with the rest of the current decoded block (or the
    /// next one). Empty `out` means end of list; decode/read errors land
    /// in status() exactly like Next. Does not charge postings_read —
    /// the consuming cursor charges per delivered entry.
    bool DecodeBlockInto(DecodedBlock* out);
    const Status& status() const { return status_; }

   private:
    friend class DiskIndex;
    PostingCursor(const DiskIndex* index, uint32_t term,
                  BPlusTree::Cursor cursor)
        : index_(index), term_(term), cursor_(std::move(cursor)) {}

    bool LoadBlock();

    const DiskIndex* index_;
    uint32_t term_;
    BPlusTree::Cursor cursor_;
    /// Raw block payload scratch (copied out of the pinned page, then
    /// immediately batch-decoded into decoded_).
    std::vector<uint8_t> block_;
    /// The current block, fully decoded; decoded_pos_ is the next
    /// unconsumed entry.
    DecodedBlock decoded_;
    size_t decoded_pos_ = 0;
    QueryStats* stats_ = nullptr;
    Status status_;
    bool done_ = false;
    /// Blocks this cursor may still load; ~0 = unlimited (whole list).
    /// Chunked execution bounds each worker's cursor to its own block
    /// range so chunks tile the list without overlap.
    uint64_t blocks_remaining_ = ~uint64_t{0};
  };

  /// Opens a cursor at the head of `term`'s keyword list.
  Result<PostingCursor> OpenPostings(uint32_t term,
                                     QueryStats* stats = nullptr) const;

  /// \brief One scan-layout block of a term's list, located by key only.
  struct ScanBlockRef {
    /// The block's (term, first Dewey id) composite key, usable as a
    /// cursor seed for OpenPostingsAtBlock.
    std::string key;
    /// The first id, decoded from the key (the payload is not touched).
    DeweyId first;
  };

  /// Walks the keys of `term`'s scan blocks in order without decoding
  /// any payload: chunk planning for intra-query parallel execution.
  /// Leaf page accesses are charged to `stats` like any other read.
  Result<std::vector<ScanBlockRef>> ScanBlockRefs(
      uint32_t term, QueryStats* stats = nullptr) const;

  /// Opens a cursor at the scan block whose key is `block_key` (from
  /// ScanBlockRefs), reading at most `max_blocks` blocks before reporting
  /// end of list — one contiguous chunk of the term's postings.
  Result<PostingCursor> OpenPostingsAtBlock(uint32_t term,
                                            std::string_view block_key,
                                            uint64_t max_blocks,
                                            QueryStats* stats = nullptr) const;

  /// Opens a cursor positioned at the first posting >= `start` (a floor
  /// search to the hosting block, then an in-block skip), reporting the
  /// greatest posting < `start` through `prev`/`prev_valid`. The skipped
  /// entries are not charged as postings read — they are positioning
  /// work, not list consumption; page accesses are charged as usual.
  Result<PostingCursor> OpenPostingsFrom(uint32_t term, const DeweyId& start,
                                         DeweyId* prev, bool* prev_valid,
                                         QueryStats* stats = nullptr) const;

  /// Predicts the scan-layout leaf pages `term`'s posting blocks occupy:
  /// one tree descent to the leaf hosting the term's first block (top
  /// levels are almost always cached) plus a frequency-proportional span
  /// estimate — bulk-loaded leaves are physically consecutive, so a
  /// term's blocks sit in a contiguous page run starting at that leaf.
  /// Returns (first leaf page, estimated page count), the unit the
  /// serving layer's batched cold prefetch feeds to FetchMany. Purely
  /// advisory: a mispredicted page is a wasted speculative read, never a
  /// wrong answer.
  Result<std::pair<PageId, size_t>> PredictScanLeaves(
      uint32_t term, uint64_t frequency, QueryStats* stats = nullptr) const;

  /// Evicts everything from both buffer pools (cold-cache experiments).
  Status DropCaches();
  /// Loads as much as fits into both pools (hot-cache experiments).
  Status WarmCaches();

  const DeweyCodec& codec() const { return *codec_; }
  /// Tokenizer normalization the source index used (persisted in the
  /// index metadata so reopened indexes normalize queries identically).
  const TokenizerOptions& tokenizer() const { return tokenizer_; }
  size_t term_count() const { return dict_.size(); }
  uint64_t total_postings() const { return total_postings_; }
  PageId il_page_count() const { return il_store_->page_count(); }
  PageId scan_page_count() const { return scan_store_->page_count(); }
  BufferPool* il_pool() const { return il_pool_.get(); }
  BufferPool* scan_pool() const { return scan_pool_.get(); }

 private:
  friend class DiskIndexUpdater;  // shares the composite-key encoding

  DiskIndex() = default;

  static void EncodeIlKey(const DeweyCodec& codec, uint32_t term,
                          const DeweyId& id, std::string* out);
  Status InitTreesAndDict(const DiskIndexOptions& options);

  std::unique_ptr<PageStore> il_store_;
  std::unique_ptr<PageStore> scan_store_;
  std::unique_ptr<PageStore> dict_store_;
  std::unique_ptr<BufferPool> il_pool_;
  std::unique_ptr<BufferPool> scan_pool_;
  std::optional<BPlusTree> il_tree_;
  std::optional<BPlusTree> scan_tree_;
  std::optional<DeweyCodec> codec_;
  std::unordered_map<std::string, TermInfo> dict_;
  uint64_t total_postings_ = 0;
  TokenizerOptions tokenizer_;
  size_t readahead_pages_ = 0;
};

/// \brief Incremental maintenance of a file-backed index: add or remove
/// individual postings without rebuilding.
///
/// Uses the mutable B+tree on both layouts: Indexed Lookup entries are
/// plain key inserts/deletes, and scan-layout blocks — keyed by their
/// first Dewey id — are located with a floor search, edited, re-keyed
/// when their first id changes, and split when they outgrow the block
/// budget. The dictionary (with any newly assigned term ids) is
/// rewritten at Finish().
///
/// Constraint inherited from the paper's Section 4 compression: a new
/// posting's Dewey id must fit the level table computed at build time
/// (each level has one spare bit of headroom). Ids outside it are
/// rejected with InvalidArgument — rebuilding with a wider table is the
/// remedy, never a silent lossy encoding.
///
/// **Crash consistency** (DiskIndexOptions::use_wal, the default): the
/// whole batch — every AddPosting/RemovePosting between Open and
/// Finish — is staged in memory (StagedPageStore overlays under the
/// buffer pools), written to `<prefix>.wal` as checksummed page-image
/// frames, made durable by the commit frame's single fsync, and only
/// then replayed into the il/scan/dict files. A crash at any point
/// leaves the files either exactly pre-batch (commit frame not durable:
/// recovery discards the torn log) or exactly post-batch (commit frame
/// durable: recovery replays it idempotently) — never a hybrid.
/// Recovery runs automatically in DiskIndex::Open and
/// DiskIndexUpdater::Open when a `.wal` file is present.
///
/// Open the index with DiskIndex::Open / DiskSearcher only after
/// Finish(); the updater holds the files exclusively for writing. A
/// DiskSearcher opened *before* the batch keeps serving the exact
/// pre-batch snapshot throughout (the overlay keeps the files
/// untouched until commit).
class DiskIndexUpdater {
 public:
  static Result<std::unique_ptr<DiskIndexUpdater>> Open(
      const std::string& path_prefix, const DiskIndexOptions& options = {});

  DiskIndexUpdater(const DiskIndexUpdater&) = delete;
  DiskIndexUpdater& operator=(const DiskIndexUpdater&) = delete;

  /// Adds one (keyword, node) posting; idempotent (re-adding an existing
  /// posting is a no-op). New keywords get fresh term ids.
  Status AddPosting(std::string_view keyword, const DeweyId& id);

  /// Removes one posting; NotFound if it is not in the index.
  Status RemovePosting(std::string_view keyword, const DeweyId& id);

  /// Flushes both trees and rewrites the dictionary. The updater must
  /// not be used afterwards.
  Status Finish();

  uint64_t total_postings() const { return total_postings_; }
  uint64_t Frequency(std::string_view keyword) const;
  /// Committed-but-unapplied batches from a previous (crashed) process
  /// that Open() replayed before this updater touched anything.
  uint64_t recovered_batches() const { return recovered_batches_; }

 private:
  DiskIndexUpdater() = default;

  Status InsertIntoBlock(uint32_t term, const DeweyId& id);
  Status RemoveFromBlock(uint32_t term, const DeweyId& id);
  Status WriteBlock(const std::string& key, const std::vector<DeweyId>& ids);
  /// WAL-mode Finish tail: logs every staged page as one batch, commits,
  /// then applies the batch by replaying the log into the inner stores —
  /// the same code path crash recovery takes.
  Status CommitBatch();

  std::string path_prefix_;
  DiskIndexOptions options_;
  std::unique_ptr<PageStore> il_store_;
  std::unique_ptr<PageStore> scan_store_;
  std::unique_ptr<PageStore> dict_store_;  // held only in WAL mode
  std::unique_ptr<StagedPageStore> il_staged_;
  std::unique_ptr<StagedPageStore> scan_staged_;
  std::unique_ptr<StagedPageStore> dict_staged_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> il_pool_;
  std::unique_ptr<BufferPool> scan_pool_;
  std::unique_ptr<BPlusTreeMut> il_tree_;
  std::unique_ptr<BPlusTreeMut> scan_tree_;
  std::optional<DeweyCodec> codec_;
  bool delta_compress_ = true;
  bool compress_dewey_ = true;
  TokenizerOptions tokenizer_;
  std::unordered_map<std::string, DiskIndex::TermInfo> dict_;
  uint32_t next_term_id_ = 0;
  uint64_t total_postings_ = 0;
  uint64_t recovered_batches_ = 0;
  bool finished_ = false;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_DISK_INDEX_H_
