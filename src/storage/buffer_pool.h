#ifndef XKSEARCH_STORAGE_BUFFER_POOL_H_
#define XKSEARCH_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "common/stats.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace xksearch {

class BufferPool;

/// \brief RAII write pin on a cached page: the frame is marked dirty and
/// the page may be mutated until release.
class MutPageRef {
 public:
  MutPageRef() = default;
  MutPageRef(BufferPool* pool, PageId id, Page* page)
      : pool_(pool), id_(id), page_(page) {}
  ~MutPageRef() { Release(); }

  MutPageRef(const MutPageRef&) = delete;
  MutPageRef& operator=(const MutPageRef&) = delete;
  MutPageRef(MutPageRef&& other) noexcept { MoveFrom(&other); }
  MutPageRef& operator=(MutPageRef&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  bool valid() const { return page_ != nullptr; }
  Page& page() const { return *page_; }
  PageId id() const { return id_; }

  void Release();

 private:
  void MoveFrom(MutPageRef* other) {
    pool_ = other->pool_;
    id_ = other->id_;
    page_ = other->page_;
    other->pool_ = nullptr;
    other->page_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  Page* page_ = nullptr;
};

/// \brief RAII pin on a cached page. The referenced page stays resident
/// while at least one PageRef to it is alive.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, PageId id, const Page* page)
      : pool_(pool), id_(id), page_(page) {}
  ~PageRef();

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept { MoveFrom(&other); }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  bool valid() const { return page_ != nullptr; }
  const Page& page() const { return *page_; }
  PageId id() const { return id_; }

  void Release();

 private:
  void MoveFrom(PageRef* other) {
    pool_ = other->pool_;
    id_ = other->id_;
    page_ = other->page_;
    other->pool_ = nullptr;
    other->page_ = nullptr;
  }

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  const Page* page_ = nullptr;
};

class MutPageRef;

/// \brief Page cache with LRU replacement, pin counting and write-back.
///
/// Models the database buffer pool the paper's disk-access analysis
/// assumes: a buffer-pool miss is one "disk access" (charged to the
/// attached QueryStats), a hit is free. `DropAll()` emulates a cold cache,
/// `WarmAll()` a hot one. The bulk index builders write through the
/// PageStore directly; the mutable B+tree updates pages in place via
/// FetchMut/NewPage, and dirty frames are written back on eviction,
/// FlushAll, or DropAll.
class BufferPool {
 public:
  /// `capacity` is the number of page frames (>= 1). The pool does not own
  /// the store.
  BufferPool(PageStore* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches and pins a page.
  Result<PageRef> Fetch(PageId id);

  /// Fetches a page for writing: pins it and marks the frame dirty; the
  /// bytes reach the store on eviction or FlushAll.
  Result<MutPageRef> FetchMut(PageId id);

  /// Allocates a fresh zeroed page in the store and returns it pinned
  /// for writing.
  Result<MutPageRef> NewPage();

  /// Writes every dirty frame back to the store (pages stay cached).
  Status FlushAll();

  /// Routes subsequent hit/miss counts to `stats` (may be null).
  void AttachStats(QueryStats* stats) { stats_ = stats; }

  /// Flushes dirty frames, then evicts every unpinned page; fails if any
  /// page is pinned.
  Status DropAll();

  /// Prefetches every page of the store (up to capacity).
  Status WarmAll();

  size_t capacity() const { return capacity_; }
  size_t resident() const { return frames_.size(); }
  uint64_t total_misses() const { return total_misses_; }
  uint64_t total_hits() const { return total_hits_; }

 private:
  friend class PageRef;
  friend class MutPageRef;

  struct Frame {
    std::unique_ptr<Page> page;
    uint32_t pin_count = 0;
    // Position in lru_ when pin_count == 0.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
    bool dirty = false;
  };

  void Unpin(PageId id);
  // Pins an existing or freshly-read frame; shared by Fetch/FetchMut.
  Result<Page*> PinFrame(PageId id);
  // Evicts one unpinned frame (writing it back if dirty); kNotFound when
  // every frame is pinned.
  Status EvictOne();

  PageStore* store_;
  size_t capacity_;
  QueryStats* stats_ = nullptr;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recently used
  uint64_t total_misses_ = 0;
  uint64_t total_hits_ = 0;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_BUFFER_POOL_H_
