#ifndef XKSEARCH_STORAGE_BUFFER_POOL_H_
#define XKSEARCH_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace xksearch {

class BufferPool;

namespace internal {

/// Outcome slot of one in-flight page read, shared between the loading
/// thread and every fetch that coalesced onto it. Guarded by the shard
/// mutex. Waiters keep a shared_ptr so a failed load — which erases its
/// placeholder frame — still delivers the error to everyone who waited
/// on it instead of leaving them to rediscover (or mask) the fault.
struct LoadState {
  bool done = false;
  Status status;
};

/// One cached page frame. Owned by a pool shard; the pin count is atomic
/// so releasing a pin (the hottest concurrent operation) is a single
/// lock-free decrement. All other fields are guarded by the shard mutex.
struct PoolFrame {
  std::unique_ptr<Page> page;
  std::atomic<uint32_t> pin_count{0};
  /// Position in the shard's recency list (the frame is always linked,
  /// pinned or not; eviction skips pinned frames).
  std::list<PageId>::iterator lru_pos;
  bool dirty = false;
  /// A read is in flight: the page bytes are not yet valid. Waiters
  /// block on the shard's condition variable holding a copy of `load`.
  bool loading = false;
  std::shared_ptr<LoadState> load;
};

}  // namespace internal

/// \brief RAII write pin on a cached page: the frame is marked dirty and
/// the page may be mutated until release.
class MutPageRef {
 public:
  MutPageRef() = default;
  MutPageRef(PageId id, internal::PoolFrame* frame)
      : id_(id), frame_(frame) {}
  ~MutPageRef() { Release(); }

  MutPageRef(const MutPageRef&) = delete;
  MutPageRef& operator=(const MutPageRef&) = delete;
  MutPageRef(MutPageRef&& other) noexcept { MoveFrom(&other); }
  MutPageRef& operator=(MutPageRef&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  Page& page() const { return *frame_->page; }
  PageId id() const { return id_; }

  /// Lock-free: the release-ordered decrement pairs with the evictor's
  /// acquire load, so page writes complete before the frame can be freed.
  void Release() {
    if (frame_ != nullptr) {
      frame_->pin_count.fetch_sub(1, std::memory_order_release);
    }
    frame_ = nullptr;
  }

 private:
  void MoveFrom(MutPageRef* other) {
    id_ = other->id_;
    frame_ = other->frame_;
    other->frame_ = nullptr;
  }

  PageId id_ = kInvalidPage;
  internal::PoolFrame* frame_ = nullptr;
};

/// \brief RAII pin on a cached page. The referenced page stays resident
/// while at least one PageRef to it is alive.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageId id, internal::PoolFrame* frame) : id_(id), frame_(frame) {}
  ~PageRef() { Release(); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept { MoveFrom(&other); }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  const Page& page() const { return *frame_->page; }
  PageId id() const { return id_; }

  void Release() {
    if (frame_ != nullptr) {
      frame_->pin_count.fetch_sub(1, std::memory_order_release);
    }
    frame_ = nullptr;
  }

 private:
  void MoveFrom(PageRef* other) {
    id_ = other->id_;
    frame_ = other->frame_;
    other->frame_ = nullptr;
  }

  PageId id_ = kInvalidPage;
  internal::PoolFrame* frame_ = nullptr;
};

/// \brief Sharded thread-safe page cache with per-shard LRU replacement,
/// atomic pin counting and write-back.
///
/// Models the database buffer pool the paper's disk-access analysis
/// assumes: a buffer-pool miss is one "disk access" (charged to the
/// QueryStats passed to that Fetch), a hit is free. `DropAll()` emulates
/// a cold cache, `WarmAll()` a hot one.
///
/// Concurrency model: PageIds hash across N shards, each with its own
/// mutex, frame map and recency list, so unrelated fetches never contend.
/// A miss inserts a pinned "loading" frame, then performs the store read
/// with the shard unlocked — concurrent misses on one shard overlap their
/// I/O, and hits proceed meanwhile; a second fetch of a loading page
/// waits on the shard's condition variable instead of re-reading.
/// Pin counts are atomics: releasing a PageRef/MutPageRef is one relaxed
/// decrement with no lock at all. Eviction is shard-local and skips
/// pinned frames (every frame stays on the recency list while resident).
///
/// Accounting: global hit/miss totals are relaxed atomics; per-query
/// charging goes through the optional `QueryStats*` each Fetch takes, so
/// concurrent queries each count their own accesses without any shared
/// mutable registration (the old AttachStats pattern).
class BufferPool {
 public:
  /// `capacity` is the number of page frames (>= 1), split evenly across
  /// `shards` (0 = pick automatically: enough shards for parallelism but
  /// at least 8 frames each, so tiny pools are not carved into shards
  /// that exhaust the moment two pins collide; explicit counts are only
  /// clamped so every shard has at least one frame). Single-shard pools
  /// behave exactly like the old global-LRU pool. The pool does not own
  /// the store.
  explicit BufferPool(PageStore* store, size_t capacity, size_t shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches and pins a page; hit/miss is charged to `stats` if non-null.
  Result<PageRef> Fetch(PageId id, QueryStats* stats = nullptr);

  /// Fetches and pins every page of `ids` in one pass: the batch is
  /// sorted and deduplicated, absent pages get loading placeholders
  /// under their shard locks, and all of them are then read through the
  /// store's vectored ReadPages — one preadv per contiguous run on file
  /// stores — instead of one round-trip each. out[i] corresponds to
  /// ids[i]; duplicates pin the same frame again. Hits and misses are
  /// charged to `stats` like Fetch. On any error every pin taken is
  /// released and all placeholders are retired (waiters that coalesced
  /// onto them receive the error), so a failed batch leaks nothing.
  Result<std::vector<PageRef>> FetchMany(std::span<const PageId> ids,
                                         QueryStats* stats = nullptr);

  /// Fetches a page for writing: pins it and marks the frame dirty; the
  /// bytes reach the store on eviction or FlushAll.
  Result<MutPageRef> FetchMut(PageId id, QueryStats* stats = nullptr);

  /// Allocates a fresh zeroed page in the store and returns it pinned
  /// for writing.
  Result<MutPageRef> NewPage();

  /// Writes every dirty frame back to the store (pages stay cached).
  Status FlushAll();

  /// Flushes dirty frames, then evicts every unpinned page; fails (and
  /// drops nothing) if any page is pinned. All shards are locked for the
  /// duration, so concurrent readers see either the full cache or none.
  Status DropAll();

  /// Prefetches every page of the store (up to capacity; never evicts).
  Status WarmAll();

  /// Best-effort speculative load of `count` pages starting at `first`
  /// (the leaf-readahead path): hints the store, then loads whichever of
  /// them are absent, evicting cold unpinned frames to make room (a
  /// steady-state pool is always full, so a no-evict readahead would
  /// never load anything) but skipping pages whose shard is entirely
  /// pinned. Loads are charged to `stats->readahead_reads` (not
  /// page_reads) and to the pool's readahead total, keeping demand-miss
  /// accounting clean. Errors are swallowed — readahead must never fail
  /// a query.
  void Readahead(PageId first, size_t count, QueryStats* stats = nullptr);

  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  size_t resident() const;
  /// Test hook: sum of every resident frame's pin count (plus any
  /// in-flight loading placeholders, which hold their loader's pin).
  /// A quiesced pool — no live PageRef/MutPageRef — must report zero;
  /// fault tests assert this after every injected error.
  uint64_t DebugTotalPins() const;
  uint64_t total_misses() const {
    return total_misses_.load(std::memory_order_relaxed);
  }
  uint64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }
  uint64_t total_readaheads() const {
    return total_readaheads_.load(std::memory_order_relaxed);
  }

 private:
  using Frame = internal::PoolFrame;

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<PageId, Frame> frames;
    std::list<PageId> lru;  // front = most recently used; all frames
    size_t capacity = 0;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  /// Pins an existing or freshly-read frame; shared by Fetch/FetchMut.
  Result<Frame*> PinFrame(PageId id, QueryStats* stats, bool mark_dirty);
  /// Loads `id` unpinned if absent; true iff this call performed a store
  /// read. With `evict_if_full` a full shard evicts one unpinned frame
  /// to make room (skipping the load when everything is pinned, never
  /// erroring on exhaustion); without it a full shard just declines.
  /// Shared by WarmAll (no eviction — full pool means warming is done)
  /// and Readahead (evicts, or steady-state full pools would never
  /// prefetch anything).
  Result<bool> LoadIfAbsent(PageId id, bool evict_if_full);
  /// Evicts one unpinned, non-loading frame of `shard` (writing it back
  /// if dirty); kInternal when every frame is pinned. Caller holds the
  /// shard mutex.
  Status EvictOneLocked(Shard* shard);

  PageStore* store_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> total_misses_{0};
  std::atomic<uint64_t> total_hits_{0};
  std::atomic<uint64_t> total_readaheads_{0};
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_BUFFER_POOL_H_
