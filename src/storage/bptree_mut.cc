#include "storage/bptree_mut.h"

#include <cassert>

#include "storage/bptree.h"  // CompareBytes

namespace xksearch {

namespace nf = node_format;

namespace {

/// First index in `entries` with key >= `key`.
size_t LowerBound(
    const std::vector<std::pair<std::string, std::string>>& entries,
    std::string_view key) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (CompareBytes(entries[mid].first, key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Split position for an oversized entry vector: the smallest cut with
/// at least half the payload bytes on the left, clamped so both sides
/// stay non-empty.
size_t SplitPoint(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  size_t total = 0;
  for (const auto& [k, v] : entries) total += nf::EntrySize(k, v);
  size_t acc = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    acc += nf::EntrySize(entries[i].first, entries[i].second);
    if (acc * 2 >= total) {
      return std::min(std::max<size_t>(i + 1, 1), entries.size() - 1);
    }
  }
  return entries.size() - 1;
}

}  // namespace

Result<BPlusTreeMut> BPlusTreeMut::Create(BufferPool* pool) {
  BPlusTreeMut tree(pool);
  XKS_ASSIGN_OR_RETURN(MutPageRef meta, pool->NewPage());
  if (meta.id() != 0) {
    return Status::InvalidArgument("Create requires an empty store");
  }
  meta.page().Zero();
  meta.Release();
  XKS_RETURN_NOT_OK(tree.Flush());
  return tree;
}

Result<BPlusTreeMut> BPlusTreeMut::Open(BufferPool* pool) {
  XKS_ASSIGN_OR_RETURN(PageRef meta_ref, pool->Fetch(0));
  const Page& meta = meta_ref.page();
  if (meta.ReadU32(nf::kMetaMagic) != nf::kMagic) {
    return Status::Corruption("not a B+tree file (bad magic)");
  }
  if (meta.ReadU32(nf::kMetaVersion) != nf::kVersion) {
    return Status::Corruption("unsupported B+tree version");
  }
  BPlusTreeMut tree(pool);
  tree.root_ = meta.ReadU32(nf::kMetaRoot);
  tree.height_ = meta.ReadU32(nf::kMetaHeight);
  tree.entry_count_ = meta.ReadU64(nf::kMetaEntryCount);
  tree.first_leaf_ = meta.ReadU32(nf::kMetaFirstLeaf);
  const uint32_t user_len = meta.ReadU32(nf::kMetaUserLen);
  if (nf::kMetaUserData + user_len > kPageSize) {
    return Status::Corruption("metadata blob overflows meta page");
  }
  tree.metadata_.assign(meta.bytes(nf::kMetaUserData),
                        meta.bytes(nf::kMetaUserData) + user_len);
  return tree;
}

Status BPlusTreeMut::Flush() {
  XKS_ASSIGN_OR_RETURN(MutPageRef meta, pool_->FetchMut(0));
  Page& page = meta.page();
  page.Zero();
  page.WriteU32(nf::kMetaMagic, nf::kMagic);
  page.WriteU32(nf::kMetaVersion, nf::kVersion);
  page.WriteU32(nf::kMetaRoot, root_);
  page.WriteU32(nf::kMetaHeight, height_);
  page.WriteU64(nf::kMetaEntryCount, entry_count_);
  page.WriteU32(nf::kMetaFirstLeaf, first_leaf_);
  if (nf::kMetaUserData + metadata_.size() > kPageSize) {
    return Status::InvalidArgument("B+tree metadata blob too large");
  }
  page.WriteU32(nf::kMetaUserLen, static_cast<uint32_t>(metadata_.size()));
  if (!metadata_.empty()) {
    std::memcpy(page.bytes(nf::kMetaUserData), metadata_.data(),
                metadata_.size());
  }
  meta.Release();
  return pool_->FlushAll();
}

Result<PageId> BPlusTreeMut::DescendToLeaf(std::string_view key,
                                           std::vector<PathStep>* path) const {
  PageId cur = root_;
  for (uint32_t level = height_; level > 1; --level) {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(cur));
    const nf::NodeView node(ref.page());
    if (node.IsLeaf()) {
      return Status::Corruption("unexpected leaf above leaf level");
    }
    const size_t idx = node.UpperBound(key);
    if (path != nullptr) path->push_back(PathStep{cur, idx});
    cur = node.Child(idx);
  }
  return cur;
}

Status BPlusTreeMut::WriteNode(PageId page_id,
                               const nf::ParsedNode& node) {
  XKS_ASSIGN_OR_RETURN(MutPageRef ref, pool_->FetchMut(page_id));
  node.WriteTo(&ref.page());
  return Status::OK();
}

Status BPlusTreeMut::Put(std::string_view key, std::string_view value) {
  if (nf::EntrySize(key, value) > nf::kNodeCapacity) {
    return Status::InvalidArgument("entry too large for a page");
  }

  if (root_ == kInvalidPage) {
    XKS_ASSIGN_OR_RETURN(MutPageRef page, pool_->NewPage());
    nf::ParsedNode leaf;
    leaf.leaf = true;
    leaf.entries.emplace_back(std::string(key), std::string(value));
    leaf.WriteTo(&page.page());
    root_ = page.id();
    first_leaf_ = page.id();
    height_ = 1;
    entry_count_ = 1;
    return Status::OK();
  }

  std::vector<PathStep> path;
  XKS_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, &path));
  nf::ParsedNode leaf;
  {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(leaf_id));
    XKS_ASSIGN_OR_RETURN(leaf, nf::ParsedNode::ReadFrom(ref.page()));
  }
  const size_t pos = LowerBound(leaf.entries, key);
  if (pos < leaf.entries.size() &&
      CompareBytes(leaf.entries[pos].first, key) == 0) {
    leaf.entries[pos].second.assign(value);  // upsert
  } else {
    leaf.entries.insert(leaf.entries.begin() + static_cast<long>(pos),
                        {std::string(key), std::string(value)});
    ++entry_count_;
  }
  if (leaf.SerializedSize() <= kPageSize) {
    return WriteNode(leaf_id, leaf);
  }
  return SplitLeaf(leaf_id, std::move(leaf), std::move(path));
}

Status BPlusTreeMut::SplitLeaf(PageId page_id, nf::ParsedNode node,
                               std::vector<PathStep> path) {
  const size_t mid = SplitPoint(node.entries);

  XKS_ASSIGN_OR_RETURN(MutPageRef right_page, pool_->NewPage());
  const PageId right_id = right_page.id();

  nf::ParsedNode right;
  right.leaf = true;
  right.entries.assign(node.entries.begin() + static_cast<long>(mid),
                       node.entries.end());
  right.link_a = node.link_a;  // old next leaf
  right.link_b = page_id;
  node.entries.resize(mid);
  const PageId old_next = right.link_a;
  node.link_a = right_id;

  const std::string separator = right.entries.front().first;
  right.WriteTo(&right_page.page());
  right_page.Release();
  XKS_RETURN_NOT_OK(WriteNode(page_id, node));

  if (old_next != kInvalidPage) {
    XKS_ASSIGN_OR_RETURN(MutPageRef next_ref, pool_->FetchMut(old_next));
    next_ref.page().WriteU32(nf::kNodeLinkB, right_id);
  }
  return InsertIntoParent(std::move(path), separator, right_id);
}

Status BPlusTreeMut::InsertIntoParent(std::vector<PathStep> path,
                                      std::string separator,
                                      PageId right_child) {
  if (path.empty()) {
    // Split reached the root: grow the tree by one level.
    XKS_ASSIGN_OR_RETURN(MutPageRef page, pool_->NewPage());
    nf::ParsedNode new_root;
    new_root.leaf = false;
    new_root.link_a = root_;
    new_root.entries.emplace_back(std::move(separator),
                                  nf::ParsedNode::EncodeChild(right_child));
    new_root.WriteTo(&page.page());
    root_ = page.id();
    ++height_;
    return Status::OK();
  }

  const PathStep step = path.back();
  path.pop_back();
  nf::ParsedNode parent;
  {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(step.page));
    XKS_ASSIGN_OR_RETURN(parent, nf::ParsedNode::ReadFrom(ref.page()));
  }
  // The split child sat at children index `child_idx`; its new right
  // sibling becomes children index child_idx + 1, i.e. entries index
  // child_idx.
  parent.entries.insert(
      parent.entries.begin() + static_cast<long>(step.child_idx),
      {std::move(separator), nf::ParsedNode::EncodeChild(right_child)});
  if (parent.SerializedSize() <= kPageSize) {
    return WriteNode(step.page, parent);
  }
  return SplitInternal(step.page, std::move(parent), std::move(path));
}

Status BPlusTreeMut::SplitInternal(PageId page_id, nf::ParsedNode node,
                                   std::vector<PathStep> path) {
  assert(node.entries.size() >= 2);
  const size_t mid = SplitPoint(node.entries);

  // The median separator moves up; the right node's leftmost child is
  // the median's child.
  std::string up_key = node.entries[mid].first;
  nf::ParsedNode right;
  right.leaf = false;
  right.link_a = node.ChildAt(mid + 1);
  right.entries.assign(node.entries.begin() + static_cast<long>(mid) + 1,
                       node.entries.end());
  node.entries.resize(mid);

  XKS_ASSIGN_OR_RETURN(MutPageRef right_page, pool_->NewPage());
  const PageId right_id = right_page.id();
  right.WriteTo(&right_page.page());
  right_page.Release();
  XKS_RETURN_NOT_OK(WriteNode(page_id, node));
  return InsertIntoParent(std::move(path), std::move(up_key), right_id);
}

Status BPlusTreeMut::Delete(std::string_view key) {
  if (root_ == kInvalidPage) {
    return Status::NotFound("key not present");
  }
  std::vector<PathStep> path;
  XKS_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, &path));
  nf::ParsedNode leaf;
  {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(leaf_id));
    XKS_ASSIGN_OR_RETURN(leaf, nf::ParsedNode::ReadFrom(ref.page()));
  }
  const size_t pos = LowerBound(leaf.entries, key);
  if (pos >= leaf.entries.size() ||
      CompareBytes(leaf.entries[pos].first, key) != 0) {
    return Status::NotFound("key not present");
  }
  leaf.entries.erase(leaf.entries.begin() + static_cast<long>(pos));
  --entry_count_;

  if (!leaf.entries.empty()) {
    return WriteNode(leaf_id, leaf);
  }

  // The leaf emptied: unlink it from the sibling chain and the parent.
  // (The page itself is not recycled; see the class comment.)
  if (leaf.link_b != kInvalidPage) {
    XKS_ASSIGN_OR_RETURN(MutPageRef prev, pool_->FetchMut(leaf.link_b));
    prev.page().WriteU32(nf::kNodeLinkA, leaf.link_a);
  }
  if (leaf.link_a != kInvalidPage) {
    XKS_ASSIGN_OR_RETURN(MutPageRef next, pool_->FetchMut(leaf.link_a));
    next.page().WriteU32(nf::kNodeLinkB, leaf.link_b);
  }
  if (first_leaf_ == leaf_id) first_leaf_ = leaf.link_a;

  if (path.empty()) {
    // The root leaf emptied: the tree is empty again.
    root_ = kInvalidPage;
    first_leaf_ = kInvalidPage;
    height_ = 0;
    return Status::OK();
  }
  return RemoveFromParent(std::move(path));
}

Status BPlusTreeMut::RemoveFromParent(std::vector<PathStep> path) {
  const PathStep step = path.back();
  path.pop_back();
  nf::ParsedNode parent;
  {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(step.page));
    XKS_ASSIGN_OR_RETURN(parent, nf::ParsedNode::ReadFrom(ref.page()));
  }
  if (step.child_idx == 0) {
    if (parent.entries.empty()) {
      // This internal node lost its only child; remove it as well.
      if (path.empty()) {
        root_ = kInvalidPage;
        height_ = 0;
        return Status::OK();
      }
      return RemoveFromParent(std::move(path));
    }
    // Promote the first entry's child to the leftmost slot.
    parent.link_a = parent.ChildAt(1);
    parent.entries.erase(parent.entries.begin());
  } else {
    parent.entries.erase(parent.entries.begin() +
                         static_cast<long>(step.child_idx) - 1);
  }
  XKS_RETURN_NOT_OK(WriteNode(step.page, parent));
  if (path.empty()) {
    return CollapseRoot();
  }
  return Status::OK();
}

Status BPlusTreeMut::CollapseRoot() {
  // A root with a single child routes everything through it; shrink the
  // tree until the root has at least two children or is a leaf.
  while (height_ > 1) {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(root_));
    const nf::NodeView node(ref.page());
    if (node.IsLeaf() || node.count() > 0) break;
    const PageId only_child = node.link_a();
    ref.Release();
    root_ = only_child;
    --height_;
  }
  return Status::OK();
}

Result<bool> BPlusTreeMut::FindFloor(std::string_view key,
                                     std::string* found_key,
                                     std::string* found_value) const {
  if (root_ == kInvalidPage) return false;
  XKS_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, nullptr));
  // The routed leaf holds every key in its range; if nothing there is
  // <= key, the floor ends the previous leaf.
  for (; leaf_id != kInvalidPage;) {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(leaf_id));
    const nf::NodeView node(ref.page());
    const size_t ub = node.UpperBound(key);
    if (ub > 0) {
      std::string_view k, v;
      if (!node.Entry(ub - 1, &k, &v)) {
        return Status::Corruption("malformed leaf entry");
      }
      found_key->assign(k);
      found_value->assign(v);
      return true;
    }
    leaf_id = node.link_b();
  }
  return false;
}

Result<bool> BPlusTreeMut::FindCeil(std::string_view key,
                                    std::string* found_key,
                                    std::string* found_value) const {
  if (root_ == kInvalidPage) return false;
  XKS_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(key, nullptr));
  for (; leaf_id != kInvalidPage;) {
    XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(leaf_id));
    const nf::NodeView node(ref.page());
    const size_t lb = node.LowerBound(key);
    if (lb < node.count()) {
      std::string_view k, v;
      if (!node.Entry(lb, &k, &v)) {
        return Status::Corruption("malformed leaf entry");
      }
      found_key->assign(k);
      found_value->assign(v);
      return true;
    }
    leaf_id = node.link_a();
  }
  return false;
}

Result<std::string> BPlusTreeMut::Get(std::string_view key) const {
  if (root_ == kInvalidPage) {
    return Status::NotFound("key not present");
  }
  XKS_ASSIGN_OR_RETURN(const PageId leaf_id, DescendToLeaf(key, nullptr));
  XKS_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(leaf_id));
  const nf::NodeView node(ref.page());
  const size_t pos = node.LowerBound(key);
  std::string_view k, v;
  if (pos < node.count() && node.Entry(pos, &k, &v) &&
      CompareBytes(k, key) == 0) {
    return std::string(v);
  }
  return Status::NotFound("key not present");
}

}  // namespace xksearch
