#include "storage/wal.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/bitio.h"

namespace xksearch {

namespace {

// Frame payload types.
constexpr uint8_t kBeginFrame = 1;
constexpr uint8_t kPageImageFrame = 2;
constexpr uint8_t kTruncateFrame = 3;
constexpr uint8_t kCommitFrame = 4;

// Largest legal payload: a page image plus its addressing, with slack.
// Anything bigger in a length prefix is a torn or garbage frame.
constexpr uint32_t kMaxFramePayload = kPageSize + 64;

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

void PutFixed32(uint32_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xff);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xff);
  out[2] = static_cast<uint8_t>((v >> 16) & 0xff);
  out[3] = static_cast<uint8_t>((v >> 24) & 0xff);
}

uint32_t GetFixed32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

/// Sequential frame reader over the log's pages. Next() returns false at
/// the end of intact frames — a zero length, an impossible length, a
/// frame running past the written bytes, or a checksum mismatch, all of
/// which are the legitimate shapes of a torn tail. Real read errors are
/// reported through status() instead, so a dying disk is never mistaken
/// for a clean end of log.
class FrameScanner {
 public:
  explicit FrameScanner(PageStore* store)
      : store_(store),
        capacity_(static_cast<uint64_t>(store->page_count()) * kPageSize) {}

  bool Next(std::vector<uint8_t>* payload) {
    if (!status_.ok()) return false;
    uint8_t header[kFrameHeaderBytes];
    if (pos_ + kFrameHeaderBytes > capacity_) return false;
    if (!ReadBytes(pos_, header, kFrameHeaderBytes)) return false;
    const uint32_t length = GetFixed32(header);
    const uint32_t crc = GetFixed32(header + 4);
    if (length == 0 || length > kMaxFramePayload) return false;
    if (pos_ + kFrameHeaderBytes + length > capacity_) return false;
    payload->resize(length);
    if (!ReadBytes(pos_ + kFrameHeaderBytes, payload->data(), length)) {
      return false;
    }
    if (WalCrc32(payload->data(), payload->size()) != crc) return false;
    pos_ += kFrameHeaderBytes + length;
    return true;
  }

  uint64_t position() const { return pos_; }
  const Status& status() const { return status_; }

 private:
  bool ReadBytes(uint64_t off, uint8_t* out, size_t n) {
    while (n > 0) {
      const PageId page = static_cast<PageId>(off / kPageSize);
      const size_t page_off = static_cast<size_t>(off % kPageSize);
      if (page != cached_) {
        status_ = store_->ReadPage(page, &cache_);
        if (!status_.ok()) return false;
        cached_ = page;
      }
      const size_t chunk = std::min(n, kPageSize - page_off);
      std::memcpy(out, cache_.data.data() + page_off, chunk);
      off += chunk;
      out += chunk;
      n -= chunk;
    }
    return true;
  }

  PageStore* store_;
  uint64_t capacity_;
  uint64_t pos_ = 0;
  Page cache_;
  PageId cached_ = kInvalidPage;
  Status status_;
};

/// One replay operation of a pending (not yet committed) batch.
struct PendingOp {
  bool is_truncate = false;
  uint8_t store_id = 0;
  PageId page = 0;  // image: page id; truncate: final page count
  std::unique_ptr<Page> image;
};

}  // namespace

uint32_t WalCrc32(const uint8_t* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

WalCounters& WalCounters::Instance() {
  static WalCounters counters;
  return counters;
}

Result<std::unique_ptr<Wal>> Wal::Open(std::unique_ptr<PageStore> store) {
  std::unique_ptr<Wal> wal(new Wal(std::move(store)));
  FrameScanner scanner(wal->store_.get());
  std::vector<uint8_t> payload;
  while (scanner.Next(&payload)) {
  }
  XKS_RETURN_NOT_OK(scanner.status());
  wal->length_ = scanner.position();
  wal->tail_.Zero();
  if (wal->length_ % kPageSize != 0) {
    XKS_RETURN_NOT_OK(wal->store_->ReadPage(
        static_cast<PageId>(wal->length_ / kPageSize), &wal->tail_));
  }
  return wal;
}

Status Wal::WriteTailPage(PageId page) {
  while (store_->page_count() <= page) {
    XKS_RETURN_NOT_OK(store_->AllocatePage().status());
  }
  return store_->WritePage(page, tail_);
}

Status Wal::AppendBytes(const uint8_t* data, size_t n) {
  while (n > 0) {
    const size_t off = static_cast<size_t>(length_ % kPageSize);
    const size_t chunk = std::min(n, kPageSize - off);
    std::memcpy(tail_.data.data() + off, data, chunk);
    length_ += chunk;
    data += chunk;
    n -= chunk;
    if (length_ % kPageSize == 0) {
      XKS_RETURN_NOT_OK(
          WriteTailPage(static_cast<PageId>(length_ / kPageSize - 1)));
      tail_.Zero();
    }
  }
  return Status::OK();
}

Status Wal::FlushTail() {
  if (length_ % kPageSize == 0) return Status::OK();
  return WriteTailPage(static_cast<PageId>(length_ / kPageSize));
}

Status Wal::AppendFrame(uint8_t type, const std::vector<uint8_t>& body) {
  std::vector<uint8_t> payload;
  payload.reserve(1 + body.size());
  payload.push_back(type);
  payload.insert(payload.end(), body.begin(), body.end());
  uint8_t header[kFrameHeaderBytes];
  PutFixed32(static_cast<uint32_t>(payload.size()), header);
  PutFixed32(WalCrc32(payload.data(), payload.size()), header + 4);
  XKS_RETURN_NOT_OK(AppendBytes(header, kFrameHeaderBytes));
  return AppendBytes(payload.data(), payload.size());
}

Status Wal::AppendBegin(uint64_t batch_id) {
  if (in_batch_) {
    return Status::InvalidArgument("WAL batch already open");
  }
  in_batch_ = true;
  batch_id_ = batch_id;
  batch_frames_ = 0;
  batch_bytes_ = length_;
  std::vector<uint8_t> body;
  PutVarint64(&body, batch_id);
  return AppendFrame(kBeginFrame, body);
}

Status Wal::AppendPageImage(uint8_t store_id, PageId page, const Page& image) {
  if (!in_batch_) return Status::InvalidArgument("no open WAL batch");
  ++batch_frames_;
  std::vector<uint8_t> body;
  body.reserve(8 + kPageSize);
  body.push_back(store_id);
  PutVarint32(&body, page);
  body.insert(body.end(), image.data.begin(), image.data.end());
  return AppendFrame(kPageImageFrame, body);
}

Status Wal::AppendTruncate(uint8_t store_id, PageId page_count) {
  if (!in_batch_) return Status::InvalidArgument("no open WAL batch");
  ++batch_frames_;
  std::vector<uint8_t> body;
  body.push_back(store_id);
  PutVarint32(&body, page_count);
  return AppendFrame(kTruncateFrame, body);
}

Status Wal::Commit() {
  if (!in_batch_) return Status::InvalidArgument("no open WAL batch");
  std::vector<uint8_t> body;
  PutVarint64(&body, batch_id_);
  PutVarint64(&body, batch_frames_);
  XKS_RETURN_NOT_OK(AppendFrame(kCommitFrame, body));
  XKS_RETURN_NOT_OK(FlushTail());
  // The one durability barrier: everything up to and including the
  // commit frame must be on stable storage before the caller may touch
  // the target files.
  XKS_RETURN_NOT_OK(store_->Sync());
  in_batch_ = false;
  WalCounters& counters = WalCounters::Instance();
  counters.commits.fetch_add(1, std::memory_order_relaxed);
  counters.bytes_committed.fetch_add(length_ - batch_bytes_,
                                     std::memory_order_relaxed);
  return Status::OK();
}

Result<WalRecoveryStats> Wal::Recover(const StoreResolver& resolve) {
  WalRecoveryStats stats;
  FrameScanner scanner(store_.get());
  std::vector<uint8_t> payload;
  std::vector<PendingOp> pending;
  std::vector<PageStore*> touched;
  bool have_begin = false;
  uint64_t begin_id = 0;

  while (scanner.Next(&payload)) {
    const uint8_t type = payload[0];
    size_t pos = 1;
    switch (type) {
      case kBeginFrame: {
        uint64_t id = 0;
        if (!GetVarint64(payload.data(), payload.size(), &pos, &id)) {
          return Status::Corruption("bad WAL begin frame");
        }
        pending.clear();
        have_begin = true;
        begin_id = id;
        break;
      }
      case kPageImageFrame: {
        if (!have_begin) {
          return Status::Corruption("WAL page image outside a batch");
        }
        if (pos >= payload.size()) {
          return Status::Corruption("bad WAL page image frame");
        }
        PendingOp op;
        op.store_id = payload[pos++];
        uint32_t page = 0;
        if (!GetVarint32(payload.data(), payload.size(), &pos, &page) ||
            payload.size() - pos != kPageSize) {
          return Status::Corruption("bad WAL page image frame");
        }
        op.page = page;
        op.image = std::make_unique<Page>();
        std::memcpy(op.image->data.data(), payload.data() + pos, kPageSize);
        pending.push_back(std::move(op));
        break;
      }
      case kTruncateFrame: {
        if (!have_begin) {
          return Status::Corruption("WAL truncate outside a batch");
        }
        if (pos >= payload.size()) {
          return Status::Corruption("bad WAL truncate frame");
        }
        PendingOp op;
        op.is_truncate = true;
        op.store_id = payload[pos++];
        uint32_t count = 0;
        if (!GetVarint32(payload.data(), payload.size(), &pos, &count)) {
          return Status::Corruption("bad WAL truncate frame");
        }
        op.page = count;
        pending.push_back(std::move(op));
        break;
      }
      case kCommitFrame: {
        uint64_t id = 0;
        uint64_t frames = 0;
        if (!GetVarint64(payload.data(), payload.size(), &pos, &id) ||
            !GetVarint64(payload.data(), payload.size(), &pos, &frames)) {
          return Status::Corruption("bad WAL commit frame");
        }
        if (!have_begin || id != begin_id || frames != pending.size()) {
          return Status::Corruption("WAL commit does not match its batch");
        }
        for (const PendingOp& op : pending) {
          PageStore* target = resolve(op.store_id);
          if (target == nullptr) {
            return Status::Corruption("WAL frame names unknown store " +
                                      std::to_string(op.store_id));
          }
          if (op.is_truncate) {
            XKS_RETURN_NOT_OK(target->Truncate(op.page));
          } else {
            if (op.page >= target->page_count()) {
              XKS_RETURN_NOT_OK(target->Truncate(op.page + 1));
            }
            XKS_RETURN_NOT_OK(target->WritePage(op.page, *op.image));
          }
          if (std::find(touched.begin(), touched.end(), target) ==
              touched.end()) {
            touched.push_back(target);
          }
        }
        ++stats.batches_applied;
        stats.frames_applied += pending.size();
        pending.clear();
        have_begin = false;
        break;
      }
      default:
        return Status::Corruption("unknown WAL frame type " +
                                  std::to_string(type));
    }
  }
  XKS_RETURN_NOT_OK(scanner.status());
  stats.bytes_scanned = scanner.position();

  // Make the replayed images durable before discarding the log: the
  // mirror of Commit()'s barrier, in the opposite direction.
  for (PageStore* store : touched) {
    XKS_RETURN_NOT_OK(store->Sync());
  }
  XKS_RETURN_NOT_OK(Reset());
  return stats;
}

Status Wal::Reset() {
  in_batch_ = false;
  if (length_ == 0 && store_->page_count() == 0) return Status::OK();
  XKS_RETURN_NOT_OK(store_->Truncate(0));
  XKS_RETURN_NOT_OK(store_->Sync());
  length_ = 0;
  tail_.Zero();
  return Status::OK();
}

Status StagedPageStore::ReadPage(PageId id, Page* out) {
  if (id >= logical_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  auto it = staged_.find(id);
  if (it != staged_.end()) {
    *out = *it->second;
    return Status::OK();
  }
  if (id >= inner_visible_) {
    out->Zero();
    return Status::OK();
  }
  return inner_->ReadPage(id, out);
}

Status StagedPageStore::WritePage(PageId id, const Page& page) {
  if (id >= logical_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " out of range");
  }
  auto it = staged_.find(id);
  if (it == staged_.end()) {
    it = staged_.emplace(id, std::make_unique<Page>()).first;
  }
  *it->second = page;
  return Status::OK();
}

Result<PageId> StagedPageStore::AllocatePage() {
  const PageId id = logical_count_++;
  auto page = std::make_unique<Page>();
  page->Zero();
  staged_.emplace(id, std::move(page));
  return id;
}

Status StagedPageStore::Truncate(PageId page_count) {
  if (page_count < logical_count_) {
    staged_.erase(staged_.lower_bound(page_count), staged_.end());
    inner_visible_ = std::min(inner_visible_, page_count);
  } else {
    for (PageId id = logical_count_; id < page_count; ++id) {
      auto page = std::make_unique<Page>();
      page->Zero();
      staged_.emplace(id, std::move(page));
    }
  }
  logical_count_ = page_count;
  return Status::OK();
}

std::vector<PageId> StagedPageStore::StagedPageIds() const {
  std::vector<PageId> ids;
  ids.reserve(staged_.size());
  for (const auto& [id, page] : staged_) ids.push_back(id);
  return ids;
}

const Page* StagedPageStore::StagedPage(PageId id) const {
  auto it = staged_.find(id);
  return it == staged_.end() ? nullptr : it->second.get();
}

}  // namespace xksearch
