#include "storage/buffer_pool.h"

#include <algorithm>
#include <thread>

namespace xksearch {

namespace {

/// Default shard count when the caller does not choose one. 16 mutexes
/// is plenty for the worker counts the serve layer runs (contention on a
/// shard needs two queries hashing to it in the same instant).
constexpr size_t kDefaultMaxShards = 16;

/// Auto-sharding keeps at least this many frames per shard. Concurrent
/// queries pin pages (cursor leaves, descent path) for their duration;
/// a shard with only 1-2 frames exhausts as soon as two pins collide,
/// so tiny pools get fewer shards rather than unusably small ones.
constexpr size_t kMinFramesPerShard = 8;

/// How many times a miss yields and retries when every frame in its
/// shard is pinned, before reporting exhaustion. Pins are typically
/// held for microseconds (a cursor advancing off a leaf), so transient
/// collisions resolve almost immediately; a pool genuinely too small
/// for its concurrent pin load still fails, just not spuriously.
constexpr size_t kMaxEvictYields = 256;

}  // namespace

BufferPool::BufferPool(PageStore* store, size_t capacity, size_t shards)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity) {
  size_t n = shards == 0
                 ? std::min(kDefaultMaxShards,
                            std::max<size_t>(1, capacity_ / kMinFramesPerShard))
                 : shards;
  // Every shard must own at least one frame, or pages hashing to an
  // empty shard could never be cached at all.
  n = std::max<size_t>(1, std::min(n, capacity_));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = capacity_ / n + (i < capacity_ % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

Result<BufferPool::Frame*> BufferPool::PinFrame(PageId id, QueryStats* stats,
                                                bool mark_dirty) {
  Shard& shard = ShardFor(id);
  size_t yields = 0;
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame& frame = it->second;
      if (frame.loading) {
        // Another thread's read is in flight: coalesce onto it. Hold the
        // shared LoadState (the frame itself is erased if the read
        // fails) and wait for the loader's verdict; a failed load wakes
        // every waiter with the loader's error instead of letting each
        // waiter silently re-issue the read.
        std::shared_ptr<internal::LoadState> load = frame.load;
        shard.cv.wait(lock, [&load] { return load->done; });
        if (!load->status.ok()) return load->status;
        continue;  // re-find: the frame is resident now (or evicted; retry)
      }
      frame.pin_count.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, frame.lru_pos);
      if (mark_dirty) frame.dirty = true;
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->page_hits;
      return &frame;
    }

    // Miss: make room, then read with the shard unlocked so concurrent
    // misses (and all hits) on this shard proceed meanwhile.
    bool full = false;
    while (shard.frames.size() >= shard.capacity) {
      const Status evicted = EvictOneLocked(&shard);
      if (evicted.ok()) continue;
      if (!evicted.IsInternal() || yields >= kMaxEvictYields) return evicted;
      // Every frame is pinned or loading right now. Yield with the
      // shard unlocked so the pinning queries can progress, then retry
      // from the top (the page may even be resident by then).
      ++yields;
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
      full = true;
      break;
    }
    if (full) continue;
    total_misses_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) ++stats->page_reads;

    Frame& frame = shard.frames[id];
    frame.page = std::make_unique<Page>();
    frame.pin_count.store(1, std::memory_order_relaxed);
    frame.loading = true;
    frame.load = std::make_shared<internal::LoadState>();
    std::shared_ptr<internal::LoadState> load = frame.load;
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();

    lock.unlock();
    const Status read = store_->ReadPage(id, frame.page.get());
    lock.lock();
    // The frame cannot have moved or been evicted meanwhile: map nodes
    // have stable addresses and eviction skips loading frames.
    load->done = true;
    load->status = read;
    if (!read.ok()) {
      shard.lru.erase(frame.lru_pos);
      shard.frames.erase(id);
      shard.cv.notify_all();
      return read;
    }
    frame.loading = false;
    frame.load.reset();
    if (mark_dirty) frame.dirty = true;
    shard.cv.notify_all();
    return &frame;
  }
}

Status BufferPool::EvictOneLocked(Shard* shard) {
  // Walk from the cold end, skipping frames that are pinned (the
  // release-ordered unpin decrement pairs with this acquire load, so a
  // just-released writer's page bytes are visible to the write-back) or
  // still loading.
  for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
    auto fit = shard->frames.find(*it);
    Frame& frame = fit->second;
    if (frame.loading) continue;
    if (frame.pin_count.load(std::memory_order_acquire) > 0) continue;
    if (frame.dirty) {
      XKS_RETURN_NOT_OK(store_->WritePage(*it, *frame.page));
    }
    shard->lru.erase(std::next(it).base());
    shard->frames.erase(fit);
    return Status::OK();
  }
  return Status::Internal("buffer pool exhausted: all pages pinned");
}

Result<std::vector<PageRef>> BufferPool::FetchMany(std::span<const PageId> ids,
                                                   QueryStats* stats) {
  std::vector<PageRef> out;
  if (ids.empty()) return out;
  std::vector<PageId> unique(ids.begin(), ids.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  // One in-flight placeholder staked by this batch.
  struct Pending {
    PageId id;
    Frame* frame;
    std::shared_ptr<internal::LoadState> load;
  };
  std::vector<Pending> loads;
  // Frames holding exactly one pin taken on this batch's behalf.
  std::vector<std::pair<PageId, Frame*>> held;
  // Pages deferred to the per-page path: already loading under another
  // thread (wait on its LoadState) or in a momentarily all-pinned shard
  // (PinFrame's yield-retry loop handles that).
  std::vector<PageId> slow;

  // Retires every staked placeholder with `st` and wakes its waiters;
  // without this, an early error return would leave loading frames no
  // one will ever complete.
  auto fail_loads = [&](const Status& st) {
    for (Pending& p : loads) {
      Shard& shard = ShardFor(p.id);
      std::lock_guard<std::mutex> lock(shard.mu);
      p.load->done = true;
      p.load->status = st;
      shard.lru.erase(p.frame->lru_pos);
      shard.frames.erase(p.id);
      shard.cv.notify_all();
    }
    loads.clear();
  };
  auto drop_held = [&] {
    for (auto& [id, frame] : held) {
      frame->pin_count.fetch_sub(1, std::memory_order_release);
    }
    held.clear();
  };

  // Phase 1: under each shard lock, pin residents and stake pinned
  // loading placeholders for absent pages (evicting cold frames as
  // needed, exactly like a demand miss).
  for (const PageId id : unique) {
    Shard& shard = ShardFor(id);
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame& frame = it->second;
      if (frame.loading) {
        slow.push_back(id);
        continue;
      }
      frame.pin_count.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, frame.lru_pos);
      total_hits_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->page_hits;
      held.emplace_back(id, &frame);
      continue;
    }
    bool staked = true;
    while (shard.frames.size() >= shard.capacity) {
      const Status evicted = EvictOneLocked(&shard);
      if (evicted.ok()) continue;
      if (evicted.IsInternal()) {
        // Everything pinned right now (possibly by this very batch in a
        // tiny shard): let PinFrame's yield loop sort it out later.
        slow.push_back(id);
        staked = false;
        break;
      }
      // Dirty write-back failed: abort the whole batch.
      lock.unlock();
      fail_loads(evicted);
      drop_held();
      if (stats != nullptr) ++stats->io_errors;
      return evicted;
    }
    if (!staked) continue;
    total_misses_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) ++stats->page_reads;
    Frame& frame = shard.frames[id];
    frame.page = std::make_unique<Page>();
    frame.pin_count.store(1, std::memory_order_relaxed);
    frame.loading = true;
    frame.load = std::make_shared<internal::LoadState>();
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();
    loads.push_back({id, &frame, frame.load});
  }

  // Phase 2: one vectored read for every staked page. `loads` follows
  // `unique`'s order, so the id array is already sorted for ReadPages'
  // contiguous-run batching.
  if (!loads.empty()) {
    std::vector<PageId> load_ids;
    std::vector<Page*> load_pages;
    load_ids.reserve(loads.size());
    load_pages.reserve(loads.size());
    for (const Pending& p : loads) {
      load_ids.push_back(p.id);
      load_pages.push_back(p.frame->page.get());
    }
    const Status read =
        store_->ReadPages(load_ids.data(), load_ids.size(), load_pages.data());
    if (!read.ok()) {
      fail_loads(read);
      drop_held();
      if (stats != nullptr) ++stats->io_errors;
      return read;
    }
    for (Pending& p : loads) {
      Shard& shard = ShardFor(p.id);
      std::lock_guard<std::mutex> lock(shard.mu);
      p.load->done = true;
      p.frame->loading = false;
      p.frame->load.reset();
      held.emplace_back(p.id, p.frame);
      shard.cv.notify_all();
    }
    loads.clear();
  }

  // Phase 3: the deferred pages, one at a time (waits and yields happen
  // here, after the batch I/O is already in flight or done).
  for (const PageId id : slow) {
    Result<Frame*> frame = PinFrame(id, stats, /*mark_dirty=*/false);
    if (!frame.ok()) {
      drop_held();
      if (stats != nullptr) ++stats->io_errors;
      return frame.status();
    }
    held.emplace_back(id, *frame);
  }

  // Phase 4: hand the held pins over to the output refs in input order;
  // duplicate ids pin their frame once more.
  std::unordered_map<PageId, std::pair<Frame*, bool>> by_id;
  by_id.reserve(held.size());
  for (auto& [id, frame] : held) by_id.emplace(id, std::make_pair(frame, false));
  out.reserve(ids.size());
  for (const PageId id : ids) {
    auto& [frame, consumed] = by_id.at(id);
    if (consumed) frame->pin_count.fetch_add(1, std::memory_order_relaxed);
    consumed = true;
    out.emplace_back(id, frame);
  }
  return out;
}

Result<PageRef> BufferPool::Fetch(PageId id, QueryStats* stats) {
  Result<Frame*> frame = PinFrame(id, stats, /*mark_dirty=*/false);
  if (!frame.ok()) {
    if (stats != nullptr) ++stats->io_errors;
    return frame.status();
  }
  return PageRef(id, *frame);
}

Result<MutPageRef> BufferPool::FetchMut(PageId id, QueryStats* stats) {
  Result<Frame*> frame = PinFrame(id, stats, /*mark_dirty=*/true);
  if (!frame.ok()) {
    if (stats != nullptr) ++stats->io_errors;
    return frame.status();
  }
  return MutPageRef(id, *frame);
}

Result<MutPageRef> BufferPool::NewPage() {
  XKS_ASSIGN_OR_RETURN(const PageId id, store_->AllocatePage());
  return FetchMut(id);
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (!frame.dirty || frame.loading) continue;
      XKS_RETURN_NOT_OK(store_->WritePage(id, *frame.page));
      frame.dirty = false;
    }
  }
  return store_->Sync();
}

Status BufferPool::DropAll() {
  // Lock every shard (always in index order, so DropAll never deadlocks
  // against itself; fetches only ever take one shard lock at a time).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);

  // Verify no page is pinned before dropping anything, so a failed drop
  // leaves the cache fully intact.
  for (auto& shard : shards_) {
    for (auto& [id, frame] : shard->frames) {
      if (frame.loading ||
          frame.pin_count.load(std::memory_order_acquire) > 0) {
        return Status::Internal("cannot drop buffer pool: page " +
                                std::to_string(id) + " is pinned");
      }
    }
  }
  for (auto& shard : shards_) {
    for (auto& [id, frame] : shard->frames) {
      if (!frame.dirty) continue;
      XKS_RETURN_NOT_OK(store_->WritePage(id, *frame.page));
      frame.dirty = false;
    }
    shard->frames.clear();
    shard->lru.clear();
  }
  return store_->Sync();
}

Result<bool> BufferPool::LoadIfAbsent(PageId id, bool evict_if_full) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock(shard.mu);
  // If the page is already resident (or being read), do nothing.
  if (shard.frames.count(id) != 0) return false;
  while (shard.frames.size() >= shard.capacity) {
    // Speculative loads never fight pinned pages: when eviction finds
    // nothing evictable (or is disallowed), skip the load entirely.
    if (!evict_if_full || !EvictOneLocked(&shard).ok()) return false;
  }

  Frame& frame = shard.frames[id];
  frame.page = std::make_unique<Page>();
  frame.loading = true;
  // Demand fetches can coalesce onto a speculative load (PinFrame waits
  // on any loading frame), so speculative loads publish their outcome
  // through the same shared LoadState protocol.
  frame.load = std::make_shared<internal::LoadState>();
  std::shared_ptr<internal::LoadState> load = frame.load;
  shard.lru.push_front(id);
  frame.lru_pos = shard.lru.begin();

  lock.unlock();
  const Status read = store_->ReadPage(id, frame.page.get());
  lock.lock();
  load->done = true;
  load->status = read;
  if (!read.ok()) {
    shard.lru.erase(frame.lru_pos);
    shard.frames.erase(id);
    shard.cv.notify_all();
    return read;
  }
  frame.loading = false;
  frame.load.reset();
  shard.cv.notify_all();
  return true;
}

Status BufferPool::WarmAll() {
  const PageId n = store_->page_count();
  store_->Prefetch(0, static_cast<size_t>(n));
  for (PageId id = 0; id < n; ++id) {
    XKS_ASSIGN_OR_RETURN(const bool loaded,
                         LoadIfAbsent(id, /*evict_if_full=*/false));
    if (loaded) total_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void BufferPool::Readahead(PageId first, size_t count, QueryStats* stats) {
  const PageId n = store_->page_count();
  if (count == 0 || first >= n) return;
  count = std::min(count, static_cast<size_t>(n - first));
  store_->Prefetch(first, count);

  // Stake unpinned loading placeholders for whichever of the pages are
  // absent, then satisfy them all with one vectored store read instead
  // of `count` independent round-trips. Demand fetches arriving mid-read
  // coalesce onto the placeholders' LoadState exactly as before.
  struct Pending {
    PageId id;
    Frame* frame;
    std::shared_ptr<internal::LoadState> load;
  };
  std::vector<Pending> loads;
  for (size_t i = 0; i < count; ++i) {
    const PageId id = first + static_cast<PageId>(i);
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.frames.count(id) != 0) continue;
    bool room = true;
    while (shard.frames.size() >= shard.capacity) {
      // Speculative loads never fight pinned pages: when eviction finds
      // nothing evictable, skip this page entirely.
      if (!EvictOneLocked(&shard).ok()) {
        room = false;
        break;
      }
    }
    if (!room) continue;
    Frame& frame = shard.frames[id];
    frame.page = std::make_unique<Page>();
    frame.loading = true;
    frame.load = std::make_shared<internal::LoadState>();
    shard.lru.push_front(id);
    frame.lru_pos = shard.lru.begin();
    loads.push_back({id, &frame, frame.load});
  }
  if (loads.empty()) return;

  std::vector<PageId> ids;
  std::vector<Page*> pages;
  ids.reserve(loads.size());
  pages.reserve(loads.size());
  for (const Pending& p : loads) {
    ids.push_back(p.id);
    pages.push_back(p.frame->page.get());
  }
  const Status read = store_->ReadPages(ids.data(), ids.size(), pages.data());
  for (Pending& p : loads) {
    Shard& shard = ShardFor(p.id);
    std::lock_guard<std::mutex> lock(shard.mu);
    p.load->done = true;
    p.load->status = read;
    if (read.ok()) {
      p.frame->loading = false;
      p.frame->load.reset();
      total_readaheads_.fetch_add(1, std::memory_order_relaxed);
      if (stats != nullptr) ++stats->readahead_reads;
    } else {
      // Best effort: a failed speculative batch just means the demand
      // fetches will retry (and surface the error then, if it
      // persists). The swallowed failures are still tallied per page so
      // they show up in stats.
      shard.lru.erase(p.frame->lru_pos);
      shard.frames.erase(p.id);
      if (stats != nullptr) ++stats->io_errors;
    }
    shard.cv.notify_all();
  }
}

size_t BufferPool::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

uint64_t BufferPool::DebugTotalPins() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, frame] : shard->frames) {
      total += frame.pin_count.load(std::memory_order_acquire);
    }
  }
  return total;
}

}  // namespace xksearch
