#include "storage/buffer_pool.h"

#include <cassert>

namespace xksearch {

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

void MutPageRef::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity) {}

Result<Page*> BufferPool::PinFrame(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++total_hits_;
    if (stats_ != nullptr) ++stats_->page_hits;
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return frame.page.get();
  }

  ++total_misses_;
  if (stats_ != nullptr) ++stats_->page_reads;

  while (frames_.size() >= capacity_) {
    Status evicted = EvictOne();
    if (evicted.IsNotFound()) {
      return Status::Internal("buffer pool exhausted: all pages pinned");
    }
    XKS_RETURN_NOT_OK(evicted);
  }

  auto page = std::make_unique<Page>();
  XKS_RETURN_NOT_OK(store_->ReadPage(id, page.get()));
  Frame frame;
  frame.page = std::move(page);
  frame.pin_count = 1;
  Page* raw = frame.page.get();
  frames_.emplace(id, std::move(frame));
  return raw;
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  XKS_ASSIGN_OR_RETURN(Page* page, PinFrame(id));
  return PageRef(this, id, page);
}

Result<MutPageRef> BufferPool::FetchMut(PageId id) {
  XKS_ASSIGN_OR_RETURN(Page* page, PinFrame(id));
  frames_.find(id)->second.dirty = true;
  return MutPageRef(this, id, page);
}

Result<MutPageRef> BufferPool::NewPage() {
  XKS_ASSIGN_OR_RETURN(const PageId id, store_->AllocatePage());
  return FetchMut(id);
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (!frame.dirty) continue;
    XKS_RETURN_NOT_OK(store_->WritePage(id, *frame.page));
    frame.dirty = false;
  }
  return store_->Sync();
}

void BufferPool::Unpin(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  Frame& frame = it->second;
  assert(frame.pin_count > 0);
  --frame.pin_count;
  if (frame.pin_count == 0) {
    lru_.push_front(id);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::NotFound("no evictable frame");
  }
  const PageId victim = lru_.back();
  auto it = frames_.find(victim);
  assert(it != frames_.end());
  if (it->second.dirty) {
    XKS_RETURN_NOT_OK(store_->WritePage(victim, *it->second.page));
  }
  lru_.pop_back();
  frames_.erase(it);
  return Status::OK();
}

Status BufferPool::DropAll() {
  for (const auto& [id, frame] : frames_) {
    if (frame.pin_count > 0) {
      return Status::Internal("cannot drop buffer pool: page " +
                              std::to_string(id) + " is pinned");
    }
  }
  XKS_RETURN_NOT_OK(FlushAll());
  frames_.clear();
  lru_.clear();
  return Status::OK();
}

Status BufferPool::WarmAll() {
  const PageId n = store_->page_count();
  for (PageId id = 0; id < n && frames_.size() < capacity_; ++id) {
    if (frames_.count(id)) continue;
    XKS_ASSIGN_OR_RETURN(PageRef ref, Fetch(id));
    ref.Release();
  }
  return Status::OK();
}

}  // namespace xksearch
