#ifndef XKSEARCH_STORAGE_PAGE_H_
#define XKSEARCH_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace xksearch {

/// Fixed page size for all disk structures. 4 KiB matches the filesystem
/// block size the paper's Berkeley DB deployment used.
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// \brief A page-sized byte buffer with little-endian scalar accessors.
struct Page {
  std::array<uint8_t, kPageSize> data;

  void Zero() { data.fill(0); }

  uint8_t ReadU8(size_t off) const { return data[off]; }
  void WriteU8(size_t off, uint8_t v) { data[off] = v; }

  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU16(size_t off, uint16_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }

  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU32(size_t off, uint32_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }

  uint64_t ReadU64(size_t off) const {
    uint64_t v;
    std::memcpy(&v, data.data() + off, sizeof(v));
    return v;
  }
  void WriteU64(size_t off, uint64_t v) {
    std::memcpy(data.data() + off, &v, sizeof(v));
  }

  const uint8_t* bytes(size_t off) const { return data.data() + off; }
  uint8_t* bytes(size_t off) { return data.data() + off; }
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_PAGE_H_
