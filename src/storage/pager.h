#ifndef XKSEARCH_STORAGE_PAGER_H_
#define XKSEARCH_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace xksearch {

/// \brief Abstract store of fixed-size pages; the raw-device layer under
/// the buffer pool.
///
/// Thread-safety contract: concurrent ReadPage calls (including of the
/// same page) are safe. WritePage/AllocatePage are only issued by
/// single-threaded writers (builders, the updater) or by the buffer pool
/// under its shard locks, never concurrently with each other for the
/// same page.
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual Status ReadPage(PageId id, Page* out) = 0;
  virtual Status WritePage(PageId id, const Page& page) = 0;
  /// Appends a zeroed page, returning its id.
  virtual Result<PageId> AllocatePage() = 0;
  virtual PageId page_count() const = 0;
  virtual Status Sync() = 0;

  /// Sets the store to exactly `page_count` pages (ftruncate semantics:
  /// shrinking discards the tail, growing appends zeroed pages). Crash
  /// recovery uses this to pin a store to the size its committed batch
  /// recorded; stores that cannot resize report NotSupported.
  virtual Status Truncate(PageId page_count) {
    (void)page_count;
    return Status::NotSupported("this page store cannot be truncated");
  }

  /// Advisory: the caller intends to read `count` pages starting at
  /// `first` soon. File-backed stores forward the hint to the OS page
  /// cache so the reads overlap; default is a no-op.
  virtual void Prefetch(PageId first, size_t count) {
    (void)first;
    (void)count;
  }

  /// Reads `count` pages in one call: ids[i] lands in *pages[i]. `ids`
  /// must be sorted ascending with no duplicates (the buffer pool sorts
  /// its batch before calling). The default loops ReadPage — so wrapper
  /// stores (fault injection, staging) keep their per-page semantics
  /// without overriding — while file-backed stores batch physically
  /// contiguous runs into single vectored reads.
  virtual Status ReadPages(const PageId* ids, size_t count,
                           Page* const* pages) {
    for (size_t i = 0; i < count; ++i) {
      XKS_RETURN_NOT_OK(ReadPage(ids[i], pages[i]));
    }
    return Status::OK();
  }
};

/// \brief File-backed page store over a raw file descriptor.
///
/// Reads and writes use pread/pwrite, so any number of threads can read
/// pages concurrently without seek-pointer races — the property the
/// sharded buffer pool's parallel miss path relies on.
class FilePageStore : public PageStore {
 public:
  /// Opens (mode "open") or creates/truncates (mode "create") `path`.
  static Result<std::unique_ptr<FilePageStore>> Create(const std::string& path);
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override {
    return page_count_.load(std::memory_order_acquire);
  }
  Status Sync() override;
  Status Truncate(PageId page_count) override;
  void Prefetch(PageId first, size_t count) override;
  /// Contiguous runs of the sorted id batch become one preadv each, so a
  /// cold batch of B adjacent leaves costs one syscall round-trip, not B.
  Status ReadPages(const PageId* ids, size_t count,
                   Page* const* pages) override;

  const std::string& path() const { return path_; }

 private:
  FilePageStore(std::string path, int fd, PageId page_count)
      : path_(std::move(path)), fd_(fd), page_count_(page_count) {}

  std::string path_;
  int fd_;
  std::atomic<PageId> page_count_;
};

/// \brief In-memory page store for tests and fully-cached ("hot") setups.
///
/// Concurrent ReadPage is safe once building is done: page buffers are
/// heap-allocated (stable addresses) and the slot vector only grows
/// during the single-threaded build phase.
class MemPageStore : public PageStore {
 public:
  MemPageStore() = default;

  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status Sync() override { return Status::OK(); }
  Status Truncate(PageId page_count) override;

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_PAGER_H_
