#ifndef XKSEARCH_STORAGE_PAGER_H_
#define XKSEARCH_STORAGE_PAGER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/page.h"

namespace xksearch {

/// \brief Abstract store of fixed-size pages; the raw-device layer under
/// the buffer pool.
class PageStore {
 public:
  virtual ~PageStore() = default;

  virtual Status ReadPage(PageId id, Page* out) = 0;
  virtual Status WritePage(PageId id, const Page& page) = 0;
  /// Appends a zeroed page, returning its id.
  virtual Result<PageId> AllocatePage() = 0;
  virtual PageId page_count() const = 0;
  virtual Status Sync() = 0;
};

/// \brief File-backed page store.
class FilePageStore : public PageStore {
 public:
  /// Opens (mode "open") or creates/truncates (mode "create") `path`.
  static Result<std::unique_ptr<FilePageStore>> Create(const std::string& path);
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override { return page_count_; }
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  FilePageStore(std::string path, std::FILE* file, PageId page_count)
      : path_(std::move(path)), file_(file), page_count_(page_count) {}

  std::string path_;
  std::FILE* file_;
  PageId page_count_;
};

/// \brief In-memory page store for tests and fully-cached ("hot") setups.
class MemPageStore : public PageStore {
 public:
  MemPageStore() = default;

  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }
  Status Sync() override { return Status::OK(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_PAGER_H_
