#include "storage/disk_index.h"

#include <sys/stat.h>

#include <cstring>
#include <utility>

#include "common/bitio.h"

namespace xksearch {

namespace {

// Index metadata blob: level table + codec flags.
constexpr uint8_t kMetaFormatVersion = 2;

// WAL frame store ids (stable on-disk protocol, do not renumber).
constexpr uint8_t kWalStoreIl = 0;
constexpr uint8_t kWalStoreScan = 1;
constexpr uint8_t kWalStoreDict = 2;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Opens `<prefix>.wal` (creating it when `create` allows) through the
// options' store decorator, like every other store of the index.
Result<std::unique_ptr<Wal>> OpenWalFile(const std::string& path_prefix,
                                         const DiskIndexOptions& options,
                                         bool create) {
  const std::string path = path_prefix + ".wal";
  std::unique_ptr<PageStore> store;
  if (FileExists(path)) {
    XKS_ASSIGN_OR_RETURN(store, FilePageStore::Open(path));
  } else if (create) {
    XKS_ASSIGN_OR_RETURN(store, FilePageStore::Create(path));
  } else {
    return Status::NotFound("no write-ahead log at " + path);
  }
  if (options.store_decorator) {
    store = options.store_decorator(std::move(store), "wal");
  }
  return Wal::Open(std::move(store));
}

// Records a crash recovery in the process-wide counters, but only when
// the replay actually applied something: an empty (already-reset) log is
// the normal state after every clean Finish.
void RecordRecovery(const WalRecoveryStats& stats) {
  if (stats.batches_applied == 0) return;
  WalCounters& counters = WalCounters::Instance();
  counters.recoveries.fetch_add(1, std::memory_order_relaxed);
  counters.batches_replayed.fetch_add(stats.batches_applied,
                                      std::memory_order_relaxed);
  counters.bytes_replayed.fetch_add(stats.bytes_scanned,
                                    std::memory_order_relaxed);
}

void AppendBigEndian32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>((v >> 24) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

bool HasTermPrefix(std::string_view key, uint32_t term) {
  if (key.size() < 4) return false;
  std::string prefix;
  AppendBigEndian32(term, &prefix);
  return key.substr(0, 4) == prefix;
}

std::vector<uint8_t> EncodeIndexMeta(const LevelTable& table,
                                     bool compress_dewey, bool delta_compress,
                                     uint64_t total_postings,
                                     const TokenizerOptions& tokenizer) {
  std::vector<uint8_t> out;
  out.push_back(kMetaFormatVersion);
  out.push_back(compress_dewey ? 1 : 0);
  out.push_back(delta_compress ? 1 : 0);
  PutVarint64(&out, total_postings);
  out.push_back(tokenizer.lowercase ? 1 : 0);
  PutVarint64(&out, tokenizer.min_length);
  table.EncodeTo(&out);
  return out;
}

struct IndexMeta {
  LevelTable table;
  bool compress_dewey;
  bool delta_compress;
  uint64_t total_postings;
  TokenizerOptions tokenizer;
};

Result<IndexMeta> DecodeIndexMeta(const std::vector<uint8_t>& blob) {
  if (blob.size() < 3 || blob[0] != kMetaFormatVersion) {
    return Status::Corruption("bad index metadata header");
  }
  IndexMeta meta;
  meta.compress_dewey = blob[1] != 0;
  meta.delta_compress = blob[2] != 0;
  size_t pos = 3;
  if (!GetVarint64(blob.data(), blob.size(), &pos, &meta.total_postings)) {
    return Status::Corruption("bad index metadata postings count");
  }
  if (pos >= blob.size()) {
    return Status::Corruption("bad index metadata tokenizer flags");
  }
  meta.tokenizer.lowercase = blob[pos++] != 0;
  uint64_t min_length = 0;
  if (!GetVarint64(blob.data(), blob.size(), &pos, &min_length)) {
    return Status::Corruption("bad index metadata tokenizer min length");
  }
  meta.tokenizer.min_length = static_cast<size_t>(min_length);
  XKS_ASSIGN_OR_RETURN(meta.table,
                       LevelTable::DecodeFrom(blob.data(), blob.size(), &pos));
  return meta;
}

}  // namespace

void DiskIndex::EncodeIlKey(const DeweyCodec& codec, uint32_t term,
                            const DeweyId& id, std::string* out) {
  out->clear();
  AppendBigEndian32(term, out);
  std::vector<uint8_t> enc = codec.Encode(id);
  out->append(reinterpret_cast<const char*>(enc.data()), enc.size());
}

Result<std::unique_ptr<DiskIndex>> DiskIndex::Build(
    const InvertedIndex& src, const std::string& path_prefix,
    const DiskIndexOptions& options) {
  std::unique_ptr<DiskIndex> index(new DiskIndex());

  if (options.in_memory) {
    index->il_store_ = std::make_unique<MemPageStore>();
    index->scan_store_ = std::make_unique<MemPageStore>();
    index->dict_store_ = std::make_unique<MemPageStore>();
  } else {
    XKS_ASSIGN_OR_RETURN(index->il_store_,
                         FilePageStore::Create(path_prefix + ".il"));
    XKS_ASSIGN_OR_RETURN(index->scan_store_,
                         FilePageStore::Create(path_prefix + ".scan"));
    XKS_ASSIGN_OR_RETURN(index->dict_store_,
                         FilePageStore::Create(path_prefix + ".dict"));
  }
  if (options.store_decorator) {
    index->il_store_ =
        options.store_decorator(std::move(index->il_store_), "il");
    index->scan_store_ =
        options.store_decorator(std::move(index->scan_store_), "scan");
    index->dict_store_ =
        options.store_decorator(std::move(index->dict_store_), "dict");
  }

  const LevelTable& table =
      options.compress_dewey ? src.level_table() : LevelTable();
  const DeweyCodec codec(table);
  const std::vector<uint8_t> meta = EncodeIndexMeta(
      table, options.compress_dewey, options.delta_compress,
      src.total_postings(), src.options().tokenizer);

  const std::vector<std::string> terms = src.Terms();

  // Dictionary tree: term -> (id, frequency). Terms are sorted, and ids
  // are assigned in that order, so all three trees load in key order.
  {
    BPlusTreeBuilder builder(index->dict_store_.get());
    for (uint32_t id = 0; id < terms.size(); ++id) {
      const PackedDeweyList* list = src.Find(terms[id]);
      std::vector<uint8_t> value;
      PutVarint32(&value, id);
      PutVarint64(&value, list->size());
      XKS_RETURN_NOT_OK(builder.Add(
          terms[id], std::string_view(reinterpret_cast<const char*>(
                                          value.data()),
                                      value.size())));
    }
    XKS_RETURN_NOT_OK(builder.Finish());
  }

  // Indexed Lookup tree: composite (term, Dewey) keys, empty values.
  {
    BPlusTreeBuilder builder(index->il_store_.get());
    builder.SetMetadata(meta);
    std::string key;
    for (uint32_t id = 0; id < terms.size(); ++id) {
      PackedDeweyList::Decoder postings(src.Find(terms[id]));
      DeweyId node;
      while (postings.Next(&node)) {
        EncodeIlKey(codec, id, node, &key);
        XKS_RETURN_NOT_OK(builder.Add(key, ""));
      }
    }
    XKS_RETURN_NOT_OK(builder.Finish());
  }

  // Scan tree: (term, first Dewey id of the block) -> delta-compressed
  // run of ids. Keying blocks by their first id (rather than a block
  // ordinal) lets the incremental updater locate, split and re-key
  // blocks with ordinary tree operations.
  {
    BPlusTreeBuilder builder(index->scan_store_.get());
    builder.SetMetadata(meta);
    std::string key;
    for (uint32_t id = 0; id < terms.size(); ++id) {
      DeltaBlockEncoder block(options.delta_compress);
      bool have_first = false;
      auto flush = [&]() -> Status {
        if (block.count() == 0) return Status::OK();
        const std::vector<uint8_t> payload = block.Finish();
        have_first = false;
        return builder.Add(
            key, std::string_view(
                     reinterpret_cast<const char*>(payload.data()),
                     payload.size()));
      };
      PackedDeweyList::Decoder postings(src.Find(terms[id]));
      DeweyId node;
      while (postings.Next(&node)) {
        if (!have_first) {
          EncodeIlKey(codec, id, node, &key);
          have_first = true;
        }
        block.Append(node);
        if (block.SizeBytes() >= options.scan_block_bytes) {
          XKS_RETURN_NOT_OK(flush());
        }
      }
      XKS_RETURN_NOT_OK(flush());
    }
    XKS_RETURN_NOT_OK(builder.Finish());
  }

  XKS_RETURN_NOT_OK(index->InitTreesAndDict(options));
  return index;
}

Result<std::unique_ptr<DiskIndex>> DiskIndex::Open(
    const std::string& path_prefix, const DiskIndexOptions& options) {
  if (options.in_memory) {
    return Status::InvalidArgument(
        "an in-memory index cannot be reopened; use Build");
  }
  std::unique_ptr<DiskIndex> index(new DiskIndex());
  XKS_ASSIGN_OR_RETURN(index->il_store_,
                       FilePageStore::Open(path_prefix + ".il"));
  XKS_ASSIGN_OR_RETURN(index->scan_store_,
                       FilePageStore::Open(path_prefix + ".scan"));
  XKS_ASSIGN_OR_RETURN(index->dict_store_,
                       FilePageStore::Open(path_prefix + ".dict"));
  if (options.store_decorator) {
    index->il_store_ =
        options.store_decorator(std::move(index->il_store_), "il");
    index->scan_store_ =
        options.store_decorator(std::move(index->scan_store_), "scan");
    index->dict_store_ =
        options.store_decorator(std::move(index->dict_store_), "dict");
  }
  // Crash recovery: a `.wal` left behind by a crashed updater may hold a
  // committed-but-unapplied batch. Replay it into the freshly opened
  // stores before any tree or dictionary is read, so the index below
  // is always a whole batch boundary — exactly pre- or post-batch.
  if (options.use_wal && FileExists(path_prefix + ".wal")) {
    std::unique_ptr<Wal> wal;
    XKS_ASSIGN_OR_RETURN(wal,
                         OpenWalFile(path_prefix, options, /*create=*/false));
    PageStore* const targets[] = {index->il_store_.get(),
                                  index->scan_store_.get(),
                                  index->dict_store_.get()};
    XKS_ASSIGN_OR_RETURN(
        const WalRecoveryStats stats,
        wal->Recover([&targets](uint8_t id) -> PageStore* {
          return id <= kWalStoreDict ? targets[id] : nullptr;
        }));
    RecordRecovery(stats);
  }
  XKS_RETURN_NOT_OK(index->InitTreesAndDict(options));
  return index;
}

Status DiskIndex::InitTreesAndDict(const DiskIndexOptions& options) {
  readahead_pages_ = options.readahead_pages;
  il_pool_ = std::make_unique<BufferPool>(
      il_store_.get(), options.il_pool_pages, options.pool_shards);
  scan_pool_ = std::make_unique<BufferPool>(
      scan_store_.get(), options.scan_pool_pages, options.pool_shards);
  XKS_ASSIGN_OR_RETURN(BPlusTree il_tree, BPlusTree::Open(il_pool_.get()));
  il_tree_ = std::move(il_tree);
  XKS_ASSIGN_OR_RETURN(BPlusTree scan_tree, BPlusTree::Open(scan_pool_.get()));
  scan_tree_ = std::move(scan_tree);

  XKS_ASSIGN_OR_RETURN(IndexMeta meta, DecodeIndexMeta(il_tree_->metadata()));
  codec_.emplace(std::move(meta.table));
  total_postings_ = meta.total_postings;
  tokenizer_ = meta.tokenizer;

  // Load the dictionary (frequency table) into memory, as XKSearch's
  // initializer does. The dictionary file is not touched afterwards.
  BufferPool dict_pool(dict_store_.get(), 64);
  XKS_ASSIGN_OR_RETURN(BPlusTree dict_tree, BPlusTree::Open(&dict_pool));
  BPlusTree::Cursor cursor = dict_tree.NewCursor();
  XKS_RETURN_NOT_OK(cursor.SeekToFirst());
  while (cursor.Valid()) {
    const std::string_view value = cursor.value();
    const uint8_t* data = reinterpret_cast<const uint8_t*>(value.data());
    size_t pos = 0;
    uint32_t id = 0;
    uint64_t freq = 0;
    if (!GetVarint32(data, value.size(), &pos, &id) ||
        !GetVarint64(data, value.size(), &pos, &freq)) {
      return Status::Corruption("bad dictionary entry");
    }
    dict_.emplace(std::string(cursor.key()), TermInfo{id, freq});
    XKS_RETURN_NOT_OK(cursor.Next());
  }
  return Status::OK();
}

const DiskIndex::TermInfo* DiskIndex::FindTerm(std::string_view keyword) const {
  auto it = dict_.find(std::string(keyword));
  return it == dict_.end() ? nullptr : &it->second;
}

Result<bool> DiskIndex::RightMatch(uint32_t term, const DeweyId& v,
                                   DeweyId* out, QueryStats* stats) const {
  std::string key;
  EncodeIlKey(*codec_, term, v, &key);
  BPlusTree::Cursor cursor = il_tree_->NewCursor();
  cursor.set_stats(stats);
  XKS_RETURN_NOT_OK(cursor.Seek(key));
  if (!cursor.Valid() || !HasTermPrefix(cursor.key(), term)) return false;
  if (stats != nullptr) ++stats->postings_read;
  const std::string_view rest = cursor.key().substr(4);
  XKS_ASSIGN_OR_RETURN(
      *out, codec_->Decode(reinterpret_cast<const uint8_t*>(rest.data()),
                           rest.size()));
  return true;
}

Result<bool> DiskIndex::LeftMatch(uint32_t term, const DeweyId& v,
                                  DeweyId* out, QueryStats* stats) const {
  std::string key;
  EncodeIlKey(*codec_, term, v, &key);
  BPlusTree::Cursor cursor = il_tree_->NewCursor();
  cursor.set_stats(stats);
  XKS_RETURN_NOT_OK(cursor.SeekForPrev(key));
  if (!cursor.Valid() || !HasTermPrefix(cursor.key(), term)) return false;
  if (stats != nullptr) ++stats->postings_read;
  const std::string_view rest = cursor.key().substr(4);
  XKS_ASSIGN_OR_RETURN(
      *out, codec_->Decode(reinterpret_cast<const uint8_t*>(rest.data()),
                           rest.size()));
  return true;
}

Result<DiskIndex::PostingCursor> DiskIndex::OpenPostings(
    uint32_t term, QueryStats* stats) const {
  BPlusTree::Cursor cursor = scan_tree_->NewCursor();
  cursor.set_stats(stats);
  // Posting scans are the long sequential reads; they are the path that
  // profits from leaf readahead.
  cursor.set_readahead(readahead_pages_);
  // The bare 4-byte term prefix sorts before every (term, dewey) key.
  std::string key;
  AppendBigEndian32(term, &key);
  XKS_RETURN_NOT_OK(cursor.Seek(key));
  PostingCursor pc(this, term, std::move(cursor));
  pc.stats_ = stats;
  return pc;
}

Result<std::pair<PageId, size_t>> DiskIndex::PredictScanLeaves(
    uint32_t term, uint64_t frequency, QueryStats* stats) const {
  std::string key;
  AppendBigEndian32(term, &key);
  XKS_ASSIGN_OR_RETURN(const PageId leaf, scan_tree_->LeafPageFor(key, stats));
  // Leaves hold postings in term order, so the term's share of the total
  // posting count bounds its share of the leaf run. The estimate is
  // deliberately generous by one page (the term rarely starts on a leaf
  // boundary) and capped — a huge list's tail is better left to cursor
  // readahead than fetched speculatively in one burst.
  constexpr size_t kMaxPredictedPages = 16;
  const uint64_t total = std::max<uint64_t>(1, total_postings_);
  const uint64_t leaves = scan_store_->page_count();
  size_t span = static_cast<size_t>((leaves * frequency + total - 1) / total);
  span = std::min(std::max<size_t>(1, span) + 1, kMaxPredictedPages);
  const PageId limit = scan_store_->page_count();
  if (leaf >= limit) return std::make_pair(leaf, size_t{0});
  span = std::min(span, static_cast<size_t>(limit - leaf));
  return std::make_pair(leaf, span);
}

Result<std::vector<DiskIndex::ScanBlockRef>> DiskIndex::ScanBlockRefs(
    uint32_t term, QueryStats* stats) const {
  BPlusTree::Cursor cursor = scan_tree_->NewCursor();
  cursor.set_stats(stats);
  std::string prefix;
  AppendBigEndian32(term, &prefix);
  XKS_RETURN_NOT_OK(cursor.Seek(prefix));
  std::vector<ScanBlockRef> blocks;
  while (cursor.Valid() && HasTermPrefix(cursor.key(), term)) {
    ScanBlockRef ref;
    ref.key.assign(cursor.key());
    const std::string_view rest = cursor.key().substr(4);
    XKS_ASSIGN_OR_RETURN(
        ref.first,
        codec_->Decode(reinterpret_cast<const uint8_t*>(rest.data()),
                       rest.size()));
    blocks.push_back(std::move(ref));
    XKS_RETURN_NOT_OK(cursor.Next());
  }
  return blocks;
}

Result<DiskIndex::PostingCursor> DiskIndex::OpenPostingsAtBlock(
    uint32_t term, std::string_view block_key, uint64_t max_blocks,
    QueryStats* stats) const {
  BPlusTree::Cursor cursor = scan_tree_->NewCursor();
  cursor.set_stats(stats);
  cursor.set_readahead(readahead_pages_);
  XKS_RETURN_NOT_OK(cursor.Seek(block_key));
  PostingCursor pc(this, term, std::move(cursor));
  pc.stats_ = stats;
  pc.blocks_remaining_ = max_blocks;
  return pc;
}

Result<DiskIndex::PostingCursor> DiskIndex::OpenPostingsFrom(
    uint32_t term, const DeweyId& start, DeweyId* prev, bool* prev_valid,
    QueryStats* stats) const {
  *prev_valid = false;
  std::string probe;
  EncodeIlKey(*codec_, term, start, &probe);
  BPlusTree::Cursor cursor = scan_tree_->NewCursor();
  cursor.set_stats(stats);
  cursor.set_readahead(readahead_pages_);
  // Floor search: the hosting block is the last one whose first id is
  // <= start. When no block of this term precedes `start`, the cursor
  // starts at the term's first block with no predecessor to report.
  XKS_RETURN_NOT_OK(cursor.SeekForPrev(probe));
  if (!cursor.Valid() || !HasTermPrefix(cursor.key(), term)) {
    return OpenPostings(term, stats);
  }
  PostingCursor pc(this, term, std::move(cursor));
  pc.stats_ = stats;
  // Skip entries < start, remembering the last one skipped as the
  // predecessor. Positioning decode is deliberately not charged as
  // postings read: the algorithm never consumes these entries. (The
  // uncharged skip is bounded by one block: later blocks start >= start.)
  // The block arrives batch-decoded, so skipping is just advancing the
  // arena position — the first entry >= start stays unconsumed for Next.
  for (;;) {
    if (pc.decoded_pos_ >= pc.decoded_.count()) {
      if (pc.done_ || !pc.LoadBlock()) break;
    }
    const DeweyView v = pc.decoded_.entry(pc.decoded_pos_);
    if (v.Compare(start.view()) >= 0) break;
    prev->AssignFrom(v);
    *prev_valid = true;
    ++pc.decoded_pos_;
  }
  XKS_RETURN_NOT_OK(pc.status_);
  return pc;
}

bool DiskIndex::PostingCursor::LoadBlock() {
  if (!cursor_.Valid() || !HasTermPrefix(cursor_.key(), term_) ||
      blocks_remaining_ == 0) {
    done_ = true;
    return false;
  }
  --blocks_remaining_;
  const std::string_view value = cursor_.value();
  block_.assign(value.begin(), value.end());
  decoded_.Clear();
  decoded_pos_ = 0;
  size_t pos = 0;
  status_ = DecodeBlock(block_.data(), block_.size(), &pos,
                        ~size_t{0}, nullptr, 0, &decoded_);
  if (!status_.ok()) {
    done_ = true;
    return false;
  }
  status_ = cursor_.Next();
  if (!status_.ok()) {
    done_ = true;
    return false;
  }
  return true;
}

bool DiskIndex::PostingCursor::Next(DeweyId* out) {
  for (;;) {
    if (decoded_pos_ < decoded_.count()) {
      out->AssignFrom(decoded_.entry(decoded_pos_++));
      if (stats_ != nullptr) ++stats_->postings_read;
      return true;
    }
    if (done_) return false;
    if (!LoadBlock()) return false;
  }
}

bool DiskIndex::PostingCursor::DecodeBlockInto(DecodedBlock* out) {
  out->Clear();
  for (;;) {
    if (decoded_pos_ < decoded_.count()) {
      if (decoded_pos_ == 0) {
        // Whole block unconsumed: hand the arena over wholesale (the
        // buffers ping-pong between cursor and consumer, both reused).
        std::swap(*out, decoded_);
        decoded_.Clear();
      } else {
        for (size_t i = decoded_pos_; i < decoded_.count(); ++i) {
          out->Append(decoded_.entry(i));
        }
        decoded_pos_ = decoded_.count();
      }
      return true;
    }
    if (done_) return true;  // empty out = end of list (or status_ error)
    if (!LoadBlock()) return true;
  }
}

Status DiskIndex::DropCaches() {
  XKS_RETURN_NOT_OK(il_pool_->DropAll());
  return scan_pool_->DropAll();
}

Status DiskIndex::WarmCaches() {
  XKS_RETURN_NOT_OK(il_pool_->WarmAll());
  return scan_pool_->WarmAll();
}


Result<std::unique_ptr<DiskIndexUpdater>> DiskIndexUpdater::Open(
    const std::string& path_prefix, const DiskIndexOptions& options) {
  if (options.in_memory) {
    return Status::InvalidArgument(
        "the updater maintains file-backed indexes only");
  }
  std::unique_ptr<DiskIndexUpdater> updater(new DiskIndexUpdater());
  updater->path_prefix_ = path_prefix;
  updater->options_ = options;
  XKS_ASSIGN_OR_RETURN(updater->il_store_,
                       FilePageStore::Open(path_prefix + ".il"));
  XKS_ASSIGN_OR_RETURN(updater->scan_store_,
                       FilePageStore::Open(path_prefix + ".scan"));
  if (options.use_wal) {
    XKS_ASSIGN_OR_RETURN(updater->dict_store_,
                         FilePageStore::Open(path_prefix + ".dict"));
  }
  if (options.store_decorator) {
    updater->il_store_ =
        options.store_decorator(std::move(updater->il_store_), "il");
    updater->scan_store_ =
        options.store_decorator(std::move(updater->scan_store_), "scan");
    if (updater->dict_store_ != nullptr) {
      updater->dict_store_ =
          options.store_decorator(std::move(updater->dict_store_), "dict");
    }
  }
  PageStore* il_base = updater->il_store_.get();
  PageStore* scan_base = updater->scan_store_.get();
  if (options.use_wal) {
    // Replay any committed batch a crashed predecessor left behind, then
    // stack the staging overlays: from here on nothing reaches the inner
    // files until this updater's own batch commits.
    XKS_ASSIGN_OR_RETURN(updater->wal_,
                         OpenWalFile(path_prefix, options, /*create=*/true));
    PageStore* const targets[] = {il_base, scan_base,
                                  updater->dict_store_.get()};
    XKS_ASSIGN_OR_RETURN(
        const WalRecoveryStats stats,
        updater->wal_->Recover([&targets](uint8_t id) -> PageStore* {
          return id <= kWalStoreDict ? targets[id] : nullptr;
        }));
    RecordRecovery(stats);
    updater->recovered_batches_ = stats.batches_applied;
    updater->il_staged_ = std::make_unique<StagedPageStore>(il_base);
    updater->scan_staged_ = std::make_unique<StagedPageStore>(scan_base);
    updater->dict_staged_ =
        std::make_unique<StagedPageStore>(updater->dict_store_.get());
    il_base = updater->il_staged_.get();
    scan_base = updater->scan_staged_.get();
  }
  updater->il_pool_ =
      std::make_unique<BufferPool>(il_base, options.il_pool_pages);
  updater->scan_pool_ =
      std::make_unique<BufferPool>(scan_base, options.scan_pool_pages);
  XKS_ASSIGN_OR_RETURN(BPlusTreeMut il_tree,
                       BPlusTreeMut::Open(updater->il_pool_.get()));
  updater->il_tree_ = std::make_unique<BPlusTreeMut>(std::move(il_tree));
  XKS_ASSIGN_OR_RETURN(BPlusTreeMut scan_tree,
                       BPlusTreeMut::Open(updater->scan_pool_.get()));
  updater->scan_tree_ = std::make_unique<BPlusTreeMut>(std::move(scan_tree));

  XKS_ASSIGN_OR_RETURN(IndexMeta meta,
                       DecodeIndexMeta(updater->il_tree_->metadata()));
  updater->codec_.emplace(std::move(meta.table));
  updater->delta_compress_ = meta.delta_compress;
  updater->compress_dewey_ = meta.compress_dewey;
  updater->tokenizer_ = meta.tokenizer;
  updater->total_postings_ = meta.total_postings;

  // Load the dictionary; term ids stay stable, new terms extend it. In
  // WAL mode the dict store is already held (and recovered); the legacy
  // path opens it transiently, as it is only rewritten at Finish.
  {
    std::unique_ptr<PageStore> transient;
    PageStore* dict = updater->dict_store_.get();
    if (dict == nullptr) {
      XKS_ASSIGN_OR_RETURN(transient,
                           FilePageStore::Open(path_prefix + ".dict"));
      dict = transient.get();
    }
    BufferPool dict_pool(dict, 64);
    XKS_ASSIGN_OR_RETURN(BPlusTree dict_tree, BPlusTree::Open(&dict_pool));
    BPlusTree::Cursor cursor = dict_tree.NewCursor();
    XKS_RETURN_NOT_OK(cursor.SeekToFirst());
    while (cursor.Valid()) {
      const std::string_view value = cursor.value();
      const uint8_t* data = reinterpret_cast<const uint8_t*>(value.data());
      size_t pos = 0;
      uint32_t id = 0;
      uint64_t freq = 0;
      if (!GetVarint32(data, value.size(), &pos, &id) ||
          !GetVarint64(data, value.size(), &pos, &freq)) {
        return Status::Corruption("bad dictionary entry");
      }
      updater->dict_.emplace(std::string(cursor.key()),
                             DiskIndex::TermInfo{id, freq});
      updater->next_term_id_ = std::max(updater->next_term_id_, id + 1);
      XKS_RETURN_NOT_OK(cursor.Next());
    }
  }
  return updater;
}

uint64_t DiskIndexUpdater::Frequency(std::string_view keyword) const {
  auto it = dict_.find(std::string(keyword));
  return it == dict_.end() ? 0 : it->second.frequency;
}

Status DiskIndexUpdater::AddPosting(std::string_view keyword,
                                    const DeweyId& id) {
  assert(!finished_);
  if (!codec_->CanEncode(id)) {
    return Status::InvalidArgument(
        "Dewey id " + id.ToString() +
        " exceeds the index's level table; rebuild with a wider table");
  }
  const std::string kw(keyword);
  if (kw.empty()) {
    return Status::InvalidArgument("empty keyword");
  }
  auto [it, inserted] =
      dict_.try_emplace(kw, DiskIndex::TermInfo{next_term_id_, 0});
  if (inserted) ++next_term_id_;
  const uint32_t term = it->second.id;

  std::string key;
  DiskIndex::EncodeIlKey(*codec_, term, id, &key);
  if (il_tree_->Get(key).ok()) {
    return Status::OK();  // posting already present
  }
  XKS_RETURN_NOT_OK(il_tree_->Put(key, ""));
  ++it->second.frequency;
  ++total_postings_;
  return InsertIntoBlock(term, id);
}

Status DiskIndexUpdater::RemovePosting(std::string_view keyword,
                                       const DeweyId& id) {
  assert(!finished_);
  auto it = dict_.find(std::string(keyword));
  if (it == dict_.end()) {
    return Status::NotFound("keyword not in index");
  }
  const uint32_t term = it->second.id;
  std::string key;
  DiskIndex::EncodeIlKey(*codec_, term, id, &key);
  XKS_RETURN_NOT_OK(il_tree_->Delete(key));
  --it->second.frequency;
  --total_postings_;
  if (it->second.frequency == 0) dict_.erase(it);
  return RemoveFromBlock(term, id);
}

Status DiskIndexUpdater::WriteBlock(const std::string& key,
                                    const std::vector<DeweyId>& ids) {
  DeltaBlockEncoder encoder(delta_compress_);
  for (const DeweyId& id : ids) encoder.Append(id);
  const std::vector<uint8_t> payload = encoder.Finish();
  return scan_tree_->Put(
      key, std::string_view(reinterpret_cast<const char*>(payload.data()),
                            payload.size()));
}

Status DiskIndexUpdater::InsertIntoBlock(uint32_t term, const DeweyId& id) {
  std::string probe;
  DiskIndex::EncodeIlKey(*codec_, term, id, &probe);

  // The hosting block is the last one whose first id <= the new id; if
  // the id precedes every block, it joins the term's first block.
  std::string block_key, payload;
  XKS_ASSIGN_OR_RETURN(bool found,
                       scan_tree_->FindFloor(probe, &block_key, &payload));
  if (!found || !HasTermPrefix(block_key, term)) {
    std::string prefix;
    AppendBigEndian32(term, &prefix);
    XKS_ASSIGN_OR_RETURN(found,
                         scan_tree_->FindCeil(prefix, &block_key, &payload));
    if (!found || !HasTermPrefix(block_key, term)) {
      // First posting of this term.
      return WriteBlock(probe, {id});
    }
  }

  std::vector<DeweyId> ids;
  DeltaBlockDecoder decoder(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  DeweyId decoded;
  while (decoder.Next(&decoded)) ids.push_back(decoded);
  XKS_RETURN_NOT_OK(decoder.status());

  const auto pos = std::lower_bound(ids.begin(), ids.end(), id);
  if (pos != ids.end() && *pos == id) return Status::OK();
  const bool new_head = pos == ids.begin();
  ids.insert(pos, id);

  if (new_head) {
    // The block's key is its first id; re-key it.
    XKS_RETURN_NOT_OK(scan_tree_->Delete(block_key));
    block_key = probe;
  }

  // Estimate the encoded size; split the block once it outgrows the
  // budget so no block ever threatens the page-entry limit.
  DeltaBlockEncoder probe_encoder(delta_compress_);
  for (const DeweyId& v : ids) probe_encoder.Append(v);
  if (probe_encoder.SizeBytes() <= options_.scan_block_bytes) {
    return WriteBlock(block_key, ids);
  }
  const size_t mid = ids.size() / 2;
  const std::vector<DeweyId> left(ids.begin(), ids.begin() + mid);
  const std::vector<DeweyId> right(ids.begin() + mid, ids.end());
  XKS_RETURN_NOT_OK(WriteBlock(block_key, left));
  std::string right_key;
  DiskIndex::EncodeIlKey(*codec_, term, right.front(), &right_key);
  return WriteBlock(right_key, right);
}

Status DiskIndexUpdater::RemoveFromBlock(uint32_t term, const DeweyId& id) {
  std::string probe;
  DiskIndex::EncodeIlKey(*codec_, term, id, &probe);
  std::string block_key, payload;
  XKS_ASSIGN_OR_RETURN(bool found,
                       scan_tree_->FindFloor(probe, &block_key, &payload));
  if (!found || !HasTermPrefix(block_key, term)) {
    return Status::Corruption("posting missing from scan layout");
  }
  std::vector<DeweyId> ids;
  DeltaBlockDecoder decoder(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  DeweyId decoded;
  while (decoder.Next(&decoded)) ids.push_back(decoded);
  XKS_RETURN_NOT_OK(decoder.status());

  const auto pos = std::lower_bound(ids.begin(), ids.end(), id);
  if (pos == ids.end() || *pos != id) {
    return Status::Corruption("posting missing from scan block");
  }
  const bool was_head = pos == ids.begin();
  ids.erase(pos);
  if (ids.empty()) {
    return scan_tree_->Delete(block_key);
  }
  if (was_head) {
    XKS_RETURN_NOT_OK(scan_tree_->Delete(block_key));
    DiskIndex::EncodeIlKey(*codec_, term, ids.front(), &block_key);
  }
  return WriteBlock(block_key, ids);
}

Status DiskIndexUpdater::Finish() {
  assert(!finished_);
  finished_ = true;

  const LevelTable& table = codec_->level_table();
  const std::vector<uint8_t> meta = EncodeIndexMeta(
      table, compress_dewey_, delta_compress_, total_postings_, tokenizer_);
  il_tree_->SetMetadata(meta);
  scan_tree_->SetMetadata(meta);
  XKS_RETURN_NOT_OK(il_tree_->Flush());
  XKS_RETURN_NOT_OK(scan_tree_->Flush());

  // Rewrite the dictionary from scratch (it is small and the bulk
  // builder wants sorted keys anyway).
  std::vector<std::string> terms;
  terms.reserve(dict_.size());
  for (const auto& [term, info] : dict_) terms.push_back(term);
  std::sort(terms.begin(), terms.end());
  auto build_dict = [&](PageStore* store) -> Status {
    BPlusTreeBuilder builder(store);
    for (const std::string& term : terms) {
      const DiskIndex::TermInfo& info = dict_.at(term);
      std::vector<uint8_t> value;
      PutVarint32(&value, info.id);
      PutVarint64(&value, info.frequency);
      XKS_RETURN_NOT_OK(builder.Add(
          term, std::string_view(reinterpret_cast<const char*>(value.data()),
                                 value.size())));
    }
    return builder.Finish();
  };
  if (options_.use_wal) {
    // The rebuild goes through the dict overlay (emptied first — the
    // bulk builder wants a fresh store), so like the tree flushes above
    // it is part of the staged batch, not an in-place file rewrite.
    XKS_RETURN_NOT_OK(dict_staged_->Truncate(0));
    XKS_RETURN_NOT_OK(build_dict(dict_staged_.get()));
    return CommitBatch();
  }
  XKS_ASSIGN_OR_RETURN(std::unique_ptr<FilePageStore> dict_store,
                       FilePageStore::Create(path_prefix_ + ".dict"));
  return build_dict(dict_store.get());
}

Status DiskIndexUpdater::CommitBatch() {
  XKS_RETURN_NOT_OK(wal_->AppendBegin(total_postings_));
  const struct {
    uint8_t id;
    StagedPageStore* staged;
  } stores[] = {{kWalStoreIl, il_staged_.get()},
                {kWalStoreScan, scan_staged_.get()},
                {kWalStoreDict, dict_staged_.get()}};
  for (const auto& entry : stores) {
    XKS_RETURN_NOT_OK(wal_->AppendTruncate(entry.id,
                                           entry.staged->page_count()));
    for (const PageId page : entry.staged->StagedPageIds()) {
      XKS_RETURN_NOT_OK(wal_->AppendPageImage(entry.id, page,
                                              *entry.staged->StagedPage(page)));
    }
  }
  // The single durability barrier: after this fsync the batch survives
  // any crash; before it, a crash leaves the inner files untouched.
  XKS_RETURN_NOT_OK(wal_->Commit());
  // Apply by replaying the log into the real files — the exact code path
  // crash recovery takes, so every successful Finish exercises it.
  PageStore* const targets[] = {il_staged_->inner(), scan_staged_->inner(),
                                dict_staged_->inner()};
  XKS_ASSIGN_OR_RETURN(const WalRecoveryStats stats,
                       wal_->Recover([&targets](uint8_t id) -> PageStore* {
                         return id <= kWalStoreDict ? targets[id] : nullptr;
                       }));
  if (stats.batches_applied != 1) {
    return Status::Internal("batch apply replayed " +
                            std::to_string(stats.batches_applied) +
                            " batches, expected exactly 1");
  }
  return Status::OK();
}

}  // namespace xksearch
