#ifndef XKSEARCH_STORAGE_BPTREE_MUT_H_
#define XKSEARCH_STORAGE_BPTREE_MUT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/node_format.h"
#include "storage/page.h"

namespace xksearch {

/// \brief A mutable B+tree over the same on-disk format as BPlusTree.
///
/// The bulk loader (BPlusTreeBuilder) covers the paper's build-once
/// workflow; this class adds incremental maintenance — upserts and
/// deletes with standard node splits — so an index can follow document
/// changes without a full rebuild. Files are interchangeable: a tree
/// bulk-loaded by the builder can be opened and mutated here, and after
/// Flush() the read-only BPlusTree (with its cursors) can open the result.
///
/// Durability is explicit: mutations live in the buffer pool until
/// Flush() writes the dirty pages and the meta page. Simplifications,
/// chosen for the read-mostly index workload and called out here
/// deliberately: underfull nodes are not rebalanced (only emptied nodes
/// are unlinked), freed pages are not recycled, and the tree itself has
/// no write-ahead log. Crash atomicity lives a layer up:
/// DiskIndexUpdater stages this tree's writes behind a StagedPageStore
/// and commits them through the Wal (storage/wal.h), so a crash
/// mid-batch never leaves a half-flushed tree image on disk. A caller
/// flushing straight to a file gets the old contract — a crash between
/// flushes loses the unflushed batch but never corrupts a previously
/// flushed tree image, provided the caller flushes at consistent points.
class BPlusTreeMut {
 public:
  /// Creates an empty tree in an empty store (writes the meta page).
  static Result<BPlusTreeMut> Create(BufferPool* pool);

  /// Opens an existing tree (bulk-loaded or previously mutated).
  static Result<BPlusTreeMut> Open(BufferPool* pool);

  BPlusTreeMut(const BPlusTreeMut&) = delete;
  BPlusTreeMut& operator=(const BPlusTreeMut&) = delete;
  BPlusTreeMut(BPlusTreeMut&&) = default;
  BPlusTreeMut& operator=(BPlusTreeMut&&) = default;

  /// Inserts or overwrites `key`.
  Status Put(std::string_view key, std::string_view value);

  /// Removes `key`; NotFound if absent.
  Status Delete(std::string_view key);

  /// Point lookup; NotFound if absent.
  Result<std::string> Get(std::string_view key) const;

  /// Greatest entry with key <= `key`. Returns false when none exists.
  Result<bool> FindFloor(std::string_view key, std::string* found_key,
                         std::string* found_value) const;

  /// Smallest entry with key >= `key`. Returns false when none exists.
  Result<bool> FindCeil(std::string_view key, std::string* found_key,
                        std::string* found_value) const;

  /// Persists the meta page and all dirty frames. Call before opening
  /// the store with the read-only BPlusTree.
  Status Flush();

  /// Replaces the user metadata blob (persisted at the next Flush).
  void SetMetadata(std::vector<uint8_t> metadata) {
    metadata_ = std::move(metadata);
  }
  const std::vector<uint8_t>& metadata() const { return metadata_; }

  uint64_t entry_count() const { return entry_count_; }
  uint32_t height() const { return height_; }

 private:
  explicit BPlusTreeMut(BufferPool* pool) : pool_(pool) {}

  struct PathStep {
    PageId page;
    size_t child_idx;  // which child of this internal node we descended to
  };

  Result<PageId> DescendToLeaf(std::string_view key,
                               std::vector<PathStep>* path) const;
  Status WriteNode(PageId page, const node_format::ParsedNode& node);
  Status SplitLeaf(PageId page, node_format::ParsedNode node,
                   std::vector<PathStep> path);
  Status SplitInternal(PageId page, node_format::ParsedNode node,
                       std::vector<PathStep> path);
  Status InsertIntoParent(std::vector<PathStep> path, std::string separator,
                          PageId right_child);
  Status RemoveFromParent(std::vector<PathStep> path);
  Status CollapseRoot();

  BufferPool* pool_;
  PageId root_ = kInvalidPage;
  uint32_t height_ = 0;
  uint64_t entry_count_ = 0;
  PageId first_leaf_ = kInvalidPage;
  std::vector<uint8_t> metadata_;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_BPTREE_MUT_H_
