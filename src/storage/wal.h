#ifndef XKSEARCH_STORAGE_WAL_H_
#define XKSEARCH_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace xksearch {

/// CRC32 (IEEE 802.3 polynomial, reflected) over `size` bytes. The WAL
/// checksums every frame payload with it; exposed so tests can forge or
/// verify frames byte-for-byte.
uint32_t WalCrc32(const uint8_t* data, size_t size);

/// \brief Outcome of one Recover() pass.
struct WalRecoveryStats {
  /// Committed batches replayed into their target stores.
  uint64_t batches_applied = 0;
  /// Page-image and truncate frames applied across those batches.
  uint64_t frames_applied = 0;
  /// Log bytes scanned (up to the first torn or unfinished frame).
  uint64_t bytes_scanned = 0;
};

/// \brief Process-wide WAL counters, sampled by the serving layer's
/// metrics report. Commits are recorded by the Wal itself; recoveries are
/// recorded by the open paths (DiskIndex/DiskIndexUpdater) so an
/// ordinary batch apply — which reuses the replay code — is not reported
/// as a crash recovery.
struct WalCounters {
  static WalCounters& Instance();

  std::atomic<uint64_t> recoveries{0};        // opens that replayed a batch
  std::atomic<uint64_t> batches_replayed{0};
  std::atomic<uint64_t> bytes_replayed{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> bytes_committed{0};
};

/// \brief Physical-redo write-ahead log over a PageStore.
///
/// The log is a byte stream of length-prefixed, checksummed frames laid
/// over fixed-size pages:
///
///   frame := u32 payload_length (LE) | u32 crc32(payload) (LE) | payload
///   payload := u8 type | body
///
/// A batch is `begin, {page-image | truncate}*, commit`. Appends buffer
/// in the tail page; only Commit() flushes the partial tail and issues
/// the single fsync barrier, so a batch is durable exactly when its
/// commit frame is. Recover() scans from the start, stops at the first
/// frame whose length or checksum does not hold (a torn tail — the
/// expected shape after a crash), replays every *committed* batch into
/// its target stores in log order, syncs them, and truncates the log.
/// Page-image redo is idempotent, so recovering twice — or crashing
/// during recovery and recovering again — converges to the same state.
///
/// Layering over PageStore (rather than a raw fd) is deliberate: the
/// fault-injection decorator slots under the log unchanged, so crash
/// schedules count and kill WAL writes and fsyncs with the same
/// machinery as index stores.
class Wal {
 public:
  /// Resolves a frame's target: store ids are assigned by the writer
  /// (DiskIndexUpdater uses 0=il, 1=scan, 2=dict). Returning nullptr
  /// fails recovery with Corruption.
  using StoreResolver = std::function<PageStore*(uint8_t store_id)>;

  /// Opens a log over `store`, scanning existing content to find the end
  /// of the last intact frame (appends continue from there).
  static Result<std::unique_ptr<Wal>> Open(std::unique_ptr<PageStore> store);

  /// Starts a batch.
  Status AppendBegin(uint64_t batch_id);
  /// Records the full post-batch image of one page.
  Status AppendPageImage(uint8_t store_id, PageId page, const Page& image);
  /// Records the final page count of one store (applied before that
  /// store's images, so replay sizes the file exactly once).
  Status AppendTruncate(uint8_t store_id, PageId page_count);
  /// Appends the commit frame, flushes the tail page and fsyncs: the
  /// batch is durable iff this returns OK.
  Status Commit();

  /// Replays every committed batch into the stores `resolve` names,
  /// syncs each touched store, then resets the log. Batches with no
  /// commit frame (or behind a torn frame) are discarded untouched.
  Result<WalRecoveryStats> Recover(const StoreResolver& resolve);

  /// Empties the log (truncate + fsync). No-op when already empty.
  Status Reset();

  /// Bytes of intact frames currently in the log.
  uint64_t size_bytes() const { return length_; }

 private:
  explicit Wal(std::unique_ptr<PageStore> store) : store_(std::move(store)) {}

  Status AppendFrame(uint8_t type, const std::vector<uint8_t>& body);
  Status AppendBytes(const uint8_t* data, size_t n);
  Status WriteTailPage(PageId page);
  Status FlushTail();

  std::unique_ptr<PageStore> store_;
  uint64_t length_ = 0;  // bytes of intact frames (append position)
  Page tail_;            // partial tail page being filled
  uint64_t batch_bytes_ = 0;   // log offset where the open batch began
  uint64_t batch_frames_ = 0;  // image/truncate frames since AppendBegin
  uint64_t batch_id_ = 0;
  bool in_batch_ = false;
};

/// \brief A PageStore overlay that absorbs every mutation in memory and
/// never touches the inner store.
///
/// DiskIndexUpdater stacks one of these under each buffer pool for the
/// duration of a batch: reads fall through to the inner store, while
/// writes, allocations and truncates land in the overlay — including
/// buffer-pool eviction write-back, which would otherwise leak
/// half-applied state onto disk mid-batch. At Finish() the staged pages
/// become the WAL batch; the inner files change only through committed
/// replay, which is what makes the batch all-or-nothing (and is also why
/// a concurrently open DiskSearcher keeps seeing the exact pre-batch
/// snapshot until the batch commits).
///
/// Single-writer, like every mutable store in this codebase.
class StagedPageStore : public PageStore {
 public:
  explicit StagedPageStore(PageStore* inner)
      : inner_(inner),
        logical_count_(inner->page_count()),
        inner_visible_(inner->page_count()) {}

  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  Result<PageId> AllocatePage() override;
  PageId page_count() const override { return logical_count_; }
  /// Durability is the WAL's job; the overlay never reaches the file.
  Status Sync() override { return Status::OK(); }
  Status Truncate(PageId page_count) override;

  /// Staged page ids in increasing order (deterministic WAL layout).
  std::vector<PageId> StagedPageIds() const;
  const Page* StagedPage(PageId id) const;
  size_t staged_count() const { return staged_.size(); }
  PageStore* inner() const { return inner_; }

 private:
  PageStore* inner_;
  PageId logical_count_;
  /// Inner pages above this id are dead (truncated away this batch);
  /// reads of unstaged pages beyond it see zeros.
  PageId inner_visible_;
  std::map<PageId, std::unique_ptr<Page>> staged_;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_WAL_H_
