#include "storage/node_format.h"

#include "storage/bptree.h"  // CompareBytes

namespace xksearch {
namespace node_format {

size_t VarintSize(size_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

void PutVarintTo(uint8_t* dst, size_t* off, uint32_t v) {
  while (v >= 0x80) {
    dst[(*off)++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  dst[(*off)++] = static_cast<uint8_t>(v);
}

bool ReadVarintFrom(const uint8_t* src, size_t limit, size_t* off,
                    uint32_t* v) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (*off >= limit) return false;
    const uint8_t byte = src[(*off)++];
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

bool NodeView::Entry(size_t i, std::string_view* key,
                     std::string_view* value) const {
  const size_t slot_off = kNodeHeader + 2 * i;
  size_t off = page_.ReadU16(slot_off);
  uint32_t klen = 0;
  if (!ReadVarintFrom(page_.data.data(), kPageSize, &off, &klen)) return false;
  if (off + klen > kPageSize) return false;
  *key =
      std::string_view(reinterpret_cast<const char*>(page_.bytes(off)), klen);
  off += klen;
  uint32_t vlen = 0;
  if (!ReadVarintFrom(page_.data.data(), kPageSize, &off, &vlen)) return false;
  if (off + vlen > kPageSize) return false;
  *value =
      std::string_view(reinterpret_cast<const char*>(page_.bytes(off)), vlen);
  return true;
}

std::string_view NodeView::Key(size_t i) const {
  std::string_view k, v;
  const bool ok = Entry(i, &k, &v);
  assert(ok);
  (void)ok;
  return k;
}

size_t NodeView::LowerBound(std::string_view key) const {
  size_t lo = 0, hi = count();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (CompareBytes(Key(mid), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t NodeView::UpperBound(std::string_view key) const {
  size_t lo = 0, hi = count();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (CompareBytes(Key(mid), key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId NodeView::ChildFor(std::string_view key) const {
  return Child(UpperBound(key));
}

PageId NodeView::Child(size_t idx) const {
  if (idx == 0) return link_a();
  std::string_view k, v;
  const bool ok = Entry(idx - 1, &k, &v);
  assert(ok && v.size() == 4);
  (void)ok;
  uint32_t child;
  std::memcpy(&child, v.data(), 4);
  return child;
}

Result<ParsedNode> ParsedNode::ReadFrom(const Page& page) {
  ParsedNode node;
  const NodeView view(page);
  node.leaf = view.IsLeaf();
  node.link_a = view.link_a();
  node.link_b = view.link_b();
  const size_t n = view.count();
  node.entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string_view key, value;
    if (!view.Entry(i, &key, &value)) {
      return Status::Corruption("malformed node entry");
    }
    node.entries.emplace_back(std::string(key), std::string(value));
  }
  return node;
}

void ParsedNode::WriteTo(Page* page) const {
  assert(SerializedSize() <= kPageSize);
  page->Zero();
  page->WriteU8(kNodeType, leaf ? kNodeLeaf : kNodeInternal);
  page->WriteU16(kNodeCount, static_cast<uint16_t>(entries.size()));
  page->WriteU32(kNodeLinkA, link_a);
  page->WriteU32(kNodeLinkB, link_b);
  size_t heap = kNodeHeader + 2 * entries.size();
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& [key, value] = entries[i];
    page->WriteU16(kNodeHeader + 2 * i, static_cast<uint16_t>(heap));
    PutVarintTo(page->data.data(), &heap, static_cast<uint32_t>(key.size()));
    std::memcpy(page->bytes(heap), key.data(), key.size());
    heap += key.size();
    PutVarintTo(page->data.data(), &heap, static_cast<uint32_t>(value.size()));
    std::memcpy(page->bytes(heap), value.data(), value.size());
    heap += value.size();
  }
}

size_t ParsedNode::SerializedSize() const {
  size_t total = kNodeHeader;
  for (const auto& [key, value] : entries) {
    total += EntrySize(key, value);
  }
  return total;
}

}  // namespace node_format
}  // namespace xksearch
