#ifndef XKSEARCH_STORAGE_BPTREE_H_
#define XKSEARCH_STORAGE_BPTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace xksearch {

/// Three-way lexicographic comparison of byte strings (memcmp semantics,
/// shorter prefix first). This is the only key order the B+tree knows;
/// Dewey document order is obtained through the order-preserving codec.
int CompareBytes(std::string_view a, std::string_view b);

/// \brief Bulk loader for a read-only B+tree file.
///
/// Keys must be added in strictly increasing byte order. The builder packs
/// leaves left to right and grows internal levels as leaves fill, giving
/// ~100% page utilization — the layout a freshly built keyword index has.
///
/// File layout: page 0 is the meta page (magic, root, height, entry count,
/// first leaf, user metadata blob); every other page is a tree node.
class BPlusTreeBuilder {
 public:
  /// Builds into `store`, which must be empty.
  explicit BPlusTreeBuilder(PageStore* store);

  BPlusTreeBuilder(const BPlusTreeBuilder&) = delete;
  BPlusTreeBuilder& operator=(const BPlusTreeBuilder&) = delete;

  /// Adds one entry; `key` must be strictly greater than the previous key.
  Status Add(std::string_view key, std::string_view value);

  /// Opaque application metadata persisted in the meta page (e.g. the
  /// serialized level table). Must fit the meta page (~4000 bytes).
  void SetMetadata(std::vector<uint8_t> metadata) {
    metadata_ = std::move(metadata);
  }

  /// Writes all pending nodes and the meta page. The builder must not be
  /// used afterwards.
  Status Finish();

  uint64_t entry_count() const { return entry_count_; }

 private:
  struct PendingEntry {
    std::string key;
    std::string value;  // leaf: payload; internal: 4-byte child page id
  };

  struct LevelState {
    std::vector<PendingEntry> entries;
    size_t bytes = 0;          // serialized entry+slot bytes so far
    PageId prev_page = kInvalidPage;  // previously flushed page (leaf link)
  };

  static size_t EntrySize(const PendingEntry& e);
  Status AddToLevel(size_t level, PendingEntry entry);
  Status FlushLevel(size_t level, bool finishing);
  Status WriteNode(size_t level, const LevelState& state, PageId page_id,
                   PageId next_leaf);

  PageStore* store_;
  std::vector<LevelState> levels_;  // [0] = leaves
  std::vector<uint8_t> metadata_;
  std::string last_key_;
  uint64_t entry_count_ = 0;
  PageId first_leaf_ = kInvalidPage;
  bool finished_ = false;
};

/// \brief Read-only B+tree with bidirectional leaf cursors.
///
/// All page access goes through a BufferPool, so cache behaviour (and the
/// paper's "number of disk accesses") is fully controlled by the caller.
class BPlusTree {
 public:
  /// Parses the meta page of the file behind `pool`.
  static Result<BPlusTree> Open(BufferPool* pool);

  /// Number of entries.
  uint64_t entry_count() const { return entry_count_; }
  /// Tree height in levels (0 = empty, 1 = root is a leaf).
  uint32_t height() const { return height_; }

  /// Page id of the leaf whose key range covers `key` (one descent,
  /// charged to `stats`). The bulk loader writes leaves left-to-right in
  /// physically consecutive pages, so this leaf plus the next few page
  /// ids approximate the on-disk run a forward scan from `key` will
  /// touch — the basis for batched leaf prediction without reading the
  /// leaves themselves.
  Result<PageId> LeafPageFor(std::string_view key, QueryStats* stats) const {
    return FindLeaf(key, stats);
  }
  const std::vector<uint8_t>& metadata() const { return metadata_; }

  /// Point lookup; NotFound if absent. Page accesses are charged to
  /// `stats` when non-null.
  Result<std::string> Get(std::string_view key,
                          QueryStats* stats = nullptr) const;

  /// \brief Iterator over leaf entries. Invalidated if the pool's pages
  /// are dropped while positioned.
  ///
  /// A cursor is single-threaded, but any number of cursors (across
  /// threads) may walk one tree concurrently: all shared state is
  /// read-only and the buffer pool is thread-safe. Each cursor charges
  /// its page accesses to its own stats sink, so concurrent queries
  /// never race on accounting.
  class Cursor {
   public:
    explicit Cursor(const BPlusTree* tree) : tree_(tree) {}

    /// Charges this cursor's page fetches to `stats` (may be null).
    void set_stats(QueryStats* stats) { stats_ = stats; }

    /// When > 0, crossing a leaf boundary in Next() speculatively loads
    /// the following `pages` pages. The bulk loader emits leaves almost
    /// contiguously, so "the next few page ids" is an effective stand-in
    /// for "the next few leaves" without extra pointer chasing.
    void set_readahead(size_t pages) { readahead_ = pages; }

    /// Positions at the first entry with key >= `key` (right-match probe).
    Status Seek(std::string_view key);
    /// Positions at the last entry with key <= `key` (left-match probe).
    Status SeekForPrev(std::string_view key);
    Status SeekToFirst();
    Status SeekToLast();

    /// Advances; cursor becomes invalid past the last entry.
    Status Next();
    /// Steps back; cursor becomes invalid before the first entry.
    Status Prev();

    bool Valid() const { return valid_; }
    std::string_view key() const { return key_; }
    std::string_view value() const { return value_; }

   private:
    friend class BPlusTree;
    Status LoadLeaf(PageId leaf);
    Status PositionAt(size_t slot);
    void Invalidate() {
      valid_ = false;
      leaf_ref_.Release();
    }

    const BPlusTree* tree_;
    QueryStats* stats_ = nullptr;
    size_t readahead_ = 0;
    PageRef leaf_ref_;
    PageId leaf_ = kInvalidPage;
    size_t slot_ = 0;
    size_t slot_count_ = 0;
    bool valid_ = false;
    std::string_view key_;
    std::string_view value_;
  };

  Cursor NewCursor() const { return Cursor(this); }

 private:
  BPlusTree(BufferPool* pool, PageId root, uint32_t height,
            uint64_t entry_count, PageId first_leaf,
            std::vector<uint8_t> metadata)
      : pool_(pool),
        root_(root),
        height_(height),
        entry_count_(entry_count),
        first_leaf_(first_leaf),
        metadata_(std::move(metadata)) {}

  /// Descends to the leaf whose key range covers `key`, charging the
  /// internal-node fetches to `stats`.
  Result<PageId> FindLeaf(std::string_view key, QueryStats* stats) const;

  BufferPool* pool_;
  PageId root_;
  uint32_t height_;
  uint64_t entry_count_;
  PageId first_leaf_;
  std::vector<uint8_t> metadata_;
};

}  // namespace xksearch

#endif  // XKSEARCH_STORAGE_BPTREE_H_
