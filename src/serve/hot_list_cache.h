#ifndef XKSEARCH_SERVE_HOT_LIST_CACHE_H_
#define XKSEARCH_SERVE_HOT_LIST_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dewey/dewey_id.h"
#include "dewey/packed_list.h"
#include "engine/search_types.h"

namespace xksearch {
namespace serve {

/// \brief Byte-bounded cache of fully decoded posting lists for hot
/// terms (the serving side of DecodedListProvider).
///
/// Query preparation asks once per packed list; the cache counts
/// sightings and only pays the one-time Materialize (and the resident
/// bytes) for lists requested at least `admit_after` times — one-off
/// terms never pollute it. Admission over budget evicts the
/// least-frequently-hit entries first (LFU-ish: a plain hit counter, no
/// decay), and an entry that alone exceeds the budget is never admitted.
///
/// Invalidation is by epoch: the observed epoch is the process-wide WAL
/// commit counter plus a manual bump count, so any committed index
/// update — including one replayed by crash recovery, which also
/// commits through the WAL counters — flushes the whole cache on the
/// next Get. That is deliberately coarse (any index committing anywhere
/// invalidates every cached list) because correctness only needs
/// "never serve a decoded copy older than the arena it mirrors", and
/// pointer-keyed entries cannot tell which commit rebuilt which arena.
/// In-flight queries keep their copies alive through the shared_ptr.
///
/// Thread-safe; every operation takes one internal mutex.
class HotListCache : public DecodedListProvider {
 public:
  struct Options {
    /// Resident-bytes budget for decoded entries; 0 disables caching
    /// (every Get declines).
    size_t max_bytes = 0;
    /// Sightings of a list before it is decoded and admitted. 1 admits
    /// on first sight; 0 is treated as 1.
    uint32_t admit_after = 2;
  };

  explicit HotListCache(const Options& options) : options_(options) {}

  /// DecodedListProvider: the pinned decoded copy, or nullptr to let the
  /// query run on the packed arena (not yet hot, over budget, or the
  /// cache is disabled).
  std::shared_ptr<const std::vector<DeweyId>> Get(
      const PackedDeweyList* list) override;

  /// Manually advances the epoch, flushing the cache on the next Get.
  /// The serving layer calls this from InvalidateCache so explicit
  /// invalidation drops decoded lists along with cached results.
  void AdvanceEpoch();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;  // declines: unseen, under admit_after, or over budget
    uint64_t admitted = 0;
    uint64_t evicted = 0;
    uint64_t invalidations = 0;  // whole-cache epoch flushes
    size_t bytes = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::shared_ptr<const std::vector<DeweyId>> ids;
    size_t bytes = 0;
    uint64_t hits = 0;
  };

  /// Current epoch: WAL commits + manual bumps. Lock-free read.
  uint64_t CurrentEpoch() const;
  /// Drops everything if the epoch moved since the last call. Requires mu_.
  void MaybeFlushLocked();
  /// Evicts lowest-hit entries until `need` bytes fit. Requires mu_.
  bool MakeRoomLocked(size_t need);

  const Options options_;
  mutable std::mutex mu_;
  uint64_t observed_epoch_ = 0;
  bool epoch_primed_ = false;
  size_t bytes_ = 0;
  std::unordered_map<const PackedDeweyList*, uint32_t> sightings_;
  std::unordered_map<const PackedDeweyList*, Entry> entries_;
  Stats stats_;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_HOT_LIST_CACHE_H_
