#ifndef XKSEARCH_SERVE_THREAD_POOL_H_
#define XKSEARCH_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace xksearch {
namespace serve {

/// \brief Fixed-size worker pool with a bounded FIFO request queue.
///
/// Admission control is reject-on-full: Submit never blocks the caller;
/// when the queue is at capacity (or the pool is stopping) it returns
/// kUnavailable and the caller decides whether to shed or retry. This is
/// the standard server-side overload posture — a bounded queue keeps tail
/// latency bounded, and a typed Status lets the serving layer count
/// rejections instead of silently queueing unbounded work.
class ThreadPool {
 public:
  struct Options {
    /// Number of worker threads (>= 1).
    size_t workers = 4;
    /// Maximum queued (not yet running) tasks before Submit rejects.
    size_t queue_capacity = 256;
  };

  /// Starts the workers immediately.
  explicit ThreadPool(const Options& options);
  /// Equivalent to Stop(/*drain=*/false).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; kUnavailable when the queue is full or the pool is
  /// stopped. Tasks must not throw.
  Status Submit(std::function<void()> task);

  /// Stops the pool and joins the workers. With `drain` the queued tasks
  /// are executed first; without it they are discarded unrun. Idempotent;
  /// the first call's drain mode wins.
  void Stop(bool drain);

  /// Queued (not yet running) tasks right now.
  size_t queue_depth() const;
  /// True once Stop has begun; all further Submit calls are rejected.
  bool stopping() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
  }
  /// Total tasks picked up by a worker (ticked just before the body
  /// runs, so completion signals sent from inside a task body always
  /// happen-after the tick).
  uint64_t tasks_run() const { return tasks_run_; }
  size_t workers() const { return options_.workers; }

 private:
  void WorkerLoop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool drain_on_stop_ = false;
  bool joined_ = false;
  RelaxedCounter tasks_run_;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_THREAD_POOL_H_
