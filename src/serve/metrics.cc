#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>

namespace xksearch {
namespace serve {

void LatencyHistogram::Record(uint64_t nanos) {
  const size_t bucket = static_cast<size_t>(std::bit_width(nanos));
  buckets_[bucket >= kBuckets ? kBuckets - 1 : bucket].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

uint64_t LatencyHistogram::Snapshot::PercentileNanos(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target sample, 1-based.
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(p * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= target) {
      // Linear interpolation inside [2^(i-1), 2^i).
      const uint64_t lo = i == 0 ? 0 : uint64_t{1} << (i - 1);
      const uint64_t hi = i == 0 ? 1 : uint64_t{1} << i;
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(buckets[i]);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets[i];
  }
  return uint64_t{1} << (kBuckets - 1);
}

std::string MetricsRegistry::ReportText(const Gauges& gauges) const {
  const LatencyHistogram::Snapshot latency = request_latency.TakeSnapshot();
  const LatencyHistogram::Snapshot queueing = queue_latency.TakeSnapshot();
  std::ostringstream os;
  os << "== xkserve metrics ==\n";
  os << "requests:          " << static_cast<uint64_t>(requests) << "\n";
  os << "  completed:       " << static_cast<uint64_t>(completed) << "\n";
  os << "  cache_hits:      " << static_cast<uint64_t>(cache_hits) << "\n";
  os << "  rejected:        " << static_cast<uint64_t>(rejected) << "\n";
  os << "  deadline_exceeded: " << static_cast<uint64_t>(deadline_exceeded)
     << "\n";
  os << "  failed:          " << static_cast<uint64_t>(failed) << "\n";
  os << "  io_errors:       " << static_cast<uint64_t>(io_errors) << "\n";
  os << "  coalesced:       " << static_cast<uint64_t>(coalesced_queries)
     << "\n";
  if (static_cast<uint64_t>(batches) > 0) {
    const LatencyHistogram::Snapshot sizes = batch_size.TakeSnapshot();
    os << "batches:           " << static_cast<uint64_t>(batches)
       << " queries=" << static_cast<uint64_t>(batched_queries)
       << " shared_decodes=" << static_cast<uint64_t>(shared_decodes)
       << " size_p50=" << sizes.PercentileNanos(0.50)
       << " size_p95=" << sizes.PercentileNanos(0.95) << "\n";
  }
  os << std::fixed << std::setprecision(1);
  os << "latency_us:        mean=" << latency.MeanNanos() / 1e3
     << " p50=" << static_cast<double>(latency.PercentileNanos(0.50)) / 1e3
     << " p95=" << static_cast<double>(latency.PercentileNanos(0.95)) / 1e3
     << " p99=" << static_cast<double>(latency.PercentileNanos(0.99)) / 1e3
     << "\n";
  os << "queue_wait_us:     mean=" << queueing.MeanNanos() / 1e3
     << " p50=" << static_cast<double>(queueing.PercentileNanos(0.50)) / 1e3
     << " p99=" << static_cast<double>(queueing.PercentileNanos(0.99)) / 1e3
     << "\n";
  os << "queue_depth:       " << gauges.queue_depth << " (workers="
     << gauges.workers << ")\n";
  os << std::setprecision(3);
  os << "cache:             entries=" << gauges.cache.entries
     << " bytes=" << gauges.cache.bytes << " hits=" << gauges.cache.hits
     << " misses=" << gauges.cache.misses
     << " evictions=" << gauges.cache.evictions
     << " hit_ratio=" << gauges.cache.HitRatio() << "\n";
  auto pool_line = [&os](const char* name, const PoolGauges& pool) {
    if (!pool.present) return;
    os << name << " hits=" << pool.hits << " misses=" << pool.misses
       << " readaheads=" << pool.readaheads
       << " resident=" << pool.resident << "/" << pool.capacity
       << " hit_ratio=" << pool.HitRatio() << "\n";
  };
  if (gauges.hot_lists.present) {
    os << "hot_lists:         entries=" << gauges.hot_lists.entries
       << " bytes=" << gauges.hot_lists.bytes << "/"
       << gauges.hot_lists.capacity << " hits=" << gauges.hot_lists.hits
       << " misses=" << gauges.hot_lists.misses
       << " admitted=" << gauges.hot_lists.admitted
       << " evicted=" << gauges.hot_lists.evicted
       << " invalidations=" << gauges.hot_lists.invalidations
       << " hit_ratio=" << gauges.hot_lists.HitRatio() << "\n";
  }
  pool_line("il_pool:           ", gauges.il_pool);
  pool_line("scan_pool:         ", gauges.scan_pool);
  os << "wal:               recoveries=" << gauges.wal.recoveries
     << " batches_replayed=" << gauges.wal.batches_replayed
     << " bytes_replayed=" << gauges.wal.bytes_replayed
     << " commits=" << gauges.wal.commits
     << " wal_bytes=" << gauges.wal.wal_bytes << "\n";
  for (const ShardGauges& shard : gauges.shards) {
    os << "shard[" << shard.shard << "]:          docs=" << shard.documents
       << " executed=" << shard.executed << " pruned=" << shard.pruned
       << " io_errors=" << shard.io_errors << " results=" << shard.results;
    auto shard_pool = [&os](const char* name, const PoolGauges& pool) {
      if (!pool.present) return;
      os << " " << name << "=" << pool.hits << "h/" << pool.misses << "m";
    };
    shard_pool("il", shard.il_pool);
    shard_pool("scan", shard.scan_pool);
    os << "\n";
  }
  os << "engine:            " << engine_stats.ToString() << "\n";
  return os.str();
}

}  // namespace serve
}  // namespace xksearch
