#ifndef XKSEARCH_SERVE_QUERY_SERVICE_H_
#define XKSEARCH_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "serve/batcher.h"
#include "serve/hot_list_cache.h"
#include "serve/metrics.h"
#include "serve/query_cache.h"
#include "serve/thread_pool.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_collection.h"

namespace xksearch {
namespace serve {

struct QueryServiceOptions {
  ThreadPool::Options pool;
  QueryCache::Options cache;
  /// Disable to measure the raw engine (every request dispatches).
  bool enable_cache = true;
  /// Byte budget of the decoded hot-list cache: frequent terms' packed
  /// posting lists are decoded once and served as pinned vectors instead
  /// of being re-decoded per query. 0 (the default) disables it. Like
  /// shard_exec, pure execution config — results and Table-1 counters do
  /// not change, so it is not part of the cache key. Only the in-memory
  /// packed path consults it (disk backends decode per block anyway).
  size_t hot_list_bytes = 0;
  /// Sightings of a term before its list is decoded into the hot-list
  /// cache (admission filter; see HotListCache::Options::admit_after).
  uint32_t hot_list_admit_after = 2;
  /// Single-flight coalescing: a request whose canonical cache key
  /// matches an identical query already executing attaches to that
  /// execution instead of dispatching a duplicate, and the finished
  /// result is published to the cache and to every attached request
  /// atomically — closing the thundering-herd window where N identical
  /// cold queries all miss the cache and all execute. Pure execution
  /// config (followers receive the exact result the leader computed), so
  /// like shard_exec it never enters the cache key. Works with the
  /// result cache disabled; coalesced responses then simply bypass it.
  bool single_flight = true;
  /// Batch collection window for cache-miss dispatch, microseconds.
  /// 0 (the default) dispatches each admitted query straight to the
  /// worker pool, exactly as before. > 0 routes admitted queries through
  /// a batch scheduler: the first query opens a window this long, every
  /// query admitted inside it joins the batch (up to batch_max), and the
  /// batch shares one decoded-list provider and one vectored cold-page
  /// prefetch. Execution-time only — batched results, match_ops and
  /// per-query stats are identical to unbatched runs (see DESIGN.md).
  uint64_t batch_window_us = 0;
  /// Most queries per batch; a full batch dispatches before the window
  /// closes.
  size_t batch_max = 16;
  /// Deadline applied to requests submitted without an explicit timeout;
  /// zero means no deadline.
  std::chrono::milliseconds default_timeout{0};
  /// Load-generator aid: sleep this long in the worker before running
  /// each cache-miss query, emulating a slower storage tier (cold-cache
  /// disk stalls) without needing one. Zero (the default) measures the
  /// real engine only; keep it zero outside load tests.
  std::chrono::microseconds synthetic_backend_latency{0};
  /// Shard fan-out configuration, used only by the sharded-collection
  /// backend. Deliberately NOT part of SearchOptions (and therefore not
  /// part of the cache key): execution placement never changes the
  /// answer, so cached results stay valid across executor configs.
  shard::ScatterGatherOptions shard_exec;
  /// Intra-query chunked-SLCA execution for cache-miss queries (every
  /// backend: engine, disk searcher, and each shard of a collection).
  /// Like shard_exec, deliberately NOT part of the cache key.
  struct SlcaChunkOptions {
    /// Workers of the dedicated chunk pool; 0 disables chunking. The
    /// pool is separate from the request pool on purpose: request
    /// workers block waiting for their chunk tasks, so sharing one pool
    /// could deadlock with every worker waiting and every chunk queued.
    size_t workers = 0;
    /// Chunks per query; 0 means workers + 1 (the coordinator runs one).
    size_t max_chunks = 0;
    /// Minimum S1 elements per chunk (ParallelExecOptions).
    uint64_t min_chunk_elements = 1024;
    /// Token budget shared by ALL queries' extra chunk workers, capping
    /// total intra-query concurrency even when the shard scatter and the
    /// request pool fan out on top; 0 means `workers` tokens.
    size_t max_extra_workers = 0;
  };
  SlcaChunkOptions slca_chunk;
};

/// \brief One served query's payload.
struct QueryResponse {
  SearchResult result;
  /// True when the response came from the result cache.
  bool cache_hit = false;
  /// True when the response came from attaching to an identical
  /// in-flight execution (single-flight); this request ran no engine
  /// work of its own.
  bool coalesced = false;
  /// End-to-end submit-to-completion time.
  std::chrono::nanoseconds latency{0};
};

/// \brief The servable face of the engine: bounded-queue thread-pooled
/// execution, a sharded result cache consulted before dispatch, deadlines,
/// and a metrics registry.
///
/// Turns the single-caller XKSearch/DiskSearcher library into something a
/// front end can push concurrent traffic at. Requests are admitted
/// (kUnavailable when the queue is full — callers shed or retry), checked
/// against the cache (hot queries complete on the submitting thread
/// without touching the pool), and otherwise executed by the worker pool
/// against the underlying engine, whose in-memory read path is lock-free
/// for concurrent const callers.
class QueryService {
 public:
  /// Serves from an in-memory (or hybrid) engine. `engine` is not owned
  /// and must outlive the service.
  QueryService(const XKSearch* engine, const QueryServiceOptions& options);
  /// Serves from a persisted index without the source document.
  QueryService(const DiskSearcher* searcher,
               const QueryServiceOptions& options);
  /// Serves from a sharded collection: cache misses scatter across the
  /// collection's candidate shards on a dedicated executor pool and the
  /// response carries the merged result (per-shard stats summed into
  /// `result.stats`). `collection` is not owned and must outlive the
  /// service.
  QueryService(const shard::ShardedCollection* collection,
               const QueryServiceOptions& options);
  /// Drains outstanding requests, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Asynchronous submission. The returned future resolves to the
  /// response, or to kUnavailable (queue full / shut down),
  /// kDeadlineExceeded (deadline passed while queued), or the engine's
  /// error. Rejections and cache hits resolve immediately.
  std::future<Result<QueryResponse>> Submit(
      const std::vector<std::string>& keywords,
      const SearchOptions& options = {});

  /// Submit with a per-request deadline overriding default_timeout.
  std::future<Result<QueryResponse>> SubmitWithTimeout(
      const std::vector<std::string>& keywords, const SearchOptions& options,
      std::chrono::milliseconds timeout);

  /// Synchronous convenience wrapper: Submit + wait.
  Result<QueryResponse> Search(const std::vector<std::string>& keywords,
                               const SearchOptions& options = {});

  /// Runs queued requests to completion, stops the workers, and rejects
  /// all later submissions. Idempotent.
  void Shutdown();

  /// Canonical cache key for a query: tokenizer-normalized, sorted,
  /// deduplicated keywords (none of which changes the answer) + options.
  QueryCacheKey MakeCacheKey(const std::vector<std::string>& keywords,
                             const SearchOptions& options) const;

  /// Drops all cached results and decoded hot lists (hook for index
  /// mutation; the hot-list cache additionally self-invalidates on every
  /// WAL commit it observes).
  void InvalidateCache() {
    cache_.Clear();
    if (hot_lists_ != nullptr) hot_lists_->AdvanceEpoch();
  }

  const MetricsRegistry& metrics() const { return metrics_; }
  QueryCache::Stats cache_stats() const { return cache_.GetStats(); }
  /// Zeroed stats when the hot-list cache is disabled.
  HotListCache::Stats hot_list_stats() const {
    return hot_lists_ != nullptr ? hot_lists_->GetStats()
                                 : HotListCache::Stats{};
  }
  size_t queue_depth() const { return pool_.queue_depth(); }

  /// Text report of every counter, histogram and gauge.
  std::string MetricsReport() const;

 private:
  using Clock = std::chrono::steady_clock;
  using ResponsePromise = std::promise<Result<QueryResponse>>;

  /// One in-flight execution under single-flight: later identical
  /// requests attach here as followers and are answered from the
  /// leader's result. Lives in flights_ from leader admission until the
  /// leader's completion retires it (atomically with the cache insert).
  struct Flight {
    struct Follower {
      std::shared_ptr<ResponsePromise> promise;
      Clock::time_point submitted;
    };
    std::vector<Follower> followers;
  };

  /// Everything one dispatched (leader) request carries to the worker.
  struct Job {
    std::vector<std::string> keywords;
    SearchOptions options;
    QueryCacheKey key;
    /// True when flights_ holds an entry for `key` this job must retire.
    bool in_flight = false;
    std::shared_ptr<ResponsePromise> promise;
    Clock::time_point submitted;
    Clock::time_point deadline;
  };

  QueryService(const XKSearch* engine, const DiskSearcher* searcher,
               const shard::ShardedCollection* collection,
               const QueryServiceOptions& options);

  Result<SearchResult> RunQuery(const std::vector<std::string>& keywords,
                                const SearchOptions& options,
                                DecodedListProvider* provider) const;

  /// Worker body of a dispatched request: deadline check, engine run,
  /// atomic cache-insert + flight-retire, responses to leader and every
  /// follower. `provider` is the batch's shared decoded-list provider
  /// (null on the unbatched path — the hot-list cache is used directly).
  void ExecuteJob(const std::shared_ptr<Job>& job,
                  DecodedListProvider* provider);

  /// Fails every follower of job's flight (and the leader) with
  /// `status`; used when admission fails after the flight registered.
  void AbortFlight(const std::shared_ptr<Job>& job, const Status& status);

  /// Batch-formation hook: size metrics plus the batch's one vectored
  /// cold-page prefetch (merged, deduplicated, capped; errors swallowed
  /// — a failed prefetch just means the members fault pages in
  /// themselves).
  void OnBatch(const std::vector<Batcher::Item>& batch);

  /// Predicted cold scan-leaf pages for a disk-backed query (empty for
  /// pure in-memory and sharded backends).
  std::vector<PageId> PredictColdPages(
      const std::vector<std::string>& normalized,
      const SearchOptions& options) const;

  // Exactly one of engine_/searcher_/collection_ is set.
  const XKSearch* engine_;
  const DiskSearcher* searcher_;
  const shard::ShardedCollection* collection_;
  std::unique_ptr<shard::ScatterGatherExecutor> shard_exec_;
  QueryServiceOptions options_;
  MetricsRegistry metrics_;
  QueryCache cache_;
  /// Declared before pool_: in-flight workers consult it through the
  /// SearchOptions they carry, so it must outlive the pool join.
  std::unique_ptr<HotListCache> hot_lists_;
  std::atomic<bool> stopped_{false};
  /// Guards flights_ AND serializes result-cache publication with
  /// lookup+attach: a completing leader inserts into cache_ and retires
  /// its flight under this mutex, and a submitter looks up the cache and
  /// attaches to (or registers) a flight under it too — so a request
  /// either sees the cached result or the flight that will produce it,
  /// never the gap in between.
  std::mutex flight_mu_;
  std::unordered_map<QueryCacheKey, std::shared_ptr<Flight>,
                     QueryCacheKeyHash>
      flights_;
  // Declared before pool_ so they are destroyed after it: request
  // workers wait for their chunk tasks inline, so once pool_ has joined
  // nothing can touch the chunk pool or its budget.
  std::unique_ptr<ThreadPool> chunk_pool_;
  std::unique_ptr<ConcurrencyBudget> chunk_budget_;
  // Destroyed (joined) before everything above it, so in-flight tasks
  // never see partially-destroyed cache/metrics.
  ThreadPool pool_;
  /// Batch scheduler (batch_window_us > 0 only); constructed in the
  /// ctor body once pool_ exists. Last member on purpose: destroyed
  /// first, and its Stop() drains every admitted query into the
  /// still-alive pool before the collector joins. Shutdown stops it
  /// before the pool for the same reason.
  std::unique_ptr<Batcher> batcher_;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_QUERY_SERVICE_H_
