#ifndef XKSEARCH_SERVE_QUERY_SERVICE_H_
#define XKSEARCH_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "serve/hot_list_cache.h"
#include "serve/metrics.h"
#include "serve/query_cache.h"
#include "serve/thread_pool.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_collection.h"

namespace xksearch {
namespace serve {

struct QueryServiceOptions {
  ThreadPool::Options pool;
  QueryCache::Options cache;
  /// Disable to measure the raw engine (every request dispatches).
  bool enable_cache = true;
  /// Byte budget of the decoded hot-list cache: frequent terms' packed
  /// posting lists are decoded once and served as pinned vectors instead
  /// of being re-decoded per query. 0 (the default) disables it. Like
  /// shard_exec, pure execution config — results and Table-1 counters do
  /// not change, so it is not part of the cache key. Only the in-memory
  /// packed path consults it (disk backends decode per block anyway).
  size_t hot_list_bytes = 0;
  /// Sightings of a term before its list is decoded into the hot-list
  /// cache (admission filter; see HotListCache::Options::admit_after).
  uint32_t hot_list_admit_after = 2;
  /// Deadline applied to requests submitted without an explicit timeout;
  /// zero means no deadline.
  std::chrono::milliseconds default_timeout{0};
  /// Load-generator aid: sleep this long in the worker before running
  /// each cache-miss query, emulating a slower storage tier (cold-cache
  /// disk stalls) without needing one. Zero (the default) measures the
  /// real engine only; keep it zero outside load tests.
  std::chrono::microseconds synthetic_backend_latency{0};
  /// Shard fan-out configuration, used only by the sharded-collection
  /// backend. Deliberately NOT part of SearchOptions (and therefore not
  /// part of the cache key): execution placement never changes the
  /// answer, so cached results stay valid across executor configs.
  shard::ScatterGatherOptions shard_exec;
  /// Intra-query chunked-SLCA execution for cache-miss queries (every
  /// backend: engine, disk searcher, and each shard of a collection).
  /// Like shard_exec, deliberately NOT part of the cache key.
  struct SlcaChunkOptions {
    /// Workers of the dedicated chunk pool; 0 disables chunking. The
    /// pool is separate from the request pool on purpose: request
    /// workers block waiting for their chunk tasks, so sharing one pool
    /// could deadlock with every worker waiting and every chunk queued.
    size_t workers = 0;
    /// Chunks per query; 0 means workers + 1 (the coordinator runs one).
    size_t max_chunks = 0;
    /// Minimum S1 elements per chunk (ParallelExecOptions).
    uint64_t min_chunk_elements = 1024;
    /// Token budget shared by ALL queries' extra chunk workers, capping
    /// total intra-query concurrency even when the shard scatter and the
    /// request pool fan out on top; 0 means `workers` tokens.
    size_t max_extra_workers = 0;
  };
  SlcaChunkOptions slca_chunk;
};

/// \brief One served query's payload.
struct QueryResponse {
  SearchResult result;
  /// True when the response came from the result cache.
  bool cache_hit = false;
  /// End-to-end submit-to-completion time.
  std::chrono::nanoseconds latency{0};
};

/// \brief The servable face of the engine: bounded-queue thread-pooled
/// execution, a sharded result cache consulted before dispatch, deadlines,
/// and a metrics registry.
///
/// Turns the single-caller XKSearch/DiskSearcher library into something a
/// front end can push concurrent traffic at. Requests are admitted
/// (kUnavailable when the queue is full — callers shed or retry), checked
/// against the cache (hot queries complete on the submitting thread
/// without touching the pool), and otherwise executed by the worker pool
/// against the underlying engine, whose in-memory read path is lock-free
/// for concurrent const callers.
class QueryService {
 public:
  /// Serves from an in-memory (or hybrid) engine. `engine` is not owned
  /// and must outlive the service.
  QueryService(const XKSearch* engine, const QueryServiceOptions& options);
  /// Serves from a persisted index without the source document.
  QueryService(const DiskSearcher* searcher,
               const QueryServiceOptions& options);
  /// Serves from a sharded collection: cache misses scatter across the
  /// collection's candidate shards on a dedicated executor pool and the
  /// response carries the merged result (per-shard stats summed into
  /// `result.stats`). `collection` is not owned and must outlive the
  /// service.
  QueryService(const shard::ShardedCollection* collection,
               const QueryServiceOptions& options);
  /// Drains outstanding requests, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Asynchronous submission. The returned future resolves to the
  /// response, or to kUnavailable (queue full / shut down),
  /// kDeadlineExceeded (deadline passed while queued), or the engine's
  /// error. Rejections and cache hits resolve immediately.
  std::future<Result<QueryResponse>> Submit(
      const std::vector<std::string>& keywords,
      const SearchOptions& options = {});

  /// Submit with a per-request deadline overriding default_timeout.
  std::future<Result<QueryResponse>> SubmitWithTimeout(
      const std::vector<std::string>& keywords, const SearchOptions& options,
      std::chrono::milliseconds timeout);

  /// Synchronous convenience wrapper: Submit + wait.
  Result<QueryResponse> Search(const std::vector<std::string>& keywords,
                               const SearchOptions& options = {});

  /// Runs queued requests to completion, stops the workers, and rejects
  /// all later submissions. Idempotent.
  void Shutdown();

  /// Canonical cache key for a query: tokenizer-normalized, sorted,
  /// deduplicated keywords (none of which changes the answer) + options.
  QueryCacheKey MakeCacheKey(const std::vector<std::string>& keywords,
                             const SearchOptions& options) const;

  /// Drops all cached results and decoded hot lists (hook for index
  /// mutation; the hot-list cache additionally self-invalidates on every
  /// WAL commit it observes).
  void InvalidateCache() {
    cache_.Clear();
    if (hot_lists_ != nullptr) hot_lists_->AdvanceEpoch();
  }

  const MetricsRegistry& metrics() const { return metrics_; }
  QueryCache::Stats cache_stats() const { return cache_.GetStats(); }
  /// Zeroed stats when the hot-list cache is disabled.
  HotListCache::Stats hot_list_stats() const {
    return hot_lists_ != nullptr ? hot_lists_->GetStats()
                                 : HotListCache::Stats{};
  }
  size_t queue_depth() const { return pool_.queue_depth(); }

  /// Text report of every counter, histogram and gauge.
  std::string MetricsReport() const;

 private:
  QueryService(const XKSearch* engine, const DiskSearcher* searcher,
               const shard::ShardedCollection* collection,
               const QueryServiceOptions& options);

  Result<SearchResult> RunQuery(const std::vector<std::string>& keywords,
                                const SearchOptions& options) const;

  // Exactly one of engine_/searcher_/collection_ is set.
  const XKSearch* engine_;
  const DiskSearcher* searcher_;
  const shard::ShardedCollection* collection_;
  std::unique_ptr<shard::ScatterGatherExecutor> shard_exec_;
  QueryServiceOptions options_;
  MetricsRegistry metrics_;
  QueryCache cache_;
  /// Declared before pool_: in-flight workers consult it through the
  /// SearchOptions they carry, so it must outlive the pool join.
  std::unique_ptr<HotListCache> hot_lists_;
  std::atomic<bool> stopped_{false};
  // Declared before pool_ so they are destroyed after it: request
  // workers wait for their chunk tasks inline, so once pool_ has joined
  // nothing can touch the chunk pool or its budget.
  std::unique_ptr<ThreadPool> chunk_pool_;
  std::unique_ptr<ConcurrencyBudget> chunk_budget_;
  // Last member: destroyed (joined) first, so in-flight tasks never see
  // partially-destroyed cache/metrics.
  ThreadPool pool_;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_QUERY_SERVICE_H_
