#ifndef XKSEARCH_SERVE_METRICS_H_
#define XKSEARCH_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "serve/query_cache.h"

namespace xksearch {
namespace serve {

/// \brief Lock-free log-bucketed latency histogram.
///
/// Bucket i counts samples in [2^(i-1), 2^i) nanoseconds, which gives
/// < 100% relative error over the full ns..minutes range in 64 fixed
/// buckets — standard practice for serving-side latency (exact per-sample
/// storage cannot be shared across threads cheaply). Recording is one
/// relaxed fetch_add; quantiles interpolate linearly inside the bucket.
/// The same relaxed-memory-order argument as RelaxedCounter applies:
/// histograms are tallies read at reporting time, not synchronization.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t nanos);

  /// Point-in-time copy of the buckets, with derived statistics.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_nanos = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Approximate quantile (p in [0,1]) in nanoseconds; 0 when empty.
    uint64_t PercentileNanos(double p) const;
    double MeanNanos() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_nanos) /
                              static_cast<double>(count);
    }
  };
  Snapshot TakeSnapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// \brief All counters the serving layer exports, incremented concurrently
/// by submitters and workers (hence RelaxedCounter throughout).
class MetricsRegistry {
 public:
  /// One per accepted Submit call (including ones later rejected by the
  /// deadline check; excludes queue-full rejections).
  RelaxedCounter requests;
  /// Successful responses, from cache or engine.
  RelaxedCounter completed;
  /// Responses served straight from the result cache.
  RelaxedCounter cache_hits;
  /// Admission-control rejections (bounded queue full or stopped pool).
  RelaxedCounter rejected;
  /// Requests whose deadline passed while queued.
  RelaxedCounter deadline_exceeded;
  /// Engine-reported errors.
  RelaxedCounter failed;
  /// Subset of `failed` caused by storage I/O errors (kIoError status):
  /// the signal an operator watches for failing disks under the index.
  RelaxedCounter io_errors;
  /// Requests resolved by attaching to an identical in-flight execution
  /// (single-flight coalescing) instead of executing a duplicate.
  RelaxedCounter coalesced_queries;
  /// Batches the batch scheduler dispatched, and the queries they
  /// carried (batched_queries / batches = mean batch size).
  RelaxedCounter batches;
  RelaxedCounter batched_queries;
  /// Posting-list decodes a per-batch provider shared across members
  /// (each is one decode several queries would otherwise repeat).
  RelaxedCounter shared_decodes;

  /// End-to-end latency of completed requests (both hit and miss paths).
  LatencyHistogram request_latency;
  /// Submit-to-worker-pickup time of dispatched requests (queueing delay).
  LatencyHistogram queue_latency;
  /// Batch sizes (samples are member counts, not nanoseconds; the
  /// log-bucketed histogram works unchanged for small integers).
  LatencyHistogram batch_size;

  /// Engine operation counters aggregated over finished queries.
  QueryStats engine_stats;

  /// Point-in-time totals of one disk-index buffer pool (the counters
  /// are the pool's relaxed atomics, sampled at report time).
  struct PoolGauges {
    bool present = false;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t readaheads = 0;
    size_t resident = 0;
    size_t capacity = 0;
    double HitRatio() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// Point-in-time view of one shard of a sharded backend: cumulative
  /// query counters plus that shard's own buffer pools. An operator reads
  /// these to spot skew (one hot shard), confirm pruning is working
  /// (pruned counts rising on keyword-sparse shards) and localize disk
  /// trouble (io_errors pinned to one shard = one failing volume).
  struct ShardGauges {
    uint32_t shard = 0;
    size_t documents = 0;
    uint64_t executed = 0;
    uint64_t pruned = 0;
    uint64_t io_errors = 0;
    uint64_t results = 0;
    PoolGauges il_pool;
    PoolGauges scan_pool;
  };

  /// Write-ahead-log activity, sampled from the process-wide WalCounters
  /// at report time. `recoveries` > 0 means some open replayed a batch a
  /// crashed updater left behind — expected after a crash, a red flag if
  /// it keeps climbing on a machine that is not crashing.
  struct WalGauges {
    uint64_t recoveries = 0;
    uint64_t batches_replayed = 0;
    uint64_t bytes_replayed = 0;
    uint64_t commits = 0;
    uint64_t wal_bytes = 0;  // bytes committed through the log
  };

  /// Decoded hot-list cache activity, sampled at report time.
  /// present=false when the service runs without one (hot_list_bytes=0
  /// or a disk-only backend).
  struct HotListGauges {
    bool present = false;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admitted = 0;
    uint64_t evicted = 0;
    uint64_t invalidations = 0;
    size_t bytes = 0;
    size_t entries = 0;
    size_t capacity = 0;
    double HitRatio() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// Instantaneous values sampled by the caller at report time.
  struct Gauges {
    size_t queue_depth = 0;
    size_t workers = 0;
    QueryCache::Stats cache;
    HotListGauges hot_lists;
    WalGauges wal;
    /// Disk-index buffer pools; present=false when the served engine has
    /// no disk index.
    PoolGauges il_pool;
    PoolGauges scan_pool;
    /// One entry per shard when serving a sharded collection; empty for
    /// single-index backends.
    std::vector<ShardGauges> shards;
  };

  /// Renders the whole registry as a human-readable text report.
  std::string ReportText(const Gauges& gauges) const;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_METRICS_H_
