#ifndef XKSEARCH_SERVE_QUERY_CACHE_H_
#define XKSEARCH_SERVE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "engine/search_types.h"

namespace xksearch {
namespace serve {

/// \brief Identity of a cacheable query: the normalized keyword multiset
/// plus every option that can change the answer.
///
/// Callers (QueryService) canonicalize the keywords — tokenizer
/// normalization, sort, dedup — before lookup, so "XML, Database" and
/// "database xml" share one entry. The cache itself treats the vector
/// verbatim.
struct QueryCacheKey {
  std::vector<std::string> keywords;
  SearchOptions options;

  friend bool operator==(const QueryCacheKey&, const QueryCacheKey&) = default;
};

struct QueryCacheKeyHash {
  size_t operator()(const QueryCacheKey& key) const {
    uint64_t h = SearchOptionsHash()(key.options);
    for (const std::string& word : key.keywords) {
      h ^= std::hash<std::string>()(word) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

/// \brief Sharded LRU cache of complete query results with a byte budget.
///
/// The paper's hot-cache experiments (Figures 8-10) show index lookup
/// cost dominating SLCA computation; a result cache removes both for
/// repeated queries, which real keyword workloads (Zipf-shaped) produce
/// constantly. Sharding bounds lock contention: a key hashes to one shard
/// and only that shard's mutex is taken. Each shard owns an equal slice
/// of the byte budget and evicts from its own LRU tail, so one hot shard
/// cannot starve the others.
///
/// Invalidation: the engines are immutable after build, so entries never
/// go stale today; Clear() is the hook index updates will call (see
/// DESIGN.md "Serving layer").
class QueryCache {
 public:
  struct Options {
    /// Number of independent shards; rounded up to a power of two.
    size_t shards = 8;
    /// Total budget across all shards; entries above a shard's slice are
    /// never admitted.
    size_t capacity_bytes = 8u << 20;
  };

  /// Counter snapshot. hits/misses/insertions/evictions are cumulative;
  /// entries/bytes are current occupancy.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t oversize_rejects = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;

    double HitRatio() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  explicit QueryCache(const Options& options);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns a copy of the cached result and refreshes its recency, or
  /// nullopt on miss.
  std::optional<SearchResult> Lookup(const QueryCacheKey& key);

  /// Inserts (or replaces) the entry, then evicts from the shard's LRU
  /// tail until the shard is back under budget. Entries larger than one
  /// shard's whole budget are rejected.
  void Insert(const QueryCacheKey& key, const SearchResult& result);

  /// Drops every entry (the invalidation hook for future index updates).
  void Clear();

  Stats GetStats() const;

  /// Heap-footprint estimate used against the byte budget: strings,
  /// Dewey component vectors and per-entry bookkeeping overhead.
  static size_t ApproxEntryBytes(const QueryCacheKey& key,
                                 const SearchResult& result);

 private:
  struct Entry {
    QueryCacheKey key;
    SearchResult result;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<QueryCacheKey, std::list<Entry>::iterator,
                       QueryCacheKeyHash>
        map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const QueryCacheKey& key);

  size_t shard_mask_;
  size_t shard_budget_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  RelaxedCounter hits_;
  RelaxedCounter misses_;
  RelaxedCounter insertions_;
  RelaxedCounter evictions_;
  RelaxedCounter oversize_rejects_;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_QUERY_CACHE_H_
