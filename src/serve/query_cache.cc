#include "serve/query_cache.h"

#include <algorithm>
#include <bit>

namespace xksearch {
namespace serve {

namespace {

size_t StringBytes(const std::string& s) {
  // Small-string storage is part of the object; only spilled capacity is
  // extra heap, approximated by the length plus container bookkeeping.
  return sizeof(std::string) + (s.capacity() > sizeof(std::string) ? s.capacity() : 0);
}

size_t KeywordsBytes(const std::vector<std::string>& words) {
  size_t total = sizeof(words);
  for (const std::string& w : words) total += StringBytes(w);
  return total;
}

}  // namespace

QueryCache::QueryCache(const Options& options) {
  const size_t shard_count = std::bit_ceil(std::max<size_t>(1, options.shards));
  shard_mask_ = shard_count - 1;
  shard_budget_bytes_ =
      std::max<size_t>(1, options.capacity_bytes / shard_count);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryCache::Shard& QueryCache::ShardFor(const QueryCacheKey& key) {
  // Re-scramble the map hash so shard choice and bucket choice within a
  // shard use different bits.
  const uint64_t h = QueryCacheKeyHash()(key) * 0x9e3779b97f4a7c15ull;
  return *shards_[(h >> 32) & shard_mask_];
}

std::optional<SearchResult> QueryCache::Lookup(const QueryCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++misses_;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++hits_;
  return it->second->result;
}

void QueryCache::Insert(const QueryCacheKey& key, const SearchResult& result) {
  const size_t bytes = ApproxEntryBytes(key, result);
  if (bytes > shard_budget_bytes_) {
    ++oversize_rejects_;
    return;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Entry{key, result, bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++insertions_;
  while (shard.bytes > shard_budget_bytes_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++evictions_;
  }
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

QueryCache::Stats QueryCache::GetStats() const {
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.oversize_rejects = oversize_rejects_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

size_t QueryCache::ApproxEntryBytes(const QueryCacheKey& key,
                                    const SearchResult& result) {
  size_t total = sizeof(Entry);
  total += KeywordsBytes(key.keywords);
  total += KeywordsBytes(result.keywords);
  total += sizeof(DeweyId) * result.nodes.capacity();
  for (const DeweyId& id : result.nodes) {
    total += id.components().capacity() * sizeof(uint32_t);
  }
  // The key is stored twice (list entry + map key) and the map adds a
  // node/bucket per entry; fold both into a flat overhead.
  total += KeywordsBytes(key.keywords) + 64;
  return total;
}

}  // namespace serve
}  // namespace xksearch
