#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

namespace xksearch {
namespace serve {

ThreadPool::ThreadPool(const Options& options) : options_(options) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(/*drain=*/false); }

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::Unavailable("thread pool is stopped");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::Unavailable("request queue full");
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return Status::OK();
}

void ThreadPool::Stop(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_on_stop_ = drain;
    }
    if (joined_) return;
  }
  not_empty_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
  // Discarded tasks (non-drain stop) are destroyed without running.
  queue_.clear();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() || (stopping_ && !drain_on_stop_)) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Counted before the body runs: anyone the task signals from inside
    // its body (e.g. a coordinator latch) must already observe the tick,
    // so "did my task run on the pool?" probes are race-free.
    ++tasks_run_;
    task();
  }
}

}  // namespace serve
}  // namespace xksearch
