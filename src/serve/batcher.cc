#include "serve/batcher.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "storage/wal.h"

namespace xksearch {
namespace serve {

BatchListProvider::BatchListProvider(DecodedListProvider* base,
                                     RelaxedCounter* shared_decodes)
    : base_(base), shared_decodes_(shared_decodes), epoch_(CurrentEpoch()) {}

uint64_t BatchListProvider::CurrentEpoch() const {
  return WalCounters::Instance().commits.load(std::memory_order_relaxed);
}

void BatchListProvider::AddDemand(const PackedDeweyList* list) {
  if (list == nullptr) return;
  ++demand_[list];
}

std::shared_ptr<const std::vector<DeweyId>> BatchListProvider::Get(
    const PackedDeweyList* list) {
  if (list == nullptr) return nullptr;
  // The long-lived provider first: a hot list is already decoded and its
  // sighting counters must advance exactly as they would unbatched.
  if (base_ != nullptr) {
    std::shared_ptr<const std::vector<DeweyId>> hot = base_->Get(list);
    if (hot != nullptr) return hot;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t epoch = CurrentEpoch();
  if (epoch != epoch_) {
    // A WAL commit landed mid-batch: earlier decodes mirror a dead arena
    // generation. Members already holding copies keep them pinned; from
    // here on every Get sees only current-arena data.
    decoded_.clear();
    epoch_ = epoch;
    ++stats_.epoch_drops;
  }
  const auto hit = decoded_.find(list);
  if (hit != decoded_.end()) {
    ++stats_.shared_hits;
    if (shared_decodes_ != nullptr) ++*shared_decodes_;
    return hit->second;
  }
  const auto demand = demand_.find(list);
  if (demand == demand_.end() || demand->second < 2) {
    // Only one member wants this list: decoding it here would trade the
    // packed probe path for a full Materialize nobody shares.
    ++stats_.declines;
    return nullptr;
  }
  // First member to reach a shared list pays the one decode; holding mu_
  // across Materialize serializes racing members onto that single copy.
  auto decoded =
      std::make_shared<const std::vector<DeweyId>>(list->Materialize());
  decoded_.emplace(list, decoded);
  ++stats_.decodes;
  return decoded;
}

BatchListProvider::Stats BatchListProvider::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t BatchListProvider::decoded_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decoded_.size();
}

Batcher::Batcher(const Options& options, ThreadPool* pool,
                 DecodedListProvider* base,
                 std::function<void(const std::vector<Item>&)> on_batch,
                 RelaxedCounter* shared_decodes)
    : options_(options),
      pool_(pool),
      base_(base),
      on_batch_(std::move(on_batch)),
      shared_decodes_(shared_decodes) {
  collector_ = std::thread([this] { CollectorLoop(); });
}

Batcher::~Batcher() { Stop(); }

Status Batcher::Enqueue(Item item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Unavailable("batcher is stopped");
    if (pending_.size() >= options_.queue_capacity) {
      return Status::Unavailable("batch queue is full");
    }
    pending_.push_back(std::move(item));
  }
  cv_.notify_all();
  return Status::OK();
}

void Batcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (collector_.joinable()) collector_.join();
}

void Batcher::CollectorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) return;
      continue;
    }
    // First query seen: hold the window open for companions, but a full
    // batch (or Stop) dispatches immediately.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.window_us);
    while (!stopping_ && pending_.size() < options_.batch_max) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    std::vector<Item> batch;
    const size_t take = std::min(pending_.size(), options_.batch_max);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    RunBatch(std::move(batch));
    lock.lock();
    // On Stop, loop around: the wait predicate falls through while
    // pending_ still has members, so everything admitted is dispatched
    // before the collector exits.
  }
}

void Batcher::RunBatch(std::vector<Item> batch) {
  if (on_batch_) on_batch_(batch);
  auto provider = std::make_shared<BatchListProvider>(base_, shared_decodes_);
  for (const Item& item : batch) {
    for (const PackedDeweyList* list : item.lists) provider->AddDemand(list);
  }
  for (Item& item : batch) {
    // Copy (not move) the closure into the pool task so the inline
    // fallback below still has a callable if Submit rejects.
    auto run = item.run;
    const Status submitted =
        pool_->Submit([provider, run] { run(provider.get()); });
    if (!submitted.ok()) {
      // The member was admitted already — dispatch must not become a
      // second rejection point. Run it here on the collector.
      item.run(provider.get());
    }
  }
}

}  // namespace serve
}  // namespace xksearch
