#include "serve/hot_list_cache.h"

#include <atomic>
#include <utility>

#include "storage/wal.h"

namespace xksearch {
namespace serve {

namespace {

/// Resident bytes of one decoded list: vector header + per-id header +
/// each id's component storage. Capacity (not size) is what the heap
/// actually holds.
size_t DecodedBytes(const std::vector<DeweyId>& ids) {
  size_t bytes = sizeof(std::vector<DeweyId>) +
                 ids.capacity() * sizeof(DeweyId);
  for (const DeweyId& id : ids) {
    bytes += id.components().capacity() * sizeof(uint32_t);
  }
  return bytes;
}

/// Sighting-count sentinel for lists bigger than the whole budget.
constexpr uint32_t kRejected = ~uint32_t{0};

}  // namespace

uint64_t HotListCache::CurrentEpoch() const {
  return WalCounters::Instance().commits.load(std::memory_order_relaxed);
}

void HotListCache::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  // Forcing a mismatch with the next observed epoch flushes on the next
  // Get even if no WAL commit happened in between.
  epoch_primed_ = false;
  if (!entries_.empty() || !sightings_.empty()) {
    entries_.clear();
    sightings_.clear();
    bytes_ = 0;
    ++stats_.invalidations;
  }
}

void HotListCache::MaybeFlushLocked() {
  const uint64_t now = CurrentEpoch();
  if (epoch_primed_ && now == observed_epoch_) return;
  if (epoch_primed_ && (!entries_.empty() || !sightings_.empty())) {
    ++stats_.invalidations;
  }
  entries_.clear();
  sightings_.clear();
  bytes_ = 0;
  observed_epoch_ = now;
  epoch_primed_ = true;
}

bool HotListCache::MakeRoomLocked(size_t need) {
  if (need > options_.max_bytes) return false;
  while (bytes_ + need > options_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() || it->second.hits < victim->second.hits) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return false;
    bytes_ -= victim->second.bytes;
    // Reset the victim's sighting count too: it must re-earn admission,
    // otherwise the next Get would bounce it straight back in.
    sightings_.erase(victim->first);
    entries_.erase(victim);
    ++stats_.evicted;
  }
  return true;
}

std::shared_ptr<const std::vector<DeweyId>> HotListCache::Get(
    const PackedDeweyList* list) {
  if (options_.max_bytes == 0 || list == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  MaybeFlushLocked();

  auto it = entries_.find(list);
  if (it != entries_.end()) {
    ++it->second.hits;
    ++stats_.hits;
    return it->second.ids;
  }

  const uint32_t threshold = options_.admit_after == 0 ? 1
                                                       : options_.admit_after;
  uint32_t& seen = sightings_[list];
  if (seen == kRejected) {
    ++stats_.misses;
    return nullptr;
  }
  if (++seen < threshold) {
    ++stats_.misses;
    return nullptr;
  }

  // Hot enough: decode once and admit if the budget allows. Decoding
  // under the lock is deliberate — it serializes the one-time cost so
  // concurrent requests for the same term cannot all decode it.
  auto ids = std::make_shared<std::vector<DeweyId>>(list->Materialize());
  const size_t bytes = DecodedBytes(*ids);
  if (!MakeRoomLocked(bytes)) {
    // This list alone exceeds the whole budget: it can never be
    // resident, so mark it rejected — otherwise every threshold-th Get
    // would pay the full decode again for nothing. The current query
    // still gets the copy we already paid for.
    seen = kRejected;
    ++stats_.misses;
    return ids;
  }
  Entry entry;
  entry.ids = std::move(ids);
  entry.bytes = bytes;
  entry.hits = 1;
  bytes_ += bytes;
  ++stats_.admitted;
  ++stats_.hits;
  return entries_.emplace(list, std::move(entry)).first->second.ids;
}

HotListCache::Stats HotListCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.bytes = bytes_;
  stats.entries = entries_.size();
  stats.capacity = options_.max_bytes;
  return stats;
}

}  // namespace serve
}  // namespace xksearch
