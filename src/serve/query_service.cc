#include "serve/query_service.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "engine/query_executor.h"
#include "index/tokenizer.h"
#include "storage/wal.h"

namespace xksearch {
namespace serve {

namespace {

uint64_t Nanos(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

QueryService::QueryService(const XKSearch* engine,
                           const QueryServiceOptions& options)
    : QueryService(engine, nullptr, nullptr, options) {}

QueryService::QueryService(const DiskSearcher* searcher,
                           const QueryServiceOptions& options)
    : QueryService(nullptr, searcher, nullptr, options) {}

QueryService::QueryService(const shard::ShardedCollection* collection,
                           const QueryServiceOptions& options)
    : QueryService(nullptr, nullptr, collection, options) {}

QueryService::QueryService(const XKSearch* engine, const DiskSearcher* searcher,
                           const shard::ShardedCollection* collection,
                           const QueryServiceOptions& options)
    : engine_(engine),
      searcher_(searcher),
      collection_(collection),
      options_(options),
      cache_(options.cache),
      pool_(options.pool) {
  if (collection_ != nullptr) {
    shard_exec_ = std::make_unique<shard::ScatterGatherExecutor>(
        collection_, options.shard_exec);
  }
  // Hot lists only help backends with in-memory packed arenas; the
  // disk-only searcher never consults the provider.
  if (options.hot_list_bytes > 0 && searcher_ == nullptr) {
    HotListCache::Options hot;
    hot.max_bytes = options.hot_list_bytes;
    hot.admit_after = options.hot_list_admit_after;
    hot_lists_ = std::make_unique<HotListCache>(hot);
  }
  if (options.slca_chunk.workers > 0) {
    ThreadPool::Options chunk_pool;
    chunk_pool.workers = options.slca_chunk.workers;
    chunk_pool_ = std::make_unique<ThreadPool>(chunk_pool);
    const size_t tokens = options.slca_chunk.max_extra_workers > 0
                              ? options.slca_chunk.max_extra_workers
                              : options.slca_chunk.workers;
    chunk_budget_ = std::make_unique<ConcurrencyBudget>(tokens);
  }
  if (options.batch_window_us > 0) {
    Batcher::Options batch;
    batch.window_us = options.batch_window_us;
    batch.batch_max = std::max<size_t>(1, options.batch_max);
    batch.queue_capacity = options.pool.queue_capacity;
    batcher_ = std::make_unique<Batcher>(
        batch, &pool_, hot_lists_.get(),
        [this](const std::vector<Batcher::Item>& formed) { OnBatch(formed); },
        &metrics_.shared_decodes);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  stopped_.store(true, std::memory_order_relaxed);
  // Order matters: the batcher first (it dispatches everything admitted
  // into the pool), then the pool (drains those plus directly-submitted
  // work). Flights retire as their leaders complete during the drain.
  if (batcher_ != nullptr) batcher_->Stop();
  pool_.Stop(/*drain=*/true);
  // Defensive sweep: with every worker joined no leader can retire a
  // flight anymore, so any entry still here would strand its followers'
  // futures forever. There should be none (every admitted leader ran or
  // was aborted), but a stuck future is the worst failure mode a serving
  // layer can hand a caller, so fail them loudly instead.
  std::vector<Flight::Follower> orphans;
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    for (auto& [key, flight] : flights_) {
      for (Flight::Follower& follower : flight->followers) {
        orphans.push_back(std::move(follower));
      }
    }
    flights_.clear();
  }
  for (Flight::Follower& follower : orphans) {
    ++metrics_.failed;
    follower.promise->set_value(
        Status::Unavailable("query service shut down mid-flight"));
  }
}

Result<SearchResult> QueryService::RunQuery(
    const std::vector<std::string>& keywords, const SearchOptions& options,
    DecodedListProvider* provider) const {
  SearchOptions exec_options = options;
  // The batch's provider when one was handed down (it consults the
  // hot-list cache underneath), the long-lived cache otherwise.
  exec_options.hot_lists =
      provider != nullptr ? provider : hot_lists_.get();
  if (chunk_pool_ != nullptr) {
    // Inject the service's chunk executor; the shared budget caps the
    // extra workers across every concurrent query and (for a sharded
    // collection) across the shard x chunk fan-out.
    exec_options.slca_exec.pool = chunk_pool_.get();
    exec_options.slca_exec.budget = chunk_budget_.get();
    exec_options.slca_exec.max_chunks =
        options_.slca_chunk.max_chunks > 0 ? options_.slca_chunk.max_chunks
                                           : options_.slca_chunk.workers + 1;
    exec_options.slca_exec.min_chunk_elements =
        options_.slca_chunk.min_chunk_elements;
  }
  if (collection_ != nullptr) {
    Result<shard::ShardedResult> sharded =
        shard_exec_->Search(keywords, exec_options);
    if (!sharded.ok()) return sharded.status();
    return std::move(sharded->result);
  }
  return engine_ != nullptr ? engine_->Search(keywords, exec_options)
                            : searcher_->Search(keywords, exec_options);
}

QueryCacheKey QueryService::MakeCacheKey(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  const TokenizerOptions& tokenizer =
      engine_ != nullptr       ? engine_->index_options().tokenizer
      : collection_ != nullptr ? collection_->index_options().tokenizer
                               : searcher_->tokenizer();
  QueryCacheKey key;
  key.options = options;
  key.keywords.reserve(keywords.size());
  for (const std::string& word : keywords) {
    key.keywords.push_back(NormalizeKeyword(word, tokenizer));
  }
  // Keyword order never affects the answer (the engine reorders lists by
  // frequency) and duplicate keywords contribute identical lists, so a
  // sorted deduplicated key maximizes hit rate across textual variants.
  std::sort(key.keywords.begin(), key.keywords.end());
  key.keywords.erase(std::unique(key.keywords.begin(), key.keywords.end()),
                     key.keywords.end());
  return key;
}

std::vector<PageId> QueryService::PredictColdPages(
    const std::vector<std::string>& normalized,
    const SearchOptions& options) const {
  std::vector<PageId> pages;
  const DiskIndex* disk = nullptr;
  if (searcher_ != nullptr) {
    disk = searcher_->index();
  } else if (engine_ != nullptr && options.use_disk_index) {
    disk = engine_->disk_index();
  }
  // Sharded backends are skipped: each shard has its own pools and the
  // scatter path does its own per-shard readahead.
  if (disk == nullptr) return pages;
  for (const std::string& kw : normalized) {
    const DiskIndex::TermInfo* info = disk->FindTerm(kw);
    if (info == nullptr) continue;
    // One B+tree descent predicts where this term's scan run starts and
    // roughly how many leaves it spans; a misprediction only wastes a
    // prefetched page, never changes what the query reads.
    Result<std::pair<PageId, size_t>> predicted =
        disk->PredictScanLeaves(info->id, info->frequency, nullptr);
    if (!predicted.ok()) continue;
    for (size_t i = 0; i < predicted->second; ++i) {
      pages.push_back(predicted->first + static_cast<PageId>(i));
    }
  }
  return pages;
}

void QueryService::OnBatch(const std::vector<Batcher::Item>& batch) {
  ++metrics_.batches;
  metrics_.batched_queries += batch.size();
  metrics_.batch_size.Record(batch.size());
  std::vector<PageId> pages;
  for (const Batcher::Item& item : batch) {
    pages.insert(pages.end(), item.pages.begin(), item.pages.end());
  }
  if (pages.empty()) return;
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  const DiskIndex* disk =
      engine_ != nullptr ? engine_->disk_index()
      : searcher_ != nullptr ? searcher_->index()
                             : nullptr;
  if (disk == nullptr) return;
  BufferPool* pool = disk->scan_pool();
  // FetchMany pins every page it returns; cap the batch well under the
  // pool so the prefetch can never exhaust it for the queries behind it.
  const size_t cap = std::max<size_t>(1, pool->capacity() / 2);
  if (pages.size() > cap) pages.resize(cap);
  Result<std::vector<PageRef>> warmed =
      pool->FetchMany(std::span<const PageId>(pages), nullptr);
  // Pins drop immediately — the point was the one vectored read that
  // made the pages resident. Errors are swallowed on purpose: a failed
  // prefetch page will be re-read (and its error surfaced, if real) by
  // whichever query actually needs it.
  (void)warmed;
}

void QueryService::AbortFlight(const std::shared_ptr<Job>& job,
                               const Status& status) {
  std::vector<Flight::Follower> followers;
  if (job->in_flight) {
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto it = flights_.find(job->key);
    if (it != flights_.end()) {
      followers = std::move(it->second->followers);
      flights_.erase(it);
    }
  }
  ++metrics_.rejected;
  job->promise->set_value(status);
  for (Flight::Follower& follower : followers) {
    ++metrics_.rejected;
    follower.promise->set_value(status);
  }
}

void QueryService::ExecuteJob(const std::shared_ptr<Job>& job,
                              DecodedListProvider* provider) {
  const Clock::time_point picked_up = Clock::now();
  metrics_.queue_latency.Record(Nanos(picked_up - job->submitted));
  bool leader_resolved = false;
  if (picked_up >= job->deadline) {
    ++metrics_.deadline_exceeded;
    job->promise->set_value(
        Status::DeadlineExceeded("request deadline passed while queued"));
    if (!job->in_flight) return;
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      auto it = flights_.find(job->key);
      if (it == flights_.end()) return;
      if (it->second->followers.empty()) {
        // Nobody else is waiting: retire the flight and skip the work.
        flights_.erase(it);
        return;
      }
    }
    // Followers attached before the deadline fired; they carry their own
    // (possibly later) deadlines, so the execution still happens — just
    // with the leader's promise already resolved.
    leader_resolved = true;
  }
  if (options_.synthetic_backend_latency.count() > 0) {
    std::this_thread::sleep_for(options_.synthetic_backend_latency);
  }
  Result<SearchResult> result =
      RunQuery(job->keywords, job->options, provider);

  // Publish atomically: the cache insert and the flight retirement
  // happen under one flight_mu_ hold, so a concurrent submitter either
  // hits the cache or attaches to this flight — there is no instant
  // where the result exists but neither path can see it (the lookup/
  // insert race the pre-single-flight service had).
  std::vector<Flight::Follower> followers;
  if (job->in_flight || (options_.enable_cache && result.ok())) {
    std::lock_guard<std::mutex> lock(flight_mu_);
    if (options_.enable_cache && result.ok()) cache_.Insert(job->key, *result);
    if (job->in_flight) {
      auto it = flights_.find(job->key);
      if (it != flights_.end()) {
        followers = std::move(it->second->followers);
        flights_.erase(it);
      }
    }
  }

  if (!result.ok()) {
    if (!leader_resolved) {
      ++metrics_.failed;
      if (result.status().IsIoError()) ++metrics_.io_errors;
      job->promise->set_value(result.status());
    }
    for (Flight::Follower& follower : followers) {
      ++metrics_.failed;
      if (result.status().IsIoError()) ++metrics_.io_errors;
      follower.promise->set_value(result.status());
    }
    return;
  }

  // One engine execution happened, so the aggregate advances once no
  // matter how many requests this answer fans out to.
  metrics_.engine_stats += result->stats;
  for (Flight::Follower& follower : followers) {
    ++metrics_.completed;
    QueryResponse response;
    response.result = *result;
    response.cache_hit = false;
    response.coalesced = true;
    response.latency = Clock::now() - follower.submitted;
    metrics_.request_latency.Record(Nanos(response.latency));
    follower.promise->set_value(std::move(response));
  }
  if (!leader_resolved) {
    ++metrics_.completed;
    QueryResponse response;
    response.result = result.MoveValueUnsafe();
    response.cache_hit = false;
    response.latency = Clock::now() - job->submitted;
    metrics_.request_latency.Record(Nanos(response.latency));
    job->promise->set_value(std::move(response));
  }
}

std::future<Result<QueryResponse>> QueryService::Submit(
    const std::vector<std::string>& keywords, const SearchOptions& options) {
  return SubmitWithTimeout(keywords, options, options_.default_timeout);
}

std::future<Result<QueryResponse>> QueryService::SubmitWithTimeout(
    const std::vector<std::string>& keywords, const SearchOptions& options,
    std::chrono::milliseconds timeout) {
  const Clock::time_point submitted = Clock::now();
  auto promise = std::make_shared<ResponsePromise>();
  std::future<Result<QueryResponse>> future = promise->get_future();

  if (stopped_.load(std::memory_order_relaxed)) {
    ++metrics_.rejected;
    promise->set_value(Status::Unavailable("query service is shut down"));
    return future;
  }

  // The canonical key is the identity for the result cache, for
  // single-flight coalescing, and for the batcher's posting-list census;
  // skip the normalization work only when nobody needs it.
  const bool keyed =
      options_.enable_cache || options_.single_flight || batcher_ != nullptr;
  QueryCacheKey key;
  if (keyed) key = MakeCacheKey(keywords, options);

  bool in_flight = false;
  if (options_.enable_cache || options_.single_flight) {
    std::lock_guard<std::mutex> lock(flight_mu_);
    if (options_.enable_cache) {
      if (std::optional<SearchResult> hit = cache_.Lookup(key)) {
        ++metrics_.requests;
        ++metrics_.completed;
        ++metrics_.cache_hits;
        QueryResponse response;
        response.result = std::move(*hit);
        response.cache_hit = true;
        response.latency = Clock::now() - submitted;
        metrics_.request_latency.Record(Nanos(response.latency));
        promise->set_value(std::move(response));
        return future;
      }
    }
    if (options_.single_flight) {
      auto it = flights_.find(key);
      if (it != flights_.end()) {
        // Identical query already executing: ride it. The follower
        // performs no engine work of its own — not even a dispatch.
        it->second->followers.push_back(Flight::Follower{promise, submitted});
        ++metrics_.requests;
        ++metrics_.coalesced_queries;
        return future;
      }
      flights_.emplace(key, std::make_shared<Flight>());
      in_flight = true;
    }
  }

  auto job = std::make_shared<Job>();
  job->keywords = keywords;
  job->options = options;
  job->key = std::move(key);
  job->in_flight = in_flight;
  job->promise = promise;
  job->submitted = submitted;
  job->deadline = timeout.count() > 0 ? submitted + timeout
                                      : Clock::time_point::max();

  Status admitted;
  if (batcher_ != nullptr) {
    Batcher::Item item;
    // The census: which packed lists will this query ask the provider
    // about? Only meaningful for the in-memory packed path — disk and
    // sharded backends contribute no lists (and an empty census simply
    // means nothing is shared on their behalf).
    if (engine_ != nullptr && !job->options.use_disk_index &&
        job->options.use_packed_lists) {
      item.lists = ResolvePackedLists(engine_->index(), job->key.keywords);
    }
    item.pages = PredictColdPages(job->key.keywords, job->options);
    item.run = [this, job](DecodedListProvider* provider) {
      ExecuteJob(job, provider);
    };
    admitted = batcher_->Enqueue(std::move(item));
  } else {
    admitted = pool_.Submit([this, job] { ExecuteJob(job, nullptr); });
  }
  if (!admitted.ok()) {
    AbortFlight(job, admitted);
    return future;
  }
  ++metrics_.requests;
  return future;
}

Result<QueryResponse> QueryService::Search(
    const std::vector<std::string>& keywords, const SearchOptions& options) {
  return Submit(keywords, options).get();
}

std::string QueryService::MetricsReport() const {
  MetricsRegistry::Gauges gauges;
  gauges.queue_depth = pool_.queue_depth();
  gauges.workers = pool_.workers();
  gauges.cache = cache_.GetStats();
  if (hot_lists_ != nullptr) {
    const HotListCache::Stats hot = hot_lists_->GetStats();
    gauges.hot_lists.present = true;
    gauges.hot_lists.hits = hot.hits;
    gauges.hot_lists.misses = hot.misses;
    gauges.hot_lists.admitted = hot.admitted;
    gauges.hot_lists.evicted = hot.evicted;
    gauges.hot_lists.invalidations = hot.invalidations;
    gauges.hot_lists.bytes = hot.bytes;
    gauges.hot_lists.entries = hot.entries;
    gauges.hot_lists.capacity = hot.capacity;
  }
  {
    const WalCounters& wal = WalCounters::Instance();
    gauges.wal.recoveries = wal.recoveries.load(std::memory_order_relaxed);
    gauges.wal.batches_replayed =
        wal.batches_replayed.load(std::memory_order_relaxed);
    gauges.wal.bytes_replayed =
        wal.bytes_replayed.load(std::memory_order_relaxed);
    gauges.wal.commits = wal.commits.load(std::memory_order_relaxed);
    gauges.wal.wal_bytes = wal.bytes_committed.load(std::memory_order_relaxed);
  }
  auto sample = [](const BufferPool& pool) {
    MetricsRegistry::PoolGauges g;
    g.present = true;
    g.hits = pool.total_hits();
    g.misses = pool.total_misses();
    g.readaheads = pool.total_readaheads();
    g.resident = pool.resident();
    g.capacity = pool.capacity();
    return g;
  };
  if (collection_ != nullptr) {
    const std::vector<shard::ShardCountersSnapshot> counters =
        collection_->CountersSnapshot();
    gauges.shards.resize(collection_->shard_count());
    for (uint32_t s = 0; s < collection_->shard_count(); ++s) {
      MetricsRegistry::ShardGauges& g = gauges.shards[s];
      g.shard = s;
      g.documents = collection_->shard_documents(s).size();
      g.executed = counters[s].executed;
      g.pruned = counters[s].pruned;
      g.io_errors = counters[s].io_errors;
      g.results = counters[s].results;
      const XKSearch* engine = collection_->shard_engine(s);
      if (engine != nullptr && engine->disk_index() != nullptr) {
        g.il_pool = sample(*engine->disk_index()->il_pool());
        g.scan_pool = sample(*engine->disk_index()->scan_pool());
      }
    }
  } else {
    const DiskIndex* disk =
        engine_ != nullptr ? engine_->disk_index() : searcher_->index();
    if (disk != nullptr) {
      gauges.il_pool = sample(*disk->il_pool());
      gauges.scan_pool = sample(*disk->scan_pool());
    }
  }
  return metrics_.ReportText(gauges);
}

}  // namespace serve
}  // namespace xksearch
