#include "serve/query_service.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "index/tokenizer.h"
#include "storage/wal.h"

namespace xksearch {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t Nanos(Clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

QueryService::QueryService(const XKSearch* engine,
                           const QueryServiceOptions& options)
    : QueryService(engine, nullptr, nullptr, options) {}

QueryService::QueryService(const DiskSearcher* searcher,
                           const QueryServiceOptions& options)
    : QueryService(nullptr, searcher, nullptr, options) {}

QueryService::QueryService(const shard::ShardedCollection* collection,
                           const QueryServiceOptions& options)
    : QueryService(nullptr, nullptr, collection, options) {}

QueryService::QueryService(const XKSearch* engine, const DiskSearcher* searcher,
                           const shard::ShardedCollection* collection,
                           const QueryServiceOptions& options)
    : engine_(engine),
      searcher_(searcher),
      collection_(collection),
      options_(options),
      cache_(options.cache),
      pool_(options.pool) {
  if (collection_ != nullptr) {
    shard_exec_ = std::make_unique<shard::ScatterGatherExecutor>(
        collection_, options.shard_exec);
  }
  // Hot lists only help backends with in-memory packed arenas; the
  // disk-only searcher never consults the provider.
  if (options.hot_list_bytes > 0 && searcher_ == nullptr) {
    HotListCache::Options hot;
    hot.max_bytes = options.hot_list_bytes;
    hot.admit_after = options.hot_list_admit_after;
    hot_lists_ = std::make_unique<HotListCache>(hot);
  }
  if (options.slca_chunk.workers > 0) {
    ThreadPool::Options chunk_pool;
    chunk_pool.workers = options.slca_chunk.workers;
    chunk_pool_ = std::make_unique<ThreadPool>(chunk_pool);
    const size_t tokens = options.slca_chunk.max_extra_workers > 0
                              ? options.slca_chunk.max_extra_workers
                              : options.slca_chunk.workers;
    chunk_budget_ = std::make_unique<ConcurrencyBudget>(tokens);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  stopped_.store(true, std::memory_order_relaxed);
  pool_.Stop(/*drain=*/true);
}

Result<SearchResult> QueryService::RunQuery(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  SearchOptions exec_options = options;
  if (hot_lists_ != nullptr) exec_options.hot_lists = hot_lists_.get();
  if (chunk_pool_ != nullptr) {
    // Inject the service's chunk executor; the shared budget caps the
    // extra workers across every concurrent query and (for a sharded
    // collection) across the shard x chunk fan-out.
    exec_options.slca_exec.pool = chunk_pool_.get();
    exec_options.slca_exec.budget = chunk_budget_.get();
    exec_options.slca_exec.max_chunks =
        options_.slca_chunk.max_chunks > 0 ? options_.slca_chunk.max_chunks
                                           : options_.slca_chunk.workers + 1;
    exec_options.slca_exec.min_chunk_elements =
        options_.slca_chunk.min_chunk_elements;
  }
  if (collection_ != nullptr) {
    Result<shard::ShardedResult> sharded =
        shard_exec_->Search(keywords, exec_options);
    if (!sharded.ok()) return sharded.status();
    return std::move(sharded->result);
  }
  return engine_ != nullptr ? engine_->Search(keywords, exec_options)
                            : searcher_->Search(keywords, exec_options);
}

QueryCacheKey QueryService::MakeCacheKey(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  const TokenizerOptions& tokenizer =
      engine_ != nullptr       ? engine_->index_options().tokenizer
      : collection_ != nullptr ? collection_->index_options().tokenizer
                               : searcher_->tokenizer();
  QueryCacheKey key;
  key.options = options;
  key.keywords.reserve(keywords.size());
  for (const std::string& word : keywords) {
    key.keywords.push_back(NormalizeKeyword(word, tokenizer));
  }
  // Keyword order never affects the answer (the engine reorders lists by
  // frequency) and duplicate keywords contribute identical lists, so a
  // sorted deduplicated key maximizes hit rate across textual variants.
  std::sort(key.keywords.begin(), key.keywords.end());
  key.keywords.erase(std::unique(key.keywords.begin(), key.keywords.end()),
                     key.keywords.end());
  return key;
}

std::future<Result<QueryResponse>> QueryService::Submit(
    const std::vector<std::string>& keywords, const SearchOptions& options) {
  return SubmitWithTimeout(keywords, options, options_.default_timeout);
}

std::future<Result<QueryResponse>> QueryService::SubmitWithTimeout(
    const std::vector<std::string>& keywords, const SearchOptions& options,
    std::chrono::milliseconds timeout) {
  const Clock::time_point submitted = Clock::now();
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();

  if (stopped_.load(std::memory_order_relaxed)) {
    ++metrics_.rejected;
    promise->set_value(Status::Unavailable("query service is shut down"));
    return future;
  }

  QueryCacheKey key;
  if (options_.enable_cache) {
    key = MakeCacheKey(keywords, options);
    if (std::optional<SearchResult> hit = cache_.Lookup(key)) {
      ++metrics_.requests;
      ++metrics_.completed;
      ++metrics_.cache_hits;
      QueryResponse response;
      response.result = std::move(*hit);
      response.cache_hit = true;
      response.latency = Clock::now() - submitted;
      metrics_.request_latency.Record(Nanos(response.latency));
      promise->set_value(std::move(response));
      return future;
    }
  }

  const Clock::time_point deadline = timeout.count() > 0
                                         ? submitted + timeout
                                         : Clock::time_point::max();
  Status admitted = pool_.Submit([this, promise, keywords, options,
                                  key = std::move(key), submitted, deadline] {
    const Clock::time_point picked_up = Clock::now();
    metrics_.queue_latency.Record(Nanos(picked_up - submitted));
    if (picked_up >= deadline) {
      ++metrics_.deadline_exceeded;
      promise->set_value(
          Status::DeadlineExceeded("request deadline passed while queued"));
      return;
    }
    if (options_.synthetic_backend_latency.count() > 0) {
      std::this_thread::sleep_for(options_.synthetic_backend_latency);
    }
    Result<SearchResult> result = RunQuery(keywords, options);
    if (!result.ok()) {
      ++metrics_.failed;
      if (result.status().IsIoError()) ++metrics_.io_errors;
      promise->set_value(result.status());
      return;
    }
    metrics_.engine_stats += result->stats;
    if (options_.enable_cache) cache_.Insert(key, *result);
    ++metrics_.completed;
    QueryResponse response;
    response.result = result.MoveValueUnsafe();
    response.cache_hit = false;
    response.latency = Clock::now() - submitted;
    metrics_.request_latency.Record(Nanos(response.latency));
    promise->set_value(std::move(response));
  });
  if (!admitted.ok()) {
    ++metrics_.rejected;
    promise->set_value(std::move(admitted));
    return future;
  }
  ++metrics_.requests;
  return future;
}

Result<QueryResponse> QueryService::Search(
    const std::vector<std::string>& keywords, const SearchOptions& options) {
  return Submit(keywords, options).get();
}

std::string QueryService::MetricsReport() const {
  MetricsRegistry::Gauges gauges;
  gauges.queue_depth = pool_.queue_depth();
  gauges.workers = pool_.workers();
  gauges.cache = cache_.GetStats();
  if (hot_lists_ != nullptr) {
    const HotListCache::Stats hot = hot_lists_->GetStats();
    gauges.hot_lists.present = true;
    gauges.hot_lists.hits = hot.hits;
    gauges.hot_lists.misses = hot.misses;
    gauges.hot_lists.admitted = hot.admitted;
    gauges.hot_lists.evicted = hot.evicted;
    gauges.hot_lists.invalidations = hot.invalidations;
    gauges.hot_lists.bytes = hot.bytes;
    gauges.hot_lists.entries = hot.entries;
    gauges.hot_lists.capacity = hot.capacity;
  }
  {
    const WalCounters& wal = WalCounters::Instance();
    gauges.wal.recoveries = wal.recoveries.load(std::memory_order_relaxed);
    gauges.wal.batches_replayed =
        wal.batches_replayed.load(std::memory_order_relaxed);
    gauges.wal.bytes_replayed =
        wal.bytes_replayed.load(std::memory_order_relaxed);
    gauges.wal.commits = wal.commits.load(std::memory_order_relaxed);
    gauges.wal.wal_bytes = wal.bytes_committed.load(std::memory_order_relaxed);
  }
  auto sample = [](const BufferPool& pool) {
    MetricsRegistry::PoolGauges g;
    g.present = true;
    g.hits = pool.total_hits();
    g.misses = pool.total_misses();
    g.readaheads = pool.total_readaheads();
    g.resident = pool.resident();
    g.capacity = pool.capacity();
    return g;
  };
  if (collection_ != nullptr) {
    const std::vector<shard::ShardCountersSnapshot> counters =
        collection_->CountersSnapshot();
    gauges.shards.resize(collection_->shard_count());
    for (uint32_t s = 0; s < collection_->shard_count(); ++s) {
      MetricsRegistry::ShardGauges& g = gauges.shards[s];
      g.shard = s;
      g.documents = collection_->shard_documents(s).size();
      g.executed = counters[s].executed;
      g.pruned = counters[s].pruned;
      g.io_errors = counters[s].io_errors;
      g.results = counters[s].results;
      const XKSearch* engine = collection_->shard_engine(s);
      if (engine != nullptr && engine->disk_index() != nullptr) {
        g.il_pool = sample(*engine->disk_index()->il_pool());
        g.scan_pool = sample(*engine->disk_index()->scan_pool());
      }
    }
  } else {
    const DiskIndex* disk =
        engine_ != nullptr ? engine_->disk_index() : searcher_->index();
    if (disk != nullptr) {
      gauges.il_pool = sample(*disk->il_pool());
      gauges.scan_pool = sample(*disk->scan_pool());
    }
  }
  return metrics_.ReportText(gauges);
}

}  // namespace serve
}  // namespace xksearch
