#ifndef XKSEARCH_SERVE_BATCHER_H_
#define XKSEARCH_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/packed_list.h"
#include "engine/search_types.h"
#include "serve/thread_pool.h"
#include "storage/page.h"

namespace xksearch {
namespace serve {

/// \brief Per-batch decoded-list provider: the sharing surface of one
/// batch of concurrent queries.
///
/// Query preparation asks it (through the ordinary SearchOptions
/// hot_lists plumbing) once per packed list. Three outcomes:
///   1. The underlying long-lived provider (the service's HotListCache)
///      answers — it is consulted first on every Get, so its sighting
///      counts advance exactly as they would unbatched and lists that
///      graduated to hot are served from it, not re-decoded per batch.
///   2. The list is wanted by >= 2 batch members (the demand census the
///      batcher takes before dispatch): the first Get pays one
///      Materialize under the provider mutex and every later Get —
///      including from other members on other workers — shares that
///      read-only vector. Exactly one decode per shared list per batch.
///   3. A single-member list declines (nullptr), leaving the query on
///      the packed probe path: batch sharing must never make a lone
///      Indexed-Lookup query fully decode a list it would only probe a
///      few entries of.
///
/// Sharing is read-only decoded blocks; each query keeps its own cursors
/// and its own pins (PreparedQuery::pinned holds the shared_ptr), which
/// is why batched results, match_ops and per-query counters are
/// identical to unbatched execution.
///
/// A WAL commit between members would make earlier decodes mirror a
/// dead arena generation, so every Get checks the process-wide commit
/// epoch and drops the decoded map on a change — the same invalidation
/// rule as HotListCache. Members already holding copies keep them
/// pinned; later Gets decode fresh against the current arena.
class BatchListProvider : public DecodedListProvider {
 public:
  /// `base` (may be null) is the longer-lived provider layered under
  /// this batch, consulted first on every Get. `shared_decodes` (may be
  /// null) is bumped once per Get served from a batch-mate's decode —
  /// each tick is one Materialize the batch avoided repeating.
  explicit BatchListProvider(DecodedListProvider* base,
                             RelaxedCounter* shared_decodes = nullptr);

  /// Registers one batch member's interest in `list` (pre-dispatch
  /// demand census; not thread-safe against Get).
  void AddDemand(const PackedDeweyList* list);

  std::shared_ptr<const std::vector<DeweyId>> Get(
      const PackedDeweyList* list) override;

  struct Stats {
    uint64_t decodes = 0;      // lists materialized by this batch
    uint64_t shared_hits = 0;  // Gets served from a batch-mate's decode
    uint64_t declines = 0;     // single-member lists left packed
    uint64_t epoch_drops = 0;  // decoded map dropped on a WAL commit
  };
  Stats GetStats() const;
  /// Test hook: currently resident decoded lists.
  size_t decoded_entries() const;

 private:
  uint64_t CurrentEpoch() const;

  DecodedListProvider* const base_;
  RelaxedCounter* const shared_decodes_;
  mutable std::mutex mu_;
  uint64_t epoch_;
  std::unordered_map<const PackedDeweyList*, uint32_t> demand_;
  std::unordered_map<const PackedDeweyList*,
                     std::shared_ptr<const std::vector<DeweyId>>>
      decoded_;
  Stats stats_;
};

/// \brief Bounded-window batch scheduler: groups admitted queries so
/// each group shares one BatchListProvider and one cold-page prefetch.
///
/// A dedicated collector thread waits for the first pending query, then
/// collects for up to `window_us` (or until `batch_max` are pending) —
/// an idle service adds zero latency, a loaded one at most the window.
/// Each formed batch is announced through `on_batch` (the serving layer
/// records size metrics and issues the batch's vectored cold-page
/// prefetch there), then every member runs on the worker pool with the
/// shared provider; a full pool queue falls back to running the member
/// inline on the collector (the member was already admitted — dispatch
/// must not turn into a second rejection point).
class Batcher {
 public:
  struct Options {
    /// Collection window after the first pending query, microseconds.
    uint64_t window_us = 100;
    /// Most members per batch; a full batch dispatches immediately.
    size_t batch_max = 16;
    /// Admission bound of the pending queue (kUnavailable beyond it).
    size_t queue_capacity = 1024;
  };

  struct Item {
    /// Distinct packed lists this query will ask the provider about
    /// (the demand census input). Empty for disk-only queries.
    std::vector<const PackedDeweyList*> lists;
    /// Predicted cold scan-leaf pages, merged per batch and fetched with
    /// one vectored read before the members run. Empty when the backend
    /// has no disk index.
    std::vector<PageId> pages;
    /// Executes the query end-to-end with the batch's shared provider.
    std::function<void(DecodedListProvider* provider)> run;
  };

  /// `pool` runs batch members; `base` and `shared_decodes` are handed
  /// to every per-batch provider (see BatchListProvider); `on_batch` is
  /// called with each formed batch before any member is dispatched.
  Batcher(const Options& options, ThreadPool* pool, DecodedListProvider* base,
          std::function<void(const std::vector<Item>&)> on_batch,
          RelaxedCounter* shared_decodes = nullptr);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admits one query; kUnavailable when stopped or at queue_capacity.
  Status Enqueue(Item item);

  /// Dispatches everything pending, then joins the collector. Members
  /// already handed to the pool keep running (the pool drains them on
  /// its own Stop). Idempotent.
  void Stop();

 private:
  void CollectorLoop();
  void RunBatch(std::vector<Item> batch);

  const Options options_;
  ThreadPool* const pool_;
  DecodedListProvider* const base_;
  const std::function<void(const std::vector<Item>&)> on_batch_;
  RelaxedCounter* const shared_decodes_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> pending_;
  bool stopping_ = false;
  std::thread collector_;
};

}  // namespace serve
}  // namespace xksearch

#endif  // XKSEARCH_SERVE_BATCHER_H_
