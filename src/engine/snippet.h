#ifndef XKSEARCH_ENGINE_SNIPPET_H_
#define XKSEARCH_ENGINE_SNIPPET_H_

#include <string>

#include "common/result.h"
#include "dewey/dewey_id.h"
#include "xml/document.h"

namespace xksearch {

/// \brief Serializes the answer subtree rooted at `id`, truncated to at
/// most `max_bytes` of XML (0 = unlimited; an `<truncated/>` marker is
/// emitted where content was cut). NotFound if the document has no node
/// with that Dewey number. Shared by XKSearch and DiskSearcher.
Result<std::string> RenderSnippet(const Document& doc, const DeweyId& id,
                                  size_t max_bytes = 0);

}  // namespace xksearch

#endif  // XKSEARCH_ENGINE_SNIPPET_H_
