#ifndef XKSEARCH_ENGINE_QUERY_EXECUTOR_H_
#define XKSEARCH_ENGINE_QUERY_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "engine/search_types.h"
#include "index/inverted_index.h"
#include "index/tokenizer.h"
#include "slca/keyword_list.h"
#include "slca/slca.h"
#include "storage/disk_index.h"

namespace xksearch {

/// \brief A keyword query normalized and bound to keyword lists, ready
/// for one of the SLCA algorithms.
///
/// Shared between the in-memory and the disk execution paths of the
/// engine: normalization, frequency lookup and the smallest-list-first
/// ordering (Section 3's choice of S1) are identical in both.
struct PreparedQuery {
  /// Normalized keywords, ordered by increasing frequency.
  std::vector<std::string> keywords;
  /// Matching list adapters, same order. Missing keywords get an
  /// EmptyKeywordList so the algorithms still see k lists.
  std::vector<std::unique_ptr<KeywordList>> lists;
  /// Backing storage for the vector-layout escape hatch: the packed
  /// index postings decoded into owning vectors the VectorKeywordList
  /// adapters point into. Empty on the default packed path. unique_ptr
  /// elements keep the vectors' addresses stable while this struct is
  /// built and moved.
  std::vector<std::unique_ptr<std::vector<DeweyId>>> materialized;
  /// Hot-list keep-alives: decoded copies handed out by a
  /// DecodedListProvider stay pinned here for the query's lifetime, so
  /// a concurrent cache eviction or epoch invalidation cannot free a
  /// vector an adapter still points into.
  std::vector<std::shared_ptr<const std::vector<DeweyId>>> pinned;
  /// Frequency extremes, for algorithm auto-selection.
  uint64_t min_frequency = 0;
  uint64_t max_frequency = 0;
  /// True iff some keyword does not occur at all (result will be empty).
  bool missing = false;
  /// Raw views of `lists`, cached at assembly so the per-query hot path
  /// does not allocate a fresh vector per call. The pointees live on the
  /// heap, so moving the struct keeps them valid.
  std::vector<KeywordList*> pointers;

  const std::vector<KeywordList*>& list_pointers() const { return pointers; }
};

/// Prepares a query against the in-memory inverted index. `stats` is
/// captured by the list adapters and must outlive the execution. With
/// `use_packed_lists` (the default) the adapters probe the index's
/// packed posting arenas directly; otherwise each list is materialized
/// into a per-query `std::vector<DeweyId>` and served by the classic
/// VectorKeywordList — the differential-testing escape hatch.
///
/// On the packed path, a non-null `hot_lists` provider is consulted per
/// list first: a hit swaps in a pinned, already-decoded vector (served
/// through VectorKeywordList) and skips all per-query decode for that
/// term. Result sets and match-operation counts are unchanged — only
/// postings_read-free probe internals differ — and misses fall through
/// to the packed adapters untouched.
Result<PreparedQuery> PrepareQuery(const InvertedIndex& index,
                                   const std::vector<std::string>& keywords,
                                   const TokenizerOptions& tokenizer,
                                   QueryStats* stats,
                                   bool use_packed_lists = true,
                                   DecodedListProvider* hot_lists = nullptr);

/// Prepares a query against a disk index (its dictionary doubles as the
/// frequency table).
Result<PreparedQuery> PrepareQuery(const DiskIndex& index,
                                   const std::vector<std::string>& keywords,
                                   const TokenizerOptions& tokenizer,
                                   QueryStats* stats);

/// The packed posting lists `normalized` keywords resolve to (absent
/// keywords dropped, duplicates collapsed) — the exact set a later
/// PrepareQuery over the same index will ask a DecodedListProvider
/// about. The serving layer's batch scheduler takes this census across
/// a batch's members so the per-batch provider can decode only lists at
/// least two of them share.
std::vector<const PackedDeweyList*> ResolvePackedLists(
    const InvertedIndex& index, const std::vector<std::string>& normalized);

}  // namespace xksearch

#endif  // XKSEARCH_ENGINE_QUERY_EXECUTOR_H_
