#include "engine/xksearch.h"

#include <algorithm>
#include <fstream>

#include "engine/query_executor.h"
#include "engine/snippet.h"
#include "index/tokenizer.h"

namespace xksearch {

Result<std::unique_ptr<XKSearch>> XKSearch::BuildFromXml(
    std::string_view xml, const BuildOptions& options) {
  XKS_ASSIGN_OR_RETURN(Document doc, ParseXml(xml));
  return BuildFromDocument(std::move(doc), options);
}

Result<std::unique_ptr<XKSearch>> XKSearch::BuildFromFile(
    const std::string& path, const BuildOptions& options) {
  XKS_ASSIGN_OR_RETURN(Document doc, ParseXmlFile(path));
  return BuildFromDocument(std::move(doc), options);
}

Result<std::unique_ptr<XKSearch>> XKSearch::BuildFromDocument(
    Document doc, const BuildOptions& options) {
  InvertedIndex index = InvertedIndex::Build(doc, options.index);
  std::unique_ptr<XKSearch> system(
      new XKSearch(std::move(doc), std::move(index), options.index));
  if (options.build_disk_index) {
    if (!options.disk.in_memory && options.disk_path_prefix.empty()) {
      return Status::InvalidArgument(
          "disk_path_prefix required for a file-backed disk index");
    }
    XKS_ASSIGN_OR_RETURN(
        system->disk_,
        DiskIndex::Build(system->index_, options.disk_path_prefix,
                         options.disk));
    if (options.persist_document) {
      if (options.disk.in_memory) {
        return Status::InvalidArgument(
            "persist_document requires a file-backed disk index");
      }
      std::ofstream out(options.disk_path_prefix + ".xml",
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        return Status::IoError("cannot write " + options.disk_path_prefix +
                               ".xml");
      }
      out << SerializeXml(system->doc_);
      if (!out.good()) {
        return Status::IoError("error writing persisted document");
      }
    }
  }
  return system;
}

uint64_t XKSearch::Frequency(std::string_view keyword) const {
  const std::string normalized =
      NormalizeKeyword(keyword, index_options_.tokenizer);
  return index_.Frequency(normalized);
}

Result<SearchResult> XKSearch::Search(const std::vector<std::string>& keywords,
                                      const SearchOptions& options) const {
  std::vector<DeweyId> nodes;
  SearchOptions opts = options;
  XKS_ASSIGN_OR_RETURN(
      SearchResult result,
      SearchStreaming(keywords, opts,
                      [&](const DeweyId& id) { nodes.push_back(id); }));
  if (options.semantics != Semantics::kSlca) {
    // ELCA and All-LCA emission is not in document order; normalize.
    std::sort(nodes.begin(), nodes.end());
  }
  result.nodes = std::move(nodes);
  return result;
}

Result<SearchResult> XKSearch::SearchStreaming(
    const std::vector<std::string>& keywords, const SearchOptions& options,
    const ResultCallback& emit) const {
  if (options.use_disk_index && disk_ == nullptr) {
    return Status::InvalidArgument(
        "disk index not built; pass build_disk_index at build time");
  }

  SearchResult result;
  PreparedQuery prepared;
  // Both paths are lock-free per query: the in-memory structures are
  // immutable, and the disk path's sharded buffer pool charges each
  // page access to this query's stats object.
  if (options.use_disk_index) {
    XKS_ASSIGN_OR_RETURN(prepared,
                         PrepareQuery(*disk_, keywords,
                                      index_options_.tokenizer,
                                      &result.stats));
  } else {
    XKS_ASSIGN_OR_RETURN(prepared,
                         PrepareQuery(index_, keywords,
                                      index_options_.tokenizer,
                                      &result.stats,
                                      options.use_packed_lists,
                                      options.hot_lists));
  }

  result.keywords = prepared.keywords;
  result.algorithm = ResolveAlgorithmChoice(options, prepared.min_frequency,
                                            prepared.max_frequency);
  Status status;
  if (!prepared.missing) {
    // A keyword that occurs nowhere makes the result trivially empty.
    SlcaOptions slca_options;
    slca_options.block_size = options.block_size;
    const std::vector<KeywordList*>& lists = prepared.list_pointers();
    switch (options.semantics) {
      case Semantics::kSlca:
        status = ComputeSlcaParallel(result.algorithm, lists, slca_options,
                                     options.slca_exec, &result.stats, emit);
        break;
      case Semantics::kElca:
        status = ElcaStack(lists, slca_options, &result.stats, emit);
        break;
      case Semantics::kAllLca:
        status = FindAllLca(lists, slca_options, &result.stats, emit);
        break;
    }
  }
  XKS_RETURN_NOT_OK(status);
  return result;
}

Result<std::string> XKSearch::Snippet(const DeweyId& id,
                                      size_t max_bytes) const {
  return RenderSnippet(doc_, id, max_bytes);
}

}  // namespace xksearch
