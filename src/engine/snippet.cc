#include "engine/snippet.h"

#include "xml/parser.h"

namespace xksearch {

namespace {

/// Serializes subtree(n) with a soft byte budget; emits an ellipsis
/// element when truncating.
void SnippetNode(const Document& doc, NodeId n, size_t max_bytes,
                 std::string* out) {
  if (max_bytes != 0 && out->size() >= max_bytes) return;
  if (doc.IsText(n)) {
    *out += EscapeXml(doc.text(n));
    return;
  }
  *out += '<';
  *out += doc.tag(n);
  for (const auto& [name, value] : doc.attributes(n)) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += EscapeXml(value);
    *out += '"';
  }
  if (doc.children(n).empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  for (NodeId c : doc.children(n)) {
    if (max_bytes != 0 && out->size() >= max_bytes) {
      *out += "<truncated/>";
      break;
    }
    SnippetNode(doc, c, max_bytes, out);
  }
  *out += "</";
  *out += doc.tag(n);
  *out += '>';
}

}  // namespace

Result<std::string> RenderSnippet(const Document& doc, const DeweyId& id,
                                  size_t max_bytes) {
  XKS_ASSIGN_OR_RETURN(NodeId node, doc.FindByDewey(id));
  std::string out;
  SnippetNode(doc, node, max_bytes, &out);
  return out;
}

}  // namespace xksearch
