#ifndef XKSEARCH_ENGINE_COLLECTION_H_
#define XKSEARCH_ENGINE_COLLECTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "engine/xksearch.h"

namespace xksearch {

/// \brief Keyword search over a collection of XML documents.
///
/// The paper's Section 7 contrasts XKSearch with systems that return a
/// ranked list of *documents* containing the keywords; this facade gives
/// both views: per-document SLCA answers, with documents ordered by how
/// many answers they contain. Each document keeps its own index and
/// Dewey space — answers never span documents, matching the intuition
/// that unrelated documents share no meaningful common ancestor.
class Collection {
 public:
  Collection() = default;

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;
  Collection(Collection&&) = default;
  Collection& operator=(Collection&&) = default;

  /// Adds and indexes a document under `name` (must be unique).
  Status AddDocument(const std::string& name, Document doc,
                     const XKSearch::BuildOptions& options = {});

  /// Parses and adds an XML string.
  Status AddXml(const std::string& name, std::string_view xml,
                const XKSearch::BuildOptions& options = {});

  /// Parses and adds an XML file (name defaults to the path).
  Status AddFile(const std::string& path,
                 const XKSearch::BuildOptions& options = {});

  /// One document's answers for a query.
  struct DocumentHit {
    std::string document;
    SearchResult result;
  };

  /// Runs the query against every document. Documents with no answers
  /// are omitted; the rest are ordered by descending answer count (ties
  /// by insertion order), a simple document-relevance proxy.
  Result<std::vector<DocumentHit>> Search(
      const std::vector<std::string>& keywords,
      const SearchOptions& options = {}) const;

  /// The engine for one document, or nullptr.
  const XKSearch* Find(std::string_view name) const;

  /// Total keyword frequency across the collection.
  uint64_t Frequency(std::string_view keyword) const;

  size_t size() const { return entries_.size(); }
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<XKSearch> system;
  };
  std::vector<Entry> entries_;
};

}  // namespace xksearch

#endif  // XKSEARCH_ENGINE_COLLECTION_H_
