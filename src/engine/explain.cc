#include <sstream>

#include "engine/query_executor.h"
#include "engine/xksearch.h"

namespace xksearch {

Result<std::string> XKSearch::Explain(const std::vector<std::string>& keywords,
                                      const SearchOptions& options) const {
  XKS_ASSIGN_OR_RETURN(const SearchResult result, Search(keywords, options));

  // Re-derive the ordered frequencies for the report.
  std::vector<uint64_t> freqs;
  for (const std::string& kw : result.keywords) {
    freqs.push_back(index_.Frequency(kw));
  }
  const size_t k = freqs.size();
  const uint64_t s1 = freqs.empty() ? 0 : freqs.front();
  const uint64_t smax = freqs.empty() ? 0 : freqs.back();
  uint64_t sum = 0;
  for (uint64_t f : freqs) sum += f;
  const size_t depth = index_.level_table().depth();

  std::ostringstream os;
  os << "query:";
  for (size_t i = 0; i < result.keywords.size(); ++i) {
    os << " " << result.keywords[i] << "(|S" << i + 1 << "|=" << freqs[i]
       << ")";
  }
  os << "\nsemantics: "
     << (options.semantics == Semantics::kSlca
             ? "SLCA"
             : options.semantics == Semantics::kElca ? "ELCA (XRANK)"
                                                     : "All-LCA (Section 5)")
     << "\nstorage: " << (options.use_disk_index ? "disk B+trees" : "memory")
     << "\nalgorithm: " << ToString(result.algorithm);
  if (options.algorithm == AlgorithmChoice::kAuto) {
    os << " (auto: max/min frequency ratio "
       << (s1 == 0 ? 0.0
                   : static_cast<double>(smax) / static_cast<double>(s1))
       << (result.algorithm == SlcaAlgorithm::kIndexedLookupEager ? " >= "
                                                                  : " < ")
       << options.auto_ratio_threshold << ")";
  }
  os << "\nmax tree depth d: " << depth;

  // Table 1 predictions for the chosen algorithm and this query shape.
  os << "\npredicted (Table 1):";
  if (result.algorithm == SlcaAlgorithm::kStack) {
    os << " merge of all lists, postings = sum|Si| = " << sum;
  } else {
    os << " match_ops = 2(k-1)|S1| = " << 2 * (k > 0 ? k - 1 : 0) * s1;
    if (result.algorithm == SlcaAlgorithm::kScanEager) {
      os << ", postings <= |S1| + sum|Si| = " << s1 + sum;
    } else {
      os << ", postings <= |S1| + match_ops = "
         << s1 + 2 * (k > 0 ? k - 1 : 0) * s1;
    }
  }
  os << "\nmeasured: " << result.stats.ToString();
  os << "\nresults: " << result.nodes.size() << "\n";
  return os.str();
}

}  // namespace xksearch
