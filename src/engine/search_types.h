#ifndef XKSEARCH_ENGINE_SEARCH_TYPES_H_
#define XKSEARCH_ENGINE_SEARCH_TYPES_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "slca/parallel.h"
#include "slca/slca.h"

namespace xksearch {

class PackedDeweyList;

/// \brief Supplier of fully-decoded posting lists for hot terms.
///
/// Query preparation consults the provider for every packed list it is
/// about to wire up; a non-null return is a pinned, decoded copy of that
/// exact list (same entries, same order), and the query runs over it as
/// a plain vector list — skipping all per-query decode. The shared_ptr
/// keeps the decoded arena alive for the query's lifetime even if the
/// provider evicts or invalidates it concurrently. The serving layer's
/// hot-list cache is the production implementation.
class DecodedListProvider {
 public:
  virtual ~DecodedListProvider() = default;

  /// A decoded copy of `list`, or nullptr to decline (not hot / over
  /// budget / invalidated). Must be safe to call from any thread.
  virtual std::shared_ptr<const std::vector<DeweyId>> Get(
      const PackedDeweyList* list) = 0;
};

/// Algorithm choice for a query; kAuto applies the paper's guidance —
/// Indexed Lookup when the keyword frequencies differ significantly,
/// Scan Eager when they are similar.
enum class AlgorithmChoice {
  kAuto,
  kIndexedLookupEager,
  kScanEager,
  kStack,
};

/// Which answer set a query computes. The three semantics nest:
/// slca ⊆ elca ⊆ lca.
enum class Semantics {
  /// Smallest LCAs — the paper's primary semantics.
  kSlca,
  /// Exhaustive LCAs (XRANK [13]): covering nodes with witnesses of
  /// their own outside any covering descendant.
  kElca,
  /// All LCAs (Section 5).
  kAllLca,
};

/// \brief Per-query options (shared by XKSearch and DiskSearcher).
struct SearchOptions {
  AlgorithmChoice algorithm = AlgorithmChoice::kAuto;
  /// Answer semantics; kElca and kAllLca ignore `algorithm` (kElca is
  /// stack-based, kAllLca pipelines on Indexed Lookup Eager).
  Semantics semantics = Semantics::kSlca;
  /// Evaluate against the disk index (if built) instead of the in-memory
  /// lists; "disk accesses" then appear in the returned stats.
  bool use_disk_index = false;
  /// In-memory layout escape hatch: by default lm/rm probe the packed
  /// (prefix-truncated, skip-table) posting lists with gallop hints;
  /// false materializes plain `std::vector<DeweyId>` lists per query and
  /// runs the classic binary searches over them. Result sets and
  /// match-operation counts are identical — the knob exists for
  /// differential testing and layout benchmarks. Ignored on the disk
  /// path.
  bool use_packed_lists = true;
  /// Buffer size B for eager delivery (see SlcaOptions::block_size).
  size_t block_size = 1;
  /// kAuto picks Indexed Lookup when max frequency / min frequency is at
  /// least this ratio. The crossover in the paper's Figures 8-13 sits
  /// near equal frequencies, so a small ratio favors IL correctly.
  double auto_ratio_threshold = 8.0;
  /// Intra-query chunked execution for the eager SLCA algorithms. Pure
  /// execution config: chunked and sequential runs return the same result
  /// set and Table-1 counters, so this field is deliberately excluded
  /// from equality and hashing — cached results remain valid across
  /// executor configurations (same reasoning as the serving layer's
  /// shard_exec).
  ParallelExecOptions slca_exec;
  /// Optional supplier of pre-decoded hot posting lists, consulted on
  /// the packed in-memory path. Pure execution config like slca_exec:
  /// a hot hit serves the exact same entries the packed adapters would
  /// decode, so result sets and Table-1 counters are unchanged and this
  /// field is deliberately excluded from equality and hashing — cached
  /// results remain valid whether or not the list was served hot.
  DecodedListProvider* hot_lists = nullptr;

  /// Memberwise equality over the *semantic* fields, so SearchOptions can
  /// participate in cache keys (the serving layer keys its result cache
  /// on keywords + options). slca_exec and hot_lists are intentionally
  /// not compared.
  friend bool operator==(const SearchOptions& a, const SearchOptions& b) {
    return a.algorithm == b.algorithm && a.semantics == b.semantics &&
           a.use_disk_index == b.use_disk_index &&
           a.use_packed_lists == b.use_packed_lists &&
           a.block_size == b.block_size &&
           a.auto_ratio_threshold == b.auto_ratio_threshold;
  }
};

/// \brief Hash functor over every SearchOptions field that participates
/// in operator== (slca_exec does not). Suitable for unordered_map keys;
/// any new *semantic* option field must be added to both.
struct SearchOptionsHash {
  size_t operator()(const SearchOptions& o) const {
    uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the fields.
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<uint64_t>(o.algorithm));
    mix(static_cast<uint64_t>(o.semantics));
    mix(o.use_disk_index ? 1 : 0);
    mix(o.use_packed_lists ? 1 : 0);
    mix(static_cast<uint64_t>(o.block_size));
    mix(std::bit_cast<uint64_t>(o.auto_ratio_threshold));
    return static_cast<size_t>(h);
  }
};

/// \brief Result of one keyword search.
struct SearchResult {
  /// Root nodes of the answer subtrees, in document order.
  std::vector<DeweyId> nodes;
  /// The algorithm that actually ran (kAuto resolved).
  SlcaAlgorithm algorithm;
  /// Operation counters for this query.
  QueryStats stats;
  /// Keywords after normalization, reordered by increasing frequency
  /// (the order the lists were fed to the algorithm).
  std::vector<std::string> keywords;
};

/// Resolves kAuto using the frequency extremes of the query's lists.
inline SlcaAlgorithm ResolveAlgorithmChoice(const SearchOptions& options,
                                            uint64_t min_freq,
                                            uint64_t max_freq) {
  switch (options.algorithm) {
    case AlgorithmChoice::kIndexedLookupEager:
      return SlcaAlgorithm::kIndexedLookupEager;
    case AlgorithmChoice::kScanEager:
      return SlcaAlgorithm::kScanEager;
    case AlgorithmChoice::kStack:
      return SlcaAlgorithm::kStack;
    case AlgorithmChoice::kAuto:
      break;
  }
  // The paper's rule of thumb: Indexed Lookup wins when frequencies
  // differ significantly, Scan Eager when they are similar.
  if (min_freq == 0 || static_cast<double>(max_freq) >=
                           options.auto_ratio_threshold *
                               static_cast<double>(min_freq)) {
    return SlcaAlgorithm::kIndexedLookupEager;
  }
  return SlcaAlgorithm::kScanEager;
}

}  // namespace xksearch

#endif  // XKSEARCH_ENGINE_SEARCH_TYPES_H_
