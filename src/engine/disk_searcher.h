#ifndef XKSEARCH_ENGINE_DISK_SEARCHER_H_
#define XKSEARCH_ENGINE_DISK_SEARCHER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/xksearch.h"
#include "storage/disk_index.h"

namespace xksearch {

/// \brief Queries a persisted XKSearch index without the source document.
///
/// The original XKSearch server keeps only the B-tree files and the
/// in-memory frequency table between sessions; re-parsing the XML is not
/// needed to answer queries (only to render result subtrees). This class
/// is that mode: open the `<prefix>.il/.scan/.dict` files produced by a
/// previous `XKSearch::BuildFromDocument(..., build_disk_index=true)` run
/// and search them directly.
class DiskSearcher {
 public:
  /// Opens the index files at `path_prefix`. Query keywords are
  /// normalized with the tokenizer options persisted in the index
  /// metadata, so they match however the index was built. When a
  /// `<prefix>.wal` from a crashed updater is present (and
  /// options.use_wal, the default), the committed batch is replayed
  /// before anything is read, so the searcher always opens a whole
  /// batch boundary — exactly the pre-crash or post-crash index, never
  /// a hybrid.
  static Result<std::unique_ptr<DiskSearcher>> Open(
      const std::string& path_prefix, const DiskIndexOptions& options = {});

  /// Wraps an already-open DiskIndex (not owned).
  DiskSearcher(DiskIndex* index, const TokenizerOptions& tokenizer)
      : index_(index), tokenizer_(tokenizer) {}

  DiskSearcher(const DiskSearcher&) = delete;
  DiskSearcher& operator=(const DiskSearcher&) = delete;

  /// Same semantics as XKSearch::Search, always against the disk index.
  /// `options.use_disk_index` is implied; snippets are unavailable here.
  /// Safe to call from multiple threads, and queries run fully in
  /// parallel: the underlying buffer pools are sharded and thread-safe,
  /// and each query tallies disk accesses into its own result stats.
  Result<SearchResult> Search(const std::vector<std::string>& keywords,
                              const SearchOptions& options = {}) const;

  /// Streaming variant.
  Result<SearchResult> SearchStreaming(
      const std::vector<std::string>& keywords, const SearchOptions& options,
      const ResultCallback& emit) const;

  uint64_t Frequency(std::string_view keyword) const;

  /// Tokenizer options the index was built with, for callers that
  /// pre-normalize keywords (e.g. the serving layer's cache keys).
  const TokenizerOptions& tokenizer() const { return tokenizer_; }

  /// Renders the answer subtree at `id` when the index was built with
  /// persist_document (a `<prefix>.xml` next to the index files);
  /// NotSupported otherwise.
  Result<std::string> Snippet(const DeweyId& id, size_t max_bytes = 0) const;

  /// True iff the persisted document was found and loaded at Open.
  bool has_document() const { return document_.has_value(); }

  DiskIndex* index() const { return index_; }

 private:
  std::unique_ptr<DiskIndex> owned_index_;
  DiskIndex* index_;
  TokenizerOptions tokenizer_;
  std::optional<Document> document_;
};

}  // namespace xksearch

#endif  // XKSEARCH_ENGINE_DISK_SEARCHER_H_
