#include "engine/collection.h"

#include <algorithm>

namespace xksearch {

Status Collection::AddDocument(const std::string& name, Document doc,
                               const XKSearch::BuildOptions& options) {
  if (Find(name) != nullptr) {
    return Status::InvalidArgument("document '" + name +
                                   "' already in collection");
  }
  XKS_ASSIGN_OR_RETURN(std::unique_ptr<XKSearch> system,
                       XKSearch::BuildFromDocument(std::move(doc), options));
  entries_.push_back(Entry{name, std::move(system)});
  return Status::OK();
}

Status Collection::AddXml(const std::string& name, std::string_view xml,
                          const XKSearch::BuildOptions& options) {
  XKS_ASSIGN_OR_RETURN(Document doc, ParseXml(xml));
  return AddDocument(name, std::move(doc), options);
}

Status Collection::AddFile(const std::string& path,
                           const XKSearch::BuildOptions& options) {
  XKS_ASSIGN_OR_RETURN(Document doc, ParseXmlFile(path));
  return AddDocument(path, std::move(doc), options);
}

Result<std::vector<Collection::DocumentHit>> Collection::Search(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  std::vector<DocumentHit> hits;
  for (const Entry& entry : entries_) {
    XKS_ASSIGN_OR_RETURN(SearchResult result,
                         entry.system->Search(keywords, options));
    if (result.nodes.empty()) continue;
    hits.push_back(DocumentHit{entry.name, std::move(result)});
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const DocumentHit& a, const DocumentHit& b) {
                     return a.result.nodes.size() > b.result.nodes.size();
                   });
  return hits;
}

const XKSearch* Collection::Find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.system.get();
  }
  return nullptr;
}

uint64_t Collection::Frequency(std::string_view keyword) const {
  uint64_t total = 0;
  for (const Entry& entry : entries_) {
    total += entry.system->Frequency(keyword);
  }
  return total;
}

std::vector<std::string> Collection::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace xksearch
