#include "engine/disk_searcher.h"

#include <algorithm>

#include "engine/query_executor.h"
#include "engine/snippet.h"
#include "xml/parser.h"

namespace xksearch {

Result<std::unique_ptr<DiskSearcher>> DiskSearcher::Open(
    const std::string& path_prefix, const DiskIndexOptions& options) {
  XKS_ASSIGN_OR_RETURN(std::unique_ptr<DiskIndex> index,
                       DiskIndex::Open(path_prefix, options));
  auto searcher = std::unique_ptr<DiskSearcher>(
      new DiskSearcher(index.get(), index->tokenizer()));
  searcher->owned_index_ = std::move(index);
  // A persisted document (written with persist_document) enables
  // snippets; its absence is not an error.
  Result<Document> doc = ParseXmlFile(path_prefix + ".xml");
  if (doc.ok()) {
    searcher->document_.emplace(doc.MoveValueUnsafe());
  } else if (!doc.status().IsIoError()) {
    return Status::Corruption("persisted document is unreadable: " +
                              doc.status().ToString());
  }
  return searcher;
}

Result<std::string> DiskSearcher::Snippet(const DeweyId& id,
                                          size_t max_bytes) const {
  if (!document_.has_value()) {
    return Status::NotSupported(
        "no persisted document; build the index with persist_document");
  }
  return RenderSnippet(*document_, id, max_bytes);
}

Result<SearchResult> DiskSearcher::Search(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  std::vector<DeweyId> nodes;
  XKS_ASSIGN_OR_RETURN(
      SearchResult result,
      SearchStreaming(keywords, options,
                      [&](const DeweyId& id) { nodes.push_back(id); }));
  if (options.semantics != Semantics::kSlca) {
    std::sort(nodes.begin(), nodes.end());
  }
  result.nodes = std::move(nodes);
  return result;
}

Result<SearchResult> DiskSearcher::SearchStreaming(
    const std::vector<std::string>& keywords, const SearchOptions& options,
    const ResultCallback& emit) const {
  SearchResult result;
  // No locking: the sharded buffer pools are thread-safe, and every
  // page access below is charged to this query's own stats object.
  Result<PreparedQuery> prepared =
      PrepareQuery(*index_, keywords, tokenizer_, &result.stats);
  if (!prepared.ok()) return prepared.status();
  result.keywords = prepared->keywords;

  result.algorithm = ResolveAlgorithmChoice(options, prepared->min_frequency,
                                            prepared->max_frequency);

  Status status;
  if (!prepared->missing) {
    SlcaOptions slca_options;
    slca_options.block_size = options.block_size;
    const std::vector<KeywordList*>& lists = prepared->list_pointers();
    switch (options.semantics) {
      case Semantics::kSlca:
        status = ComputeSlcaParallel(result.algorithm, lists, slca_options,
                                     options.slca_exec, &result.stats, emit);
        break;
      case Semantics::kElca:
        status = ElcaStack(lists, slca_options, &result.stats, emit);
        break;
      case Semantics::kAllLca:
        status = FindAllLca(lists, slca_options, &result.stats, emit);
        break;
    }
  }
  XKS_RETURN_NOT_OK(status);
  return result;
}

uint64_t DiskSearcher::Frequency(std::string_view keyword) const {
  const std::string normalized = NormalizeKeyword(keyword, tokenizer_);
  const DiskIndex::TermInfo* info = index_->FindTerm(normalized);
  return info == nullptr ? 0 : info->frequency;
}

}  // namespace xksearch
