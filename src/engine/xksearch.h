#ifndef XKSEARCH_ENGINE_XKSEARCH_H_
#define XKSEARCH_ENGINE_XKSEARCH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "dewey/dewey_id.h"
#include "index/inverted_index.h"
#include "slca/all_lca.h"
#include "slca/elca.h"
#include "slca/keyword_list.h"
#include "engine/search_types.h"
#include "slca/slca.h"
#include "storage/disk_index.h"
#include "xml/document.h"
#include "xml/parser.h"

namespace xksearch {

/// \brief The XKSearch system (paper Figure 6): document + level table +
/// inverted keyword lists + frequency table + query engine.
///
/// Concurrency contract: after Build*, the in-memory structures are
/// immutable and every const member is safe to call from any number of
/// threads without external locking (all per-query scratch state lives in
/// the PreparedQuery built per call). This includes the disk path: the
/// buffer pools are sharded and thread-safe, and every query charges its
/// disk accesses to its own QueryStats, so use_disk_index queries run
/// fully in parallel. DiskIndexUpdater mutation is outside this contract
/// and must not run concurrently with queries.
class XKSearch {
 public:
  struct BuildOptions {
    IndexOptions index;
    /// Also build the two disk B+tree layouts (required for
    /// SearchOptions::use_disk_index).
    bool build_disk_index = false;
    DiskIndexOptions disk;
    /// File prefix for the disk index; empty with
    /// disk.in_memory = false is an error.
    std::string disk_path_prefix;
    /// Also write the document itself to `<disk_path_prefix>.xml`, so a
    /// later DiskSearcher session can render snippets.
    bool persist_document = false;
  };

  /// Parses `xml` and builds the index structures over it.
  static Result<std::unique_ptr<XKSearch>> BuildFromXml(
      std::string_view xml, const BuildOptions& options);
  static Result<std::unique_ptr<XKSearch>> BuildFromXml(std::string_view xml) {
    return BuildFromXml(xml, BuildOptions());
  }

  /// Reads and indexes an XML file.
  static Result<std::unique_ptr<XKSearch>> BuildFromFile(
      const std::string& path, const BuildOptions& options);
  static Result<std::unique_ptr<XKSearch>> BuildFromFile(
      const std::string& path) {
    return BuildFromFile(path, BuildOptions());
  }

  /// Indexes an already-parsed document (takes ownership).
  static Result<std::unique_ptr<XKSearch>> BuildFromDocument(
      Document doc, const BuildOptions& options);
  static Result<std::unique_ptr<XKSearch>> BuildFromDocument(Document doc) {
    return BuildFromDocument(std::move(doc), BuildOptions());
  }

  XKSearch(const XKSearch&) = delete;
  XKSearch& operator=(const XKSearch&) = delete;

  /// Runs a keyword search. Keywords are normalized like document tokens;
  /// a keyword absent from the document yields an empty result.
  Result<SearchResult> Search(const std::vector<std::string>& keywords,
                              const SearchOptions& options = {}) const;

  /// Streaming variant: results are delivered through `emit` as soon as
  /// they are confirmed (pipelined, per the paper's eager algorithms).
  Result<SearchResult> SearchStreaming(
      const std::vector<std::string>& keywords, const SearchOptions& options,
      const ResultCallback& emit) const;

  /// Keyword frequency (0 when absent) from the frequency table.
  uint64_t Frequency(std::string_view keyword) const;

  /// Runs the query and renders a human-readable execution report: the
  /// frequency-ordered keyword lists, the algorithm chosen and why, the
  /// paper's Table 1 analytic cost predictions for this query shape, and
  /// the measured operation counters side by side.
  Result<std::string> Explain(const std::vector<std::string>& keywords,
                              const SearchOptions& options = {}) const;

  /// Serializes the answer subtree rooted at `id`, truncated to at most
  /// `max_bytes` of XML (0 = unlimited). NotFound if no such node.
  Result<std::string> Snippet(const DeweyId& id, size_t max_bytes = 0) const;

  const Document& document() const { return doc_; }
  const InvertedIndex& index() const { return index_; }
  /// The options the index was built with (tokenizer normalization etc.);
  /// callers that pre-normalize keywords (e.g. cache keys) must use these.
  const IndexOptions& index_options() const { return index_options_; }
  /// nullptr unless built with build_disk_index.
  DiskIndex* disk_index() const { return disk_.get(); }

 private:
  XKSearch(Document doc, InvertedIndex index, IndexOptions index_options)
      : doc_(std::move(doc)),
        index_(std::move(index)),
        index_options_(std::move(index_options)) {}

  Document doc_;
  InvertedIndex index_;
  IndexOptions index_options_;
  std::unique_ptr<DiskIndex> disk_;
};

}  // namespace xksearch

#endif  // XKSEARCH_ENGINE_XKSEARCH_H_
