#include "engine/query_executor.h"

#include <algorithm>
#include <limits>

#include "slca/packed_list.h"

namespace xksearch {

namespace {

struct Term {
  std::string keyword;
  uint64_t frequency;
  std::unique_ptr<KeywordList> list;
  /// Vector-layout escape hatch only: the decoded postings the adapter
  /// points into.
  std::unique_ptr<std::vector<DeweyId>> owned;
  /// Hot-list path only: the shared decoded copy the adapter points into.
  std::shared_ptr<const std::vector<DeweyId>> hot;
};

Result<std::vector<std::string>> Normalize(
    const std::vector<std::string>& keywords,
    const TokenizerOptions& tokenizer) {
  if (keywords.empty()) {
    return Status::InvalidArgument("query needs at least one keyword");
  }
  std::vector<std::string> out;
  out.reserve(keywords.size());
  for (const std::string& raw : keywords) {
    std::string kw = NormalizeKeyword(raw, tokenizer);
    if (kw.empty()) {
      return Status::InvalidArgument("keyword '" + raw +
                                     "' has no indexable characters");
    }
    out.push_back(std::move(kw));
  }
  return out;
}

PreparedQuery Assemble(std::vector<Term> terms) {
  std::stable_sort(terms.begin(), terms.end(),
                   [](const Term& a, const Term& b) {
                     return a.frequency < b.frequency;
                   });
  PreparedQuery query;
  query.min_frequency = std::numeric_limits<uint64_t>::max();
  for (Term& term : terms) {
    query.min_frequency = std::min(query.min_frequency, term.frequency);
    query.max_frequency = std::max(query.max_frequency, term.frequency);
    if (term.frequency == 0) query.missing = true;
    query.keywords.push_back(std::move(term.keyword));
    query.lists.push_back(std::move(term.list));
    if (term.owned != nullptr) {
      query.materialized.push_back(std::move(term.owned));
    }
    if (term.hot != nullptr) {
      query.pinned.push_back(std::move(term.hot));
    }
  }
  query.pointers.reserve(query.lists.size());
  for (const auto& list : query.lists) query.pointers.push_back(list.get());
  return query;
}

}  // namespace

Result<PreparedQuery> PrepareQuery(const InvertedIndex& index,
                                   const std::vector<std::string>& keywords,
                                   const TokenizerOptions& tokenizer,
                                   QueryStats* stats,
                                   bool use_packed_lists,
                                   DecodedListProvider* hot_lists) {
  XKS_ASSIGN_OR_RETURN(std::vector<std::string> normalized,
                       Normalize(keywords, tokenizer));
  std::vector<Term> terms;
  for (std::string& kw : normalized) {
    const PackedDeweyList* list = index.Find(kw);
    Term term;
    term.frequency = list == nullptr ? 0 : list->size();
    if (list == nullptr) {
      term.list = std::unique_ptr<KeywordList>(new EmptyKeywordList());
    } else if (use_packed_lists) {
      if (hot_lists != nullptr) term.hot = hot_lists->Get(list);
      if (term.hot != nullptr) {
        term.list = std::unique_ptr<KeywordList>(
            new VectorKeywordList(term.hot.get(), stats));
      } else {
        term.list =
            std::unique_ptr<KeywordList>(new PackedKeywordList(list, stats));
      }
    } else {
      term.owned = std::make_unique<std::vector<DeweyId>>(list->Materialize());
      term.list = std::unique_ptr<KeywordList>(
          new VectorKeywordList(term.owned.get(), stats));
    }
    term.keyword = std::move(kw);
    terms.push_back(std::move(term));
  }
  return Assemble(std::move(terms));
}

Result<PreparedQuery> PrepareQuery(const DiskIndex& index,
                                   const std::vector<std::string>& keywords,
                                   const TokenizerOptions& tokenizer,
                                   QueryStats* stats) {
  XKS_ASSIGN_OR_RETURN(std::vector<std::string> normalized,
                       Normalize(keywords, tokenizer));
  std::vector<Term> terms;
  for (std::string& kw : normalized) {
    const DiskIndex::TermInfo* info = index.FindTerm(kw);
    Term term;
    term.frequency = info == nullptr ? 0 : info->frequency;
    term.list = info == nullptr
                    ? std::unique_ptr<KeywordList>(new EmptyKeywordList())
                    : std::unique_ptr<KeywordList>(new DiskKeywordList(
                          &index, info->id, info->frequency, stats));
    term.keyword = std::move(kw);
    terms.push_back(std::move(term));
  }
  return Assemble(std::move(terms));
}

std::vector<const PackedDeweyList*> ResolvePackedLists(
    const InvertedIndex& index, const std::vector<std::string>& normalized) {
  std::vector<const PackedDeweyList*> lists;
  lists.reserve(normalized.size());
  for (const std::string& kw : normalized) {
    const PackedDeweyList* list = index.Find(kw);
    if (list == nullptr) continue;
    if (std::find(lists.begin(), lists.end(), list) != lists.end()) continue;
    lists.push_back(list);
  }
  return lists;
}

}  // namespace xksearch
