#include "common/stats.h"

#include <sstream>

namespace xksearch {

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "match_ops=" << match_ops << " dewey_cmp=" << dewey_comparisons
     << " lca_ops=" << lca_ops << " postings=" << postings_read
     << " page_reads=" << page_reads << " page_hits=" << page_hits
     << " readahead=" << readahead_reads << " io_errors=" << io_errors
     << " results=" << results;
  return os.str();
}

}  // namespace xksearch
