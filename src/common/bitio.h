#ifndef XKSEARCH_COMMON_BITIO_H_
#define XKSEARCH_COMMON_BITIO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xksearch {

/// \brief Appends bit fields of arbitrary width (1..32) to a byte buffer,
/// most-significant bit first within each field.
///
/// Used by the Dewey level-table codec (paper Section 4): each component of
/// a Dewey number is stored with exactly `levelTable[level]` bits.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `width` bits of `value`. `width` must be in [0, 32];
  /// width 0 writes nothing (a level whose nodes have at most one child
  /// needs 0 bits only when the component is always 0).
  void WriteBits(uint32_t value, int width);

  /// Pads the current byte with zero bits so the next write is byte-aligned.
  void AlignToByte();

  /// Number of bits written so far.
  size_t bit_count() const { return bit_count_; }

  /// Finishes (pads to a byte boundary) and returns the buffer.
  std::vector<uint8_t> Finish();

  /// Read-only view of the bytes written so far (last byte may be partial).
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
  size_t bit_count_ = 0;
};

/// \brief Reads back bit fields written by BitWriter.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}

  explicit BitReader(const std::vector<uint8_t>& data)
      : BitReader(data.data(), data.size()) {}

  /// Reads `width` bits (0..32). Returns 0 for width 0. It is the caller's
  /// responsibility not to read past the end (checked via Remaining()).
  uint32_t ReadBits(int width);

  /// Skips to the next byte boundary.
  void AlignToByte();

  /// Bits left in the buffer.
  size_t Remaining() const { return size_bits_ - pos_; }

  size_t position_bits() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
};

/// Appends `v` to `out` as a base-128 varint (LSB groups first).
void PutVarint32(std::vector<uint8_t>* out, uint32_t v);
void PutVarint64(std::vector<uint8_t>* out, uint64_t v);

/// Decodes a varint at `*pos` in `data` (size `size`); advances `*pos`.
/// Returns false on truncation/overflow.
bool GetVarint32(const uint8_t* data, size_t size, size_t* pos, uint32_t* v);
bool GetVarint64(const uint8_t* data, size_t size, size_t* pos, uint64_t* v);

}  // namespace xksearch

#endif  // XKSEARCH_COMMON_BITIO_H_
