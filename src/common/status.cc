#include "common/status.h"

namespace xksearch {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace xksearch
