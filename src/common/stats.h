#ifndef XKSEARCH_COMMON_STATS_H_
#define XKSEARCH_COMMON_STATS_H_

#include <cstdint>
#include <string>

namespace xksearch {

/// \brief Operation counters gathered while evaluating a query.
///
/// These back the Table 1 reproduction: the paper characterizes each
/// algorithm by its number of lm/rm ("match") operations, Dewey-number
/// comparisons, and disk accesses. All counters reset per query.
struct QueryStats {
  /// Left/right match operations (lm/rm calls), the paper's "# operations".
  uint64_t match_ops = 0;
  /// Dewey number comparisons performed by match ops and merges.
  uint64_t dewey_comparisons = 0;
  /// LCA (longest-common-prefix) computations.
  uint64_t lca_ops = 0;
  /// Nodes read from keyword lists (postings touched).
  uint64_t postings_read = 0;
  /// Buffer-pool misses, i.e. the paper's "number of disk accesses".
  uint64_t page_reads = 0;
  /// Buffer-pool hits (satisfied from cache).
  uint64_t page_hits = 0;
  /// SLCA/LCA results produced.
  uint64_t results = 0;

  void Reset() { *this = QueryStats(); }

  QueryStats& operator+=(const QueryStats& o) {
    match_ops += o.match_ops;
    dewey_comparisons += o.dewey_comparisons;
    lca_ops += o.lca_ops;
    postings_read += o.postings_read;
    page_reads += o.page_reads;
    page_hits += o.page_hits;
    results += o.results;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace xksearch

#endif  // XKSEARCH_COMMON_STATS_H_
