#ifndef XKSEARCH_COMMON_STATS_H_
#define XKSEARCH_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace xksearch {

/// \brief A copyable uint64 counter whose increments are atomic.
///
/// All accesses use std::memory_order_relaxed: the counters are pure
/// monotonic tallies — no reader derives a happens-before edge from them,
/// and aggregate values are only interpreted after the threads that
/// produced them have been joined (or some other external synchronization
/// point), which already orders the memory. Relaxed atomics therefore
/// give race-free concurrent increments at roughly the cost of a plain
/// add, without the fences seq_cst would insert on every hot-path bump.
///
/// Copy/assignment take a relaxed snapshot, which keeps QueryStats a
/// regular value type (results are returned by value per query); copying
/// a counter that is concurrently incremented yields some valid recent
/// value, never a torn one.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t value = 0) : value_(value) {}  // NOLINT
  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    store(other.load());
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    store(value);
    return *this;
  }

  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  void store(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return load(); }  // NOLINT

 private:
  std::atomic<uint64_t> value_;
};

/// \brief Operation counters gathered while evaluating a query.
///
/// These back the Table 1 reproduction: the paper characterizes each
/// algorithm by its number of lm/rm ("match") operations, Dewey-number
/// comparisons, and disk accesses. Per-query instances reset per query;
/// the serving layer additionally aggregates finished queries' stats into
/// one shared instance, which is why the fields are atomic counters
/// (concurrent workers sharing an engine must not race on them).
struct QueryStats {
  /// Left/right match operations (lm/rm calls), the paper's "# operations".
  RelaxedCounter match_ops = 0;
  /// Dewey number comparisons performed by match ops and merges.
  RelaxedCounter dewey_comparisons = 0;
  /// LCA (longest-common-prefix) computations.
  RelaxedCounter lca_ops = 0;
  /// Nodes read from keyword lists (postings touched).
  RelaxedCounter postings_read = 0;
  /// Buffer-pool misses, i.e. the paper's "number of disk accesses".
  RelaxedCounter page_reads = 0;
  /// Buffer-pool hits (satisfied from cache).
  RelaxedCounter page_hits = 0;
  /// Pages loaded speculatively by leaf readahead on this query's behalf.
  /// Kept separate from page_reads so the paper's on-demand disk-access
  /// counts stay comparable whether or not readahead is enabled.
  RelaxedCounter readahead_reads = 0;
  /// Storage read failures observed on this query's behalf: demand
  /// fetches that surfaced an error status, plus speculative readahead
  /// loads whose failure was swallowed (the demand retry reports its own
  /// error). Per-shard totals sum into sharded response totals like every
  /// other counter.
  RelaxedCounter io_errors = 0;
  /// SLCA/LCA results produced.
  RelaxedCounter results = 0;

  void Reset() { *this = QueryStats(); }

  QueryStats& operator+=(const QueryStats& o) {
    match_ops += o.match_ops;
    dewey_comparisons += o.dewey_comparisons;
    lca_ops += o.lca_ops;
    postings_read += o.postings_read;
    page_reads += o.page_reads;
    page_hits += o.page_hits;
    readahead_reads += o.readahead_reads;
    io_errors += o.io_errors;
    results += o.results;
    return *this;
  }

  std::string ToString() const;
};

/// \brief Scoped accumulator for Dewey comparison counts.
///
/// The tight comparison loops (binary searches, k-way merges) charge each
/// component comparison through a `uint64_t*` passed to DeweyId::Compare.
/// Pointing that at the atomic QueryStats field directly is impossible
/// (and would put an atomic RMW in the innermost loop), so call sites
/// accumulate into this local and the total is charged to
/// `stats->dewey_comparisons` once, on scope exit.
class DeweyCmpCharge {
 public:
  explicit DeweyCmpCharge(QueryStats* stats) : stats_(stats) {}
  ~DeweyCmpCharge() {
    if (stats_ != nullptr && count_ != 0) stats_->dewey_comparisons += count_;
  }
  DeweyCmpCharge(const DeweyCmpCharge&) = delete;
  DeweyCmpCharge& operator=(const DeweyCmpCharge&) = delete;

  /// The slot to hand to DeweyId::Compare; null when stats are disabled.
  uint64_t* slot() { return stats_ != nullptr ? &count_ : nullptr; }

 private:
  QueryStats* stats_;
  uint64_t count_ = 0;
};

}  // namespace xksearch

#endif  // XKSEARCH_COMMON_STATS_H_
