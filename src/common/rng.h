#ifndef XKSEARCH_COMMON_RNG_H_
#define XKSEARCH_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xksearch {

/// \brief Small deterministic PRNG (xorshift128+) used by the workload
/// generators and property tests so experiments are reproducible across
/// runs and platforms (std::mt19937 distributions are not portable).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to avoid weak all-zero-ish states.
    uint64_t z = seed;
    for (uint64_t* s : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      *s = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s0_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
    uint64_t x;
    do {
      x = Next();
    } while (x >= limit);
    return x % n;
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace xksearch

#endif  // XKSEARCH_COMMON_RNG_H_
