#include "common/bitio.h"

#include <cassert>

namespace xksearch {

void BitWriter::WriteBits(uint32_t value, int width) {
  assert(width >= 0 && width <= 32);
  if (width == 0) return;
  if (width < 32) {
    assert((value >> width) == 0 && "value does not fit in width");
  }
  for (int i = width - 1; i >= 0; --i) {
    const size_t byte = bit_count_ / 8;
    const int bit_in_byte = static_cast<int>(bit_count_ % 8);
    if (byte >= buf_.size()) buf_.push_back(0);
    const uint32_t bit = (value >> i) & 1u;
    buf_[byte] |= static_cast<uint8_t>(bit << (7 - bit_in_byte));
    ++bit_count_;
  }
}

void BitWriter::AlignToByte() {
  bit_count_ = (bit_count_ + 7) / 8 * 8;
}

std::vector<uint8_t> BitWriter::Finish() {
  AlignToByte();
  return std::move(buf_);
}

uint32_t BitReader::ReadBits(int width) {
  assert(width >= 0 && width <= 32);
  uint32_t out = 0;
  for (int i = 0; i < width; ++i) {
    assert(pos_ < size_bits_ && "BitReader overrun");
    const size_t byte = pos_ / 8;
    const int bit_in_byte = static_cast<int>(pos_ % 8);
    const uint32_t bit = (data_[byte] >> (7 - bit_in_byte)) & 1u;
    out = (out << 1) | bit;
    ++pos_;
  }
  return out;
}

void BitReader::AlignToByte() { pos_ = (pos_ + 7) / 8 * 8; }

void PutVarint32(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint32(const uint8_t* data, size_t size, size_t* pos, uint32_t* v) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (*pos >= size) return false;
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject bits beyond 32 in the final group.
      if (shift == 28 && (byte & 0x70) != 0) return false;
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetVarint64(const uint8_t* data, size_t size, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (*pos >= size) return false;
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

}  // namespace xksearch
