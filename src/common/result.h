#ifndef XKSEARCH_COMMON_RESULT_H_
#define XKSEARCH_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xksearch {

/// \brief A value-or-error holder, modeled after arrow::Result.
///
/// Exactly one of the two states is active. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if the Result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out, leaving the Result unspecified.
  T MoveValueUnsafe() {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define XKS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.MoveValueUnsafe()

#define XKS_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define XKS_ASSIGN_OR_RETURN_NAME(x, y) XKS_ASSIGN_OR_RETURN_CONCAT(x, y)
#define XKS_ASSIGN_OR_RETURN(lhs, expr) \
  XKS_ASSIGN_OR_RETURN_IMPL(            \
      XKS_ASSIGN_OR_RETURN_NAME(_xks_result_, __LINE__), lhs, expr)

}  // namespace xksearch

#endif  // XKSEARCH_COMMON_RESULT_H_
