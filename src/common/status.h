#ifndef XKSEARCH_COMMON_STATUS_H_
#define XKSEARCH_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace xksearch {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention: a cheap, copyable status object instead of exceptions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kIoError = 3,
  kNotFound = 4,
  kCorruption = 5,
  kOutOfRange = 6,
  kNotSupported = 7,
  kInternal = 8,
  /// Transient overload: the operation was refused by admission control
  /// (e.g. a full request queue) and may succeed if retried later.
  kUnavailable = 9,
  /// The caller-supplied deadline passed before the operation ran.
  kDeadlineExceeded = 10,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// The OK state is represented by a null internal pointer so that the
/// success path costs a single pointer test and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define XKS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::xksearch::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace xksearch

#endif  // XKSEARCH_COMMON_STATUS_H_
