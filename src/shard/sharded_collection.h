#ifndef XKSEARCH_SHARD_SHARDED_COLLECTION_H_
#define XKSEARCH_SHARD_SHARDED_COLLECTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "engine/xksearch.h"
#include "shard/router.h"
#include "storage/pager.h"

namespace xksearch {
namespace shard {

/// Size-balanced partitioner (LPT greedy): documents, heaviest first,
/// each go to the currently lightest shard. Returns one shard index per
/// weight, deterministic for a given input. Exposed for tests and for
/// offline shard planning.
std::vector<uint32_t> BalancedPartition(const std::vector<uint64_t>& weights,
                                        size_t shards);

/// \brief Configuration of a sharded collection, fixed at build time.
struct ShardedCollectionOptions {
  /// Number of shards (>= 1). Shards left without documents stay empty
  /// and are pruned from every query.
  size_t shards = 1;
  /// Per-shard build template. With build_disk_index, each shard builds
  /// its own DiskIndex; a file-backed disk_path_prefix `p` becomes
  /// `p.s<k>` for shard k.
  XKSearch::BuildOptions build;
  /// Test hook mirroring DiskIndexOptions::store_decorator with the
  /// shard index added, so fault-injection tests can target one shard's
  /// stores. Overrides any decorator in `build.disk`.
  std::function<std::unique_ptr<PageStore>(std::unique_ptr<PageStore>,
                                           size_t shard,
                                           std::string_view name)>
      store_decorator;
  RouterOptions router;
};

/// \brief One shard's contribution to a query, reported per response.
struct ShardQueryStats {
  uint32_t shard = 0;
  /// Skipped by the router (some keyword absent from the shard) or empty.
  bool pruned = false;
  /// SLCAs this shard contributed.
  uint64_t results = 0;
  /// The shard query's operation counters; zero when pruned. The
  /// response-level totals are exactly the field-wise sum over shards.
  QueryStats stats;
};

/// \brief Result of one sharded search.
struct ShardedResult {
  /// Merged answer. `result.nodes` are collection Dewey numbers: the
  /// collection behaves as one virtual tree whose root's children are
  /// the documents in insertion order, so an answer rooted at local id
  /// 0.p1.p2 of document d is reported as 0.d.p1.p2 — document-major
  /// order, exactly the order the per-shard streams merge in.
  /// `result.stats` is the field-wise sum of the per-shard stats.
  SearchResult result;
  /// One entry per shard (pruned shards included), indexed by shard id.
  std::vector<ShardQueryStats> shards;

  /// Shards that actually executed (not pruned).
  size_t executed_shards() const;
  /// Shards the router (or emptiness) pruned.
  size_t pruned_shards() const;
};

/// \brief Cumulative per-shard counters, sampled for serving gauges.
struct ShardCountersSnapshot {
  uint64_t executed = 0;
  uint64_t pruned = 0;
  uint64_t io_errors = 0;
  uint64_t results = 0;
};

/// \brief A multi-document collection partitioned into independent
/// shards, each owning its own XKSearch engine (and optional DiskIndex).
///
/// Correctness hook (the reason sharding is safe): SLCA/ELCA/All-LCA
/// answers never cross a document root — any answer's subtree lies
/// entirely inside one document — so partitioning documents across
/// shards and unioning the per-shard answer sets is exact. No re-LCA
/// pass is needed at gather time; the per-shard streams are simply
/// merged in document order.
///
/// Internally each shard splices its documents under a synthetic root
/// element (tagged "_", which tokenizes to nothing and is therefore
/// never indexed), giving the shard one Dewey space and one engine;
/// shard-local answers rooted at the synthetic root are discarded (they
/// would correspond to cross-document ancestors, which have no meaning
/// in a collection), and the remaining answers are re-based from
/// shard-local to collection coordinates.
///
/// Thread safety: immutable after Build; Search and the building blocks
/// below are safe from any number of threads (per-query state is local,
/// cumulative counters are relaxed atomics), which is what lets the
/// ScatterGatherExecutor fan one query's shards out across a pool.
class ShardedCollection {
 public:
  /// \brief Accumulates documents, then partitions and builds.
  class Builder {
   public:
    explicit Builder(ShardedCollectionOptions options)
        : options_(std::move(options)) {}

    /// Adds a document under `name` (must be unique).
    Status Add(std::string name, Document doc);
    /// Parses and adds an XML string.
    Status AddXml(std::string name, std::string_view xml);

    /// Partitions the documents (size-balanced by node count), builds
    /// one engine per non-empty shard and the router filters.
    Result<std::unique_ptr<ShardedCollection>> Build() &&;

   private:
    ShardedCollectionOptions options_;
    std::vector<std::string> names_;
    std::vector<Document> docs_;
  };

  ShardedCollection(const ShardedCollection&) = delete;
  ShardedCollection& operator=(const ShardedCollection&) = delete;

  /// \brief A routed query: which shards to run, plus the pre-filled
  /// per-shard stats skeleton (pruned flags set).
  struct Plan {
    /// Normalized query keywords (input order, duplicates kept).
    std::vector<std::string> normalized;
    /// Shards to execute, ascending.
    std::vector<uint32_t> candidates;
    /// One entry per shard; pruned already set for non-candidates.
    std::vector<ShardQueryStats> shards;
  };

  /// Normalizes the query and routes it: a shard is a candidate iff every
  /// keyword passes its Bloom filter AND its exact frequency table (so
  /// the candidate set is deterministic — Bloom false positives are
  /// re-checked against the dictionary). Mirrors the engine's
  /// InvalidArgument contract for empty/unindexable queries.
  Result<Plan> PlanQuery(const std::vector<std::string>& keywords) const;

  /// Runs one shard's query and re-bases the answers to collection
  /// coordinates. `shard` must be a candidate (have an engine).
  Result<SearchResult> SearchShard(uint32_t shard,
                                   const std::vector<std::string>& keywords,
                                   const SearchOptions& options) const;

  /// Gathers per-candidate outcomes (same order as plan.candidates) into
  /// the merged response: any shard error fails the whole query (the
  /// first candidate's error wins, deterministically); otherwise the
  /// sorted per-shard streams merge and the per-shard stats sum into the
  /// response totals. Also bumps the cumulative per-shard counters.
  Result<ShardedResult> Gather(
      Plan plan, std::vector<Result<SearchResult>> outcomes) const;

  /// Sequential scatter-gather on the calling thread: PlanQuery, each
  /// candidate in turn, Gather. The ScatterGatherExecutor is the
  /// pool-parallel equivalent with identical results.
  Result<ShardedResult> Search(const std::vector<std::string>& keywords,
                               const SearchOptions& options = {}) const;

  /// Maps a collection Dewey number back to (document name, local id).
  struct Resolved {
    std::string_view document;
    DeweyId local;
  };
  Result<Resolved> Resolve(const DeweyId& collection_id) const;

  /// Total keyword frequency across all shards.
  uint64_t Frequency(std::string_view keyword) const;

  size_t shard_count() const { return shards_.size(); }
  size_t document_count() const { return doc_names_.size(); }
  /// The engine behind shard `s`; nullptr when the shard holds no
  /// documents.
  const XKSearch* shard_engine(uint32_t s) const {
    return shards_[s].engine.get();
  }
  /// Global ids of the documents in shard `s`, ascending.
  const std::vector<uint32_t>& shard_documents(uint32_t s) const {
    return shards_[s].docs;
  }
  const std::string& document_name(uint32_t doc) const {
    return doc_names_[doc];
  }
  const IndexOptions& index_options() const { return index_options_; }
  const ShardRouter& router() const { return router_; }

  /// Point-in-time copy of the cumulative per-shard counters.
  std::vector<ShardCountersSnapshot> CountersSnapshot() const;

 private:
  struct Shard {
    std::vector<uint32_t> docs;  // global ids, ascending
    std::unique_ptr<XKSearch> engine;
  };
  struct Counters {
    RelaxedCounter executed;
    RelaxedCounter pruned;
    RelaxedCounter io_errors;
    RelaxedCounter results;
  };

  ShardedCollection() = default;

  std::vector<Shard> shards_;
  std::vector<std::string> doc_names_;
  /// doc id -> (shard, position among the shard's docs).
  std::vector<std::pair<uint32_t, uint32_t>> doc_location_;
  IndexOptions index_options_;
  ShardRouter router_;
  mutable std::vector<Counters> counters_;
};

}  // namespace shard
}  // namespace xksearch

#endif  // XKSEARCH_SHARD_SHARDED_COLLECTION_H_
