#ifndef XKSEARCH_SHARD_ROUTER_H_
#define XKSEARCH_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "shard/term_filter.h"

namespace xksearch {
namespace shard {

/// \brief Routing knobs, fixed at collection build time.
struct RouterOptions {
  /// Disable to scatter every query to every shard (ablation / debugging;
  /// results are identical either way, only work changes).
  bool enabled = true;
  /// Bloom filter density. 10 bits/term is ~1% false positives, and a
  /// false positive merely wastes one empty shard query.
  size_t bits_per_term = 10;
};

/// \brief Prunes shards that cannot contain all query keywords.
///
/// Correctness hook: an SLCA's subtree contains every query keyword, and
/// shard boundaries are document boundaries, so a shard whose term
/// dictionary misses any keyword contributes nothing to the global
/// answer. The router keeps one Bloom filter per shard (built over the
/// shard's term dictionary); `MayServe` has no false negatives, so
/// pruning never drops an answer. Callers holding the shard's exact
/// dictionary (the engine frequency table) confirm Bloom positives to
/// make the pruned-shard set deterministic.
class ShardRouter {
 public:
  ShardRouter() = default;

  /// Builds one filter per shard from the shards' term dictionaries.
  static ShardRouter Build(
      const std::vector<std::vector<std::string>>& shard_terms,
      const RouterOptions& options = {});

  /// True when shard `s` may contain every keyword in `normalized`.
  /// With routing disabled, always true.
  bool MayServe(uint32_t s, const std::vector<std::string>& normalized) const;

  size_t shard_count() const { return filters_.size(); }
  bool enabled() const { return options_.enabled; }

 private:
  std::vector<TermFilter> filters_;
  RouterOptions options_;
};

}  // namespace shard
}  // namespace xksearch

#endif  // XKSEARCH_SHARD_ROUTER_H_
