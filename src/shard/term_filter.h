#ifndef XKSEARCH_SHARD_TERM_FILTER_H_
#define XKSEARCH_SHARD_TERM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xksearch {
namespace shard {

/// \brief A Bloom filter over a shard's term dictionary.
///
/// The shard router consults one of these per shard before touching the
/// shard's engine: if any query keyword is definitely absent from a
/// shard, that shard cannot contribute an SLCA (every answer's subtree
/// must contain all keywords) and is pruned from the scatter.
///
/// The filter is the standard k-hash Bloom construction with double
/// hashing (h1 + i*h2 over two independent 64-bit FNV-1a streams): no
/// false negatives ever, and a false-positive rate around 1% at the
/// default 10 bits/term — a false positive only costs one wasted shard
/// query that comes back empty. Immutable after Build, so concurrent
/// readers need no synchronization.
class TermFilter {
 public:
  /// An empty filter: MayContain is always false (an empty shard holds
  /// nothing).
  TermFilter() = default;

  /// Builds the filter over `terms` (normalized keywords).
  static TermFilter Build(const std::vector<std::string>& terms,
                          size_t bits_per_term = 10);

  /// True when `term` may be in the set; false means definitely absent.
  bool MayContain(std::string_view term) const;

  size_t bit_count() const { return bit_count_; }
  size_t hash_count() const { return hashes_; }

 private:
  std::vector<uint64_t> words_;
  size_t bit_count_ = 0;
  size_t hashes_ = 0;
};

}  // namespace shard
}  // namespace xksearch

#endif  // XKSEARCH_SHARD_TERM_FILTER_H_
