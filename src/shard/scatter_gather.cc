#include "shard/scatter_gather.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace xksearch {
namespace shard {

namespace {

size_t PickWorkers(size_t configured, size_t shard_count) {
  if (configured != 0) return configured;
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  return std::max<size_t>(1, std::min(shard_count, hw));
}

}  // namespace

ScatterGatherExecutor::ScatterGatherExecutor(
    const ShardedCollection* collection, const ScatterGatherOptions& options)
    : collection_(collection) {
  serve::ThreadPool::Options pool_options;
  pool_options.workers =
      PickWorkers(options.workers, collection->shard_count());
  pool_options.queue_capacity = options.queue_capacity;
  pool_ = std::make_unique<serve::ThreadPool>(pool_options);
}

Result<ShardedResult> ScatterGatherExecutor::Search(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  Result<ShardedCollection::Plan> plan = collection_->PlanQuery(keywords);
  if (!plan.ok()) return plan.status();

  const size_t n = plan->candidates.size();
  std::vector<Result<SearchResult>> outcomes(
      n, Result<SearchResult>(Status::Internal("shard task never ran")));
  if (n > 1) {
    // Per-query completion latch; tasks only touch their own outcome
    // slot, so the mutex guards nothing but the latch itself.
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending = n - 1;
    for (size_t i = 1; i < n; ++i) {
      const uint32_t s = plan->candidates[i];
      auto task = [this, &keywords, &options, &outcomes, &mu, &done_cv,
                   &pending, i, s]() {
        Result<SearchResult> r = collection_->SearchShard(s, keywords, options);
        // Notify while holding the lock: the waiter owns the latch's
        // storage and destroys it as soon as it observes pending == 0,
        // so an unlocked notify could race the condvar's destruction.
        std::lock_guard<std::mutex> lock(mu);
        outcomes[i] = std::move(r);
        if (--pending == 0) done_cv.notify_one();
      };
      if (!pool_->Submit(task).ok()) {
        task();  // queue full: degrade to inline, never shed shard work
      }
    }
    outcomes[0] =
        collection_->SearchShard(plan->candidates[0], keywords, options);
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&pending] { return pending == 0; });
  } else if (n == 1) {
    outcomes[0] =
        collection_->SearchShard(plan->candidates[0], keywords, options);
  }
  return collection_->Gather(plan.MoveValueUnsafe(), std::move(outcomes));
}

}  // namespace shard
}  // namespace xksearch
