#include "shard/term_filter.h"

#include <algorithm>
#include <cmath>

namespace xksearch {
namespace shard {

namespace {

uint64_t Fnv1a(std::string_view s, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

TermFilter TermFilter::Build(const std::vector<std::string>& terms,
                             size_t bits_per_term) {
  TermFilter filter;
  if (terms.empty()) return filter;
  if (bits_per_term == 0) bits_per_term = 1;
  filter.bit_count_ = std::max<size_t>(64, terms.size() * bits_per_term);
  filter.words_.assign((filter.bit_count_ + 63) / 64, 0);
  // Optimal k = ln(2) * bits/term, clamped to a sane range.
  filter.hashes_ = std::clamp<size_t>(
      static_cast<size_t>(std::lround(0.693 * static_cast<double>(bits_per_term))),
      1, 16);
  for (const std::string& term : terms) {
    const uint64_t h1 = Fnv1a(term, 0);
    const uint64_t h2 = Fnv1a(term, 0x9e3779b97f4a7c15ull) | 1;
    for (size_t i = 0; i < filter.hashes_; ++i) {
      const uint64_t bit = (h1 + i * h2) % filter.bit_count_;
      filter.words_[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }
  return filter;
}

bool TermFilter::MayContain(std::string_view term) const {
  if (bit_count_ == 0) return false;
  const uint64_t h1 = Fnv1a(term, 0);
  const uint64_t h2 = Fnv1a(term, 0x9e3779b97f4a7c15ull) | 1;
  for (size_t i = 0; i < hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % bit_count_;
    if ((words_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace shard
}  // namespace xksearch
