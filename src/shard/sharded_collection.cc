#include "shard/sharded_collection.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "index/tokenizer.h"
#include "xml/parser.h"

namespace xksearch {
namespace shard {

namespace {

/// Appends a deep copy of `src`'s whole tree as the next child of
/// `parent` in `dst`. Explicit work stack (documents can be deep and
/// parser depth limits do not apply to generated trees).
void AppendDocumentCopy(Document* dst, NodeId parent, const Document& src) {
  struct Item {
    NodeId src_node;
    NodeId dst_parent;
  };
  std::vector<Item> stack;
  stack.push_back({src.root(), parent});
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    NodeId copy;
    if (src.IsElement(item.src_node)) {
      copy = dst->AppendElement(item.dst_parent, src.tag(item.src_node));
      for (const auto& [name, value] : src.attributes(item.src_node)) {
        dst->AddAttribute(copy, name, value);
      }
    } else {
      copy = dst->AppendText(item.dst_parent, src.text(item.src_node));
      continue;
    }
    // Push children in reverse so they are copied (and numbered) in
    // original sibling order.
    const std::vector<NodeId>& kids = src.children(item.src_node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, copy});
    }
  }
}

}  // namespace

std::vector<uint32_t> BalancedPartition(const std::vector<uint64_t>& weights,
                                        size_t shards) {
  std::vector<uint32_t> assignment(weights.size(), 0);
  if (shards <= 1 || weights.empty()) return assignment;
  // Longest-processing-time greedy: place items heaviest first onto the
  // lightest shard. Ties break toward the lower index (stable sort, then
  // linear min scan), so the partition is deterministic.
  std::vector<uint32_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return weights[a] > weights[b];
  });
  std::vector<uint64_t> load(shards, 0);
  for (const uint32_t item : order) {
    uint32_t lightest = 0;
    for (uint32_t s = 1; s < shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    assignment[item] = lightest;
    load[lightest] += weights[item];
  }
  return assignment;
}

size_t ShardedResult::executed_shards() const {
  size_t n = 0;
  for (const ShardQueryStats& s : shards) {
    if (!s.pruned) ++n;
  }
  return n;
}

size_t ShardedResult::pruned_shards() const {
  return shards.size() - executed_shards();
}

Status ShardedCollection::Builder::Add(std::string name, Document doc) {
  if (doc.empty()) {
    return Status::InvalidArgument("document '" + name + "' is empty");
  }
  for (const std::string& existing : names_) {
    if (existing == name) {
      return Status::InvalidArgument("document '" + name +
                                     "' already in collection");
    }
  }
  names_.push_back(std::move(name));
  docs_.push_back(std::move(doc));
  return Status::OK();
}

Status ShardedCollection::Builder::AddXml(std::string name,
                                          std::string_view xml) {
  Result<Document> doc = ParseXml(xml);
  if (!doc.ok()) return doc.status();
  return Add(std::move(name), doc.MoveValueUnsafe());
}

Result<std::unique_ptr<ShardedCollection>>
ShardedCollection::Builder::Build() && {
  if (options_.shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  auto collection =
      std::unique_ptr<ShardedCollection>(new ShardedCollection());
  collection->doc_names_ = std::move(names_);
  collection->shards_.resize(options_.shards);
  collection->counters_ =
      std::vector<Counters>(options_.shards);
  collection->doc_location_.resize(docs_.size());

  std::vector<uint64_t> weights;
  weights.reserve(docs_.size());
  for (const Document& doc : docs_) {
    weights.push_back(doc.node_count());
  }
  const std::vector<uint32_t> assignment =
      BalancedPartition(weights, options_.shards);
  // Iterating documents in global-id order keeps each shard's doc list
  // ascending, which makes the shard-local -> collection re-basing
  // monotone (per-shard result streams stay sorted).
  for (uint32_t d = 0; d < docs_.size(); ++d) {
    Shard& shard = collection->shards_[assignment[d]];
    collection->doc_location_[d] = {assignment[d],
                                    static_cast<uint32_t>(shard.docs.size())};
    shard.docs.push_back(d);
  }

  std::vector<std::vector<std::string>> shard_terms(options_.shards);
  for (uint32_t s = 0; s < collection->shards_.size(); ++s) {
    Shard& shard = collection->shards_[s];
    if (shard.docs.empty()) continue;
    // Splice the shard's documents under a synthetic root. The tag "_"
    // has no alphanumeric characters, so it tokenizes to nothing and is
    // never indexed regardless of IndexOptions::index_tags.
    Document merged;
    const NodeId root = merged.CreateRoot("_");
    for (const uint32_t d : shard.docs) {
      AppendDocumentCopy(&merged, root, docs_[d]);
    }
    XKSearch::BuildOptions build = options_.build;
    if (build.build_disk_index && !build.disk_path_prefix.empty()) {
      build.disk_path_prefix += ".s" + std::to_string(s);
    }
    if (options_.store_decorator) {
      build.disk.store_decorator =
          [decorator = options_.store_decorator, s](
              std::unique_ptr<PageStore> store,
              std::string_view name) { return decorator(std::move(store), s, name); };
    }
    Result<std::unique_ptr<XKSearch>> engine =
        XKSearch::BuildFromDocument(std::move(merged), build);
    if (!engine.ok()) return engine.status();
    shard.engine = engine.MoveValueUnsafe();
    shard_terms[s] = shard.engine->index().Terms();
  }

  for (const Shard& shard : collection->shards_) {
    if (shard.engine != nullptr) {
      collection->index_options_ = shard.engine->index_options();
      break;
    }
  }
  if (std::all_of(collection->shards_.begin(), collection->shards_.end(),
                  [](const Shard& s) { return s.engine == nullptr; })) {
    collection->index_options_ = options_.build.index;
  }
  collection->router_ = ShardRouter::Build(shard_terms, options_.router);
  return collection;
}

Result<ShardedCollection::Plan> ShardedCollection::PlanQuery(
    const std::vector<std::string>& keywords) const {
  if (keywords.empty()) {
    return Status::InvalidArgument("query needs at least one keyword");
  }
  Plan plan;
  plan.normalized.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    std::string normalized =
        NormalizeKeyword(keyword, index_options_.tokenizer);
    if (normalized.empty()) {
      return Status::InvalidArgument("keyword '" + keyword +
                                     "' has no indexable characters");
    }
    plan.normalized.push_back(std::move(normalized));
  }
  plan.shards.resize(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    plan.shards[s].shard = s;
    const XKSearch* engine = shards_[s].engine.get();
    bool candidate = engine != nullptr;
    if (candidate && router_.enabled()) {
      candidate = router_.MayServe(s, plan.normalized);
      // The Bloom pass has no false negatives, so this exact dictionary
      // re-check only demotes false positives — making the candidate set
      // (and the pruned-shard counts tests assert on) deterministic.
      for (size_t i = 0; candidate && i < plan.normalized.size(); ++i) {
        candidate = engine->Frequency(plan.normalized[i]) > 0;
      }
    }
    if (candidate) {
      plan.candidates.push_back(s);
    } else {
      plan.shards[s].pruned = true;
    }
  }
  return plan;
}

Result<SearchResult> ShardedCollection::SearchShard(
    uint32_t shard, const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  const XKSearch* engine = shards_[shard].engine.get();
  if (engine == nullptr) {
    return Status::Internal("shard " + std::to_string(shard) +
                            " has no engine (empty shard queried)");
  }
  Result<SearchResult> result = engine->Search(keywords, options);
  if (!result.ok()) return result.status();
  SearchResult rebased = result.MoveValueUnsafe();
  // Re-base shard-local answers [0, pos, rest...] to collection
  // coordinates [0, doc, rest...]; the synthetic shard root [0] itself
  // (an "answer" spanning several documents) is discarded. pos -> doc is
  // strictly increasing, so the stream stays sorted.
  const std::vector<uint32_t>& docs = shards_[shard].docs;
  size_t kept = 0;
  for (DeweyId& node : rebased.nodes) {
    if (node.depth() < 2) continue;  // the synthetic shard root
    std::vector<uint32_t> components = node.components();
    components[1] = docs[components[1]];
    rebased.nodes[kept++] = DeweyId(std::move(components));
  }
  rebased.nodes.resize(kept);
  return rebased;
}

Result<ShardedResult> ShardedCollection::Gather(
    Plan plan, std::vector<Result<SearchResult>> outcomes) const {
  if (outcomes.size() != plan.candidates.size()) {
    return Status::Internal("scatter produced " +
                            std::to_string(outcomes.size()) +
                            " outcomes for " +
                            std::to_string(plan.candidates.size()) +
                            " candidate shards");
  }
  for (uint32_t s = 0; s < plan.shards.size(); ++s) {
    if (plan.shards[s].pruned) ++counters_[s].pruned;
  }
  // Any shard failure fails the whole query; the earliest candidate's
  // error wins so the surfaced status does not depend on completion
  // order. Each shard query cleans up its own pins on error (engine
  // contract), so nothing leaks here.
  Status failure;
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const uint32_t s = plan.candidates[i];
    ++counters_[s].executed;
    if (outcomes[i].ok()) continue;
    if (outcomes[i].status().IsIoError()) ++counters_[s].io_errors;
    if (failure.ok()) failure = outcomes[i].status();
  }
  if (!failure.ok()) return failure;

  ShardedResult out;
  out.result.keywords = std::move(plan.normalized);
  out.result.algorithm = SlcaAlgorithm::kIndexedLookupEager;
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const uint32_t s = plan.candidates[i];
    SearchResult& shard_result = *outcomes[i];
    if (i == 0) out.result.algorithm = shard_result.algorithm;
    plan.shards[s].results = shard_result.nodes.size();
    plan.shards[s].stats = shard_result.stats;
    out.result.stats += shard_result.stats;
  }
  // k-way merge of the (already sorted) per-shard streams into document
  // order. Shard counts are small, so a linear min scan beats a heap.
  std::vector<size_t> cursor(plan.candidates.size(), 0);
  size_t total = 0;
  for (const Result<SearchResult>& r : outcomes) total += r->nodes.size();
  out.result.nodes.reserve(total);
  while (out.result.nodes.size() < total) {
    size_t best = outcomes.size();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (cursor[i] >= outcomes[i]->nodes.size()) continue;
      if (best == outcomes.size() ||
          outcomes[i]->nodes[cursor[i]].Compare(
              outcomes[best]->nodes[cursor[best]]) < 0) {
        best = i;
      }
    }
    out.result.nodes.push_back(std::move(outcomes[best]->nodes[cursor[best]]));
    ++cursor[best];
  }
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const uint32_t s = plan.candidates[i];
    counters_[s].results += plan.shards[s].results;
  }
  out.shards = std::move(plan.shards);
  return out;
}

Result<ShardedResult> ShardedCollection::Search(
    const std::vector<std::string>& keywords,
    const SearchOptions& options) const {
  Result<Plan> plan = PlanQuery(keywords);
  if (!plan.ok()) return plan.status();
  std::vector<Result<SearchResult>> outcomes;
  outcomes.reserve(plan->candidates.size());
  for (const uint32_t s : plan->candidates) {
    outcomes.push_back(SearchShard(s, keywords, options));
  }
  return Gather(plan.MoveValueUnsafe(), std::move(outcomes));
}

Result<ShardedCollection::Resolved> ShardedCollection::Resolve(
    const DeweyId& collection_id) const {
  if (collection_id.depth() < 2 || collection_id.component(0) != 0) {
    return Status::InvalidArgument("'" + collection_id.ToString() +
                                   "' is not a collection node id");
  }
  const uint32_t doc = collection_id.component(1);
  if (doc >= doc_names_.size()) {
    return Status::NotFound("no document " + std::to_string(doc) +
                            " in collection");
  }
  std::vector<uint32_t> local;
  local.reserve(collection_id.depth() - 1);
  local.push_back(0);
  for (size_t i = 2; i < collection_id.depth(); ++i) {
    local.push_back(collection_id.component(i));
  }
  return Resolved{doc_names_[doc], DeweyId(std::move(local))};
}

uint64_t ShardedCollection::Frequency(std::string_view keyword) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    if (shard.engine != nullptr) total += shard.engine->Frequency(keyword);
  }
  return total;
}

std::vector<ShardCountersSnapshot> ShardedCollection::CountersSnapshot()
    const {
  std::vector<ShardCountersSnapshot> out(counters_.size());
  for (size_t s = 0; s < counters_.size(); ++s) {
    out[s].executed = counters_[s].executed.load();
    out[s].pruned = counters_[s].pruned.load();
    out[s].io_errors = counters_[s].io_errors.load();
    out[s].results = counters_[s].results.load();
  }
  return out;
}

}  // namespace shard
}  // namespace xksearch
