#include "shard/router.h"

namespace xksearch {
namespace shard {

ShardRouter ShardRouter::Build(
    const std::vector<std::vector<std::string>>& shard_terms,
    const RouterOptions& options) {
  ShardRouter router;
  router.options_ = options;
  router.filters_.reserve(shard_terms.size());
  for (const std::vector<std::string>& terms : shard_terms) {
    router.filters_.push_back(TermFilter::Build(terms, options.bits_per_term));
  }
  return router;
}

bool ShardRouter::MayServe(uint32_t s,
                           const std::vector<std::string>& normalized) const {
  if (!options_.enabled) return true;
  const TermFilter& filter = filters_[s];
  for (const std::string& keyword : normalized) {
    if (!filter.MayContain(keyword)) return false;
  }
  return true;
}

}  // namespace shard
}  // namespace xksearch
