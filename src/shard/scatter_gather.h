#ifndef XKSEARCH_SHARD_SCATTER_GATHER_H_
#define XKSEARCH_SHARD_SCATTER_GATHER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/thread_pool.h"
#include "shard/sharded_collection.h"

namespace xksearch {
namespace shard {

/// \brief Knobs for the parallel scatter-gather executor.
struct ScatterGatherOptions {
  /// Worker threads for shard fan-out; 0 picks
  /// min(shard count, hardware concurrency).
  size_t workers = 0;
  /// Pool queue capacity. Overflow never sheds shard work — a shard task
  /// the pool rejects just runs inline on the calling thread — so this
  /// only bounds how much fan-out queues up across concurrent queries.
  size_t queue_capacity = 1024;
};

/// \brief Fans one query's candidate shards out across a thread pool and
/// gathers the per-shard answers into the merged collection response.
///
/// Produces byte-identical results to ShardedCollection::Search (the
/// sequential reference): the plan, the per-shard work, the merge and the
/// first-candidate-wins error rule are all the collection's own; this
/// class only adds the parallel scheduling. The first candidate shard
/// always runs inline on the calling thread (there is no point paying a
/// handoff for work this thread would otherwise idle through), remaining
/// shards go to the pool, and a rejected Submit falls back to inline
/// execution. Search always waits for every scattered task — even after
/// a shard fails — so no task can outlive the call or touch freed state.
///
/// Thread-safe: any number of threads may call Search concurrently on
/// one executor (the serving layer does exactly that).
class ScatterGatherExecutor {
 public:
  ScatterGatherExecutor(const ShardedCollection* collection,
                        const ScatterGatherOptions& options = {});

  ScatterGatherExecutor(const ScatterGatherExecutor&) = delete;
  ScatterGatherExecutor& operator=(const ScatterGatherExecutor&) = delete;

  /// Parallel equivalent of ShardedCollection::Search.
  Result<ShardedResult> Search(const std::vector<std::string>& keywords,
                               const SearchOptions& options = {}) const;

  size_t workers() const { return pool_->workers(); }

 private:
  const ShardedCollection* collection_;
  std::unique_ptr<serve::ThreadPool> pool_;
};

}  // namespace shard
}  // namespace xksearch

#endif  // XKSEARCH_SHARD_SCATTER_GATHER_H_
