#ifndef XKSEARCH_FUZZ_HARNESS_H_
#define XKSEARCH_FUZZ_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xksearch {
namespace fuzz {

/// \brief Knobs for one differential fuzz run.
///
/// Every case is fully determined by (seed, options): the seed drives the
/// tree shape, the vocabulary, the pool geometry, the queries and the
/// fault schedule, so any reported divergence replays from its printed
/// seed alone.
struct FuzzOptions {
  /// Random tree size range (element nodes).
  size_t min_nodes = 8;
  size_t max_nodes = 120;
  /// Vocabulary size range ("w0".."wN").
  size_t min_vocab = 2;
  size_t max_vocab = 10;
  /// Keywords per query (duplicates and absent keywords are mixed in).
  size_t min_keywords = 1;
  size_t max_keywords = 4;
  /// Queries evaluated against each generated collection.
  size_t queries_per_collection = 4;
  /// Also run every query through the disk path (in-memory page store,
  /// deliberately tiny buffer pools so reads actually happen).
  bool with_disk = true;
  /// Inject transient read faults into the disk path: each query round
  /// arms a fresh probabilistic fault schedule, asserts that a failing
  /// query fails cleanly (IoError status, zero leaked pins), then
  /// disarms and asserts the retry succeeds and matches the oracle.
  bool with_faults = false;
  /// Per-read fault probability while armed.
  double fault_probability = 0.25;
  /// Faults per armed round before the schedule exhausts (transient
  /// faults must recover; kForever would starve the retry).
  uint64_t faults_per_round = 4;
  /// Also build the case's corpus (the primary document plus sampled
  /// extra documents) into one sharded collection per entry here, and
  /// assert for every query that sequential and pool-parallel
  /// scatter-gather both reproduce the union of the per-document
  /// single-index answers — plus the per-shard stats aggregation
  /// identity, ELCA/All-LCA parity, disk-path parity and (with
  /// with_faults) single-shard fault rounds. Empty disables sharded
  /// checks entirely.
  std::vector<size_t> shard_counts = {1, 2, 4, 7};
  /// Extra documents sampled per collection on top of the primary one
  /// (0..max, seeded), so shard partitions have something to split.
  size_t max_extra_documents = 3;
  /// Seeded crash-recovery rounds per collection. Each round builds a
  /// file-backed copy of the collection's index under the system temp
  /// dir, plans a seeded update batch (removes of existing postings,
  /// adds sampled from the corpus id pool, a brand-new term), measures
  /// the batch's durable-operation count W with a fault-free counting
  /// run, then re-runs it killed at a seeded durable operation k in
  /// [1, W]. The reopened index (WAL replay at open) must be exactly
  /// the pre-batch or exactly the post-batch posting state — never a
  /// hybrid — with dictionary/list agreement, zero leaked pins, and
  /// query parity against the matching side's brute-force SLCA.
  /// 0 disables crash rounds (they are the only fuzz stage that
  /// touches the filesystem).
  size_t crash_rounds = 0;
  /// Chunk counts for the intra-query parallel SLCA check: each eager
  /// query (both layouts + disk) is re-run chunked at every count on a
  /// shared pool with min_chunk_elements forced to 1, and must reproduce
  /// the sequential run's exact result sequence plus its match_ops and
  /// results counters. With with_faults, chunked fault rounds assert the
  /// IoError-or-exact contract and zero leaked pins. Empty disables the
  /// chunked checks.
  std::vector<size_t> chunk_counts = {1, 2, 3, 8};
  /// Workers of the shared intra-query chunk pool.
  size_t chunk_workers = 3;
  /// Concurrent clients of the cross-query batch stage: every sampled
  /// query of the collection is submitted this many times, interleaved,
  /// through a QueryService whose batch window is open — so identical
  /// submissions coalesce under single-flight and distinct overlapping
  /// queries land in one batch sharing one decoded-list provider. Each
  /// response must reproduce the sequential unbatched engine run exactly
  /// (nodes, match_ops, results); with with_disk && with_faults an armed
  /// disk round additionally asserts the IoError-or-exact contract and
  /// zero leaked pins. 0 disables the stage.
  size_t batch_clients = 3;
};

/// \brief One observed disagreement, minimized to its replay coordinates.
struct Divergence {
  uint64_t seed = 0;
  std::vector<std::string> keywords;
  /// Which comparison failed and how (human-readable).
  std::string detail;
};

/// \brief Aggregate outcome of a fuzz run.
struct FuzzReport {
  uint64_t collections = 0;
  /// (collection, query, semantics) evaluations cross-checked.
  uint64_t cases = 0;
  /// Fault-mode queries that failed with a clean injected error.
  uint64_t clean_fault_errors = 0;
  /// Fault-mode queries that succeeded despite the armed schedule.
  uint64_t fault_survivals = 0;
  /// Crash rounds whose recovered index was the pre-batch state (the
  /// kill fired before the commit frame's fsync completed).
  uint64_t crash_landed_pre = 0;
  /// Crash rounds whose recovered index was the post-batch state.
  uint64_t crash_landed_post = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
  void Merge(const FuzzReport& other);
};

/// Renders one divergence as a copy-pasteable repro line.
std::string FormatDivergence(const Divergence& d);

/// Runs the full differential check over one seeded collection: random
/// document -> in-memory engine + (optionally) disk index; each sampled
/// query is evaluated with Indexed Lookup Eager, Scan Eager and Stack on
/// both paths plus the brute-force enumeration, all compared against the
/// linear-time TreeOracle; ELCA and All-LCA semantics are cross-checked
/// the same way. Never throws or aborts on divergence — every mismatch
/// becomes a Divergence in the report.
FuzzReport RunFuzzCase(uint64_t seed, const FuzzOptions& options);

/// Runs `count` collections with seeds first_seed, first_seed+1, ... and
/// merges the reports.
FuzzReport RunFuzz(uint64_t first_seed, uint64_t count,
                   const FuzzOptions& options);

}  // namespace fuzz
}  // namespace xksearch

#endif  // XKSEARCH_FUZZ_HARNESS_H_
