#include "fuzz/harness.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "dewey/decode_kernels.h"
#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "gen/random_tree.h"
#include "serve/query_service.h"
#include "serve/thread_pool.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_collection.h"
#include "slca/brute_force.h"
#include "slca/parallel.h"
#include "storage/disk_index.h"
#include "storage/fault_injection.h"

namespace xksearch {
namespace fuzz {

namespace {

std::string JoinKeywords(const std::vector<std::string>& keywords) {
  std::string out;
  for (const std::string& k : keywords) {
    if (!out.empty()) out += ' ';
    out += k;
  }
  return out;
}

std::string IdsToString(std::vector<DeweyId> ids) {
  std::sort(ids.begin(), ids.end());
  std::string out = "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ", ";
    out += ids[i].ToString();
  }
  out += "}";
  return out;
}

bool SameSet(std::vector<DeweyId> a, std::vector<DeweyId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

/// Shared mutable state of one fuzz case, so the check helpers can file
/// divergences without threading six arguments through every call.
struct CaseContext {
  uint64_t seed;
  FuzzReport* report;
  const std::vector<std::string>* keywords;

  void Diverge(std::string detail) {
    Divergence d;
    d.seed = seed;
    d.keywords = *keywords;
    d.detail = std::move(detail);
    report->divergences.push_back(std::move(d));
  }

  /// Compares one algorithm's answer against the oracle's.
  void Check(const char* label, const Result<SearchResult>& got,
             const std::vector<DeweyId>& expected) {
    ++report->cases;
    if (!got.ok()) {
      Diverge(std::string(label) + " failed: " + got.status().ToString());
      return;
    }
    if (!SameSet(got->nodes, expected)) {
      Diverge(std::string(label) + " = " + IdsToString(got->nodes) +
              ", oracle = " + IdsToString(expected));
    }
  }

  void CheckIds(const char* label, const std::vector<DeweyId>& got,
                const std::vector<DeweyId>& expected) {
    ++report->cases;
    if (!SameSet(got, expected)) {
      Diverge(std::string(label) + " = " + IdsToString(got) + ", oracle = " +
              IdsToString(expected));
    }
  }
};

/// The three paper algorithms, each forced explicitly.
constexpr AlgorithmChoice kAlgorithms[] = {
    AlgorithmChoice::kIndexedLookupEager,
    AlgorithmChoice::kScanEager,
    AlgorithmChoice::kStack,
};

/// Re-bases a single-document answer id [0, rest...] of document `d` to
/// collection coordinates [0, d, rest...] — the convention the sharded
/// collection reports in, so per-document oracle unions compare directly.
DeweyId RebaseToCollection(const DeweyId& id, uint32_t d) {
  std::vector<uint32_t> components;
  components.reserve(id.depth() + 1);
  components.push_back(0);
  components.push_back(d);
  for (size_t i = 1; i < id.depth(); ++i) {
    components.push_back(id.component(i));
  }
  return DeweyId(std::move(components));
}

/// One shard-count configuration under test: the collection, its
/// parallel executor, and the per-shard fault hooks.
struct ShardedSetup {
  size_t shard_count = 0;
  std::unique_ptr<shard::ShardedCollection> collection;
  std::unique_ptr<shard::ScatterGatherExecutor> executor;
  std::vector<std::vector<FaultInjectingPageStore*>> wrappers;  // per shard
};

// ---------------------------------------------------------------------
// Crash-recovery rounds.
// ---------------------------------------------------------------------

using PostingModel = std::map<std::string, std::vector<DeweyId>>;

bool CopyFileBytes(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in.good()) return false;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  return out.good();
}

void RemoveIndexFiles(const std::string& prefix) {
  for (const char* suffix : {".il", ".scan", ".dict", ".wal"}) {
    std::remove((prefix + suffix).c_str());
  }
}

/// Plans, runs and classifies the seeded crash rounds of one fuzz case;
/// FuzzOptions::crash_rounds documents the contract. Mirrors the
/// exhaustive sweep in tests/crash_recovery_test.cc, but samples the
/// kill point and draws the index, the batch and the queries from the
/// fuzzer's seed — shapes the hand-written sweep fixture cannot reach.
void RunCrashRounds(uint64_t seed, const FuzzOptions& options,
                    const XKSearch& engine, Rng* rng, FuzzReport* report) {
  auto diverge = [&](std::string detail) {
    Divergence d;
    d.seed = seed;
    d.detail = std::move(detail);
    report->divergences.push_back(std::move(d));
  };

  // Pre-batch model, plus the corpus id pool the adds sample from
  // (every pooled id is already encodable by the index's level table).
  PostingModel pre;
  std::vector<DeweyId> id_pool;
  for (const std::string& term : engine.index().Terms()) {
    pre[term] = engine.index().Materialize(term);
    id_pool.insert(id_pool.end(), pre[term].begin(), pre[term].end());
  }
  if (pre.empty() || id_pool.empty()) return;  // degenerate document

  // The batch: seeded removes of existing postings, adds that reuse
  // corpus ids under other — and brand-new — terms. The post model
  // applies removes before adds, the same order the batch runs in.
  struct BatchOp {
    bool is_add;
    std::string term;
    DeweyId id;
  };
  std::vector<BatchOp> ops;
  std::map<std::string, std::set<DeweyId>> post;
  for (const auto& [term, ids] : pre) {
    post[term].insert(ids.begin(), ids.end());
  }
  for (const auto& [term, ids] : pre) {
    if (!rng->Bernoulli(0.6)) continue;
    for (const DeweyId& id : ids) {
      if (!rng->Bernoulli(0.3)) continue;
      ops.push_back({false, term, id});
      post[term].erase(id);
    }
  }
  std::vector<std::string> terms;
  for (const auto& [term, ids] : pre) terms.push_back(term);
  const size_t adds = 1 + rng->Uniform(8);
  for (size_t i = 0; i < adds; ++i) {
    const std::string term =
        rng->Bernoulli(0.3) ? "crashterm" + std::to_string(rng->Uniform(3))
                            : terms[rng->Uniform(terms.size())];
    const DeweyId& id = id_pool[rng->Uniform(id_pool.size())];
    ops.push_back({true, term, id});
    post[term].insert(id);
  }
  PostingModel post_model;
  for (const auto& [term, ids] : post) {
    if (!ids.empty()) post_model[term].assign(ids.begin(), ids.end());
  }

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string dir =
      (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  const std::string tag = std::to_string(seed) + "_" +
                          std::to_string(static_cast<long long>(::getpid()));
  const std::string base_prefix = dir + "/xk_fuzz_crash_base_" + tag;
  const std::string work_prefix = dir + "/xk_fuzz_crash_work_" + tag;
  RemoveIndexFiles(base_prefix);
  RemoveIndexFiles(work_prefix);
  struct Cleanup {
    const std::string& base;
    const std::string& work;
    ~Cleanup() {
      RemoveIndexFiles(base);
      RemoveIndexFiles(work);
    }
  } cleanup{base_prefix, work_prefix};

  {
    Result<std::unique_ptr<DiskIndex>> built =
        DiskIndex::Build(engine.index(), base_prefix);
    if (!built.ok()) {
      diverge("crash-round base build failed: " + built.status().ToString());
      return;
    }
  }
  auto reset_work = [&]() -> bool {
    for (const char* suffix : {".il", ".scan", ".dict"}) {
      if (!CopyFileBytes(base_prefix + suffix, work_prefix + suffix)) {
        return false;
      }
    }
    std::remove((work_prefix + ".wal").c_str());
    return true;
  };
  auto run_batch =
      [&](const std::shared_ptr<CrashSchedule>& schedule) -> Status {
    DiskIndexOptions dio;
    dio.store_decorator = [&schedule](std::unique_ptr<PageStore> store,
                                      std::string_view) {
      auto wrapped =
          std::make_unique<FaultInjectingPageStore>(std::move(store), 1);
      wrapped->SetCrashSchedule(schedule);
      return std::unique_ptr<PageStore>(std::move(wrapped));
    };
    Result<std::unique_ptr<DiskIndexUpdater>> updater =
        DiskIndexUpdater::Open(work_prefix, dio);
    if (!updater.ok()) return updater.status();
    for (const BatchOp& op : ops) {
      const Status st = op.is_add
                            ? (*updater)->AddPosting(op.term, op.id)
                            : (*updater)->RemovePosting(op.term, op.id);
      if (!st.ok()) return st;
    }
    return (*updater)->Finish();
  };

  // Fault-free counting run: W = the kill-point domain.
  if (!reset_work()) {
    diverge("crash-round work copy failed");
    return;
  }
  auto counting = std::make_shared<CrashSchedule>();
  const Status counted = run_batch(counting);
  if (!counted.ok()) {
    diverge("crash-round counting run failed: " + counted.ToString());
    return;
  }
  const uint64_t total_ops = counting->operations();
  if (total_ops == 0) {
    diverge("crash-round counting run saw zero durable operations");
    return;
  }

  std::set<std::string> keyword_set;
  for (const auto& [term, ids] : pre) keyword_set.insert(term);
  for (const auto& [term, ids] : post_model) keyword_set.insert(term);
  const std::vector<std::string> keywords(keyword_set.begin(),
                                          keyword_set.end());

  // Reopens the work index (WAL replay at open), reads every keyword
  // list and checks dictionary/list agreement plus zero leaked pins.
  auto read_state = [&](PostingModel* out) -> Status {
    out->clear();
    Result<std::unique_ptr<DiskIndex>> index = DiskIndex::Open(work_prefix);
    if (!index.ok()) return index.status();
    for (const std::string& keyword : keywords) {
      const DiskIndex::TermInfo* info = (*index)->FindTerm(keyword);
      if (info == nullptr) continue;
      Result<DiskIndex::PostingCursor> cursor =
          (*index)->OpenPostings(info->id);
      if (!cursor.ok()) return cursor.status();
      std::vector<DeweyId> ids;
      DeweyId id;
      while (cursor->Next(&id)) ids.push_back(id);
      if (!cursor->status().ok()) return cursor->status();
      if (info->frequency != ids.size()) {
        return Status::Internal(
            "dictionary frequency " + std::to_string(info->frequency) +
            " disagrees with scan layout size " + std::to_string(ids.size()) +
            " for " + keyword);
      }
      (*out)[keyword] = std::move(ids);
    }
    if ((*index)->il_pool()->DebugTotalPins() != 0 ||
        (*index)->scan_pool()->DebugTotalPins() != 0) {
      return Status::Internal("recovered index leaked pins");
    }
    return Status::OK();
  };

  for (size_t round = 0; round < options.crash_rounds; ++round) {
    const uint64_t k = 1 + rng->Uniform(total_ops);
    const std::string label = "crash round " + std::to_string(round) +
                              " (kill at op " + std::to_string(k) + "/" +
                              std::to_string(total_ops) + ")";
    if (!reset_work()) {
      diverge(label + ": work copy failed");
      return;
    }
    auto schedule = std::make_shared<CrashSchedule>();
    schedule->CrashAtOperation(k);
    const Status crashed = run_batch(schedule);
    ++report->cases;
    if (crashed.ok()) {
      diverge(label + ": batch survived its kill point");
      continue;
    }
    if (!crashed.IsIoError()) {
      diverge(label + ": died with non-IoError: " + crashed.ToString());
      continue;
    }
    PostingModel state;
    const Status read = read_state(&state);
    if (!read.ok()) {
      diverge(label + ": recovery read failed: " + read.ToString());
      continue;
    }
    const PostingModel* oracle = nullptr;
    if (state == pre) {
      ++report->crash_landed_pre;
      oracle = &pre;
    } else if (state == post_model) {
      ++report->crash_landed_post;
      oracle = &post_model;
    } else {
      diverge(label + ": recovered index is neither pre- nor post-batch");
      continue;
    }

    // Query parity on the recovered index through the real search path
    // against the matching side's brute-force SLCA.
    std::vector<std::string> query;
    std::vector<std::vector<DeweyId>> lists;
    for (int i = 0; i < 2; ++i) {
      const std::string& kw = keywords[rng->Uniform(keywords.size())];
      query.push_back(kw);
      auto it = oracle->find(kw);
      lists.push_back(it == oracle->end() ? std::vector<DeweyId>{}
                                          : it->second);
    }
    Result<std::unique_ptr<DiskSearcher>> searcher =
        DiskSearcher::Open(work_prefix);
    if (!searcher.ok()) {
      diverge(label +
              ": searcher open failed: " + searcher.status().ToString());
      continue;
    }
    Result<SearchResult> got = (*searcher)->Search(query);
    ++report->cases;
    if (!got.ok()) {
      diverge(label + ": recovered query failed: " + got.status().ToString());
      continue;
    }
    const std::vector<DeweyId> expected = BruteForceSlca(lists);
    if (!SameSet(got->nodes, expected)) {
      diverge(label + ": recovered query = " + IdsToString(got->nodes) +
              ", batch-boundary oracle = " + IdsToString(expected));
    }
  }
}

const char* AlgorithmLabel(AlgorithmChoice a, bool disk) {
  switch (a) {
    case AlgorithmChoice::kIndexedLookupEager:
      return disk ? "disk/il-eager" : "mem/il-eager";
    case AlgorithmChoice::kScanEager:
      return disk ? "disk/scan-eager" : "mem/scan-eager";
    case AlgorithmChoice::kStack:
      return disk ? "disk/stack" : "mem/stack";
    default:
      return "auto";
  }
}

}  // namespace

void FuzzReport::Merge(const FuzzReport& other) {
  collections += other.collections;
  cases += other.cases;
  clean_fault_errors += other.clean_fault_errors;
  fault_survivals += other.fault_survivals;
  crash_landed_pre += other.crash_landed_pre;
  crash_landed_post += other.crash_landed_post;
  divergences.insert(divergences.end(), other.divergences.begin(),
                     other.divergences.end());
}

std::string FormatDivergence(const Divergence& d) {
  std::ostringstream os;
  os << "divergence: seed=" << d.seed << " query=\"" << JoinKeywords(d.keywords)
     << "\" — " << d.detail
     << "  (replay: xk_fuzz --seed=" << d.seed << " --cases=1)";
  return os.str();
}

FuzzReport RunFuzzCase(uint64_t seed, const FuzzOptions& options) {
  FuzzReport report;
  report.collections = 1;
  Rng rng(seed);

  // --- Collection: random tree, random shape, shared by every query. ---
  RandomTreeOptions tree;
  tree.node_count = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(options.min_nodes),
                     static_cast<int64_t>(options.max_nodes)));
  tree.max_depth = static_cast<uint32_t>(rng.UniformInt(3, 10));
  tree.max_children = static_cast<uint32_t>(rng.UniformInt(2, 6));
  tree.vocab_size = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(options.min_vocab),
                     static_cast<int64_t>(options.max_vocab)));
  tree.text_probability = 0.4 + 0.5 * rng.UniformDouble();
  Document doc = GenerateRandomDocument(&rng, tree);
  const std::vector<std::string> vocab = RandomTreeVocabulary(tree);

  // Fault wrappers, filled by the decorator when the disk path is built.
  std::vector<FaultInjectingPageStore*> wrappers;

  XKSearch::BuildOptions build;
  build.build_disk_index = options.with_disk;
  if (options.with_disk) {
    build.disk.in_memory = true;
    // Deliberately tiny pools (and sometimes a single shard) so cursor
    // traffic misses constantly: a fuzz case where everything stays
    // cached would never exercise the read path, let alone its faults.
    build.disk.il_pool_pages = static_cast<size_t>(rng.UniformInt(2, 16));
    build.disk.scan_pool_pages = static_cast<size_t>(rng.UniformInt(2, 16));
    build.disk.pool_shards = static_cast<size_t>(rng.UniformInt(1, 4));
    // Tiny scan blocks so even fuzz-sized keyword lists span several
    // blocks — that is what gives the disk chunk planner something to
    // split (block boundaries are its partition units).
    build.disk.scan_block_bytes = static_cast<size_t>(rng.UniformInt(48, 512));
    build.disk.readahead_pages = static_cast<size_t>(rng.UniformInt(0, 4));
    build.disk.compress_dewey = rng.Bernoulli(0.75);
    build.disk.delta_compress = rng.Bernoulli(0.75);
    build.disk.store_decorator =
        [&wrappers, seed](std::unique_ptr<PageStore> inner,
                          std::string_view /*name*/) {
          auto wrapped = std::make_unique<FaultInjectingPageStore>(
              std::move(inner), seed);
          wrappers.push_back(wrapped.get());
          return std::unique_ptr<PageStore>(std::move(wrapped));
        };
  }

  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromDocument(std::move(doc), build);
  if (!built.ok()) {
    Divergence d;
    d.seed = seed;
    d.detail = "build failed: " + built.status().ToString();
    report.divergences.push_back(std::move(d));
    return report;
  }
  const XKSearch& engine = **built;

  // Shared executor for the intra-query chunked runs. Pool and budget
  // deliberately persist across queries and algorithms so chunk tasks
  // from consecutive checks interleave on the same workers.
  std::unique_ptr<serve::ThreadPool> chunk_pool;
  std::unique_ptr<ConcurrencyBudget> chunk_budget;
  if (!options.chunk_counts.empty()) {
    serve::ThreadPool::Options po;
    po.workers = std::max<size_t>(1, options.chunk_workers);
    chunk_pool = std::make_unique<serve::ThreadPool>(po);
    chunk_budget = std::make_unique<ConcurrencyBudget>(po.workers);
  }

  // --- Sharded corpus: the primary document plus sampled extras, each
  // with its own single-index oracle engine, built into one sharded
  // collection (+ executor) per configured shard count. The union of the
  // per-document answers is the sharded ground truth; shard counts above
  // the corpus size exercise empty shards.
  std::vector<const XKSearch*> doc_engines{&engine};
  std::vector<std::unique_ptr<XKSearch>> extra_engines;
  std::deque<ShardedSetup> setups;
  if (!options.shard_counts.empty()) {
    std::vector<Document> corpus;
    corpus.push_back(engine.document().Clone());
    const size_t extras = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(options.max_extra_documents)));
    for (size_t e = 0; e < extras; ++e) {
      RandomTreeOptions extra_tree = tree;
      extra_tree.node_count = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(options.min_nodes),
                         static_cast<int64_t>(options.max_nodes)));
      // Vocabulary sizes differ per document, so some documents miss
      // some query keywords — that is what shard pruning feeds on.
      extra_tree.vocab_size = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(options.min_vocab),
                         static_cast<int64_t>(options.max_vocab)));
      Document extra = GenerateRandomDocument(&rng, extra_tree);
      corpus.push_back(extra.Clone());
      Result<std::unique_ptr<XKSearch>> extra_engine =
          XKSearch::BuildFromDocument(std::move(extra),
                                      XKSearch::BuildOptions());
      if (!extra_engine.ok()) {
        Divergence d;
        d.seed = seed;
        d.detail = "extra doc build failed: " + extra_engine.status().ToString();
        report.divergences.push_back(std::move(d));
        return report;
      }
      extra_engines.push_back(extra_engine.MoveValueUnsafe());
      doc_engines.push_back(extra_engines.back().get());
    }
    for (const size_t n : options.shard_counts) {
      setups.emplace_back();
      ShardedSetup& setup = setups.back();
      setup.shard_count = n;
      setup.wrappers.resize(n);
      shard::ShardedCollectionOptions sco;
      sco.shards = n;
      sco.build.build_disk_index = options.with_disk;
      if (options.with_disk) {
        sco.build.disk.in_memory = true;
        // Same rationale as the single-index path — tiny pools so the
        // disk read path actually reads — but with a floor that grows
        // with the corpus: one shard can hold every document merged into
        // a single index whose deeper trees and longer posting runs pin
        // more frames at once than any lone fuzz document, and a 2-frame
        // pool then fails with "all pages pinned" (a capacity error, not
        // a divergence).
        const int64_t floor_pages =
            4 + 4 * static_cast<int64_t>(corpus.size());
        sco.build.disk.il_pool_pages = static_cast<size_t>(
            rng.UniformInt(floor_pages, floor_pages + 12));
        sco.build.disk.scan_pool_pages = static_cast<size_t>(
            rng.UniformInt(floor_pages, floor_pages + 12));
        sco.build.disk.pool_shards =
            static_cast<size_t>(rng.UniformInt(1, 4));
        sco.store_decorator =
            [&setup, seed](std::unique_ptr<PageStore> inner, size_t s,
                           std::string_view /*name*/) {
              auto wrapped = std::make_unique<FaultInjectingPageStore>(
                  std::move(inner), seed);
              setup.wrappers[s].push_back(wrapped.get());
              return std::unique_ptr<PageStore>(std::move(wrapped));
            };
      }
      shard::ShardedCollection::Builder builder(std::move(sco));
      Status add_status;
      for (uint32_t d = 0; d < corpus.size() && add_status.ok(); ++d) {
        add_status = builder.Add("doc" + std::to_string(d), corpus[d].Clone());
      }
      Result<std::unique_ptr<shard::ShardedCollection>> collection =
          add_status.ok() ? std::move(builder).Build()
                          : Result<std::unique_ptr<shard::ShardedCollection>>(
                                add_status);
      if (!collection.ok()) {
        Divergence d;
        d.seed = seed;
        d.detail = "sharded build (n=" + std::to_string(n) +
                   ") failed: " + collection.status().ToString();
        report.divergences.push_back(std::move(d));
        return report;
      }
      setup.collection = collection.MoveValueUnsafe();
      shard::ScatterGatherOptions sgo;
      sgo.workers = 2;
      setup.executor = std::make_unique<shard::ScatterGatherExecutor>(
          setup.collection.get(), sgo);
    }
  }

  // --- Queries. ---
  // Every sampled query is also remembered for the cross-query batch
  // stage below, which replays them concurrently through a QueryService.
  std::vector<std::vector<std::string>> sampled_queries;
  for (size_t q = 0; q < options.queries_per_collection; ++q) {
    std::vector<std::string> keywords;
    const size_t k = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_keywords),
                       static_cast<int64_t>(options.max_keywords)));
    for (size_t i = 0; i < k; ++i) {
      if (i > 0 && rng.Bernoulli(0.15)) {
        // Duplicate keyword: slca({S,S,..}) must equal slca over the
        // distinct sets.
        keywords.push_back(keywords[rng.Uniform(keywords.size())]);
      } else if (rng.Bernoulli(0.08)) {
        // Keyword absent from the document: every path must agree on the
        // empty answer.
        keywords.push_back("absentkeyword");
      } else {
        keywords.push_back(vocab[rng.Uniform(vocab.size())]);
      }
    }
    sampled_queries.push_back(keywords);

    CaseContext ctx{seed, &report, &keywords};

    // Re-runs an eager query chunked and asserts the parity contract:
    // identical emission sequence (document order, duplicate-free) and
    // identical match_ops / results counters — both are chunk-invariant
    // by construction, unlike comparison/posting/page counts, which may
    // differ by bounded seam terms. min_chunk_elements is forced to 1 so
    // fuzz-sized lists still split.
    auto check_chunked = [&](const std::string& label,
                             const Result<SearchResult>& sequential,
                             SearchOptions cso, size_t chunks) {
      if (!sequential.ok() || chunk_pool == nullptr) return;
      cso.slca_exec.pool = chunk_pool.get();
      cso.slca_exec.budget = chunk_budget.get();
      cso.slca_exec.max_chunks = chunks;
      cso.slca_exec.min_chunk_elements = 1;
      Result<SearchResult> got = engine.Search(keywords, cso);
      ++report.cases;
      if (!got.ok()) {
        ctx.Diverge(label + " failed: " + got.status().ToString());
        return;
      }
      if (got->nodes != sequential->nodes) {
        ctx.Diverge(label + " emitted " + IdsToString(got->nodes) +
                    ", sequential emitted " + IdsToString(sequential->nodes));
        return;
      }
      const uint64_t seq_match = sequential->stats.match_ops.load();
      const uint64_t got_match = got->stats.match_ops.load();
      const uint64_t seq_results = sequential->stats.results.load();
      const uint64_t got_results = got->stats.results.load();
      if (seq_match != got_match || seq_results != got_results) {
        ctx.Diverge(label + " stats parity broke: match_ops " +
                    std::to_string(got_match) + " vs " +
                    std::to_string(seq_match) + ", results " +
                    std::to_string(got_results) + " vs " +
                    std::to_string(seq_results));
      }
    };

    // Ground truth: linear-time tree oracle, independent of the paper's
    // algorithms, plus the brute-force enumeration as a second opinion.
    Result<std::vector<DeweyId>> oracle_slca =
        OracleSlca(engine.document(), engine.index(), keywords);
    Result<std::vector<DeweyId>> oracle_lca =
        OracleAllLca(engine.document(), engine.index(), keywords);
    Result<std::vector<DeweyId>> oracle_elca =
        OracleElca(engine.document(), engine.index(), keywords);
    if (!oracle_slca.ok() || !oracle_lca.ok() || !oracle_elca.ok()) {
      ctx.Diverge("oracle failed: " + oracle_slca.status().ToString());
      continue;
    }

    // Brute force (the fourth algorithm) over the raw keyword lists.
    // Its cost is the product of the list sizes, so skip it when the
    // enumeration would dwarf everything else the case checks — big
    // collections are covered by the other four paths plus the oracle.
    {
      std::vector<std::vector<DeweyId>> lists;
      bool all_present = true;
      uint64_t combinations = 1;
      for (const std::string& kw : keywords) {
        const PackedDeweyList* list = engine.index().Find(kw);
        if (list == nullptr) {
          all_present = false;
          break;
        }
        combinations *= std::max<uint64_t>(1, list->size());
        lists.push_back(list->Materialize());
      }
      constexpr uint64_t kMaxBruteForceCombinations = 200'000;
      if (!all_present || combinations <= kMaxBruteForceCombinations) {
        const std::vector<DeweyId> brute =
            all_present ? BruteForceSlca(lists) : std::vector<DeweyId>{};
        ctx.CheckIds("brute-force", brute, *oracle_slca);
      }
      // Paper Section 2 identity: slca = removeAncestors(allLca).
      ctx.CheckIds("removeAncestors(allLca)", RemoveAncestors(*oracle_lca),
                   *oracle_slca);
    }

    // In-memory paths: all three algorithms, each through both posting
    // layouts. The packed (prefix-truncated arena) run and the
    // materialized-vector run share the exact same options, so beyond
    // both matching the oracle, their match-operation counts — the
    // algorithm-level lm/rm calls of the paper's Table 1 — must be
    // identical: the layout may only change how a match is answered,
    // never how many are asked.
    for (AlgorithmChoice algorithm : kAlgorithms) {
      SearchOptions so;
      so.algorithm = algorithm;
      so.block_size = static_cast<size_t>(rng.UniformInt(1, 4));
      const std::string label = AlgorithmLabel(algorithm, false);
      Result<SearchResult> packed = engine.Search(keywords, so);
      ctx.Check(label.c_str(), packed, *oracle_slca);
      // Decode-kernel differential: the same packed query forced through
      // the scalar kernel must produce the identical result set and
      // match-operation count as the dispatched (SWAR/SIMD) run — the
      // kernel may only change how bytes are decoded, never what they
      // decode to. Skipped when scalar is already the active kernel
      // (non-x86 build, --no-simd, or XK_FORCE_SCALAR_DECODE).
      if (ActiveDecodeKernel() != DecodeKernel::kScalar) {
        ForceScalarDecode(true);
        Result<SearchResult> scalar = engine.Search(keywords, so);
        ForceScalarDecode(false);
        const std::string scalar_label = label + "/scalar-decode";
        ctx.Check(scalar_label.c_str(), scalar, *oracle_slca);
        if (packed.ok() && scalar.ok()) {
          ++report.cases;
          const uint64_t packed_ops = packed->stats.match_ops.load();
          const uint64_t scalar_ops = scalar->stats.match_ops.load();
          if (packed_ops != scalar_ops) {
            ctx.Diverge(label + " match_ops=" + std::to_string(packed_ops) +
                        " but " + scalar_label +
                        " match_ops=" + std::to_string(scalar_ops));
          }
        }
      }
      so.use_packed_lists = false;
      const std::string vec_label = label + "/vector";
      Result<SearchResult> vec = engine.Search(keywords, so);
      ctx.Check(vec_label.c_str(), vec, *oracle_slca);
      if (packed.ok() && vec.ok()) {
        ++report.cases;
        const uint64_t packed_ops = packed->stats.match_ops.load();
        const uint64_t vec_ops = vec->stats.match_ops.load();
        if (packed_ops != vec_ops) {
          ctx.Diverge(label + " match_ops=" + std::to_string(packed_ops) +
                      " but " + vec_label +
                      " match_ops=" + std::to_string(vec_ops));
        }
      }
      // Chunked parity over both layouts (the Stack algorithm has no
      // chunk decomposition — ComputeSlcaParallel falls through to the
      // sequential path, so re-running it would check nothing).
      if (algorithm != AlgorithmChoice::kStack) {
        for (const size_t chunks : options.chunk_counts) {
          SearchOptions cso;
          cso.algorithm = algorithm;
          cso.block_size = so.block_size;
          check_chunked(label + "/chunks=" + std::to_string(chunks), packed,
                        cso, chunks);
          cso.use_packed_lists = false;
          check_chunked(vec_label + "/chunks=" + std::to_string(chunks), vec,
                        cso, chunks);
        }
      }
    }
    {
      SearchOptions so;
      so.semantics = Semantics::kElca;
      ctx.Check("mem/elca", engine.Search(keywords, so), *oracle_elca);
      so.semantics = Semantics::kAllLca;
      ctx.Check("mem/all-lca", engine.Search(keywords, so), *oracle_lca);
    }

    // Sharded paths: every shard count must reproduce the union of the
    // per-document single-index answers (document-partition exactness),
    // sequentially and through the pool-parallel executor alike.
    if (!setups.empty()) {
      // Union of per-document answers, re-based to collection coords.
      auto expected_union =
          [&](const SearchOptions& so) -> Result<std::vector<DeweyId>> {
        std::vector<DeweyId> all;
        for (uint32_t d = 0; d < doc_engines.size(); ++d) {
          Result<SearchResult> r = doc_engines[d]->Search(keywords, so);
          if (!r.ok()) return r.status();
          for (const DeweyId& id : r->nodes) {
            all.push_back(RebaseToCollection(id, d));
          }
        }
        return all;
      };
      auto check_sharded = [&](const std::string& label,
                               const Result<shard::ShardedResult>& got,
                               const std::vector<DeweyId>& expected) {
        ++report.cases;
        if (!got.ok()) {
          ctx.Diverge(label + " failed: " + got.status().ToString());
          return;
        }
        if (!SameSet(got->result.nodes, expected)) {
          ctx.Diverge(label + " = " + IdsToString(got->result.nodes) +
                      ", per-doc union = " + IdsToString(expected));
        }
      };

      Result<std::vector<DeweyId>> expected = expected_union(SearchOptions{});
      if (!expected.ok()) {
        ctx.Diverge("per-doc union failed: " + expected.status().ToString());
        continue;
      }
      for (ShardedSetup& setup : setups) {
        const std::string tag = "sharded[" + std::to_string(setup.shard_count) + "]";
        check_sharded(tag + "/seq", setup.collection->Search(keywords),
                      *expected);
        Result<shard::ShardedResult> par = setup.executor->Search(keywords);
        check_sharded(tag + "/par", par, *expected);
        if (par.ok()) {
          // Aggregation identity: the response totals must be exactly
          // the field-wise sum of the per-shard stats, and pruned
          // shards must contribute nothing.
          QueryStats sum;
          uint64_t contributed = 0;
          for (const shard::ShardQueryStats& s : par->shards) {
            sum += s.stats;
            contributed += s.results;
            if (s.pruned && s.results != 0) {
              ctx.Diverge(tag + " pruned shard " + std::to_string(s.shard) +
                          " reported " + std::to_string(s.results) +
                          " results");
            }
          }
          ++report.cases;
          const QueryStats& total = par->result.stats;
          if (sum.match_ops.load() != total.match_ops.load() ||
              sum.dewey_comparisons.load() != total.dewey_comparisons.load() ||
              sum.lca_ops.load() != total.lca_ops.load() ||
              sum.postings_read.load() != total.postings_read.load() ||
              sum.page_reads.load() != total.page_reads.load() ||
              sum.page_hits.load() != total.page_hits.load() ||
              sum.readahead_reads.load() != total.readahead_reads.load() ||
              sum.io_errors.load() != total.io_errors.load() ||
              contributed != par->result.nodes.size()) {
            ctx.Diverge(tag + " stats aggregation broke: shard sum " +
                        sum.ToString() + " vs total " + total.ToString());
          }
        }
      }
      {
        // Semantics parity on the first configuration (the others share
        // the same code path; one is enough per query).
        SearchOptions so;
        so.semantics = Semantics::kElca;
        Result<std::vector<DeweyId>> expected_elca = expected_union(so);
        if (expected_elca.ok()) {
          check_sharded("sharded/elca",
                        setups.front().collection->Search(keywords, so),
                        *expected_elca);
        }
        so.semantics = Semantics::kAllLca;
        Result<std::vector<DeweyId>> expected_lca = expected_union(so);
        if (expected_lca.ok()) {
          check_sharded("sharded/all-lca",
                        setups.front().collection->Search(keywords, so),
                        *expected_lca);
        }
      }
      if (options.with_disk) {
        SearchOptions so;
        so.use_disk_index = true;
        for (ShardedSetup& setup : setups) {
          check_sharded("sharded[" + std::to_string(setup.shard_count) +
                            "]/disk",
                        setup.executor->Search(keywords, so), *expected);
        }
      }
      if (options.with_disk && options.with_faults) {
        // Single-shard fault round: arm one seeded-chosen shard's stores
        // and scatter across the full collection. Contract: the query
        // either succeeds with the exact answer or fails with the
        // injected IoError — never a wrong answer, never a leaked pin
        // on ANY shard — and the identical query succeeds once the
        // fault clears.
        ShardedSetup& setup = setups[rng.Uniform(setups.size())];
        std::vector<size_t> faultable;
        for (size_t s = 0; s < setup.wrappers.size(); ++s) {
          if (!setup.wrappers[s].empty()) faultable.push_back(s);
        }
        if (!faultable.empty()) {
          const size_t victim = faultable[rng.Uniform(faultable.size())];
          // Half the rounds (seeded) drop the victim's caches before
          // arming: a pool still warm from the parity checks above can
          // serve the whole query without one read — a guaranteed
          // survival — and the schedule must also be observed firing.
          const bool cold = rng.Bernoulli(0.5);
          const XKSearch* victim_engine =
              setup.collection->shard_engine(static_cast<uint32_t>(victim));
          if (cold && victim_engine != nullptr &&
              victim_engine->disk_index() != nullptr) {
            const Status dropped = victim_engine->disk_index()->DropCaches();
            if (!dropped.ok()) {
              ctx.Diverge("sharded[" + std::to_string(setup.shard_count) +
                          "]/faults DropCaches failed: " + dropped.ToString());
            }
          }
          for (FaultInjectingPageStore* w : setup.wrappers[victim]) {
            w->ClearFaults();
            w->FailReadsWithProbability(options.fault_probability,
                                        options.faults_per_round);
            w->Arm();
          }
          SearchOptions so;
          so.use_disk_index = true;
          const std::string tag =
              "sharded[" + std::to_string(setup.shard_count) + "]/faults";
          Result<shard::ShardedResult> got =
              setup.executor->Search(keywords, so);
          ++report.cases;
          if (got.ok()) {
            ++report.fault_survivals;
            if (!SameSet(got->result.nodes, *expected)) {
              ctx.Diverge(tag + " returned wrong answer " +
                          IdsToString(got->result.nodes) +
                          ", per-doc union = " + IdsToString(*expected));
            }
          } else {
            ++report.clean_fault_errors;
            if (!got.status().IsIoError()) {
              ctx.Diverge(tag + " failed with non-IoError: " +
                          got.status().ToString());
            }
          }
          for (FaultInjectingPageStore* w : setup.wrappers[victim]) {
            w->Disarm();
            w->ClearFaults();
          }
          for (uint32_t s = 0; s < setup.collection->shard_count(); ++s) {
            const XKSearch* shard_engine = setup.collection->shard_engine(s);
            if (shard_engine == nullptr ||
                shard_engine->disk_index() == nullptr) {
              continue;
            }
            const uint64_t il_pins =
                shard_engine->disk_index()->il_pool()->DebugTotalPins();
            const uint64_t scan_pins =
                shard_engine->disk_index()->scan_pool()->DebugTotalPins();
            if (il_pins != 0 || scan_pins != 0) {
              ctx.Diverge(tag + " leaked pins on shard " + std::to_string(s) +
                          ": il=" + std::to_string(il_pins) +
                          " scan=" + std::to_string(scan_pins));
            }
          }
          check_sharded(tag + "/recovery", setup.executor->Search(keywords, so),
                        *expected);
        }
      }
    }

    if (!options.with_disk) continue;

    // Disk paths (fault-free): same checks through pools + B+trees.
    for (AlgorithmChoice algorithm : kAlgorithms) {
      SearchOptions so;
      so.algorithm = algorithm;
      so.use_disk_index = true;
      so.block_size = static_cast<size_t>(rng.UniformInt(1, 4));
      Result<SearchResult> seq = engine.Search(keywords, so);
      ctx.Check(AlgorithmLabel(algorithm, true), seq, *oracle_slca);
      if (algorithm != AlgorithmChoice::kStack) {
        for (const size_t chunks : options.chunk_counts) {
          check_chunked(std::string(AlgorithmLabel(algorithm, true)) +
                            "/chunks=" + std::to_string(chunks),
                        seq, so, chunks);
        }
      }
    }
    {
      SearchOptions so;
      so.use_disk_index = true;
      so.semantics = Semantics::kElca;
      ctx.Check("disk/elca", engine.Search(keywords, so), *oracle_elca);
      so.semantics = Semantics::kAllLca;
      ctx.Check("disk/all-lca", engine.Search(keywords, so), *oracle_lca);
    }

    if (!options.with_faults) continue;

    // Fault round: arm a transient probabilistic read-fault schedule and
    // run one disk query per algorithm. Contract: the query either
    // succeeds with the oracle answer (fault missed it, or hit only
    // readahead) or fails with the injected IoError — never a wrong
    // answer, never a leaked pin. After disarming, the same query must
    // succeed: a fault must not poison the pool.
    for (AlgorithmChoice algorithm : kAlgorithms) {
      for (FaultInjectingPageStore* w : wrappers) {
        w->ClearFaults();
        w->FailReadsWithProbability(options.fault_probability,
                                    options.faults_per_round);
        w->Arm();
      }
      SearchOptions so;
      so.algorithm = algorithm;
      so.use_disk_index = true;
      Result<SearchResult> got = engine.Search(keywords, so);
      ++report.cases;
      if (got.ok()) {
        ++report.fault_survivals;
        if (!SameSet(got->nodes, *oracle_slca)) {
          ctx.Diverge(std::string(AlgorithmLabel(algorithm, true)) +
                      " under faults returned wrong answer " +
                      IdsToString(got->nodes) + ", oracle = " +
                      IdsToString(*oracle_slca));
        }
      } else {
        ++report.clean_fault_errors;
        if (!got.status().IsIoError()) {
          ctx.Diverge(std::string(AlgorithmLabel(algorithm, true)) +
                      " under faults failed with non-IoError: " +
                      got.status().ToString());
        }
      }
      for (FaultInjectingPageStore* w : wrappers) {
        w->Disarm();
        w->ClearFaults();
      }
      const uint64_t il_pins = engine.disk_index()->il_pool()->DebugTotalPins();
      const uint64_t scan_pins =
          engine.disk_index()->scan_pool()->DebugTotalPins();
      if (il_pins != 0 || scan_pins != 0) {
        ctx.Diverge(std::string(AlgorithmLabel(algorithm, true)) +
                    " under faults leaked pins: il=" + std::to_string(il_pins) +
                    " scan=" + std::to_string(scan_pins));
      }
      // Recovery: the identical query, faults disarmed, must succeed.
      ctx.Check("disk/recovery", engine.Search(keywords, so), *oracle_slca);

      // Chunked fault round: same contract with chunk workers hitting
      // the armed stores concurrently — the error must surface as the
      // injected IoError (or the exact answer), with no leaked pins on
      // either pool and a clean chunked retry once disarmed.
      if (algorithm == AlgorithmChoice::kStack || chunk_pool == nullptr) {
        continue;
      }
      const size_t fault_chunks =
          options.chunk_counts[rng.Uniform(options.chunk_counts.size())];
      for (FaultInjectingPageStore* w : wrappers) {
        w->ClearFaults();
        w->FailReadsWithProbability(options.fault_probability,
                                    options.faults_per_round);
        w->Arm();
      }
      SearchOptions cso = so;
      cso.slca_exec.pool = chunk_pool.get();
      cso.slca_exec.budget = chunk_budget.get();
      cso.slca_exec.max_chunks = fault_chunks;
      cso.slca_exec.min_chunk_elements = 1;
      const std::string fault_label =
          std::string(AlgorithmLabel(algorithm, true)) + "/chunks=" +
          std::to_string(fault_chunks) + " under faults";
      Result<SearchResult> chunked = engine.Search(keywords, cso);
      ++report.cases;
      if (chunked.ok()) {
        ++report.fault_survivals;
        if (!SameSet(chunked->nodes, *oracle_slca)) {
          ctx.Diverge(fault_label + " returned wrong answer " +
                      IdsToString(chunked->nodes) + ", oracle = " +
                      IdsToString(*oracle_slca));
        }
      } else {
        ++report.clean_fault_errors;
        if (!chunked.status().IsIoError()) {
          ctx.Diverge(fault_label + " failed with non-IoError: " +
                      chunked.status().ToString());
        }
      }
      for (FaultInjectingPageStore* w : wrappers) {
        w->Disarm();
        w->ClearFaults();
      }
      const uint64_t chunk_il_pins =
          engine.disk_index()->il_pool()->DebugTotalPins();
      const uint64_t chunk_scan_pins =
          engine.disk_index()->scan_pool()->DebugTotalPins();
      if (chunk_il_pins != 0 || chunk_scan_pins != 0) {
        ctx.Diverge(fault_label +
                    " leaked pins: il=" + std::to_string(chunk_il_pins) +
                    " scan=" + std::to_string(chunk_scan_pins));
      }
      ctx.Check("disk/chunked-recovery", engine.Search(keywords, cso),
                *oracle_slca);
    }
  }

  // --- Cross-query batch stage: the collection's sampled queries,
  // submitted batch_clients times each through a QueryService whose
  // batch window is open. Identical submissions coalesce under
  // single-flight; distinct queries land in one batch sharing one
  // decoded-list provider and one vectored cold-page prefetch. Batching
  // is execution-time only, so every response must reproduce the
  // sequential unbatched engine run exactly: same nodes, same
  // match_ops, same results counter. One worker on purpose — the fuzz
  // pools are deliberately tiny, and serialized execution keeps the pin
  // demand identical to the sequential stages while the batcher,
  // coalescing and prefetch still run fully concurrently with it.
  if (options.batch_clients > 0 && !sampled_queries.empty()) {
    struct BatchRef {
      std::vector<DeweyId> nodes;
      uint64_t match_ops = 0;
      uint64_t results = 0;
      bool ok = false;
    };

    serve::QueryServiceOptions qso;
    qso.pool.workers = 1;
    qso.pool.queue_capacity =
        sampled_queries.size() * options.batch_clients + 8;
    qso.enable_cache = false;
    qso.single_flight = true;
    qso.batch_window_us = 500;
    qso.batch_max = sampled_queries.size() * options.batch_clients;
    serve::QueryService service(&engine, qso);

    // The stage submits each query in its canonical form (sorted,
    // deduplicated, normalized keywords — none of which changes the
    // answer). Raw forms would make the stats check nondeterministic:
    // single-flight coalesces every raw form of one canonical key onto
    // whichever of them happened to lead, and a duplicated keyword
    // costs its raw run extra match_ops that a deduplicated sibling's
    // run never performs. Raw-form answer invariance is already covered
    // by the in-memory differential stages above.
    std::vector<std::vector<std::string>> canonical(sampled_queries.size());
    for (size_t i = 0; i < sampled_queries.size(); ++i) {
      canonical[i] =
          service.MakeCacheKey(sampled_queries[i], SearchOptions()).keywords;
    }
    auto make_refs = [&](const SearchOptions& so) {
      std::vector<BatchRef> refs(sampled_queries.size());
      for (size_t i = 0; i < sampled_queries.size(); ++i) {
        Result<SearchResult> r = engine.Search(canonical[i], so);
        if (!r.ok()) {
          CaseContext bctx{seed, &report, &sampled_queries[i]};
          bctx.Diverge("batch reference run failed: " + r.status().ToString());
          continue;
        }
        refs[i].nodes = r->nodes;
        refs[i].match_ops = r->stats.match_ops.load();
        refs[i].results = r->stats.results.load();
        refs[i].ok = true;
      }
      return refs;
    };

    using PendingResponse =
        std::pair<size_t, std::future<Result<serve::QueryResponse>>>;
    auto submit_all = [&](const SearchOptions& so) {
      std::vector<PendingResponse> submitted;
      for (size_t c = 0; c < options.batch_clients; ++c) {
        for (size_t i = 0; i < sampled_queries.size(); ++i) {
          submitted.emplace_back(i, service.Submit(canonical[i], so));
        }
      }
      return submitted;
    };

    // Submits every query batch_clients times, interleaved, and checks
    // each response against its unbatched reference.
    auto run_batched = [&](const char* label, const SearchOptions& so,
                           const std::vector<BatchRef>& refs) {
      std::vector<PendingResponse> submitted = submit_all(so);
      for (auto& [i, fut] : submitted) {
        Result<serve::QueryResponse> resp = fut.get();
        if (!refs[i].ok) continue;
        CaseContext bctx{seed, &report, &sampled_queries[i]};
        ++report.cases;
        if (!resp.ok()) {
          bctx.Diverge(std::string(label) +
                       " failed: " + resp.status().ToString());
          continue;
        }
        if (resp->result.nodes != refs[i].nodes) {
          bctx.Diverge(std::string(label) + " emitted " +
                       IdsToString(resp->result.nodes) + ", unbatched = " +
                       IdsToString(refs[i].nodes));
          continue;
        }
        const uint64_t got_match = resp->result.stats.match_ops.load();
        const uint64_t got_results = resp->result.stats.results.load();
        if (got_match != refs[i].match_ops || got_results != refs[i].results) {
          bctx.Diverge(std::string(label) + " stats parity broke: match_ops " +
                       std::to_string(got_match) + " vs " +
                       std::to_string(refs[i].match_ops) + ", results " +
                       std::to_string(got_results) + " vs " +
                       std::to_string(refs[i].results));
        }
      }
    };

    {
      SearchOptions so;
      run_batched("batched/mem", so, make_refs(so));
    }
    if (options.with_disk) {
      SearchOptions so;
      so.use_disk_index = true;
      const std::vector<BatchRef> disk_refs = make_refs(so);
      run_batched("batched/disk", so, disk_refs);

      if (options.with_faults) {
        // Fault round: armed stores under a full concurrent batch —
        // faults can now land in the batch prefetch as well as in the
        // queries themselves. Each response is either the exact
        // unbatched answer or the injected IoError, never a wrong
        // answer, and nothing leaks a pin.
        for (FaultInjectingPageStore* w : wrappers) {
          w->ClearFaults();
          w->FailReadsWithProbability(options.fault_probability,
                                      options.faults_per_round);
          w->Arm();
        }
        std::vector<PendingResponse> submitted = submit_all(so);
        for (auto& [i, fut] : submitted) {
          Result<serve::QueryResponse> resp = fut.get();
          if (!disk_refs[i].ok) continue;
          CaseContext bctx{seed, &report, &sampled_queries[i]};
          ++report.cases;
          if (resp.ok()) {
            ++report.fault_survivals;
            if (!SameSet(resp->result.nodes, disk_refs[i].nodes)) {
              bctx.Diverge("batched/faults returned wrong answer " +
                           IdsToString(resp->result.nodes) + ", unbatched = " +
                           IdsToString(disk_refs[i].nodes));
            }
          } else {
            ++report.clean_fault_errors;
            if (!resp.status().IsIoError()) {
              bctx.Diverge("batched/faults failed with non-IoError: " +
                           resp.status().ToString());
            }
          }
        }
        for (FaultInjectingPageStore* w : wrappers) {
          w->Disarm();
          w->ClearFaults();
        }
        const uint64_t il_pins =
            engine.disk_index()->il_pool()->DebugTotalPins();
        const uint64_t scan_pins =
            engine.disk_index()->scan_pool()->DebugTotalPins();
        if (il_pins != 0 || scan_pins != 0) {
          CaseContext bctx{seed, &report, &sampled_queries[0]};
          bctx.Diverge(
              "batched/faults leaked pins: il=" + std::to_string(il_pins) +
              " scan=" + std::to_string(scan_pins));
        }
        // Recovery: the same concurrent batch, faults disarmed, must
        // reproduce the unbatched answers again.
        run_batched("batched/recovery", so, disk_refs);
      }
    }
    service.Shutdown();
  }

  if (options.crash_rounds > 0) {
    RunCrashRounds(seed, options, engine, &rng, &report);
  }
  return report;
}

FuzzReport RunFuzz(uint64_t first_seed, uint64_t count,
                   const FuzzOptions& options) {
  FuzzReport total;
  for (uint64_t i = 0; i < count; ++i) {
    total.Merge(RunFuzzCase(first_seed + i, options));
  }
  return total;
}

}  // namespace fuzz
}  // namespace xksearch
