#include "fuzz/harness.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "gen/random_tree.h"
#include "slca/brute_force.h"
#include "storage/fault_injection.h"

namespace xksearch {
namespace fuzz {

namespace {

std::string JoinKeywords(const std::vector<std::string>& keywords) {
  std::string out;
  for (const std::string& k : keywords) {
    if (!out.empty()) out += ' ';
    out += k;
  }
  return out;
}

std::string IdsToString(std::vector<DeweyId> ids) {
  std::sort(ids.begin(), ids.end());
  std::string out = "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ", ";
    out += ids[i].ToString();
  }
  out += "}";
  return out;
}

bool SameSet(std::vector<DeweyId> a, std::vector<DeweyId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

/// Shared mutable state of one fuzz case, so the check helpers can file
/// divergences without threading six arguments through every call.
struct CaseContext {
  uint64_t seed;
  FuzzReport* report;
  const std::vector<std::string>* keywords;

  void Diverge(std::string detail) {
    Divergence d;
    d.seed = seed;
    d.keywords = *keywords;
    d.detail = std::move(detail);
    report->divergences.push_back(std::move(d));
  }

  /// Compares one algorithm's answer against the oracle's.
  void Check(const char* label, const Result<SearchResult>& got,
             const std::vector<DeweyId>& expected) {
    ++report->cases;
    if (!got.ok()) {
      Diverge(std::string(label) + " failed: " + got.status().ToString());
      return;
    }
    if (!SameSet(got->nodes, expected)) {
      Diverge(std::string(label) + " = " + IdsToString(got->nodes) +
              ", oracle = " + IdsToString(expected));
    }
  }

  void CheckIds(const char* label, const std::vector<DeweyId>& got,
                const std::vector<DeweyId>& expected) {
    ++report->cases;
    if (!SameSet(got, expected)) {
      Diverge(std::string(label) + " = " + IdsToString(got) + ", oracle = " +
              IdsToString(expected));
    }
  }
};

/// The three paper algorithms, each forced explicitly.
constexpr AlgorithmChoice kAlgorithms[] = {
    AlgorithmChoice::kIndexedLookupEager,
    AlgorithmChoice::kScanEager,
    AlgorithmChoice::kStack,
};

const char* AlgorithmLabel(AlgorithmChoice a, bool disk) {
  switch (a) {
    case AlgorithmChoice::kIndexedLookupEager:
      return disk ? "disk/il-eager" : "mem/il-eager";
    case AlgorithmChoice::kScanEager:
      return disk ? "disk/scan-eager" : "mem/scan-eager";
    case AlgorithmChoice::kStack:
      return disk ? "disk/stack" : "mem/stack";
    default:
      return "auto";
  }
}

}  // namespace

void FuzzReport::Merge(const FuzzReport& other) {
  collections += other.collections;
  cases += other.cases;
  clean_fault_errors += other.clean_fault_errors;
  fault_survivals += other.fault_survivals;
  divergences.insert(divergences.end(), other.divergences.begin(),
                     other.divergences.end());
}

std::string FormatDivergence(const Divergence& d) {
  std::ostringstream os;
  os << "divergence: seed=" << d.seed << " query=\"" << JoinKeywords(d.keywords)
     << "\" — " << d.detail
     << "  (replay: xk_fuzz --seed=" << d.seed << " --cases=1)";
  return os.str();
}

FuzzReport RunFuzzCase(uint64_t seed, const FuzzOptions& options) {
  FuzzReport report;
  report.collections = 1;
  Rng rng(seed);

  // --- Collection: random tree, random shape, shared by every query. ---
  RandomTreeOptions tree;
  tree.node_count = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(options.min_nodes),
                     static_cast<int64_t>(options.max_nodes)));
  tree.max_depth = static_cast<uint32_t>(rng.UniformInt(3, 10));
  tree.max_children = static_cast<uint32_t>(rng.UniformInt(2, 6));
  tree.vocab_size = static_cast<size_t>(
      rng.UniformInt(static_cast<int64_t>(options.min_vocab),
                     static_cast<int64_t>(options.max_vocab)));
  tree.text_probability = 0.4 + 0.5 * rng.UniformDouble();
  Document doc = GenerateRandomDocument(&rng, tree);
  const std::vector<std::string> vocab = RandomTreeVocabulary(tree);

  // Fault wrappers, filled by the decorator when the disk path is built.
  std::vector<FaultInjectingPageStore*> wrappers;

  XKSearch::BuildOptions build;
  build.build_disk_index = options.with_disk;
  if (options.with_disk) {
    build.disk.in_memory = true;
    // Deliberately tiny pools (and sometimes a single shard) so cursor
    // traffic misses constantly: a fuzz case where everything stays
    // cached would never exercise the read path, let alone its faults.
    build.disk.il_pool_pages = static_cast<size_t>(rng.UniformInt(2, 16));
    build.disk.scan_pool_pages = static_cast<size_t>(rng.UniformInt(2, 16));
    build.disk.pool_shards = static_cast<size_t>(rng.UniformInt(1, 4));
    build.disk.readahead_pages = static_cast<size_t>(rng.UniformInt(0, 4));
    build.disk.compress_dewey = rng.Bernoulli(0.75);
    build.disk.delta_compress = rng.Bernoulli(0.75);
    build.disk.store_decorator =
        [&wrappers, seed](std::unique_ptr<PageStore> inner,
                          std::string_view /*name*/) {
          auto wrapped = std::make_unique<FaultInjectingPageStore>(
              std::move(inner), seed);
          wrappers.push_back(wrapped.get());
          return std::unique_ptr<PageStore>(std::move(wrapped));
        };
  }

  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromDocument(std::move(doc), build);
  if (!built.ok()) {
    Divergence d;
    d.seed = seed;
    d.detail = "build failed: " + built.status().ToString();
    report.divergences.push_back(std::move(d));
    return report;
  }
  const XKSearch& engine = **built;

  // --- Queries. ---
  for (size_t q = 0; q < options.queries_per_collection; ++q) {
    std::vector<std::string> keywords;
    const size_t k = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_keywords),
                       static_cast<int64_t>(options.max_keywords)));
    for (size_t i = 0; i < k; ++i) {
      if (i > 0 && rng.Bernoulli(0.15)) {
        // Duplicate keyword: slca({S,S,..}) must equal slca over the
        // distinct sets.
        keywords.push_back(keywords[rng.Uniform(keywords.size())]);
      } else if (rng.Bernoulli(0.08)) {
        // Keyword absent from the document: every path must agree on the
        // empty answer.
        keywords.push_back("absentkeyword");
      } else {
        keywords.push_back(vocab[rng.Uniform(vocab.size())]);
      }
    }

    CaseContext ctx{seed, &report, &keywords};

    // Ground truth: linear-time tree oracle, independent of the paper's
    // algorithms, plus the brute-force enumeration as a second opinion.
    Result<std::vector<DeweyId>> oracle_slca =
        OracleSlca(engine.document(), engine.index(), keywords);
    Result<std::vector<DeweyId>> oracle_lca =
        OracleAllLca(engine.document(), engine.index(), keywords);
    Result<std::vector<DeweyId>> oracle_elca =
        OracleElca(engine.document(), engine.index(), keywords);
    if (!oracle_slca.ok() || !oracle_lca.ok() || !oracle_elca.ok()) {
      ctx.Diverge("oracle failed: " + oracle_slca.status().ToString());
      continue;
    }

    // Brute force (the fourth algorithm) over the raw keyword lists.
    // Its cost is the product of the list sizes, so skip it when the
    // enumeration would dwarf everything else the case checks — big
    // collections are covered by the other four paths plus the oracle.
    {
      std::vector<std::vector<DeweyId>> lists;
      bool all_present = true;
      uint64_t combinations = 1;
      for (const std::string& kw : keywords) {
        const PackedDeweyList* list = engine.index().Find(kw);
        if (list == nullptr) {
          all_present = false;
          break;
        }
        combinations *= std::max<uint64_t>(1, list->size());
        lists.push_back(list->Materialize());
      }
      constexpr uint64_t kMaxBruteForceCombinations = 200'000;
      if (!all_present || combinations <= kMaxBruteForceCombinations) {
        const std::vector<DeweyId> brute =
            all_present ? BruteForceSlca(lists) : std::vector<DeweyId>{};
        ctx.CheckIds("brute-force", brute, *oracle_slca);
      }
      // Paper Section 2 identity: slca = removeAncestors(allLca).
      ctx.CheckIds("removeAncestors(allLca)", RemoveAncestors(*oracle_lca),
                   *oracle_slca);
    }

    // In-memory paths: all three algorithms, each through both posting
    // layouts. The packed (prefix-truncated arena) run and the
    // materialized-vector run share the exact same options, so beyond
    // both matching the oracle, their match-operation counts — the
    // algorithm-level lm/rm calls of the paper's Table 1 — must be
    // identical: the layout may only change how a match is answered,
    // never how many are asked.
    for (AlgorithmChoice algorithm : kAlgorithms) {
      SearchOptions so;
      so.algorithm = algorithm;
      so.block_size = static_cast<size_t>(rng.UniformInt(1, 4));
      const std::string label = AlgorithmLabel(algorithm, false);
      Result<SearchResult> packed = engine.Search(keywords, so);
      ctx.Check(label.c_str(), packed, *oracle_slca);
      so.use_packed_lists = false;
      const std::string vec_label = label + "/vector";
      Result<SearchResult> vec = engine.Search(keywords, so);
      ctx.Check(vec_label.c_str(), vec, *oracle_slca);
      if (packed.ok() && vec.ok()) {
        ++report.cases;
        const uint64_t packed_ops = packed->stats.match_ops.load();
        const uint64_t vec_ops = vec->stats.match_ops.load();
        if (packed_ops != vec_ops) {
          ctx.Diverge(label + " match_ops=" + std::to_string(packed_ops) +
                      " but " + vec_label +
                      " match_ops=" + std::to_string(vec_ops));
        }
      }
    }
    {
      SearchOptions so;
      so.semantics = Semantics::kElca;
      ctx.Check("mem/elca", engine.Search(keywords, so), *oracle_elca);
      so.semantics = Semantics::kAllLca;
      ctx.Check("mem/all-lca", engine.Search(keywords, so), *oracle_lca);
    }

    if (!options.with_disk) continue;

    // Disk paths (fault-free): same checks through pools + B+trees.
    for (AlgorithmChoice algorithm : kAlgorithms) {
      SearchOptions so;
      so.algorithm = algorithm;
      so.use_disk_index = true;
      so.block_size = static_cast<size_t>(rng.UniformInt(1, 4));
      ctx.Check(AlgorithmLabel(algorithm, true), engine.Search(keywords, so),
                *oracle_slca);
    }
    {
      SearchOptions so;
      so.use_disk_index = true;
      so.semantics = Semantics::kElca;
      ctx.Check("disk/elca", engine.Search(keywords, so), *oracle_elca);
      so.semantics = Semantics::kAllLca;
      ctx.Check("disk/all-lca", engine.Search(keywords, so), *oracle_lca);
    }

    if (!options.with_faults) continue;

    // Fault round: arm a transient probabilistic read-fault schedule and
    // run one disk query per algorithm. Contract: the query either
    // succeeds with the oracle answer (fault missed it, or hit only
    // readahead) or fails with the injected IoError — never a wrong
    // answer, never a leaked pin. After disarming, the same query must
    // succeed: a fault must not poison the pool.
    for (AlgorithmChoice algorithm : kAlgorithms) {
      for (FaultInjectingPageStore* w : wrappers) {
        w->ClearFaults();
        w->FailReadsWithProbability(options.fault_probability,
                                    options.faults_per_round);
        w->Arm();
      }
      SearchOptions so;
      so.algorithm = algorithm;
      so.use_disk_index = true;
      Result<SearchResult> got = engine.Search(keywords, so);
      ++report.cases;
      if (got.ok()) {
        ++report.fault_survivals;
        if (!SameSet(got->nodes, *oracle_slca)) {
          ctx.Diverge(std::string(AlgorithmLabel(algorithm, true)) +
                      " under faults returned wrong answer " +
                      IdsToString(got->nodes) + ", oracle = " +
                      IdsToString(*oracle_slca));
        }
      } else {
        ++report.clean_fault_errors;
        if (!got.status().IsIoError()) {
          ctx.Diverge(std::string(AlgorithmLabel(algorithm, true)) +
                      " under faults failed with non-IoError: " +
                      got.status().ToString());
        }
      }
      for (FaultInjectingPageStore* w : wrappers) {
        w->Disarm();
        w->ClearFaults();
      }
      const uint64_t il_pins = engine.disk_index()->il_pool()->DebugTotalPins();
      const uint64_t scan_pins =
          engine.disk_index()->scan_pool()->DebugTotalPins();
      if (il_pins != 0 || scan_pins != 0) {
        ctx.Diverge(std::string(AlgorithmLabel(algorithm, true)) +
                    " under faults leaked pins: il=" + std::to_string(il_pins) +
                    " scan=" + std::to_string(scan_pins));
      }
      // Recovery: the identical query, faults disarmed, must succeed.
      ctx.Check("disk/recovery", engine.Search(keywords, so), *oracle_slca);
    }
  }
  return report;
}

FuzzReport RunFuzz(uint64_t first_seed, uint64_t count,
                   const FuzzOptions& options) {
  FuzzReport total;
  for (uint64_t i = 0; i < count; ++i) {
    total.Merge(RunFuzzCase(first_seed + i, options));
  }
  return total;
}

}  // namespace fuzz
}  // namespace xksearch
