#ifndef XKSEARCH_XML_DOCUMENT_H_
#define XKSEARCH_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dewey/dewey_id.h"

namespace xksearch {

/// Index of a node inside a Document's arena.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
};

/// \brief An XML document as the labeled ordered tree of the paper.
///
/// Nodes live in a contiguous arena; element tags are interned. A node's
/// Dewey number is not materialized per node — it is reconstructed on
/// demand from parent links and sibling ordinals, which keeps a
/// DBLP-scale document compact. Node 0 is always the document element
/// (Dewey number "0").
class Document {
 public:
  Document() = default;

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Deep copy. Documents are move-only so a copy is never made by
  /// accident; callers that genuinely need two owners (e.g. indexing the
  /// same document standalone and inside a sharded collection) ask for
  /// one explicitly.
  Document Clone() const;

  /// Creates the root element. Must be the first node created.
  NodeId CreateRoot(std::string_view tag);

  /// Appends a child element under `parent`.
  NodeId AppendElement(NodeId parent, std::string_view tag);

  /// Appends a text node under `parent`.
  NodeId AppendText(NodeId parent, std::string_view text);

  /// Adds an attribute to an element.
  void AddAttribute(NodeId element, std::string_view name,
                    std::string_view value);

  size_t node_count() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return 0; }

  NodeKind kind(NodeId n) const { return nodes_[n].kind; }
  bool IsElement(NodeId n) const { return kind(n) == NodeKind::kElement; }
  bool IsText(NodeId n) const { return kind(n) == NodeKind::kText; }

  /// Tag of an element node.
  std::string_view tag(NodeId n) const { return tag_names_[nodes_[n].payload]; }
  /// Content of a text node.
  std::string_view text(NodeId n) const { return texts_[nodes_[n].payload]; }

  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  /// Ordinal of the node among its siblings (= last Dewey component).
  uint32_t ordinal(NodeId n) const { return nodes_[n].ordinal; }
  const std::vector<NodeId>& children(NodeId n) const {
    return nodes_[n].children;
  }
  size_t child_count(NodeId n) const { return nodes_[n].children.size(); }
  uint32_t level(NodeId n) const { return nodes_[n].level; }

  const std::vector<std::pair<std::string, std::string>>& attributes(
      NodeId n) const {
    return attrs_.count(n) ? attrs_.at(n) : kNoAttrs;
  }

  /// Reconstructs the Dewey number of `n` from parent links; O(depth).
  DeweyId DeweyOf(NodeId n) const;

  /// Locates the node with Dewey number `id`; kNotFound if no such node.
  Result<NodeId> FindByDewey(const DeweyId& id) const;

  /// Maximum node depth (root = level 0); 0 for an empty document.
  uint32_t max_depth() const { return max_level_; }

  /// Concatenation of all text directly under element `n` (not recursive),
  /// with pieces separated by single spaces.
  std::string DirectText(NodeId n) const;

  /// Number of distinct element tags.
  size_t tag_count() const { return tag_names_.size(); }

 private:
  struct Node {
    NodeKind kind;
    uint32_t level;
    uint32_t ordinal;
    uint32_t payload;  // index into tag_names_ (element) or texts_ (text)
    NodeId parent;
    std::vector<NodeId> children;
  };

  uint32_t InternTag(std::string_view tag);
  NodeId AppendNode(NodeId parent, NodeKind kind, uint32_t payload);

  static const std::vector<std::pair<std::string, std::string>> kNoAttrs;

  std::vector<Node> nodes_;
  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, uint32_t> tag_ids_;
  std::vector<std::string> texts_;
  std::unordered_map<NodeId, std::vector<std::pair<std::string, std::string>>>
      attrs_;
  uint32_t max_level_ = 0;
};

}  // namespace xksearch

#endif  // XKSEARCH_XML_DOCUMENT_H_
