#ifndef XKSEARCH_XML_PARSER_H_
#define XKSEARCH_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/document.h"

namespace xksearch {

/// \brief Options controlling XML parsing.
struct ParserOptions {
  /// Keep text nodes that consist only of whitespace. Off by default:
  /// indentation between elements is layout, not data, and the paper's
  /// tree model has no whitespace nodes.
  bool keep_whitespace_text = false;
  /// Reject documents nested deeper than this many levels (stack guard).
  uint32_t max_depth = 512;
};

/// \brief Parses a complete XML document from `input`.
///
/// Supports the subset an index builder needs: elements, attributes,
/// character data with the five predefined entities and numeric character
/// references, CDATA sections, comments, processing instructions, an XML
/// declaration, and a DOCTYPE declaration (skipped, including an internal
/// subset). Namespaces are treated lexically (prefix kept in the tag).
/// Errors carry 1-based line:column positions.
Result<Document> ParseXml(std::string_view input,
                          const ParserOptions& options = {});

/// \brief Reads and parses an XML file.
Result<Document> ParseXmlFile(const std::string& path,
                              const ParserOptions& options = {});

/// \brief Serializes `doc` back to XML text (escaped, no added whitespace
/// unless `indent` is true). Inverse of ParseXml up to insignificant
/// whitespace and entity normalization.
std::string SerializeXml(const Document& doc, bool indent = false);

/// Escapes &, <, >, ", ' for use in character data or attribute values.
std::string EscapeXml(std::string_view text);

}  // namespace xksearch

#endif  // XKSEARCH_XML_PARSER_H_
