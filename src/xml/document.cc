#include "xml/document.h"

#include <cassert>

namespace xksearch {

const std::vector<std::pair<std::string, std::string>> Document::kNoAttrs;

uint32_t Document::InternTag(std::string_view tag) {
  auto it = tag_ids_.find(std::string(tag));
  if (it != tag_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(tag_names_.size());
  tag_names_.emplace_back(tag);
  tag_ids_.emplace(std::string(tag), id);
  return id;
}

NodeId Document::CreateRoot(std::string_view tag) {
  assert(nodes_.empty() && "root must be the first node");
  nodes_.push_back(Node{NodeKind::kElement, /*level=*/0, /*ordinal=*/0,
                        InternTag(tag), kInvalidNode, {}});
  return 0;
}

NodeId Document::AppendNode(NodeId parent, NodeKind kind, uint32_t payload) {
  assert(parent < nodes_.size());
  assert(nodes_[parent].kind == NodeKind::kElement &&
         "text nodes cannot have children");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node& p = nodes_[parent];
  const uint32_t ordinal = static_cast<uint32_t>(p.children.size());
  const uint32_t level = p.level + 1;
  p.children.push_back(id);
  nodes_.push_back(Node{kind, level, ordinal, payload, parent, {}});
  if (level > max_level_) max_level_ = level;
  return id;
}

NodeId Document::AppendElement(NodeId parent, std::string_view tag) {
  return AppendNode(parent, NodeKind::kElement, InternTag(tag));
}

NodeId Document::AppendText(NodeId parent, std::string_view text) {
  const uint32_t payload = static_cast<uint32_t>(texts_.size());
  texts_.emplace_back(text);
  return AppendNode(parent, NodeKind::kText, payload);
}

void Document::AddAttribute(NodeId element, std::string_view name,
                            std::string_view value) {
  assert(IsElement(element));
  attrs_[element].emplace_back(std::string(name), std::string(value));
}

Document Document::Clone() const {
  Document copy;
  copy.nodes_ = nodes_;
  copy.tag_names_ = tag_names_;
  copy.tag_ids_ = tag_ids_;
  copy.texts_ = texts_;
  copy.attrs_ = attrs_;
  copy.max_level_ = max_level_;
  return copy;
}

DeweyId Document::DeweyOf(NodeId n) const {
  assert(n < nodes_.size());
  std::vector<uint32_t> comps(nodes_[n].level + 1);
  NodeId cur = n;
  for (size_t i = comps.size(); i-- > 0;) {
    comps[i] = nodes_[cur].ordinal;
    cur = nodes_[cur].parent;
  }
  return DeweyId(std::move(comps));
}

Result<NodeId> Document::FindByDewey(const DeweyId& id) const {
  if (nodes_.empty() || id.empty() || id.component(0) != 0) {
    return Status::NotFound("no node with Dewey number " + id.ToString());
  }
  NodeId cur = root();
  for (size_t i = 1; i < id.depth(); ++i) {
    const uint32_t ord = id.component(i);
    const Node& node = nodes_[cur];
    if (ord >= node.children.size()) {
      return Status::NotFound("no node with Dewey number " + id.ToString());
    }
    cur = node.children[ord];
  }
  return cur;
}

std::string Document::DirectText(NodeId n) const {
  std::string out;
  for (NodeId c : children(n)) {
    if (IsText(c)) {
      if (!out.empty()) out += ' ';
      out += text(c);
    }
  }
  return out;
}

}  // namespace xksearch
