#include "xml/parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace xksearch {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsXmlSpace(c)) return false;
  }
  return true;
}

/// Recursive-descent parser over a string_view with position tracking.
class Parser {
 public:
  Parser(std::string_view input, const ParserOptions& options)
      : in_(input), options_(options) {}

  Result<Document> Parse() {
    SkipBom();
    XKS_RETURN_NOT_OK(SkipProlog());
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    Document doc;
    XKS_RETURN_NOT_OK(ParseElement(&doc, kInvalidNode, /*depth=*/0));
    XKS_RETURN_NOT_OK(SkipMisc());
    if (!AtEnd()) {
      return Error("content after root element");
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }

  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool Match(std::string_view token) {
    if (in_.substr(pos_, token.size()) != token) return false;
    AdvanceBy(token.size());
    return true;
  }

  Status Error(const std::string& msg) const {
    std::ostringstream os;
    os << msg << " at " << line_ << ":" << col_;
    return Status::ParseError(os.str());
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsXmlSpace(Peek())) Advance();
  }

  void SkipBom() {
    if (in_.substr(0, 3) == "\xEF\xBB\xBF") AdvanceBy(3);
  }

  Status SkipUntil(std::string_view terminator, const std::string& what) {
    while (!AtEnd()) {
      if (in_.substr(pos_, terminator.size()) == terminator) {
        AdvanceBy(terminator.size());
        return Status::OK();
      }
      Advance();
    }
    return Error("unterminated " + what);
  }

  Status SkipComment() {
    // Caller consumed "<!--".
    return SkipUntil("-->", "comment");
  }

  Status SkipProcessingInstruction() {
    // Caller consumed "<?".
    return SkipUntil("?>", "processing instruction");
  }

  Status SkipDoctype() {
    // Caller consumed "<!DOCTYPE". May contain an internal subset in [...].
    int bracket_depth = 0;
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        Advance();
        return Status::OK();
      }
      Advance();
    }
    return Error("unterminated DOCTYPE");
  }

  /// Whitespace / comments / PIs / DOCTYPE before or after the root.
  Status SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Match("<!--")) {
        XKS_RETURN_NOT_OK(SkipComment());
      } else if (in_.substr(pos_, 2) == "<?") {
        AdvanceBy(2);
        XKS_RETURN_NOT_OK(SkipProcessingInstruction());
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipProlog() {
    XKS_RETURN_NOT_OK(SkipMisc());
    if (Match("<!DOCTYPE")) {
      XKS_RETURN_NOT_OK(SkipDoctype());
      XKS_RETURN_NOT_OK(SkipMisc());
    }
    return Status::OK();
  }

  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected name");
    }
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return in_.substr(start, pos_ - start);
  }

  /// Decodes one entity reference; caller consumed '&'.
  Status AppendEntity(std::string* out) {
    if (Match("amp;")) {
      *out += '&';
    } else if (Match("lt;")) {
      *out += '<';
    } else if (Match("gt;")) {
      *out += '>';
    } else if (Match("quot;")) {
      *out += '"';
    } else if (Match("apos;")) {
      *out += '\'';
    } else if (Match("#")) {
      uint32_t code = 0;
      const bool hex = Match("x") || Match("X");
      bool any = false;
      while (!AtEnd() && Peek() != ';') {
        const char c = Peek();
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Error("bad character reference");
        }
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) return Error("character reference out of range");
        any = true;
        Advance();
      }
      if (!any || !Match(";")) return Error("unterminated character reference");
      AppendUtf8(code, out);
    } else {
      return Error("unknown entity reference");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '<') {
        return Error("'<' in attribute value");
      }
      if (Peek() == '&') {
        Advance();
        Status st = AppendEntity(&value);
        if (!st.ok()) return st;
      } else {
        value += Peek();
        Advance();
      }
    }
    if (AtEnd()) {
      return Error("unterminated attribute value");
    }
    Advance();  // closing quote
    return value;
  }

  Status ParseElement(Document* doc, NodeId parent, uint32_t depth) {
    if (depth > options_.max_depth) {
      return Error("document nested deeper than max_depth");
    }
    // Caller guarantees Peek() == '<'.
    Advance();
    XKS_ASSIGN_OR_RETURN(std::string_view tag, ParseName());

    const NodeId self = parent == kInvalidNode ? doc->CreateRoot(tag)
                                               : doc->AppendElement(parent, tag);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      XKS_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
      SkipWhitespace();
      if (!Match("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      XKS_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      doc->AddAttribute(self, attr_name, attr_value);
    }

    if (Match("/>")) return Status::OK();
    if (!Match(">")) return Error("expected '>' to close start tag");

    // Content.
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (options_.keep_whitespace_text || !IsAllWhitespace(text)) {
        doc->AppendText(self, text);
      }
      text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + std::string(tag) + ">");
      const char c = Peek();
      if (c == '<') {
        if (Match("<![CDATA[")) {
          const size_t start = pos_;
          while (!AtEnd() && in_.substr(pos_, 3) != "]]>") Advance();
          if (AtEnd()) return Error("unterminated CDATA section");
          text.append(in_.substr(start, pos_ - start));
          AdvanceBy(3);
        } else if (Match("<!--")) {
          XKS_RETURN_NOT_OK(SkipComment());
        } else if (in_.substr(pos_, 2) == "<?") {
          AdvanceBy(2);
          XKS_RETURN_NOT_OK(SkipProcessingInstruction());
        } else if (PeekAt(1) == '/') {
          flush_text();
          AdvanceBy(2);
          XKS_ASSIGN_OR_RETURN(std::string_view end_tag, ParseName());
          if (end_tag != tag) {
            return Error("mismatched end tag </" + std::string(end_tag) +
                         ">, expected </" + std::string(tag) + ">");
          }
          SkipWhitespace();
          if (!Match(">")) return Error("expected '>' in end tag");
          return Status::OK();
        } else {
          flush_text();
          XKS_RETURN_NOT_OK(ParseElement(doc, self, depth + 1));
        }
      } else if (c == '&') {
        Advance();
        XKS_RETURN_NOT_OK(AppendEntity(&text));
      } else {
        text += c;
        Advance();
      }
    }
  }

  std::string_view in_;
  ParserOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

void SerializeNode(const Document& doc, NodeId n, bool indent, int depth,
                   std::string* out) {
  if (doc.IsText(n)) {
    *out += EscapeXml(doc.text(n));
    return;
  }
  if (indent) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  *out += '<';
  *out += doc.tag(n);
  for (const auto& [name, value] : doc.attributes(n)) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += EscapeXml(value);
    *out += '"';
  }
  const auto& kids = doc.children(n);
  if (kids.empty()) {
    *out += "/>";
    if (indent) *out += '\n';
    return;
  }
  *out += '>';
  const bool element_only =
      indent && std::all_of(kids.begin(), kids.end(),
                            [&](NodeId k) { return doc.IsElement(k); });
  if (element_only) *out += '\n';
  for (NodeId k : kids) {
    SerializeNode(doc, k, element_only, depth + 1, out);
  }
  if (element_only) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  *out += "</";
  *out += doc.tag(n);
  *out += '>';
  if (indent) *out += '\n';
}

}  // namespace

Result<Document> ParseXml(std::string_view input, const ParserOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

Result<Document> ParseXmlFile(const std::string& path,
                              const ParserOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("error reading " + path);
  }
  const std::string content = buf.str();
  return ParseXml(content, options);
}

std::string SerializeXml(const Document& doc, bool indent) {
  std::string out;
  if (doc.empty()) return out;
  SerializeNode(doc, doc.root(), indent, 0, &out);
  return out;
}

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace xksearch
