#ifndef XKSEARCH_GEN_RANDOM_TREE_H_
#define XKSEARCH_GEN_RANDOM_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "xml/document.h"

namespace xksearch {

/// \brief Shape parameters for random labeled trees (property tests).
struct RandomTreeOptions {
  /// Total element nodes to generate (>= 1).
  size_t node_count = 50;
  /// Hard depth cap.
  uint32_t max_depth = 8;
  /// Maximum children per element.
  uint32_t max_children = 5;
  /// Number of distinct keywords sprinkled over the tree.
  size_t vocab_size = 6;
  /// Probability that an element gets a text child with 1-3 keywords.
  double text_probability = 0.7;
};

/// \brief Generates a random XML document whose text nodes draw keywords
/// "w0" .. "w<vocab_size-1>" at random. Deterministic given the Rng state.
Document GenerateRandomDocument(Rng* rng, const RandomTreeOptions& options);

/// The vocabulary used by GenerateRandomDocument.
std::vector<std::string> RandomTreeVocabulary(const RandomTreeOptions& options);

}  // namespace xksearch

#endif  // XKSEARCH_GEN_RANDOM_TREE_H_
