#ifndef XKSEARCH_GEN_SCHOOL_H_
#define XKSEARCH_GEN_SCHOOL_H_

#include "xml/document.h"

namespace xksearch {

/// \brief Builds the paper's running example, School.xml (Figure 1).
///
/// The document models a school with classes and sports teams in which
/// "John" and "Ben" are related three ways — Ben is the TA of John's CS2A
/// class, Ben is a student in the CS3A class John teaches, and both play
/// on the same team — so the query {john, ben} has exactly three SLCAs,
/// matching the paper's walk-through.
Document BuildSchoolDocument();

/// The same document as XML text (for parser round-trip demos).
std::string SchoolXml();

}  // namespace xksearch

#endif  // XKSEARCH_GEN_SCHOOL_H_
