#include "gen/random_tree.h"

namespace xksearch {

namespace {

const char* const kTags[] = {"a", "b", "c", "item", "group", "entry"};
constexpr size_t kTagCount = sizeof(kTags) / sizeof(kTags[0]);

}  // namespace

std::vector<std::string> RandomTreeVocabulary(
    const RandomTreeOptions& options) {
  std::vector<std::string> vocab;
  vocab.reserve(options.vocab_size);
  for (size_t i = 0; i < options.vocab_size; ++i) {
    vocab.push_back("w" + std::to_string(i));
  }
  return vocab;
}

Document GenerateRandomDocument(Rng* rng, const RandomTreeOptions& options) {
  const std::vector<std::string> vocab = RandomTreeVocabulary(options);
  Document doc;
  const NodeId root = doc.CreateRoot("root");
  // Frontier of elements that may still receive children, with depths.
  std::vector<std::pair<NodeId, uint32_t>> frontier = {{root, 0}};
  size_t created = 1;

  auto maybe_add_text = [&](NodeId element) {
    if (options.vocab_size == 0 || !rng->Bernoulli(options.text_probability)) {
      return;
    }
    std::string text;
    const size_t words = 1 + rng->Uniform(3);
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) text += ' ';
      text += vocab[rng->Uniform(vocab.size())];
    }
    doc.AppendText(element, text);
  };

  maybe_add_text(root);
  while (created < options.node_count && !frontier.empty()) {
    const size_t pick = rng->Uniform(frontier.size());
    const auto [parent, depth] = frontier[pick];
    const NodeId child =
        doc.AppendElement(parent, kTags[rng->Uniform(kTagCount)]);
    ++created;
    maybe_add_text(child);
    if (depth + 1 < options.max_depth) {
      frontier.emplace_back(child, depth + 1);
    }
    // Retire parents that hit their fanout cap.
    if (doc.child_count(parent) >= options.max_children) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
    }
  }
  return doc;
}

}  // namespace xksearch
