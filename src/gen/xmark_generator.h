#ifndef XKSEARCH_GEN_XMARK_GENERATOR_H_
#define XKSEARCH_GEN_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "gen/dblp_generator.h"  // PlantSpec
#include "xml/document.h"

namespace xksearch {

/// \brief Parameters for an XMark-shaped auction-site corpus.
///
/// XMark is the standard XML benchmark schema: site -> regions /
/// people / open_auctions / closed_auctions, with auction descriptions
/// containing recursively nested parlist/listitem markup. Compared to
/// the DBLP shape (depth 6), the description recursion makes this tree
/// deep (depth 8 + 2 * description_depth), exercising the parts of the
/// system whose cost carries a factor d: Dewey comparisons, the level
/// table, and Section 5's ancestor checks.
struct XmarkOptions {
  /// Number of auction items (split between open and closed).
  size_t items = 5000;
  size_t people = 1000;
  size_t regions = 6;
  /// Nesting depth of description parlists (0 = flat text).
  uint32_t description_depth = 3;
  /// Background vocabulary size (words are "x<N>").
  size_t vocab_size = 1000;
  uint64_t seed = 7;
  /// Keywords planted with exact frequencies into item descriptions.
  /// Reserved background prefix here is 'x'.
  std::vector<PlantSpec> plants;
};

/// \brief Generates the corpus. Planted keywords are attached to
/// distinct items sampled without replacement, one occurrence each, at
/// a random nesting level of the item's description.
Result<Document> GenerateXmark(const XmarkOptions& options);

}  // namespace xksearch

#endif  // XKSEARCH_GEN_XMARK_GENERATOR_H_
