#ifndef XKSEARCH_GEN_QUERY_SAMPLER_H_
#define XKSEARCH_GEN_QUERY_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/inverted_index.h"

namespace xksearch {

/// \brief Draws random keyword queries from an index by frequency, the way
/// the paper's experiment driver "randomly chose forty queries for each
/// experiment" with prescribed keyword-list sizes.
class QuerySampler {
 public:
  /// Buckets every indexed term by frequency once.
  explicit QuerySampler(const InvertedIndex& index);

  /// Random keyword whose list size lies within `tolerance` (relative) of
  /// `target_frequency`; empty string if the index has none.
  std::string SampleKeyword(Rng* rng, uint64_t target_frequency,
                            double tolerance = 0.5) const;

  /// One query with the given per-keyword target frequencies. Keywords in
  /// a query are distinct when possible.
  std::vector<std::string> SampleQuery(
      Rng* rng, const std::vector<uint64_t>& target_frequencies,
      double tolerance = 0.5) const;

  /// `count` queries per SampleQuery.
  std::vector<std::vector<std::string>> SampleQueries(
      Rng* rng, size_t count, const std::vector<uint64_t>& target_frequencies,
      double tolerance = 0.5) const;

 private:
  struct TermFreq {
    std::string term;
    uint64_t frequency;
  };
  // Sorted by frequency for range lookups.
  std::vector<TermFreq> terms_;
};

}  // namespace xksearch

#endif  // XKSEARCH_GEN_QUERY_SAMPLER_H_
