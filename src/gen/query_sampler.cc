#include "gen/query_sampler.h"

#include <algorithm>
#include <unordered_set>

namespace xksearch {

QuerySampler::QuerySampler(const InvertedIndex& index) {
  for (const std::string& term : index.Terms()) {
    terms_.push_back(TermFreq{term, index.Frequency(term)});
  }
  std::sort(terms_.begin(), terms_.end(),
            [](const TermFreq& a, const TermFreq& b) {
              return a.frequency < b.frequency;
            });
}

std::string QuerySampler::SampleKeyword(Rng* rng, uint64_t target_frequency,
                                        double tolerance) const {
  const uint64_t lo = static_cast<uint64_t>(
      static_cast<double>(target_frequency) * (1.0 - tolerance));
  const uint64_t hi = static_cast<uint64_t>(
      static_cast<double>(target_frequency) * (1.0 + tolerance));
  auto first = std::lower_bound(
      terms_.begin(), terms_.end(), lo,
      [](const TermFreq& t, uint64_t v) { return t.frequency < v; });
  auto last = std::upper_bound(
      terms_.begin(), terms_.end(), hi,
      [](uint64_t v, const TermFreq& t) { return v < t.frequency; });
  if (first == last) return "";
  const size_t span = static_cast<size_t>(last - first);
  return (first + rng->Uniform(span))->term;
}

std::vector<std::string> QuerySampler::SampleQuery(
    Rng* rng, const std::vector<uint64_t>& target_frequencies,
    double tolerance) const {
  std::vector<std::string> query;
  std::unordered_set<std::string> used;
  for (uint64_t freq : target_frequencies) {
    std::string kw;
    for (int attempt = 0; attempt < 32; ++attempt) {
      kw = SampleKeyword(rng, freq, tolerance);
      if (kw.empty() || !used.count(kw)) break;
    }
    if (kw.empty()) return {};
    used.insert(kw);
    query.push_back(std::move(kw));
  }
  return query;
}

std::vector<std::vector<std::string>> QuerySampler::SampleQueries(
    Rng* rng, size_t count, const std::vector<uint64_t>& target_frequencies,
    double tolerance) const {
  std::vector<std::vector<std::string>> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<std::string> q =
        SampleQuery(rng, target_frequencies, tolerance);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace xksearch
