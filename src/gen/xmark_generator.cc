#include "gen/xmark_generator.h"

#include <unordered_set>

#include "common/rng.h"

namespace xksearch {

namespace {

std::string BackgroundWord(size_t index) {
  return "x" + std::to_string(index);
}

std::vector<size_t> SampleWithoutReplacement(Rng* rng, size_t n,
                                             size_t count) {
  std::unordered_set<size_t> chosen;
  chosen.reserve(count);
  for (size_t j = n - count; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng->Uniform(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<size_t>(chosen.begin(), chosen.end());
}

}  // namespace

Result<Document> GenerateXmark(const XmarkOptions& options) {
  if (options.items == 0 || options.people == 0 || options.regions == 0) {
    return Status::InvalidArgument("items, people and regions must be > 0");
  }
  for (const PlantSpec& plant : options.plants) {
    if (plant.frequency > options.items) {
      return Status::InvalidArgument(
          "planted frequency for '" + plant.name + "' exceeds item count");
    }
    if (!plant.name.empty() && plant.name[0] == 'x') {
      return Status::InvalidArgument(
          "planted keyword '" + plant.name +
          "' collides with the background vocabulary (reserved prefix 'x')");
    }
  }

  Rng rng(options.seed);

  std::vector<std::vector<const std::string*>> plants_per_item(options.items);
  for (const PlantSpec& plant : options.plants) {
    for (size_t item : SampleWithoutReplacement(
             &rng, options.items, static_cast<size_t>(plant.frequency))) {
      plants_per_item[item].push_back(&plant.name);
    }
  }

  Document doc;
  const NodeId site = doc.CreateRoot("site");

  auto random_text = [&](NodeId parent, size_t words) {
    std::string text;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) text += ' ';
      text += BackgroundWord(rng.Uniform(options.vocab_size));
    }
    doc.AppendText(parent, text);
  };

  // People.
  const NodeId people = doc.AppendElement(site, "people");
  for (size_t p = 0; p < options.people; ++p) {
    const NodeId person = doc.AppendElement(people, "person");
    doc.AddAttribute(person, "id", "person" + std::to_string(p));
    random_text(doc.AppendElement(person, "name"), 2);
    random_text(doc.AppendElement(person, "emailaddress"), 1);
    if (rng.Bernoulli(0.4)) {
      const NodeId address = doc.AppendElement(person, "address");
      random_text(doc.AppendElement(address, "street"), 2);
      random_text(doc.AppendElement(address, "city"), 1);
      random_text(doc.AppendElement(address, "country"), 1);
    }
  }

  // Regions hold the items; auctions reference them below.
  const NodeId regions = doc.AppendElement(site, "regions");
  std::vector<NodeId> region_nodes;
  static const char* const kRegions[] = {"africa",   "asia",   "australia",
                                         "europe",   "namerica", "samerica"};
  for (size_t r = 0; r < options.regions; ++r) {
    region_nodes.push_back(doc.AppendElement(
        regions, kRegions[r % (sizeof(kRegions) / sizeof(kRegions[0]))]));
  }

  // Recursively nested description markup — the XMark parlist shape.
  // Plants a keyword at a random level when `plant` is non-null.
  struct DescriptionBuilder {
    Document& doc;
    Rng& rng;
    const XmarkOptions& options;

    void Build(NodeId parent, uint32_t depth,
               const std::vector<const std::string*>* plants) {
      if (depth == 0) {
        std::string text;
        const size_t words = 2 + rng.Uniform(5);
        for (size_t w = 0; w < words; ++w) {
          if (w > 0) text += ' ';
          text += BackgroundWord(rng.Uniform(options.vocab_size));
        }
        if (plants != nullptr) {
          for (const std::string* plant : *plants) {
            text += ' ';
            text += *plant;
          }
        }
        doc.AppendText(parent, text);
        return;
      }
      const NodeId parlist = doc.AppendElement(parent, "parlist");
      const size_t listitems = 1 + rng.Uniform(2);
      // The plants ride down exactly one branch so each occurs once.
      const size_t planted_branch = rng.Uniform(listitems);
      for (size_t i = 0; i < listitems; ++i) {
        const NodeId listitem = doc.AppendElement(parlist, "listitem");
        Build(listitem, depth - 1,
              i == planted_branch ? plants : nullptr);
      }
    }
  };
  DescriptionBuilder description{doc, rng, options};

  for (size_t i = 0; i < options.items; ++i) {
    const NodeId region = region_nodes[rng.Uniform(region_nodes.size())];
    const NodeId item = doc.AppendElement(region, "item");
    doc.AddAttribute(item, "id", "item" + std::to_string(i));
    random_text(doc.AppendElement(item, "name"), 2);
    const NodeId desc = doc.AppendElement(item, "description");
    const uint32_t depth =
        options.description_depth == 0
            ? 0
            : static_cast<uint32_t>(rng.Uniform(options.description_depth + 1));
    description.Build(desc, depth, &plants_per_item[i]);
  }

  // Auctions referencing items and people.
  const NodeId open = doc.AppendElement(site, "open_auctions");
  const NodeId closed = doc.AppendElement(site, "closed_auctions");
  for (size_t i = 0; i < options.items; ++i) {
    const bool is_open = i % 2 == 0;
    const NodeId auction =
        doc.AppendElement(is_open ? open : closed,
                          is_open ? "open_auction" : "closed_auction");
    const NodeId ref = doc.AppendElement(auction, "itemref");
    doc.AddAttribute(ref, "item", "item" + std::to_string(i));
    const NodeId seller = doc.AppendElement(auction, "seller");
    doc.AddAttribute(
        seller, "person",
        "person" + std::to_string(rng.Uniform(options.people)));
    doc.AppendText(doc.AppendElement(auction, "price"),
                   std::to_string(1 + rng.Uniform(1000)));
  }

  return doc;
}

}  // namespace xksearch
