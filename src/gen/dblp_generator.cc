#include "gen/dblp_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace xksearch {

namespace {

// Background word: "t<index>". Planted keywords must not collide.
std::string BackgroundWord(size_t index) { return "t" + std::to_string(index); }

/// Samples `count` distinct values from [0, n) (Floyd's algorithm).
std::vector<size_t> SampleWithoutReplacement(Rng* rng, size_t n, size_t count) {
  std::unordered_set<size_t> chosen;
  chosen.reserve(count);
  for (size_t j = n - count; j < n; ++j) {
    const size_t t = static_cast<size_t>(rng->Uniform(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<size_t>(chosen.begin(), chosen.end());
}

/// Draws background word indexes; Zipf-distributed via inverse-CDF
/// lookup when an exponent is set, uniform otherwise.
class WordSampler {
 public:
  WordSampler(size_t vocab_size, double zipf_exponent)
      : vocab_size_(vocab_size) {
    if (zipf_exponent > 0) {
      cdf_.reserve(vocab_size);
      double total = 0;
      for (size_t i = 1; i <= vocab_size; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i), zipf_exponent);
        cdf_.push_back(total);
      }
    }
  }

  size_t Draw(Rng* rng) const {
    if (cdf_.empty()) return static_cast<size_t>(rng->Uniform(vocab_size_));
    const double u = rng->UniformDouble() * cdf_.back();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  size_t vocab_size_;
  std::vector<double> cdf_;
};

}  // namespace

Result<Document> GenerateDblp(const DblpOptions& options) {
  if (options.papers == 0 || options.venues == 0 ||
      options.years_per_venue == 0) {
    return Status::InvalidArgument("papers, venues and years must be > 0");
  }
  for (const PlantSpec& plant : options.plants) {
    if (plant.frequency > options.papers) {
      return Status::InvalidArgument(
          "planted frequency " + std::to_string(plant.frequency) +
          " for '" + plant.name + "' exceeds paper count " +
          std::to_string(options.papers));
    }
    if (!plant.name.empty() && plant.name[0] == 't') {
      return Status::InvalidArgument(
          "planted keyword '" + plant.name +
          "' collides with the background vocabulary (reserved prefix 't')");
    }
  }

  Rng rng(options.seed);
  const WordSampler sampler(options.vocab_size, options.zipf_exponent);

  // Decide which papers carry which planted keywords.
  std::vector<std::vector<const std::string*>> plants_per_paper(
      options.papers);
  for (const PlantSpec& plant : options.plants) {
    for (size_t paper : SampleWithoutReplacement(
             &rng, options.papers, static_cast<size_t>(plant.frequency))) {
      plants_per_paper[paper].push_back(&plant.name);
    }
  }

  Document doc;
  const NodeId root = doc.CreateRoot("dblp");

  const size_t groups = options.venues * options.years_per_venue;
  const size_t per_group = (options.papers + groups - 1) / groups;

  size_t paper_index = 0;
  for (size_t v = 0; v < options.venues && paper_index < options.papers; ++v) {
    const NodeId venue =
        doc.AppendElement(root, v % 2 == 0 ? "journal" : "conference");
    doc.AppendText(doc.AppendElement(venue, "name"),
                   "venue" + std::to_string(v));
    for (size_t y = 0;
         y < options.years_per_venue && paper_index < options.papers; ++y) {
      const NodeId year = doc.AppendElement(venue, "year");
      doc.AddAttribute(year, "value", std::to_string(1970 + y));
      for (size_t p = 0; p < per_group && paper_index < options.papers;
           ++p, ++paper_index) {
        const NodeId paper = doc.AppendElement(
            year, paper_index % 3 == 0 ? "article" : "inproceedings");

        std::string title;
        const size_t words = 3 + rng.Uniform(5);
        for (size_t w = 0; w < words; ++w) {
          if (w > 0) title += ' ';
          title += BackgroundWord(sampler.Draw(&rng));
        }
        for (const std::string* plant : plants_per_paper[paper_index]) {
          title += ' ';
          title += *plant;
        }
        doc.AppendText(doc.AppendElement(paper, "title"), title);

        const size_t authors = 1 + rng.Uniform(3);
        for (size_t a = 0; a < authors; ++a) {
          doc.AppendText(
              doc.AppendElement(paper, "author"),
              BackgroundWord(sampler.Draw(&rng)) + " " +
                  BackgroundWord(sampler.Draw(&rng)));
        }
        doc.AppendText(doc.AppendElement(paper, "pages"),
                       std::to_string(1 + rng.Uniform(400)));
      }
    }
  }
  return doc;
}

}  // namespace xksearch
