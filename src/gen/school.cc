#include "gen/school.h"

#include "xml/parser.h"

namespace xksearch {

Document BuildSchoolDocument() {
  Document doc;
  const NodeId school = doc.CreateRoot("school");

  // Classes.
  const NodeId classes = doc.AppendElement(school, "classes");

  const NodeId cs2a = doc.AppendElement(classes, "class");
  doc.AppendText(doc.AppendElement(cs2a, "name"), "CS2A");
  doc.AppendText(doc.AppendElement(cs2a, "instructor"), "John");
  doc.AppendText(doc.AppendElement(cs2a, "ta"), "Ben");

  const NodeId cs3a = doc.AppendElement(classes, "class");
  doc.AppendText(doc.AppendElement(cs3a, "name"), "CS3A");
  doc.AppendText(doc.AppendElement(cs3a, "lecturer"), "John");
  const NodeId students = doc.AppendElement(cs3a, "students");
  doc.AppendText(doc.AppendElement(students, "student"), "Ben");
  doc.AppendText(doc.AppendElement(students, "student"), "Mary");

  const NodeId cs4 = doc.AppendElement(classes, "class");
  doc.AppendText(doc.AppendElement(cs4, "name"), "CS4");
  doc.AppendText(doc.AppendElement(cs4, "instructor"), "Sam");
  doc.AppendText(doc.AppendElement(cs4, "ta"), "Frank");

  // Sports: both John and Ben play on the baseball team.
  const NodeId sports = doc.AppendElement(school, "sports");
  const NodeId baseball = doc.AppendElement(sports, "team");
  doc.AppendText(doc.AppendElement(baseball, "name"), "baseball");
  const NodeId players = doc.AppendElement(baseball, "players");
  doc.AppendText(doc.AppendElement(players, "player"), "John");
  doc.AppendText(doc.AppendElement(players, "player"), "Ben");
  const NodeId soccer = doc.AppendElement(sports, "team");
  doc.AppendText(doc.AppendElement(soccer, "name"), "soccer");
  doc.AppendText(doc.AppendElement(doc.AppendElement(soccer, "players"),
                                   "player"),
                 "Mary");

  // Projects mentioning only one of the two, as distractors.
  const NodeId projects = doc.AppendElement(school, "projects");
  const NodeId p1 = doc.AppendElement(projects, "project");
  doc.AppendText(doc.AppendElement(p1, "title"), "Robotics");
  doc.AppendText(doc.AppendElement(p1, "lead"), "John");
  const NodeId p2 = doc.AppendElement(projects, "project");
  doc.AppendText(doc.AppendElement(p2, "title"), "Gardening");
  doc.AppendText(doc.AppendElement(p2, "lead"), "Frank");

  return doc;
}

std::string SchoolXml() { return SerializeXml(BuildSchoolDocument(), true); }

}  // namespace xksearch
