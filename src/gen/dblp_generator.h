#ifndef XKSEARCH_GEN_DBLP_GENERATOR_H_
#define XKSEARCH_GEN_DBLP_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace xksearch {

/// \brief A keyword to plant with an exact frequency.
///
/// The paper's experiments are parameterized purely by keyword-list
/// frequencies (10 ... 100,000); planting lets a synthetic corpus hit
/// those frequencies exactly. Each planted occurrence is appended to one
/// randomly chosen paper's title text, so the keyword list of `name` has
/// exactly `frequency` nodes (a node mentioning the keyword twice would
/// still index once, but papers are sampled without replacement).
struct PlantSpec {
  std::string name;
  uint64_t frequency;
};

/// \brief Parameters of the DBLP-shaped corpus.
///
/// Shape matches the paper's preprocessed DBLP data: papers grouped first
/// by journal/conference, then by year (Section 6). Depth is root ->
/// venue -> year -> paper -> field -> text = 6 levels, a shallow tree
/// like real DBLP.
struct DblpOptions {
  /// Total paper entries; must be >= every planted frequency.
  size_t papers = 10000;
  size_t venues = 20;
  /// Years per venue; papers are spread uniformly over venue/year groups.
  size_t years_per_venue = 10;
  /// Background vocabulary size for titles and author names.
  size_t vocab_size = 2000;
  /// Zipf exponent for background word frequencies; 0 = uniform. Real
  /// text is Zipfian (s around 1), which gives the corpus a natural
  /// long-tailed frequency table for the query sampler to draw from.
  double zipf_exponent = 0.0;
  uint64_t seed = 42;
  std::vector<PlantSpec> plants;
};

/// \brief Generates the corpus. Fails if a planted frequency exceeds the
/// paper count or a planted name collides with the background vocabulary.
Result<Document> GenerateDblp(const DblpOptions& options);

}  // namespace xksearch

#endif  // XKSEARCH_GEN_DBLP_GENERATOR_H_
