#include "dewey/packed_list.h"

#include <cassert>

#include "common/bitio.h"

namespace xksearch {

bool PackedDeweyList::Append(const DeweyId& id) {
  assert(!id.empty() && "cannot store the empty super-root id");
  const DeweyView v = id.view();
  const DeweyView prev(prev_.data(), prev_.size());
  if (size_ != 0) {
    const int order = prev.Compare(v);
    assert(order <= 0 && "PackedDeweyList requires nondecreasing appends");
    if (order == 0) return false;  // dedupe
  }

  size_t shared;
  if (size_ % block_size_ == 0) {
    // Block boundary: store the id in full and decode it eagerly into
    // the skip table so block search never touches the arena.
    assert(arena_.size() <= 0xffffffffull && firsts_.size() <= 0xffffffffull);
    blocks_.push_back(BlockRef{static_cast<uint32_t>(arena_.size()),
                               static_cast<uint32_t>(firsts_.size()),
                               static_cast<uint32_t>(v.depth())});
    firsts_.insert(firsts_.end(), v.data(), v.data() + v.depth());
    shared = 0;
  } else {
    shared = prev.CommonPrefixLength(v);
  }

  PutVarint32(&arena_, static_cast<uint32_t>(shared));
  PutVarint32(&arena_, static_cast<uint32_t>(v.depth() - shared));
  for (size_t i = shared; i < v.depth(); ++i) {
    PutVarint32(&arena_, v.component(i));
  }

  prev_.assign(v.data(), v.data() + v.depth());
  ++size_;
  return true;
}

void PackedDeweyList::DecodeEntry(size_t* pos,
                                  std::vector<uint32_t>* comps) const {
  uint32_t shared = 0;
  uint32_t added = 0;
  bool ok = GetVarint32(arena_.data(), arena_.size(), pos, &shared) &&
            GetVarint32(arena_.data(), arena_.size(), pos, &added);
  assert(ok && shared <= comps->size());
  comps->resize(shared);
  for (uint32_t i = 0; i < added; ++i) {
    uint32_t c = 0;
    ok = GetVarint32(arena_.data(), arena_.size(), pos, &c);
    assert(ok);
    comps->push_back(c);
  }
  (void)ok;
}

void PackedDeweyList::LoadBlockFirst(size_t b, Probe* probe) const {
  size_t pos = blocks_[b].arena_off;
  probe->cur_.clear();  // block firsts have shared = 0
  DecodeEntry(&pos, &probe->cur_);
  probe->block_ = b;
  probe->index_ = b * block_size_;
  probe->next_byte_ = pos;
  probe->at_end_ = false;
  probe->valid_ = true;
}

PackedDeweyList::SeekResult PackedDeweyList::ScanBlockFrom(
    DeweyView v, size_t b, size_t start, size_t pos, Probe* probe,
    uint64_t* cmp_count) const {
  // Precondition: probe->cur_ holds entry b*block_size_ + start, which
  // compares < v; `pos` is the arena offset just past its encoding.
  const size_t count = EntriesInBlock(b);
  size_t in_block = start;
  while (in_block + 1 < count) {
    probe->pred_.assign(probe->cur_.begin(), probe->cur_.end());
    probe->pred_valid_ = true;
    DecodeEntry(&pos, &probe->cur_);
    ++probe->index_;
    ++in_block;
    const int c =
        DeweyView(probe->cur_.data(), probe->cur_.size()).Compare(v, cmp_count);
    if (c >= 0) {
      probe->next_byte_ = pos;
      return SeekResult{true, c == 0, true};
    }
  }
  // Every entry of block b from `start` on is < v.
  probe->pred_.assign(probe->cur_.begin(), probe->cur_.end());
  probe->pred_valid_ = true;
  if (b + 1 == blocks_.size()) {
    // End of list: remember the last entry as the predecessor of the
    // (virtual) end position so hinted probes can keep answering.
    probe->index_ = size_;
    probe->at_end_ = true;
    return SeekResult{false, false, true};
  }
  // The caller guarantees first(b + 1) > v (cold binary search picked b
  // as the last block with first <= v; the gallop picks b the same way),
  // so the next block's first entry is the lower bound.
  LoadBlockFirst(b + 1, probe);
  return SeekResult{true, false, true};
}

PackedDeweyList::SeekResult PackedDeweyList::SeekCold(
    DeweyView v, Probe* probe, uint64_t* cmp_count) const {
  if (size_ == 0) {
    probe->valid_ = false;
    return SeekResult{};
  }
  // First block whose first entry is > v.
  size_t lo = 0;
  size_t hi = blocks_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BlockFirst(mid).Compare(v, cmp_count) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    // Even the very first entry is > v.
    LoadBlockFirst(0, probe);
    probe->pred_valid_ = false;
    return SeekResult{true, false, false};
  }
  const size_t b = lo - 1;  // last block with first <= v
  LoadBlockFirst(b, probe);
  probe->pred_valid_ = false;
  const int c =
      DeweyView(probe->cur_.data(), probe->cur_.size()).Compare(v, cmp_count);
  if (c == 0) return SeekResult{true, true, false};
  return ScanBlockFrom(v, b, 0, probe->next_byte_, probe, cmp_count);
}

PackedDeweyList::SeekResult PackedDeweyList::Seek(DeweyView v, bool hinted,
                                                  Probe* probe,
                                                  uint64_t* cmp_count) const {
  if (!hinted || !probe->valid_) return SeekCold(v, probe, cmp_count);

  if (probe->at_end_) {
    // Every entry was < the previous target; pred_ is the list's last id.
    if (DeweyView(probe->pred_.data(), probe->pred_.size())
            .Compare(v, cmp_count) < 0) {
      return SeekResult{false, false, true};
    }
    return SeekCold(v, probe, cmp_count);  // target regressed
  }

  const int c =
      DeweyView(probe->cur_.data(), probe->cur_.size()).Compare(v, cmp_count);
  if (c == 0) {
    // Exact hit on the hinted position; lm = rm = v, no predecessor
    // needed.
    return SeekResult{true, true, probe->pred_valid_};
  }
  if (c > 0) {
    // The hinted entry is past v. It is still the lower bound iff its
    // predecessor is < v; otherwise the target regressed and the cold
    // search takes over.
    if (probe->index_ == 0) return SeekResult{true, false, false};
    if (probe->pred_valid_ &&
        DeweyView(probe->pred_.data(), probe->pred_.size())
                .Compare(v, cmp_count) < 0) {
      return SeekResult{true, false, true};
    }
    return SeekCold(v, probe, cmp_count);
  }

  // cur_ < v: gallop forward. First finish the current block.
  {
    const size_t start = probe->index_ - probe->block_ * block_size_;
    const size_t count = EntriesInBlock(probe->block_);
    size_t pos = probe->next_byte_;
    size_t in_block = start;
    while (in_block + 1 < count) {
      probe->pred_.assign(probe->cur_.begin(), probe->cur_.end());
      probe->pred_valid_ = true;
      DecodeEntry(&pos, &probe->cur_);
      ++probe->index_;
      ++in_block;
      const int ci = DeweyView(probe->cur_.data(), probe->cur_.size())
                         .Compare(v, cmp_count);
      if (ci >= 0) {
        probe->next_byte_ = pos;
        return SeekResult{true, ci == 0, true};
      }
    }
    probe->next_byte_ = pos;
  }
  // Current block exhausted below v; its last entry is the predecessor
  // so far.
  probe->pred_.assign(probe->cur_.begin(), probe->cur_.end());
  probe->pred_valid_ = true;
  const size_t b = probe->block_;
  if (b + 1 == blocks_.size()) {
    probe->index_ = size_;
    probe->at_end_ = true;
    return SeekResult{false, false, true};
  }
  if (BlockFirst(b + 1).Compare(v, cmp_count) > 0) {
    LoadBlockFirst(b + 1, probe);
    return SeekResult{true, false, true};
  }
  // Exponential search over block firsts for the last block with
  // first <= v, then binary search inside the bracketed range.
  size_t low = b + 1;  // first(low) <= v
  size_t step = 1;
  while (low + step < blocks_.size() &&
         BlockFirst(low + step).Compare(v, cmp_count) <= 0) {
    low += step;
    step *= 2;
  }
  size_t l = low + 1;
  size_t h = low + step < blocks_.size() ? low + step : blocks_.size();
  while (l < h) {
    const size_t mid = (l + h) / 2;
    if (BlockFirst(mid).Compare(v, cmp_count) <= 0) {
      l = mid + 1;
    } else {
      h = mid;
    }
  }
  const size_t target = l - 1;  // last block with first <= v
  LoadBlockFirst(target, probe);
  probe->pred_valid_ = false;
  const int ct =
      DeweyView(probe->cur_.data(), probe->cur_.size()).Compare(v, cmp_count);
  if (ct == 0) return SeekResult{true, true, false};
  return ScanBlockFrom(v, target, 0, probe->next_byte_, probe, cmp_count);
}

PackedDeweyList::Decoder::Decoder(const PackedDeweyList* list,
                                  size_t start_block)
    : list_(list) {
  if (start_block >= list->blocks_.size()) {
    index_ = list->size_;  // exhausted
    pos_ = list->arena_.size();
  } else {
    pos_ = list->blocks_[start_block].arena_off;
    index_ = start_block * list->block_size_;
  }
}

bool PackedDeweyList::Decoder::NextView(DeweyView* out) {
  if (index_ >= list_->size_) return false;
  list_->DecodeEntry(&pos_, &comps_);
  ++index_;
  *out = DeweyView(comps_.data(), comps_.size());
  return true;
}

std::vector<DeweyId> PackedDeweyList::Materialize() const {
  std::vector<DeweyId> out;
  out.reserve(size_);
  Decoder decoder(this);
  DeweyId id;
  while (decoder.Next(&id)) out.push_back(std::move(id));
  return out;
}

}  // namespace xksearch
