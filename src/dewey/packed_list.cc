#include "dewey/packed_list.h"

#include <algorithm>
#include <cassert>

#include "common/bitio.h"

namespace xksearch {

bool PackedDeweyList::Append(const DeweyId& id) {
  assert(!id.empty() && "cannot store the empty super-root id");
  const DeweyView v = id.view();
  const DeweyView prev(prev_.data(), prev_.size());
  if (size_ != 0) {
    const int order = prev.Compare(v);
    assert(order <= 0 && "PackedDeweyList requires nondecreasing appends");
    if (order == 0) return false;  // dedupe
  }

  size_t shared;
  if (size_ % block_size_ == 0) {
    // Block boundary: store the id in full and decode it eagerly into
    // the skip table so block search never touches the arena.
    assert(arena_.size() <= 0xffffffffull && firsts_.size() <= 0xffffffffull);
    blocks_.push_back(BlockRef{static_cast<uint32_t>(arena_.size()),
                               static_cast<uint32_t>(firsts_.size()),
                               static_cast<uint32_t>(v.depth())});
    firsts_.insert(firsts_.end(), v.data(), v.data() + v.depth());
    shared = 0;
  } else {
    shared = prev.CommonPrefixLength(v);
  }

  PutVarint32(&arena_, static_cast<uint32_t>(shared));
  PutVarint32(&arena_, static_cast<uint32_t>(v.depth() - shared));
  for (size_t i = shared; i < v.depth(); ++i) {
    PutVarint32(&arena_, v.component(i));
  }

  prev_.assign(v.data(), v.data() + v.depth());
  ++size_;
  return true;
}

void PackedDeweyList::DecodeBlockInto(size_t b, DecodedBlock* out) const {
  out->Clear();
  size_t pos = blocks_[b].arena_off;
  const Status status = DecodeBlock(arena_.data(), arena_.size(), &pos,
                                    EntriesInBlock(b), nullptr, 0, out);
  assert(status.ok() && out->count() == EntriesInBlock(b) &&
         "packed arena is trusted in-process input");
  (void)status;
}

void PackedDeweyList::LoadBlock(size_t b, Probe* probe) const {
  if (probe->loaded_list_ == this && probe->block_ == b) return;
  DecodeBlockInto(b, &probe->buf_);
  probe->loaded_list_ = this;
  probe->block_ = b;
}

void PackedDeweyList::LoadBlockFirst(size_t b, Probe* probe) const {
  LoadBlock(b, probe);
  probe->in_block_ = 0;
  probe->index_ = b * block_size_;
  probe->at_end_ = false;
  probe->valid_ = true;
}

PackedDeweyList::SeekResult PackedDeweyList::ScanBlockFrom(
    DeweyView v, size_t b, size_t start, Probe* probe,
    uint64_t* cmp_count) const {
  // Precondition: probe->buf_ holds block b decoded and its entry
  // `start` compares < v.
  const size_t count = EntriesInBlock(b);
  size_t i = start;
  while (i + 1 < count) {
    ++i;
    const int c = probe->buf_.entry(i).Compare(v, cmp_count);
    if (c >= 0) {
      SetPred(probe->buf_.entry(i - 1), probe);
      probe->in_block_ = i;
      probe->index_ = b * block_size_ + i;
      return SeekResult{true, c == 0, true};
    }
  }
  // Every entry of block b from `start` on is < v.
  SetPred(probe->buf_.entry(count - 1), probe);
  if (b + 1 == blocks_.size()) {
    // End of list: remember the last entry as the predecessor of the
    // (virtual) end position so hinted probes can keep answering.
    probe->index_ = size_;
    probe->at_end_ = true;
    return SeekResult{false, false, true};
  }
  // The caller guarantees first(b + 1) > v (cold binary search picked b
  // as the last block with first <= v; the gallop picks b the same way),
  // so the next block's first entry is the lower bound.
  LoadBlockFirst(b + 1, probe);
  return SeekResult{true, false, true};
}

PackedDeweyList::SeekResult PackedDeweyList::SeekCold(
    DeweyView v, Probe* probe, uint64_t* cmp_count) const {
  if (size_ == 0) {
    probe->valid_ = false;
    return SeekResult{};
  }
  // First block whose first entry is > v.
  size_t lo = 0;
  size_t hi = blocks_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (BlockFirst(mid).Compare(v, cmp_count) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    // Even the very first entry is > v.
    LoadBlockFirst(0, probe);
    probe->pred_valid_ = false;
    return SeekResult{true, false, false};
  }
  const size_t b = lo - 1;  // last block with first <= v
  LoadBlockFirst(b, probe);
  probe->pred_valid_ = false;
  const int c = probe->buf_.entry(0).Compare(v, cmp_count);
  if (c == 0) return SeekResult{true, true, false};
  return ScanBlockFrom(v, b, 0, probe, cmp_count);
}

PackedDeweyList::SeekResult PackedDeweyList::Seek(DeweyView v, bool hinted,
                                                  Probe* probe,
                                                  uint64_t* cmp_count) const {
  // A probe that last served a different list carries a foreign hint
  // (and a foreign decoded block); start cold.
  if (probe->loaded_list_ != this) probe->valid_ = false;
  if (!hinted || !probe->valid_) return SeekCold(v, probe, cmp_count);

  if (probe->at_end_) {
    // Every entry was < the previous target; pred_ is the list's last id.
    if (DeweyView(probe->pred_.data(), probe->pred_.size())
            .Compare(v, cmp_count) < 0) {
      return SeekResult{false, false, true};
    }
    return SeekCold(v, probe, cmp_count);  // target regressed
  }

  const int c = probe->buf_.entry(probe->in_block_).Compare(v, cmp_count);
  if (c == 0) {
    // Exact hit on the hinted position; lm = rm = v, no predecessor
    // needed.
    return SeekResult{true, true, probe->pred_valid_};
  }
  if (c > 0) {
    // The hinted entry is past v. It is still the lower bound iff its
    // predecessor is < v; otherwise the target regressed and the cold
    // search takes over.
    if (probe->index_ == 0) return SeekResult{true, false, false};
    if (probe->pred_valid_ &&
        DeweyView(probe->pred_.data(), probe->pred_.size())
                .Compare(v, cmp_count) < 0) {
      return SeekResult{true, false, true};
    }
    return SeekCold(v, probe, cmp_count);
  }

  // The current entry is < v: gallop forward. First finish the current
  // block (already decoded — this is the hot near-sequential case).
  {
    const size_t count = EntriesInBlock(probe->block_);
    size_t i = probe->in_block_;
    while (i + 1 < count) {
      ++i;
      const int ci = probe->buf_.entry(i).Compare(v, cmp_count);
      if (ci >= 0) {
        SetPred(probe->buf_.entry(i - 1), probe);
        probe->in_block_ = i;
        probe->index_ = probe->block_ * block_size_ + i;
        return SeekResult{true, ci == 0, true};
      }
    }
    // Current block exhausted below v; its last entry is the predecessor
    // so far.
    SetPred(probe->buf_.entry(count - 1), probe);
  }
  const size_t b = probe->block_;
  if (b + 1 == blocks_.size()) {
    probe->index_ = size_;
    probe->at_end_ = true;
    return SeekResult{false, false, true};
  }
  if (BlockFirst(b + 1).Compare(v, cmp_count) > 0) {
    LoadBlockFirst(b + 1, probe);
    return SeekResult{true, false, true};
  }
  // Exponential search over block firsts for the last block with
  // first <= v, then binary search inside the bracketed range.
  size_t low = b + 1;  // first(low) <= v
  size_t step = 1;
  while (low + step < blocks_.size() &&
         BlockFirst(low + step).Compare(v, cmp_count) <= 0) {
    low += step;
    step *= 2;
  }
  size_t l = low + 1;
  size_t h = low + step < blocks_.size() ? low + step : blocks_.size();
  while (l < h) {
    const size_t mid = (l + h) / 2;
    if (BlockFirst(mid).Compare(v, cmp_count) <= 0) {
      l = mid + 1;
    } else {
      h = mid;
    }
  }
  const size_t target = l - 1;  // last block with first <= v
  LoadBlockFirst(target, probe);
  probe->pred_valid_ = false;
  const int ct = probe->buf_.entry(0).Compare(v, cmp_count);
  if (ct == 0) return SeekResult{true, true, false};
  return ScanBlockFrom(v, target, 0, probe, cmp_count);
}

size_t PackedDeweyList::Decoder::DecodeRunInto(DecodedBlock* out,
                                               size_t max_entries) {
  if (max_entries == 0) return 0;
  if (buf_pos_ >= buf_.count()) {
    if (block_ >= list_->block_count()) {
      out->Clear();
      return 0;
    }
    if (max_entries >= list_->block_entries(block_)) {
      // Whole-block run: kernel-decode straight into the caller's arena.
      list_->DecodeBlockInto(block_++, out);
      return out->count();
    }
    list_->DecodeBlockInto(block_++, &buf_);
    buf_pos_ = 0;
  }
  out->Clear();
  const size_t n = std::min(max_entries, buf_.count() - buf_pos_);
  for (size_t i = 0; i < n; ++i) out->Append(buf_.entry(buf_pos_ + i));
  buf_pos_ += n;
  return n;
}

std::vector<DeweyId> PackedDeweyList::Materialize() const {
  std::vector<DeweyId> out;
  if (size_ == 0) return out;
  out.reserve(size_);
  // One whole-list batch decode; block firsts chain cleanly (shared = 0)
  // so the arena decodes end to end in a single kernel call. The
  // component arena is pre-sized from the skip table: the average
  // block-first depth is a good proxy for the average entry depth.
  DecodedBlock all;
  all.components.reserve(size_ * (firsts_.size() / blocks_.size() + 1));
  all.offsets.reserve(size_ + 1);
  size_t pos = 0;
  const Status status =
      DecodeBlock(arena_.data(), arena_.size(), &pos, size_, nullptr, 0, &all);
  assert(status.ok() && all.count() == size_ &&
         "packed arena is trusted in-process input");
  (void)status;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(DeweyId::FromView(all.entry(i)));
  }
  return out;
}

}  // namespace xksearch
