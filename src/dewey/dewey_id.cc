#include "dewey/dewey_id.h"

#include <algorithm>
#include <cassert>

namespace xksearch {

Result<DeweyId> DeweyId::Parse(const std::string& text) {
  if (text.empty()) return DeweyId();
  std::vector<uint32_t> comps;
  uint64_t cur = 0;
  bool have_digit = false;
  for (char ch : text) {
    if (ch >= '0' && ch <= '9') {
      cur = cur * 10 + static_cast<uint64_t>(ch - '0');
      if (cur > 0xffffffffull) {
        return Status::InvalidArgument("Dewey component overflows uint32: " +
                                       text);
      }
      have_digit = true;
    } else if (ch == '.') {
      if (!have_digit) {
        return Status::InvalidArgument("empty Dewey component in: " + text);
      }
      comps.push_back(static_cast<uint32_t>(cur));
      cur = 0;
      have_digit = false;
    } else {
      return Status::InvalidArgument(std::string("bad character '") + ch +
                                     "' in Dewey number: " + text);
    }
  }
  if (!have_digit) {
    return Status::InvalidArgument("trailing '.' in Dewey number: " + text);
  }
  comps.push_back(static_cast<uint32_t>(cur));
  return DeweyId(std::move(comps));
}

int DeweyId::Compare(const DeweyId& other, uint64_t* cmp_count) const {
  const size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (cmp_count != nullptr) ++*cmp_count;
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (cmp_count != nullptr) ++*cmp_count;
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  return components_.size() < other.components_.size() &&
         std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

bool DeweyId::IsAncestorOrSelf(const DeweyId& other) const {
  return components_.size() <= other.components_.size() &&
         std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

size_t DeweyId::CommonPrefixLength(const DeweyId& other) const {
  const size_t n = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < n && components_[i] == other.components_[i]) ++i;
  return i;
}

DeweyId DeweyId::Lca(const DeweyId& other) const {
  // One allocation total: the prefix is taken as a view and materialized
  // directly, never as an intermediate full-depth copy.
  return FromView(view().Prefix(view().CommonPrefixLength(other.view())));
}

DeweyId DeweyId::Parent() const {
  if (components_.empty()) return DeweyId();
  return Prefix(components_.size() - 1);
}

DeweyId DeweyId::Child(uint32_t ordinal) const {
  std::vector<uint32_t> comps = components_;
  comps.push_back(ordinal);
  return DeweyId(std::move(comps));
}

DeweyId DeweyId::NextSibling() const {
  assert(!components_.empty());
  std::vector<uint32_t> comps = components_;
  ++comps.back();
  return DeweyId(std::move(comps));
}

DeweyId DeweyId::Prefix(size_t n) const {
  assert(n <= components_.size());
  return FromView(view().Prefix(n));
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

const DeweyId& Deeper(const DeweyId& a, const DeweyId& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a.depth() >= b.depth() ? a : b;
}

}  // namespace xksearch
