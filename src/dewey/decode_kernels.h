#ifndef XKSEARCH_DEWEY_DECODE_KERNELS_H_
#define XKSEARCH_DEWEY_DECODE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dewey/dewey_id.h"

namespace xksearch {

/// \brief A batch of decoded Dewey ids in one flat arena.
///
/// `components` holds every entry's components back to back;
/// `offsets` brackets entry i as [offsets[i], offsets[i + 1]) (so it has
/// count() + 1 elements once non-empty). Both vectors keep their capacity
/// across Clear(), so a block cursor that reuses one DecodedBlock performs
/// zero per-entry heap allocation in steady state.
struct DecodedBlock {
  std::vector<uint32_t> components;
  std::vector<uint32_t> offsets;

  size_t count() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  bool empty() const { return count() == 0; }

  DeweyView entry(size_t i) const {
    return DeweyView(components.data() + offsets[i],
                     offsets[i + 1] - offsets[i]);
  }
  /// The last entry's components (the carry for decoding a continuation
  /// of the same delta stream).
  const uint32_t* last_data() const {
    return components.data() + offsets[offsets.size() - 2];
  }
  size_t last_len() const {
    return offsets[offsets.size() - 1] - offsets[offsets.size() - 2];
  }

  void Append(DeweyView v) {
    if (offsets.empty()) offsets.push_back(0);
    components.insert(components.end(), v.data(), v.data() + v.depth());
    offsets.push_back(static_cast<uint32_t>(components.size()));
  }

  void Clear() {
    components.clear();
    offsets.clear();
  }

  size_t memory_bytes() const {
    return components.capacity() * sizeof(uint32_t) +
           offsets.capacity() * sizeof(uint32_t);
  }
};

/// The batch decoders, from portable to widest. kScalar is the plain
/// byte loop; kSwar widens single-byte varint runs 8 at a time through a
/// uint64 load; kSse4/kAvx2 widen 16/32-byte runs with vector loads.
/// All four decode the identical wire format (the DeltaBlockEncoder /
/// PackedDeweyList entry encoding) and return bit-identical arenas.
enum class DecodeKernel : uint8_t { kScalar = 0, kSwar, kSse4, kAvx2 };

/// Human-readable kernel name ("scalar", "swar", "sse4", "avx2").
const char* DecodeKernelName(DecodeKernel kernel);

/// True when `kernel` was compiled in AND the running CPU supports it.
bool DecodeKernelAvailable(DecodeKernel kernel);

/// Every kernel usable on this machine, in ascending width order.
std::vector<DecodeKernel> AvailableDecodeKernels();

/// The kernel DecodeBlock dispatches to: the widest available one, or
/// kScalar when forced (ForceScalarDecode / XK_FORCE_SCALAR_DECODE=1).
DecodeKernel ActiveDecodeKernel();

/// Forces every subsequent DecodeBlock through the scalar kernel (CI on
/// AVX2 machines, differential fuzzing). Thread-safe; purely a
/// performance knob — results are identical either way.
void ForceScalarDecode(bool force);

/// \brief Decodes up to `max_entries` delta-encoded entries from
/// `data[*pos..size)` and appends them to `out`.
///
/// The wire format per entry is varint(shared) varint(added)
/// varint(component)*. The first decoded entry's shared prefix is taken
/// from `carry` (`carry_len` components — the entry preceding `*pos` in
/// the same stream, or empty at a block start); later entries chain off
/// the previous decoded entry inside `out`. `carry` must not alias
/// `out->components`.
///
/// Stops early at end of input (no error: a short block is the caller's
/// concern). On corruption returns the same Status messages as
/// DeltaBlockDecoder and never reads past `size`; `*pos` and `out` are
/// left at the last fully-decoded entry.
Status DecodeBlock(const uint8_t* data, size_t size, size_t* pos,
                   size_t max_entries, const uint32_t* carry, size_t carry_len,
                   DecodedBlock* out);

/// DecodeBlock through one specific kernel (tests, benchmarks). Returns
/// InvalidArgument when `kernel` is unavailable on this machine.
Status DecodeBlockWith(DecodeKernel kernel, const uint8_t* data, size_t size,
                       size_t* pos, size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out);

}  // namespace xksearch

#endif  // XKSEARCH_DEWEY_DECODE_KERNELS_H_
