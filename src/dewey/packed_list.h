#ifndef XKSEARCH_DEWEY_PACKED_LIST_H_
#define XKSEARCH_DEWEY_PACKED_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dewey/decode_kernels.h"
#include "dewey/dewey_id.h"

namespace xksearch {

/// \brief A sorted Dewey list stored as one contiguous prefix-truncated
/// arena — the in-memory counterpart of the paper's Section 4 compressed
/// posting blocks.
///
/// Layout: entries are appended in Dewey order as
///   varint(shared-prefix length) varint(#new components) varint(component)*
/// (the DeltaBlockEncoder wire format), partitioned into fixed-size
/// blocks of `block_size` entries. The first entry of every block is
/// stored in full (shared = 0) so blocks decode independently, and its
/// components are additionally decoded eagerly into a flat side arena —
/// the skip table — so locating a block is a branch-light binary search
/// over DeweyView comparisons with no decoding at all.
///
/// All decoding is block-at-a-time through the batch kernels
/// (decode_kernels.h): a whole block of entries lands in one reusable
/// DecodedBlock arena per call, instead of entry-at-a-time varint
/// cursors. The kernel is picked once at startup (scalar/SWAR/SSE4/AVX2
/// by cpuid); every kernel yields bit-identical arenas.
///
/// Probing (lm/rm) is: block binary search on the skip table, then a
/// forward scan over the decoded block. The hinted variant (Seek with
/// hinted = true) instead remembers the last probe position in the
/// caller's Probe and gallops forward from it — exponential search over
/// block-first ids, then the same in-block scan — exploiting the
/// nondecreasing-probe property of the eager SLCA chains, which turns
/// Indexed Lookup Eager's probe sequences near-sequential. A regressing
/// probe target is detected and falls back to the cold binary search, so
/// hinted results are identical for arbitrary targets.
///
/// All decode scratch lives in the caller-owned Probe (reused across
/// calls) and a probe keeps its current block decoded, so consecutive
/// seeks into the same block decode nothing and the hot match path
/// performs no per-id heap allocation.
///
/// Thread safety: a built (no longer appended-to) list is immutable and
/// may be probed from any number of threads, each with its own Probe.
class PackedDeweyList {
 public:
  static constexpr size_t kDefaultBlockSize = 32;

  explicit PackedDeweyList(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size == 0 ? 1 : block_size) {}

  /// Appends `id` (non-empty, >= the last appended id in Dewey order).
  /// Returns false (and appends nothing) when `id` equals the last
  /// appended id, which gives builders dedup for free.
  bool Append(const DeweyId& id);

  /// Number of entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  size_t block_size() const { return block_size_; }
  size_t block_count() const { return blocks_.size(); }

  /// The first entry of block `b`, as a view into the eagerly-decoded
  /// skip table (no arena access). Chunk planners partition a list at
  /// block boundaries with this, without decoding anything.
  DeweyView block_first(size_t b) const { return BlockFirst(b); }

  /// Entries in block `b` (block_size_ except possibly the last block).
  size_t block_entries(size_t b) const { return EntriesInBlock(b); }

  /// Bytes of the entry arena alone (the compression-ablation number).
  size_t arena_bytes() const { return arena_.size(); }

  /// Total resident bytes: arena + skip table + decoded block firsts.
  size_t memory_bytes() const {
    return arena_.capacity() * sizeof(uint8_t) +
           blocks_.capacity() * sizeof(BlockRef) +
           firsts_.capacity() * sizeof(uint32_t);
  }

  /// Batch-decodes block `b` into `out` (replacing its contents) through
  /// the active kernel. The arena is trusted in-process input, so decode
  /// failure is a logic error, not a Status.
  void DecodeBlockInto(size_t b, DecodedBlock* out) const;

  /// \brief Per-caller probe state: the decoded current block plus the
  /// gallop hint.
  ///
  /// One Probe serves any number of Seek calls against one list; its
  /// block arena grows once and is then reused, so steady-state probing
  /// allocates nothing, and consecutive seeks into one block share a
  /// single batch decode.
  class Probe {
   public:
    Probe() = default;

    /// Forgets the hint and the cached block; the next Seek runs the
    /// cold binary search and decodes afresh.
    void Reset() {
      valid_ = false;
      loaded_list_ = nullptr;
    }

   private:
    friend class PackedDeweyList;

    DecodedBlock buf_;            // decoded block block_
    std::vector<uint32_t> pred_;  // entry index_ - 1 (when pred_valid_)
    const PackedDeweyList* loaded_list_ = nullptr;  // owner of buf_
    bool valid_ = false;       // hint usable at all
    bool at_end_ = false;      // index_ == size(): every entry < target
    bool pred_valid_ = false;  // pred_ holds entry index_ - 1
    size_t index_ = 0;         // global entry index of the current entry
    size_t block_ = 0;         // block held in buf_
    size_t in_block_ = 0;      // current entry's position inside buf_
  };

  struct SeekResult {
    /// An entry >= v exists; lower_bound(probe) views it.
    bool has_lower_bound = false;
    /// The lower bound equals v (so lm(v) = rm(v) = v's entry).
    bool exact = false;
    /// predecessor(probe) views the greatest entry < v. Only guaranteed
    /// to be populated when `exact` is false (an exact hit never needs
    /// its predecessor: lm is the hit itself).
    bool has_predecessor = false;
  };

  /// Positions `probe` at the lower bound of `v` (the first entry >= v)
  /// and, when `exact` is false, at its predecessor. With `hinted` the
  /// search gallops forward from the probe's previous position when that
  /// is sound, falling back to the cold block binary search otherwise —
  /// the result is identical either way. Component comparisons are
  /// charged to `cmp_count` exactly like DeweyId::Compare.
  SeekResult Seek(DeweyView v, bool hinted, Probe* probe,
                  uint64_t* cmp_count = nullptr) const;

  /// Views into the probe's state after Seek; valid until the next Seek
  /// (or Reset) on that probe.
  DeweyView lower_bound(const Probe& probe) const {
    return probe.buf_.entry(probe.in_block_);
  }
  DeweyView predecessor(const Probe& probe) const {
    return DeweyView(probe.pred_.data(), probe.pred_.size());
  }

  /// \brief Forward-only decoder over the whole list (Scan-layout
  /// consumers, the disk-index builder, differential tests).
  ///
  /// Internally block-buffered: each refill batch-decodes one block, and
  /// DecodeRunInto exposes whole decoded blocks to callers that iterate
  /// arenas instead of entries.
  class Decoder {
   public:
    explicit Decoder(const PackedDeweyList* list) : Decoder(list, 0) {}

    /// Decoder positioned at the first entry of block `start_block`
    /// (chunked execution: each chunk decodes only its own block range).
    /// Block firsts are stored with no shared prefix, so decoding starts
    /// clean mid-list. `start_block` past the last block yields an
    /// immediately-exhausted decoder.
    Decoder(const PackedDeweyList* list, size_t start_block)
        : list_(list),
          block_(start_block < list->block_count() ? start_block
                                                   : list->block_count()) {}

    /// Decodes the next entry as a view into the internal block arena
    /// (valid until the next refill). Returns false at the end.
    bool NextView(DeweyView* out) {
      if (buf_pos_ >= buf_.count()) {
        if (block_ >= list_->block_count()) return false;
        list_->DecodeBlockInto(block_++, &buf_);
        buf_pos_ = 0;
      }
      *out = buf_.entry(buf_pos_++);
      return true;
    }

    /// Materializing variant; reuses `out`'s component capacity.
    bool Next(DeweyId* out) {
      DeweyView v;
      if (!NextView(&v)) return false;
      out->AssignFrom(v);
      return true;
    }

    /// Replaces `out` with the next run of up to `max_entries` decoded
    /// entries (at most one block per call) and returns how many it
    /// delivered; 0 means end of list. When the run aligns with a whole
    /// pending block it is kernel-decoded straight into `out`.
    size_t DecodeRunInto(DecodedBlock* out, size_t max_entries);

   private:
    const PackedDeweyList* list_;
    size_t block_ = 0;    // next block to decode
    size_t buf_pos_ = 0;  // next unconsumed entry in buf_
    DecodedBlock buf_;
  };

  /// Decodes the whole list into owning ids (tests, oracles). One batch
  /// decode into a skip-table-pre-sized arena, then materialization.
  std::vector<DeweyId> Materialize() const;

 private:
  struct BlockRef {
    uint32_t arena_off;  // where the block's first entry starts
    uint32_t first_off;  // offset of the first id's components in firsts_
    uint32_t first_len;  // its depth
  };

  DeweyView BlockFirst(size_t b) const {
    return DeweyView(firsts_.data() + blocks_[b].first_off,
                     blocks_[b].first_len);
  }
  size_t EntriesInBlock(size_t b) const {
    const size_t begin = b * block_size_;
    const size_t n = size_ - begin;
    return n < block_size_ ? n : block_size_;
  }

  /// Ensures `probe` holds block `b` decoded (batch decode on miss).
  void LoadBlock(size_t b, Probe* probe) const;

  /// Positions the probe on the first entry of block `b` (no compare).
  void LoadBlockFirst(size_t b, Probe* probe) const;

  /// Remembers `v` as the probe's predecessor entry.
  static void SetPred(DeweyView v, Probe* probe) {
    probe->pred_.assign(v.data(), v.data() + v.depth());
    probe->pred_valid_ = true;
  }

  /// Scans the decoded block `b` forward for the first entry >= v,
  /// starting at entry `start` within the block; on entry the probe's
  /// buf_ holds block b and entry `start` compares < v. Updates the
  /// probe and returns the seek outcome (possibly positioned at the
  /// first entry of block b + 1, or at the end of the list).
  SeekResult ScanBlockFrom(DeweyView v, size_t b, size_t start, Probe* probe,
                           uint64_t* cmp_count) const;

  /// Cold path: block binary search, then ScanBlockFrom.
  SeekResult SeekCold(DeweyView v, Probe* probe, uint64_t* cmp_count) const;

  size_t block_size_;
  size_t size_ = 0;
  std::vector<uint8_t> arena_;
  std::vector<BlockRef> blocks_;
  std::vector<uint32_t> firsts_;
  std::vector<uint32_t> prev_;  // last appended id (build side)
};

}  // namespace xksearch

#endif  // XKSEARCH_DEWEY_PACKED_LIST_H_
