// Shared outer loop for the batch decode kernels. Each kernel TU
// instantiates DecodeBlockLoop<K> with a policy struct whose only hook is
//
//   static size_t BulkSingles(const uint8_t* p, size_t n,
//                             uint32_t* dst, size_t want);
//
// decoding the leading run of single-byte varints (bytes < 0x80) from
// p[0..n), at most `want` of them, into dst — the part worth vectorizing.
// Headers, multi-byte components and every corruption check live here so
// all kernels share one (checked) control path and produce bit-identical
// arenas and errors.

#ifndef XKSEARCH_DEWEY_DECODE_KERNELS_IMPL_H_
#define XKSEARCH_DEWEY_DECODE_KERNELS_IMPL_H_

#include "common/bitio.h"
#include "dewey/decode_kernels.h"

namespace xksearch {
namespace decode_detail {

/// A shared-prefix run longer than this is treated as corruption (real
/// Dewey depths are tiny; a multi-megabyte `added` from a flipped bit
/// must not drive a giant allocation before the truncation check fires).
inline constexpr uint32_t kMaxComponentsPerEntry = 1u << 16;

template <typename Kernel>
Status DecodeBlockLoop(const uint8_t* data, size_t size, size_t* pos,
                       size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out) {
  std::vector<uint32_t>& comps = out->components;
  std::vector<uint32_t>& offsets = out->offsets;
  if (offsets.empty()) offsets.push_back(0);

  // Previous entry for prefix expansion: `carry` for the first decoded
  // entry, then the entry just appended to `comps` (tracked by index so
  // reallocation is harmless).
  bool prev_in_out = false;
  size_t prev_off = 0;
  size_t prev_len = carry_len;

  for (size_t produced = 0; produced < max_entries && *pos < size;
       ++produced) {
    const size_t entry_pos = *pos;
    const size_t entry_base = comps.size();
    uint32_t shared = 0;
    uint32_t added = 0;
    if (!GetVarint32(data, size, pos, &shared) ||
        !GetVarint32(data, size, pos, &added)) {
      *pos = entry_pos;
      return Status::Corruption("truncated delta block header");
    }
    if (shared > prev_len) {
      *pos = entry_pos;
      return Status::Corruption("delta block shared prefix exceeds previous");
    }
    if (shared + added == 0) {
      *pos = entry_pos;
      return Status::Corruption("empty Dewey id in delta block");
    }
    if (added > kMaxComponentsPerEntry) {
      *pos = entry_pos;
      return Status::Corruption("delta block component count exceeds bound");
    }

    comps.resize(entry_base + shared + added);
    const uint32_t* prev =
        prev_in_out ? comps.data() + prev_off : carry;
    uint32_t* dst = comps.data() + entry_base;
    for (size_t i = 0; i < shared; ++i) dst[i] = prev[i];
    dst += shared;

    size_t got = 0;
    while (got < added) {
      const size_t k =
          Kernel::BulkSingles(data + *pos, size - *pos, dst + got, added - got);
      *pos += k;
      got += k;
      if (got == added) break;
      uint32_t c = 0;
      if (!GetVarint32(data, size, pos, &c)) {
        comps.resize(entry_base);
        *pos = entry_pos;
        return Status::Corruption("truncated delta block component");
      }
      dst[got++] = c;
    }

    offsets.push_back(static_cast<uint32_t>(comps.size()));
    prev_in_out = true;
    prev_off = entry_base;
    prev_len = shared + added;
  }
  return Status::OK();
}

}  // namespace decode_detail
}  // namespace xksearch

#endif  // XKSEARCH_DEWEY_DECODE_KERNELS_IMPL_H_
