#include "dewey/decode_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "dewey/decode_kernels_impl.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define XKS_DECODE_X86 1
#else
#define XKS_DECODE_X86 0
#endif

namespace xksearch {

#if defined(XKS_DECODE_SSE4_TU)
Status DecodeBlockSse4(const uint8_t* data, size_t size, size_t* pos,
                       size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out);
#endif
#if defined(XKS_DECODE_AVX2_TU)
Status DecodeBlockAvx2(const uint8_t* data, size_t size, size_t* pos,
                       size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out);
#endif

namespace {

struct ScalarKernel {
  static size_t BulkSingles(const uint8_t* p, size_t n, uint32_t* dst,
                            size_t want) {
    const size_t lim = want < n ? want : n;
    size_t i = 0;
    while (i < lim && p[i] < 0x80) {
      dst[i] = p[i];
      ++i;
    }
    return i;
  }
};

struct SwarKernel {
  static size_t BulkSingles(const uint8_t* p, size_t n, uint32_t* dst,
                            size_t want) {
    const size_t lim = want < n ? want : n;
    size_t i = 0;
    while (i + 8 <= lim) {
      uint64_t w;
      std::memcpy(&w, p + i, 8);
      const uint64_t high = w & 0x8080808080808080ull;
      const size_t run =
          high == 0 ? 8 : static_cast<size_t>(__builtin_ctzll(high)) / 8;
      for (size_t j = 0; j < run; ++j) {
        dst[i + j] = static_cast<uint32_t>((w >> (8 * j)) & 0x7f);
      }
      i += run;
      if (run < 8) return i;  // hit a multi-byte lead; caller takes over
    }
    while (i < lim && p[i] < 0x80) {
      dst[i] = p[i];
      ++i;
    }
    return i;
  }
};

bool ForcedByEnv() {
  const char* value = std::getenv("XK_FORCE_SCALAR_DECODE");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

std::atomic<bool>& ForceFlag() {
  static std::atomic<bool> force{ForcedByEnv()};
  return force;
}

DecodeKernel BestKernel() {
#if XKS_DECODE_X86 && defined(XKS_DECODE_AVX2_TU)
  if (__builtin_cpu_supports("avx2")) return DecodeKernel::kAvx2;
#endif
#if XKS_DECODE_X86 && defined(XKS_DECODE_SSE4_TU)
  if (__builtin_cpu_supports("sse4.1")) return DecodeKernel::kSse4;
#endif
  return DecodeKernel::kSwar;
}

/// Resolved once; ForceScalarDecode overrides at call time, not here.
DecodeKernel DispatchedKernel() {
  static const DecodeKernel best = BestKernel();
  return best;
}

}  // namespace

const char* DecodeKernelName(DecodeKernel kernel) {
  switch (kernel) {
    case DecodeKernel::kScalar:
      return "scalar";
    case DecodeKernel::kSwar:
      return "swar";
    case DecodeKernel::kSse4:
      return "sse4";
    case DecodeKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool DecodeKernelAvailable(DecodeKernel kernel) {
  switch (kernel) {
    case DecodeKernel::kScalar:
    case DecodeKernel::kSwar:
      return true;
    case DecodeKernel::kSse4:
#if XKS_DECODE_X86 && defined(XKS_DECODE_SSE4_TU)
      return __builtin_cpu_supports("sse4.1");
#else
      return false;
#endif
    case DecodeKernel::kAvx2:
#if XKS_DECODE_X86 && defined(XKS_DECODE_AVX2_TU)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

std::vector<DecodeKernel> AvailableDecodeKernels() {
  std::vector<DecodeKernel> kernels;
  for (DecodeKernel k : {DecodeKernel::kScalar, DecodeKernel::kSwar,
                         DecodeKernel::kSse4, DecodeKernel::kAvx2}) {
    if (DecodeKernelAvailable(k)) kernels.push_back(k);
  }
  return kernels;
}

DecodeKernel ActiveDecodeKernel() {
  if (ForceFlag().load(std::memory_order_relaxed)) {
    return DecodeKernel::kScalar;
  }
  return DispatchedKernel();
}

void ForceScalarDecode(bool force) {
  ForceFlag().store(force, std::memory_order_relaxed);
}

Status DecodeBlockWith(DecodeKernel kernel, const uint8_t* data, size_t size,
                       size_t* pos, size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out) {
  switch (kernel) {
    case DecodeKernel::kScalar:
      return decode_detail::DecodeBlockLoop<ScalarKernel>(
          data, size, pos, max_entries, carry, carry_len, out);
    case DecodeKernel::kSwar:
      return decode_detail::DecodeBlockLoop<SwarKernel>(
          data, size, pos, max_entries, carry, carry_len, out);
    case DecodeKernel::kSse4:
#if defined(XKS_DECODE_SSE4_TU)
      if (DecodeKernelAvailable(DecodeKernel::kSse4)) {
        return DecodeBlockSse4(data, size, pos, max_entries, carry, carry_len,
                               out);
      }
#endif
      break;
    case DecodeKernel::kAvx2:
#if defined(XKS_DECODE_AVX2_TU)
      if (DecodeKernelAvailable(DecodeKernel::kAvx2)) {
        return DecodeBlockAvx2(data, size, pos, max_entries, carry, carry_len,
                               out);
      }
#endif
      break;
  }
  return Status::InvalidArgument(std::string("decode kernel unavailable: ") +
                                 DecodeKernelName(kernel));
}

Status DecodeBlock(const uint8_t* data, size_t size, size_t* pos,
                   size_t max_entries, const uint32_t* carry, size_t carry_len,
                   DecodedBlock* out) {
  return DecodeBlockWith(ActiveDecodeKernel(), data, size, pos, max_entries,
                         carry, carry_len, out);
}

}  // namespace xksearch
