// SSE4.1 batch varint widener. Compiled with -msse4.1 only on x86
// toolchains that accept the flag (see src/dewey/CMakeLists.txt); the
// dispatcher never calls in here unless cpuid reports sse4.1.

#include "dewey/decode_kernels_impl.h"

#if defined(XKS_DECODE_SSE4_TU)

#include <smmintrin.h>

namespace xksearch {
namespace {

struct Sse4Kernel {
  static size_t BulkSingles(const uint8_t* p, size_t n, uint32_t* dst,
                            size_t want) {
    const size_t lim = want < n ? want : n;
    size_t i = 0;
    while (i + 16 <= lim) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
      const int mask = _mm_movemask_epi8(bytes);
      const size_t run =
          mask == 0 ? 16
                    : static_cast<size_t>(
                          __builtin_ctz(static_cast<unsigned>(mask)));
      if (run == 16) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         _mm_cvtepu8_epi32(bytes));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 4),
                         _mm_cvtepu8_epi32(_mm_srli_si128(bytes, 4)));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 8),
                         _mm_cvtepu8_epi32(_mm_srli_si128(bytes, 8)));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 12),
                         _mm_cvtepu8_epi32(_mm_srli_si128(bytes, 12)));
        i += 16;
        continue;
      }
      for (size_t j = 0; j < run; ++j) dst[i + j] = p[i + j];
      return i + run;  // hit a multi-byte lead; caller takes over
    }
    while (i < lim && p[i] < 0x80) {
      dst[i] = p[i];
      ++i;
    }
    return i;
  }
};

}  // namespace

Status DecodeBlockSse4(const uint8_t* data, size_t size, size_t* pos,
                       size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out) {
  return decode_detail::DecodeBlockLoop<Sse4Kernel>(data, size, pos,
                                                    max_entries, carry,
                                                    carry_len, out);
}

}  // namespace xksearch

#endif  // XKS_DECODE_SSE4_TU
