// AVX2 batch varint widener. Compiled with -mavx2 only on x86 toolchains
// that accept the flag (see src/dewey/CMakeLists.txt); the dispatcher
// never calls in here unless cpuid reports avx2.

#include "dewey/decode_kernels_impl.h"

#if defined(XKS_DECODE_AVX2_TU)

#include <immintrin.h>

namespace xksearch {
namespace {

struct Avx2Kernel {
  static size_t BulkSingles(const uint8_t* p, size_t n, uint32_t* dst,
                            size_t want) {
    const size_t lim = want < n ? want : n;
    size_t i = 0;
    while (i + 32 <= lim) {
      const __m256i bytes =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      const uint32_t mask =
          static_cast<uint32_t>(_mm256_movemask_epi8(bytes));
      if (mask == 0) {
        const __m128i lo = _mm256_castsi256_si128(bytes);
        const __m128i hi = _mm256_extracti128_si256(bytes, 1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_cvtepu8_epi32(lo));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 8),
                            _mm256_cvtepu8_epi32(_mm_srli_si128(lo, 8)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 16),
                            _mm256_cvtepu8_epi32(hi));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 24),
                            _mm256_cvtepu8_epi32(_mm_srli_si128(hi, 8)));
        i += 32;
        continue;
      }
      const size_t run = static_cast<size_t>(__builtin_ctz(mask));
      for (size_t j = 0; j < run; ++j) dst[i + j] = p[i + j];
      return i + run;  // hit a multi-byte lead; caller takes over
    }
    while (i < lim && p[i] < 0x80) {
      dst[i] = p[i];
      ++i;
    }
    return i;
  }
};

}  // namespace

Status DecodeBlockAvx2(const uint8_t* data, size_t size, size_t* pos,
                       size_t max_entries, const uint32_t* carry,
                       size_t carry_len, DecodedBlock* out) {
  return decode_detail::DecodeBlockLoop<Avx2Kernel>(data, size, pos,
                                                    max_entries, carry,
                                                    carry_len, out);
}

}  // namespace xksearch

#endif  // XKS_DECODE_AVX2_TU
