#ifndef XKSEARCH_DEWEY_DEWEY_ID_H_
#define XKSEARCH_DEWEY_DEWEY_ID_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"

namespace xksearch {

/// \brief A non-owning view of a Dewey number: a span of components.
///
/// The hot match path (packed posting lists, block binary search, gallop
/// probes) compares ids that live inside a decode scratch buffer or a
/// flat skip-table arena; viewing them through DeweyView keeps every
/// comparison, common-prefix and ancestry check allocation-free — a
/// DeweyId (and its heap-owned component vector) is materialized only
/// for the one id a match operation actually returns.
class DeweyView {
 public:
  constexpr DeweyView() = default;
  constexpr DeweyView(const uint32_t* data, size_t size)
      : data_(data), size_(size) {}

  constexpr const uint32_t* data() const { return data_; }
  constexpr size_t depth() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr uint32_t component(size_t i) const { return data_[i]; }
  constexpr uint32_t back() const { return data_[size_ - 1]; }

  /// Three-way document-order comparison, charging one component
  /// comparison per step to `cmp_count` exactly like DeweyId::Compare.
  int Compare(DeweyView other, uint64_t* cmp_count = nullptr) const {
    const size_t n = size_ < other.size_ ? size_ : other.size_;
    for (size_t i = 0; i < n; ++i) {
      if (cmp_count != nullptr) ++*cmp_count;
      if (data_[i] != other.data_[i]) {
        return data_[i] < other.data_[i] ? -1 : 1;
      }
    }
    if (cmp_count != nullptr) ++*cmp_count;
    if (size_ == other.size_) return 0;
    return size_ < other.size_ ? -1 : 1;
  }

  size_t CommonPrefixLength(DeweyView other) const {
    const size_t n = size_ < other.size_ ? size_ : other.size_;
    size_t i = 0;
    while (i < n && data_[i] == other.data_[i]) ++i;
    return i;
  }

  bool IsAncestorOrSelf(DeweyView other) const {
    if (size_ > other.size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if (data_[i] != other.data_[i]) return false;
    }
    return true;
  }

  /// First `n` components (n <= depth()); still non-owning.
  constexpr DeweyView Prefix(size_t n) const { return DeweyView(data_, n); }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief A Dewey number identifying a node in a labeled ordered tree.
///
/// The Dewey number of a node is the Dewey number of its parent followed by
/// the node's ordinal among its siblings; the root of a document is `0`.
/// Dewey order is document (preorder) order: component-wise numeric
/// comparison with a proper prefix ordering before its extensions, e.g.
/// 0.1 < 0.1.0 < 0.1.1 < 0.2 (paper Section 2).
///
/// The empty Dewey number is valid and acts as a virtual super-root: it is
/// an ancestor of every id and the identity element of Lca().
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}
  DeweyId(std::initializer_list<uint32_t> components)
      : components_(components) {}

  /// The document root, Dewey number "0".
  static DeweyId Root() { return DeweyId({0}); }

  /// Parses "0.1.12" (or "" for the empty id). Rejects malformed input.
  static Result<DeweyId> Parse(const std::string& text);

  /// Materializes a view into an owning id (the one allocation a packed
  /// match operation pays, for the id it returns).
  static DeweyId FromView(DeweyView view) {
    return DeweyId(
        std::vector<uint32_t>(view.data(), view.data() + view.depth()));
  }

  /// Copies a view's components into this id, reusing the existing
  /// component buffer's capacity. The match loops return each result
  /// through a caller-reused DeweyId, so this (not FromView) keeps the
  /// steady-state match path entirely allocation-free.
  void AssignFrom(DeweyView view) {
    components_.assign(view.data(), view.data() + view.depth());
  }

  /// Non-owning view of the components; valid while *this is alive and
  /// unmodified.
  DeweyView view() const {
    return DeweyView(components_.data(), components_.size());
  }

  const std::vector<uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  uint32_t component(size_t i) const { return components_[i]; }
  uint32_t back() const { return components_.back(); }

  /// Three-way document-order comparison: negative if *this precedes
  /// `other`, 0 if equal, positive otherwise. If `cmp_count` is non-null it
  /// is incremented by the number of component comparisons performed, which
  /// is how the paper charges O(d) per Dewey comparison.
  int Compare(const DeweyId& other, uint64_t* cmp_count = nullptr) const;

  /// True iff *this is an ancestor of `other` (proper prefix).
  bool IsAncestorOf(const DeweyId& other) const;
  /// True iff *this is `other` or an ancestor of it (paper's `<=a`).
  bool IsAncestorOrSelf(const DeweyId& other) const;

  /// Lowest common ancestor: the longest common prefix (paper Section 2).
  DeweyId Lca(const DeweyId& other) const;

  /// Number of leading components shared with `other`.
  size_t CommonPrefixLength(const DeweyId& other) const;

  /// Parent id; the empty id's parent is itself (empty).
  DeweyId Parent() const;

  /// Id of the `ordinal`-th child.
  DeweyId Child(uint32_t ordinal) const;

  /// The immediate next sibling (last component + 1); the paper's "uncle"
  /// construction uses this to bound the right part of a subtree.
  /// Precondition: non-empty.
  DeweyId NextSibling() const;

  /// Truncates to the first `n` components (n <= depth()).
  DeweyId Prefix(size_t n) const;

  /// "0.1.12"; empty id renders as "".
  std::string ToString() const;

  friend bool operator==(const DeweyId& a, const DeweyId& b) {
    return a.components_ == b.components_;
  }
  friend bool operator!=(const DeweyId& a, const DeweyId& b) {
    return !(a == b);
  }
  friend bool operator<(const DeweyId& a, const DeweyId& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const DeweyId& a, const DeweyId& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const DeweyId& a, const DeweyId& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const DeweyId& a, const DeweyId& b) {
    return a.Compare(b) >= 0;
  }

  struct Hash {
    size_t operator()(const DeweyId& id) const {
      size_t h = 0x811c9dc5;
      for (uint32_t c : id.components_) {
        h ^= c;
        h *= 0x01000193;
        h ^= h >> 17;
      }
      return h;
    }
  };

 private:
  std::vector<uint32_t> components_;
};

/// Returns the deeper of two ids; by the paper's `d(u, v)` convention, if
/// one argument is the empty ("null") id the other is returned, and if the
/// two ids are on an ancestor-descendant line the descendant is returned.
/// The arguments produced by SLCA chains always satisfy one of these cases;
/// for incomparable ids of equal depth the first argument is returned.
const DeweyId& Deeper(const DeweyId& a, const DeweyId& b);

}  // namespace xksearch

#endif  // XKSEARCH_DEWEY_DEWEY_ID_H_
