#ifndef XKSEARCH_DEWEY_CODEC_H_
#define XKSEARCH_DEWEY_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dewey/dewey_id.h"

namespace xksearch {

/// \brief Per-level bit widths for Dewey compression (paper Section 4).
///
/// Entry `l` is the number of bits needed to store the `l`-th component of
/// any Dewey number in the document, i.e. ceil(log2(maxChildren(l-1)+...)):
/// the width of the maximum ordinal occurring at level `l`. The root is at
/// level 0 and its component is always 0, so `bits[0]` is usually 0.
class LevelTable {
 public:
  LevelTable() = default;
  explicit LevelTable(std::vector<uint8_t> bits) : bits_(std::move(bits)) {}

  /// Incrementally accounts for one id during index construction.
  void Observe(const DeweyId& id);

  /// Width for level `l`; levels beyond the observed depth get 32 bits so
  /// codecs remain safe on unseen-depth ids.
  int BitsAt(size_t level) const {
    return level < bits_.size() ? bits_[level] : 32;
  }

  size_t depth() const { return bits_.size(); }
  const std::vector<uint8_t>& bits() const { return bits_; }

  /// Total bits for a full-depth Dewey number (sum of widths).
  size_t TotalBits() const;

  /// Serialization for persisting alongside the index.
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Result<LevelTable> DecodeFrom(const uint8_t* data, size_t size,
                                       size_t* pos);

  std::string ToString() const;

 private:
  std::vector<uint8_t> bits_;
};

/// \brief Order-preserving compressed encoding of Dewey numbers.
///
/// Each component is written with its level-table width followed by a
/// 1-bit continuation flag (1 = another component follows). The padding is
/// zero bits, which makes plain lexicographic byte comparison of two
/// encodings agree with Dewey document order — the property the Indexed
/// Lookup B+tree relies on for its (keyword, dewey) composite keys.
class DeweyCodec {
 public:
  explicit DeweyCodec(LevelTable table) : table_(std::move(table)) {}

  /// Encodes `id` (must be non-empty; the empty super-root is never stored).
  std::vector<uint8_t> Encode(const DeweyId& id) const;

  /// True iff every component of `id` fits its level width, i.e. the
  /// encoding is lossless and decodes back to `id`. Probe ids may be
  /// lossy (saturated, order-preserving); ids that are *stored* must
  /// pass this check — incremental updates reject ids outside the level
  /// table rather than silently colliding.
  bool CanEncode(const DeweyId& id) const;

  /// Appends the encoding of `id` to `out`.
  void EncodeTo(const DeweyId& id, std::vector<uint8_t>* out) const;

  Result<DeweyId> Decode(const uint8_t* data, size_t size) const;
  Result<DeweyId> Decode(const std::vector<uint8_t>& data) const {
    return Decode(data.data(), data.size());
  }

  const LevelTable& level_table() const { return table_; }

 private:
  LevelTable table_;
};

/// \brief Delta codec for sorted runs of Dewey ids (posting blocks).
///
/// The first id of a block is stored in full; each subsequent id is stored
/// as (shared-prefix length, number of new components, the new components),
/// all varint. Consecutive ids in document order share long prefixes, so
/// this is compact and decodes strictly forward — exactly what the Scan
/// Eager and Stack algorithms need.
class DeltaBlockEncoder {
 public:
  /// With `delta` false every id is stored in full (shared prefix forced
  /// to zero) — the uncompressed baseline for the compression ablation.
  explicit DeltaBlockEncoder(bool delta = true) : delta_(delta) {}

  /// Appends `id` (must be >= the previously appended id in Dewey order).
  void Append(const DeweyId& id);

  size_t count() const { return count_; }
  size_t SizeBytes() const { return buf_.size(); }

  /// Returns the encoded block and resets the encoder.
  std::vector<uint8_t> Finish();

 private:
  bool delta_;
  std::vector<uint8_t> buf_;
  DeweyId prev_;
  size_t count_ = 0;
};

/// \brief Forward-only decoder for DeltaBlockEncoder output.
class DeltaBlockDecoder {
 public:
  DeltaBlockDecoder(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit DeltaBlockDecoder(const std::vector<uint8_t>& data)
      : DeltaBlockDecoder(data.data(), data.size()) {}

  /// Decodes the next id into `*id`. Returns false at end of block;
  /// `status()` distinguishes clean end from corruption.
  bool Next(DeweyId* id);

  const Status& status() const { return status_; }
  bool AtEnd() const { return pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  std::vector<uint32_t> prev_;
  bool first_ = true;
  Status status_;
};

}  // namespace xksearch

#endif  // XKSEARCH_DEWEY_CODEC_H_
