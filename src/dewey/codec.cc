#include "dewey/codec.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitio.h"

namespace xksearch {

namespace {

// Width in bits of the value `v` (0 -> 0 bits).
int BitWidth(uint32_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace

void LevelTable::Observe(const DeweyId& id) {
  if (id.depth() > bits_.size()) bits_.resize(id.depth(), 0);
  for (size_t l = 0; l < id.depth(); ++l) {
    // One spare bit beyond the observed maximum: the all-ones value of the
    // resulting width is then strictly greater than every stored
    // component, so the codec can saturate out-of-range probe components
    // (e.g. Section 5's "uncle" ids) without breaking key order.
    const int w = std::min(BitWidth(id.component(l)) + 1, 32);
    if (w > bits_[l]) bits_[l] = static_cast<uint8_t>(w);
  }
}

size_t LevelTable::TotalBits() const {
  size_t total = 0;
  for (uint8_t b : bits_) total += b;
  return total;
}

void LevelTable::EncodeTo(std::vector<uint8_t>* out) const {
  PutVarint32(out, static_cast<uint32_t>(bits_.size()));
  out->insert(out->end(), bits_.begin(), bits_.end());
}

Result<LevelTable> LevelTable::DecodeFrom(const uint8_t* data, size_t size,
                                          size_t* pos) {
  uint32_t n = 0;
  if (!GetVarint32(data, size, pos, &n)) {
    return Status::Corruption("truncated level table header");
  }
  if (*pos + n > size) {
    return Status::Corruption("truncated level table body");
  }
  std::vector<uint8_t> bits(data + *pos, data + *pos + n);
  for (uint8_t b : bits) {
    if (b > 32) return Status::Corruption("level table width > 32");
  }
  *pos += n;
  return LevelTable(std::move(bits));
}

std::string LevelTable::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < bits_.size(); ++i) {
    if (i > 0) os << ",";
    os << static_cast<int>(bits_[i]);
  }
  os << "]";
  return os.str();
}

std::vector<uint8_t> DeweyCodec::Encode(const DeweyId& id) const {
  std::vector<uint8_t> out;
  EncodeTo(id, &out);
  return out;
}

void DeweyCodec::EncodeTo(const DeweyId& id, std::vector<uint8_t>* out) const {
  assert(!id.empty() && "cannot encode the empty super-root id");
  BitWriter writer;
  for (size_t l = 0; l < id.depth(); ++l) {
    const int width = table_.BitsAt(l);
    // Saturate components that exceed the level width. Stored document
    // ids always fit (the table observed them); only probe ids built by
    // the query engine (uncles, arbitrary rm targets) can overflow, and
    // the all-ones value sorts strictly after every stored component, so
    // lower/upper-bound probes stay correct.
    const uint32_t cap =
        width >= 32 ? 0xffffffffu : (uint32_t{1} << width) - 1;
    writer.WriteBits(std::min(id.component(l), cap), width);
    writer.WriteBits(l + 1 < id.depth() ? 1 : 0, 1);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

bool DeweyCodec::CanEncode(const DeweyId& id) const {
  if (id.empty()) return false;
  for (size_t l = 0; l < id.depth(); ++l) {
    const int width = table_.BitsAt(l);
    if (width >= 32) continue;
    if (id.component(l) >= (uint32_t{1} << width)) return false;
  }
  return true;
}

Result<DeweyId> DeweyCodec::Decode(const uint8_t* data, size_t size) const {
  BitReader reader(data, size);
  std::vector<uint32_t> comps;
  for (size_t l = 0;; ++l) {
    const int width = table_.BitsAt(l);
    if (reader.Remaining() < static_cast<size_t>(width) + 1) {
      return Status::Corruption("truncated compressed Dewey number");
    }
    comps.push_back(reader.ReadBits(width));
    if (reader.ReadBits(1) == 0) break;
  }
  return DeweyId(std::move(comps));
}

void DeltaBlockEncoder::Append(const DeweyId& id) {
  assert(!id.empty());
  assert(count_ == 0 || prev_.Compare(id) <= 0);
  const size_t shared =
      (count_ == 0 || !delta_) ? 0 : prev_.CommonPrefixLength(id);
  PutVarint32(&buf_, static_cast<uint32_t>(shared));
  PutVarint32(&buf_, static_cast<uint32_t>(id.depth() - shared));
  for (size_t i = shared; i < id.depth(); ++i) {
    PutVarint32(&buf_, id.component(i));
  }
  prev_ = id;
  ++count_;
}

std::vector<uint8_t> DeltaBlockEncoder::Finish() {
  prev_ = DeweyId();
  count_ = 0;
  return std::move(buf_);
}

bool DeltaBlockDecoder::Next(DeweyId* id) {
  if (pos_ >= size_) return false;
  uint32_t shared = 0;
  uint32_t added = 0;
  if (!GetVarint32(data_, size_, &pos_, &shared) ||
      !GetVarint32(data_, size_, &pos_, &added)) {
    status_ = Status::Corruption("truncated delta block header");
    return false;
  }
  if (first_ && shared != 0) {
    status_ = Status::Corruption("first id of delta block has shared prefix");
    return false;
  }
  if (shared > prev_.size()) {
    status_ = Status::Corruption("delta block shared prefix exceeds previous");
    return false;
  }
  prev_.resize(shared);
  for (uint32_t i = 0; i < added; ++i) {
    uint32_t c = 0;
    if (!GetVarint32(data_, size_, &pos_, &c)) {
      status_ = Status::Corruption("truncated delta block component");
      return false;
    }
    prev_.push_back(c);
  }
  if (prev_.empty()) {
    status_ = Status::Corruption("empty Dewey id in delta block");
    return false;
  }
  first_ = false;
  *id = DeweyId(prev_);
  return true;
}

}  // namespace xksearch
