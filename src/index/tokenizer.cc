#include "index/tokenizer.h"

#include <cctype>

namespace xksearch {

namespace {

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char Fold(char c, bool lowercase) {
  return lowercase ? static_cast<char>(
                         std::tolower(static_cast<unsigned char>(c)))
                   : c;
}

}  // namespace

void TokenizeTo(std::string_view text, const TokenizerOptions& options,
                const std::function<void(std::string_view)>& emit) {
  std::string token;
  auto flush = [&]() {
    if (token.size() >= options.min_length) emit(token);
    token.clear();
  };
  for (char c : text) {
    if (IsTokenChar(c)) {
      token += Fold(c, options.lowercase);
    } else if (!token.empty()) {
      flush();
    }
  }
  if (!token.empty()) flush();
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> out;
  TokenizeTo(text, options,
             [&](std::string_view tok) { out.emplace_back(tok); });
  return out;
}

std::string NormalizeKeyword(std::string_view word,
                             const TokenizerOptions& options) {
  std::string out;
  for (char c : word) {
    if (IsTokenChar(c)) out += Fold(c, options.lowercase);
  }
  if (out.size() < options.min_length) out.clear();
  return out;
}

}  // namespace xksearch
