#ifndef XKSEARCH_INDEX_TOKENIZER_H_
#define XKSEARCH_INDEX_TOKENIZER_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace xksearch {

/// \brief Options controlling keyword extraction.
struct TokenizerOptions {
  /// Fold tokens to lowercase (keyword search is case-insensitive).
  bool lowercase = true;
  /// Tokens shorter than this are dropped (0 keeps everything).
  size_t min_length = 1;
};

/// \brief Splits `text` into keyword tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else is
/// a separator. This matches what a keyword-search system indexes from
/// element content ("Yu Xu" -> {"yu", "xu"}).
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// \brief Streaming variant: invokes `emit` for each token without
/// materializing a vector. Used by the index builder on large documents.
void TokenizeTo(std::string_view text, const TokenizerOptions& options,
                const std::function<void(std::string_view)>& emit);

/// \brief Normalizes a single query keyword the same way the indexer
/// normalizes document tokens (lowercase if enabled). Returns the empty
/// string when `word` contains no alphanumeric characters.
std::string NormalizeKeyword(std::string_view word,
                             const TokenizerOptions& options = {});

}  // namespace xksearch

#endif  // XKSEARCH_INDEX_TOKENIZER_H_
