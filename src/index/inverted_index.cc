#include "index/inverted_index.h"

#include <algorithm>
#include <cassert>

namespace xksearch {

InvertedIndex InvertedIndex::Build(const Document& doc,
                                   const IndexOptions& options) {
  InvertedIndex index;
  index.options_ = options;
  if (doc.empty()) return index;

  // Iterative preorder walk so document depth cannot overflow the stack.
  // Children are pushed in reverse so they pop in document order, which
  // keeps every keyword list sorted without a final sort pass.
  std::vector<NodeId> stack = {doc.root()};
  std::vector<std::string> node_terms;  // scratch, deduplicated per node
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    const DeweyId id = doc.DeweyOf(n);
    index.level_table_.Observe(id);

    node_terms.clear();
    auto collect = [&](std::string_view tok) {
      node_terms.emplace_back(tok);
    };
    if (doc.IsText(n)) {
      TokenizeTo(doc.text(n), options.tokenizer, collect);
    } else {
      if (options.index_tags) {
        TokenizeTo(doc.tag(n), options.tokenizer, collect);
      }
      if (options.index_attributes || options.index_attribute_names) {
        for (const auto& [name, value] : doc.attributes(n)) {
          if (options.index_attribute_names) {
            TokenizeTo(name, options.tokenizer, collect);
          }
          if (options.index_attributes) {
            TokenizeTo(value, options.tokenizer, collect);
          }
        }
      }
      const auto& kids = doc.children(n);
      for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
    }

    // A node that mentions a keyword twice still appears once in its list.
    std::sort(node_terms.begin(), node_terms.end());
    node_terms.erase(std::unique(node_terms.begin(), node_terms.end()),
                     node_terms.end());
    for (const std::string& term : node_terms) {
      index.AddPosting(term, id);
    }
  }
  return index;
}

const PackedDeweyList* InvertedIndex::Find(std::string_view keyword) const {
  auto it = term_ids_.find(keyword);
  if (it == term_ids_.end()) return nullptr;
  return &lists_[it->second];
}

std::vector<DeweyId> InvertedIndex::Materialize(
    std::string_view keyword) const {
  const PackedDeweyList* list = Find(keyword);
  return list == nullptr ? std::vector<DeweyId>{} : list->Materialize();
}

size_t InvertedIndex::Frequency(std::string_view keyword) const {
  const PackedDeweyList* list = Find(keyword);
  return list == nullptr ? 0 : list->size();
}

void InvertedIndex::AddPosting(std::string_view keyword, const DeweyId& id) {
  level_table_.Observe(id);
  auto it = term_ids_.find(keyword);
  uint32_t term;
  if (it == term_ids_.end()) {
    term = static_cast<uint32_t>(lists_.size());
    term_ids_.emplace(std::string(keyword), term);
    lists_.emplace_back();
  } else {
    term = it->second;
  }
  // Append enforces nondecreasing order and dedupes equal ids.
  if (lists_[term].Append(id)) ++total_postings_;
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  out.reserve(term_ids_.size());
  for (const auto& [term, id] : term_ids_) out.push_back(term);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xksearch
