#ifndef XKSEARCH_INDEX_INVERTED_INDEX_H_
#define XKSEARCH_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dewey/codec.h"
#include "dewey/dewey_id.h"
#include "dewey/packed_list.h"
#include "index/tokenizer.h"
#include "xml/document.h"

namespace xksearch {

/// \brief Which document parts contribute keywords.
struct IndexOptions {
  TokenizerOptions tokenizer;
  /// Index element tag names (so "title" finds <title> elements).
  bool index_tags = true;
  /// Index attribute values, attributed to the owning element.
  bool index_attributes = true;
  /// Index attribute names as well as values.
  bool index_attribute_names = false;
};

/// \brief In-memory inverted keyword index: keyword -> sorted Dewey list.
///
/// This is the paper's set `S_i` machinery: for every keyword `w`, the
/// keyword list of `w` is the list of nodes whose label directly contains
/// `w`, sorted by id (Section 2). Text tokens are attributed to the text
/// node itself; tag and attribute keywords to the element node. Building
/// walks the document in preorder, so lists come out sorted for free.
///
/// Postings are stored as PackedDeweyLists — one contiguous
/// prefix-truncated arena per keyword with a skip table for block binary
/// search — rather than `std::vector<DeweyId>`, so neither index build
/// nor the lm/rm hot path pays a heap allocation per posting. Callers
/// that need owning ids (tests, oracles) use Materialize().
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Builds the index over `doc`. Also derives the level table used by the
  /// Dewey compression codec (paper Figure 6's LevelTableBuilder).
  static InvertedIndex Build(const Document& doc,
                             const IndexOptions& options = {});

  /// The packed keyword list of `keyword` (already normalized), or
  /// nullptr if the keyword does not occur in the document.
  const PackedDeweyList* Find(std::string_view keyword) const;

  /// The keyword list decoded into owning ids (empty for unknown
  /// keywords). For oracles, tests and the vector-layout escape hatch;
  /// the query hot path probes the packed list directly.
  std::vector<DeweyId> Materialize(std::string_view keyword) const;

  /// List size, i.e. the keyword frequency; 0 for unknown keywords.
  /// This is the paper's frequency table, used to pick the smallest list.
  size_t Frequency(std::string_view keyword) const;

  /// Adds a (keyword, node id) posting directly; used by synthetic
  /// workload generators that plant keywords without document text.
  /// Postings for one keyword must be added in nondecreasing Dewey order.
  void AddPosting(std::string_view keyword, const DeweyId& id);

  /// Number of distinct keywords.
  size_t term_count() const { return lists_.size(); }

  /// Sum of all list sizes.
  size_t total_postings() const { return total_postings_; }

  /// All keywords, sorted lexicographically (materialized per call).
  std::vector<std::string> Terms() const;

  /// Level table derived from all observed node ids.
  const LevelTable& level_table() const { return level_table_; }

  /// The options the index was built with (tokenizer normalization in
  /// particular); queries must normalize keywords the same way.
  const IndexOptions& options() const { return options_; }

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct TransparentEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, uint32_t, TransparentHash, TransparentEq>
      term_ids_;
  std::vector<PackedDeweyList> lists_;
  LevelTable level_table_;
  size_t total_postings_ = 0;
  IndexOptions options_;
};

}  // namespace xksearch

#endif  // XKSEARCH_INDEX_INVERTED_INDEX_H_
