// Shard-count sweep over the sharded collection layer: one closed-loop
// client runs a fixed query pool through ScatterGatherExecutor at shard
// counts 1..8 over the same multi-document DBLP corpus, in two regimes:
//
//   hot   per-shard pools sized to hold both trees, warmed before the
//         sweep: every fetch hits, so the curve isolates fan-out /
//         gather overhead — more shards must not cost throughput when
//         the data is resident.
//   cold  deliberately tiny per-shard pools, a steady-state miss
//         stream: each shard reads a 1/N slice of the corpus in
//         parallel, so latency per query must drop (and qps rise) as
//         shards are added — the scatter-gather analogue of the paper's
//         cold-cache figures.
//
// A final routed section queries each document's planted unique keyword
// ("only<d>"): the Bloom-plus-frequency router must execute exactly one
// shard and prune the rest, demonstrating that keyword-absent shards
// never pay for a query.
//
// Standalone binary (like bench_parallel_cold), not a google-benchmark
// harness: it needs per-configuration collection builds. Prints a table
// plus one JSON line per configuration for tools/bench_to_csv.py.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gen/query_sampler.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_collection.h"

namespace xksearch {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  /// Documents in the corpus; each gets its own seed and one planted
  /// document-unique keyword "only<d>" for the routed section.
  size_t docs = 8;
  /// Papers per document (not total).
  size_t papers = 4000;
  std::vector<size_t> shard_list = {1, 2, 4, 8};
  size_t pool_queries = 128;
  /// Passes over the query pool per configuration.
  size_t rounds = 3;
  /// Frames per pool per shard in the cold regime.
  size_t cold_pool_pages = 64;
  /// Executor threads; 0 = min(shards, hardware).
  size_t workers = 0;
};

Result<std::unique_ptr<shard::ShardedCollection>> BuildCollection(
    const std::vector<Document>& corpus, size_t shards, bool disk, bool hot,
    const Config& config) {
  shard::ShardedCollectionOptions sco;
  sco.shards = shards;
  sco.build.build_disk_index = disk;
  if (disk) {
    sco.build.disk.in_memory = true;  // page-identical to files, no FS noise
    const size_t pages = hot ? size_t{1} << 18 : config.cold_pool_pages;
    sco.build.disk.il_pool_pages = pages;
    sco.build.disk.scan_pool_pages = pages;
  }
  shard::ShardedCollection::Builder builder(std::move(sco));
  for (size_t d = 0; d < corpus.size(); ++d) {
    XKS_RETURN_NOT_OK(
        builder.Add("doc" + std::to_string(d), corpus[d].Clone()));
  }
  return std::move(builder).Build();
}

std::vector<std::vector<std::string>> BuildQueryPool(
    const shard::ShardedCollection& merged, const Config& config) {
  // Sample from the 1-shard build's merged index so every configuration
  // sees the identical pool over the identical corpus.
  QuerySampler sampler(merged.shard_engine(0)->index());
  Rng rng(4242);
  // Two-keyword queries, one low- and one high-frequency target scaled
  // to the corpus (the paper's classic asymmetric-frequency shape).
  const uint64_t corpus_papers =
      static_cast<uint64_t>(config.docs * config.papers);
  const std::vector<uint64_t> targets{
      std::max<uint64_t>(2, corpus_papers / 100),
      std::max<uint64_t>(8, corpus_papers / 10)};
  std::vector<std::vector<std::string>> usable;
  std::set<std::vector<std::string>> seen;
  for (int attempt = 0; attempt < 64 && usable.size() < config.pool_queries;
       ++attempt) {
    std::vector<std::vector<std::string>> batch = sampler.SampleQueries(
        &rng, config.pool_queries, targets, /*tolerance=*/0.9);
    for (auto& query : batch) {
      if (query.empty() || usable.size() >= config.pool_queries) continue;
      std::vector<std::string> canonical = query;
      std::sort(canonical.begin(), canonical.end());
      if (seen.insert(std::move(canonical)).second) {
        usable.push_back(std::move(query));
      }
    }
  }
  return usable;
}

uint64_t ParseU64(const char* text) {
  return static_cast<uint64_t>(std::strtoull(text, nullptr, 10));
}

std::vector<size_t> ParseList(const char* text) {
  std::vector<size_t> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) {
        out.push_back(static_cast<size_t>(ParseU64(item.c_str())));
      }
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--docs=")) {
      config.docs = ParseU64(v);
    } else if (const char* v = value("--papers=")) {
      config.papers = ParseU64(v);
    } else if (const char* v = value("--shards=")) {
      config.shard_list = ParseList(v);
    } else if (const char* v = value("--pool-queries=")) {
      config.pool_queries = ParseU64(v);
    } else if (const char* v = value("--rounds=")) {
      config.rounds = ParseU64(v);
    } else if (const char* v = value("--cold-pool-pages=")) {
      config.cold_pool_pages = ParseU64(v);
    } else if (const char* v = value("--workers=")) {
      config.workers = ParseU64(v);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --docs= --papers= --shards=l "
                   "--pool-queries= --rounds= --cold-pool-pages= "
                   "--workers=\n",
                   arg);
      return 2;
    }
  }

  // Corpus: docs documents, distinct seeds (so vocab overlaps but
  // frequencies differ per document) and one unique plant each.
  std::fprintf(stderr, "generating %zu documents x %zu papers...\n",
               config.docs, config.papers);
  std::vector<Document> corpus;
  for (size_t d = 0; d < config.docs; ++d) {
    DblpOptions gen;
    gen.papers = config.papers;
    gen.seed = 1234 + d;
    gen.zipf_exponent = 1.0;
    gen.plants.push_back(
        {"only" + std::to_string(d),
         std::min<uint64_t>(8, static_cast<uint64_t>(config.papers))});
    Result<Document> doc = GenerateDblp(gen);
    if (!doc.ok()) {
      std::fprintf(stderr, "gen: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    corpus.push_back(doc.MoveValueUnsafe());
  }

  // Memory-only 1-shard build = the merged corpus, used for sampling.
  Result<std::unique_ptr<shard::ShardedCollection>> merged =
      BuildCollection(corpus, 1, /*disk=*/false, /*hot=*/false, config);
  if (!merged.ok()) {
    std::fprintf(stderr, "build: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::vector<std::string>> queries =
      BuildQueryPool(**merged, config);
  if (queries.empty()) {
    std::fprintf(stderr, "query pool came out empty; enlarge --papers\n");
    return 1;
  }

  std::printf("%6s %7s %8s %10s %8s %12s %12s %12s\n", "regime", "shards",
              "workers", "qps", "scaling", "reads/query", "exec/query",
              "pruned/query");
  for (const bool hot : {true, false}) {
    double base_qps = 0;
    for (const size_t shards : config.shard_list) {
      std::fprintf(stderr, "building %s %zu-shard collection...\n",
                   hot ? "hot" : "cold", shards);
      Result<std::unique_ptr<shard::ShardedCollection>> built =
          BuildCollection(corpus, shards, /*disk=*/true, hot, config);
      if (!built.ok()) {
        std::fprintf(stderr, "build: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      const shard::ShardedCollection& collection = **built;
      if (hot) {
        for (uint32_t s = 0; s < collection.shard_count(); ++s) {
          const XKSearch* engine = collection.shard_engine(s);
          if (engine == nullptr || engine->disk_index() == nullptr) continue;
          const Status warmed = engine->disk_index()->WarmCaches();
          if (!warmed.ok()) {
            std::fprintf(stderr, "warm: %s\n", warmed.ToString().c_str());
            return 1;
          }
        }
      }
      shard::ScatterGatherOptions sgo;
      sgo.workers = config.workers;
      const shard::ScatterGatherExecutor executor(&collection, sgo);
      SearchOptions so;
      so.use_disk_index = true;

      uint64_t ok = 0;
      uint64_t failed = 0;
      uint64_t page_reads = 0;
      uint64_t executed = 0;
      uint64_t pruned = 0;
      const Clock::time_point start = Clock::now();
      for (size_t round = 0; round < config.rounds; ++round) {
        for (const std::vector<std::string>& query : queries) {
          const Result<shard::ShardedResult> r = executor.Search(query, so);
          if (!r.ok()) {
            ++failed;
            continue;
          }
          ++ok;
          page_reads += r->result.stats.page_reads.load();
          executed += r->executed_shards();
          pruned += r->pruned_shards();
        }
      }
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      const double qps = seconds > 0 ? static_cast<double>(ok) / seconds : 0;
      if (base_qps == 0) base_qps = qps;
      const double per_query = ok == 0 ? 0 : 1.0 / static_cast<double>(ok);
      std::printf("%6s %7zu %8zu %10.0f %7.2fx %12.1f %12.2f %12.2f\n",
                  hot ? "hot" : "cold", shards, executor.workers(), qps,
                  base_qps > 0 ? qps / base_qps : 0.0,
                  static_cast<double>(page_reads) * per_query,
                  static_cast<double>(executed) * per_query,
                  static_cast<double>(pruned) * per_query);
      std::printf(
          "{\"bench\":\"shard_scaling\",\"row\":\"sweep\",\"regime\":\"%s\","
          "\"shards\":%zu,\"docs\":%zu,\"papers_per_doc\":%zu,\"workers\":%zu,"
          "\"qps\":%.1f,\"qps_scaling\":%.3f,\"ok\":%" PRIu64
          ",\"failed\":%" PRIu64 ",\"page_reads\":%" PRIu64
          ",\"executed_shards\":%" PRIu64 ",\"pruned_shards\":%" PRIu64 "}\n",
          hot ? "hot" : "cold", shards, config.docs, config.papers,
          executor.workers(), qps, base_qps > 0 ? qps / base_qps : 0.0, ok,
          failed, page_reads, executed, pruned);
      std::fflush(stdout);
      if (failed != 0) {
        std::fprintf(stderr, "%" PRIu64 " queries failed\n", failed);
        return 1;
      }

      // Routed section (cold only — routing work is identical either
      // way, cold shows the reads it avoids): each document's unique
      // plant must execute one shard and prune the rest. Caches are
      // dropped before every pass so each routed query pays the cold
      // cost of its one shard's 1/N-sized index — the per-query benefit
      // selective queries get from sharding even without parallel
      // hardware.
      if (!hot) {
        uint64_t routed_ok = 0;
        uint64_t routed_executed = 0;
        uint64_t routed_pruned = 0;
        uint64_t routed_reads = 0;
        bool routed_exact = true;
        double routed_seconds = 0;
        for (size_t pass = 0; pass < config.rounds; ++pass) {
          for (uint32_t s = 0; s < collection.shard_count(); ++s) {
            const XKSearch* engine = collection.shard_engine(s);
            if (engine == nullptr || engine->disk_index() == nullptr) {
              continue;
            }
            const Status dropped = engine->disk_index()->DropCaches();
            if (!dropped.ok()) {
              std::fprintf(stderr, "drop: %s\n",
                           dropped.ToString().c_str());
              return 1;
            }
          }
          const Clock::time_point routed_start = Clock::now();
          for (size_t d = 0; d < config.docs; ++d) {
            const Result<shard::ShardedResult> r =
                executor.Search({"only" + std::to_string(d)}, so);
            if (!r.ok()) {
              std::fprintf(stderr, "routed query failed: %s\n",
                           r.status().ToString().c_str());
              return 1;
            }
            ++routed_ok;
            routed_executed += r->executed_shards();
            routed_pruned += r->pruned_shards();
            routed_reads += r->result.stats.page_reads.load();
            if (r->executed_shards() != 1) routed_exact = false;
          }
          routed_seconds += std::chrono::duration<double>(Clock::now() -
                                                          routed_start)
                                .count();
        }
        const double routed_qps =
            routed_seconds > 0
                ? static_cast<double>(routed_ok) / routed_seconds
                : 0;
        const double routed_per =
            routed_ok == 0 ? 0 : 1.0 / static_cast<double>(routed_ok);
        std::printf("%6s %7zu %8s %10.0f %8s %12.1f %12.2f %12.2f\n",
                    "routed", shards, "-", routed_qps, "-",
                    static_cast<double>(routed_reads) * routed_per,
                    static_cast<double>(routed_executed) * routed_per,
                    static_cast<double>(routed_pruned) * routed_per);
        std::printf(
            "{\"bench\":\"shard_scaling\",\"row\":\"routed\",\"regime\":"
            "\"cold\",\"shards\":%zu,\"docs\":%zu,\"queries\":%" PRIu64
            ",\"qps\":%.1f,\"page_reads\":%" PRIu64
            ",\"executed_shards\":%" PRIu64 ",\"pruned_shards\":%" PRIu64
            ",\"single_shard_exact\":%s}\n",
            shards, config.docs, routed_ok, routed_qps, routed_reads,
            routed_executed, routed_pruned,
            routed_exact ? "true" : "false");
        std::fflush(stdout);
        if (!routed_exact) {
          std::fprintf(stderr,
                       "router executed >1 shard for a document-unique "
                       "keyword\n");
          return 1;
        }
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace xksearch

int main(int argc, char** argv) { return xksearch::Main(argc, argv); }
