// Thread sweep over intra-query chunked SLCA execution (Ablation X12):
// one closed-loop coordinator runs a planted equal-frequency query
// through the chunked Indexed Lookup / Scan Eager path while a worker
// pool executes the extra S1 chunks. Equal frequencies make |S1| — the
// chunked dimension — as large as the workload allows, the regime where
// intra-query parallelism has the most to win.
//
// Two regimes:
//
//   memory  packed in-memory lists; pure compute scaling of the chain
//           plus the sequential stitch pass.
//   disk    in-memory page store with oversized, pre-warmed pools: the
//           same sweep with every probe going through the B+trees and
//           the sharded buffer pool (hot, so no eviction noise).
//
// threads=N means N-way parallelism: the coordinator plus N-1 pool
// workers, max_chunks = N. threads=1 is the sequential engine verbatim
// (the chunked path falls back below two chunks).
//
// Standalone binary (like bench_parallel_cold), not a google-benchmark
// harness: it owns its thread pool and per-regime engine builds. Prints
// a table plus one JSON line per configuration for tools/bench_to_csv.py.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "serve/thread_pool.h"
#include "slca/parallel.h"

namespace xksearch {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  size_t papers = 60000;
  /// Keywords in the planted query; every list has `frequency` below.
  size_t keywords = 3;
  /// Planted list size; 0 = papers / 2.
  uint64_t frequency = 0;
  std::vector<size_t> threads = {1, 2, 4, 8};
  size_t duration_ms = 600;
  size_t warmup_rounds = 3;
  uint64_t min_chunk_elements = 512;
};

struct RunResult {
  uint64_t queries = 0;
  uint64_t results = 0;
  double avg_ms = 0;
  double qps = 0;
};

RunResult RunOnce(const XKSearch& system,
                  const std::vector<std::string>& query,
                  const SearchOptions& options, const Config& config) {
  for (size_t i = 0; i < config.warmup_rounds; ++i) {
    const Result<SearchResult> r = system.Search(query, options);
    if (!r.ok()) {
      std::fprintf(stderr, "warmup: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  }
  RunResult out;
  const Clock::time_point start = Clock::now();
  const Clock::duration budget =
      std::chrono::milliseconds(config.duration_ms);
  Clock::time_point now;
  do {
    const Result<SearchResult> r = system.Search(query, options);
    if (!r.ok()) {
      std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    ++out.queries;
    out.results = r->nodes.size();
    now = Clock::now();
  } while (now - start < budget);
  const double seconds = std::chrono::duration<double>(now - start).count();
  out.avg_ms = out.queries == 0
                   ? 0
                   : seconds * 1000.0 / static_cast<double>(out.queries);
  out.qps = seconds > 0 ? static_cast<double>(out.queries) / seconds : 0;
  return out;
}

Result<std::unique_ptr<XKSearch>> BuildSystem(const Config& config,
                                              std::vector<std::string>* query) {
  DblpOptions gen;
  gen.papers = config.papers;
  gen.seed = 271828;
  const uint64_t frequency =
      config.frequency > 0 ? config.frequency : config.papers / 2;
  for (size_t i = 0; i < config.keywords; ++i) {
    gen.plants.push_back({"xq" + std::to_string(i), frequency});
    query->push_back("xq" + std::to_string(i));
  }
  XKS_ASSIGN_OR_RETURN(Document doc, GenerateDblp(gen));
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;  // page-identical to files, no FS noise
  build.disk.il_pool_pages = 1 << 20;
  build.disk.scan_pool_pages = 1 << 20;
  return XKSearch::BuildFromDocument(std::move(doc), build);
}

uint64_t ParseU64(const char* text) {
  return static_cast<uint64_t>(std::strtoull(text, nullptr, 10));
}

std::vector<size_t> ParseList(const char* text) {
  std::vector<size_t> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) {
        out.push_back(static_cast<size_t>(ParseU64(item.c_str())));
      }
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--papers=")) {
      config.papers = ParseU64(v);
    } else if (const char* v = value("--keywords=")) {
      config.keywords = ParseU64(v);
    } else if (const char* v = value("--frequency=")) {
      config.frequency = ParseU64(v);
    } else if (const char* v = value("--threads=")) {
      config.threads = ParseList(v);
    } else if (const char* v = value("--duration-ms=")) {
      config.duration_ms = ParseU64(v);
    } else if (const char* v = value("--min-chunk-elements=")) {
      config.min_chunk_elements = ParseU64(v);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --papers= --keywords= "
                   "--frequency= --threads=l --duration-ms= "
                   "--min-chunk-elements=\n",
                   arg);
      return 2;
    }
  }

  std::vector<std::string> query;
  std::fprintf(stderr, "building corpus (%zu papers, %zu planted lists)...\n",
               config.papers, config.keywords);
  Result<std::unique_ptr<XKSearch>> built = BuildSystem(config, &query);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const Status warmed = (*built)->disk_index()->WarmCaches();
  if (!warmed.ok()) {
    std::fprintf(stderr, "warm: %s\n", warmed.ToString().c_str());
    return 1;
  }

  std::printf("%6s %18s %8s %10s %10s %8s %10s %10s\n", "regime",
              "algorithm", "threads", "avg_ms", "qps", "speedup", "results",
              "pool_tasks");
  for (const bool disk : {false, true}) {
    for (const AlgorithmChoice algorithm :
         {AlgorithmChoice::kIndexedLookupEager, AlgorithmChoice::kScanEager}) {
      const std::string name =
          algorithm == AlgorithmChoice::kIndexedLookupEager ? "indexed-lookup"
                                                            : "scan-eager";
      double base_ms = 0;
      for (const size_t threads : config.threads) {
        SearchOptions options;
        options.algorithm = algorithm;
        options.use_disk_index = disk;
        std::unique_ptr<serve::ThreadPool> pool;
        std::unique_ptr<ConcurrencyBudget> budget;
        if (threads > 1) {
          serve::ThreadPool::Options pool_options;
          pool_options.workers = threads - 1;
          pool = std::make_unique<serve::ThreadPool>(pool_options);
          budget = std::make_unique<ConcurrencyBudget>(threads - 1);
          options.slca_exec.pool = pool.get();
          options.slca_exec.budget = budget.get();
          options.slca_exec.max_chunks = threads;
          options.slca_exec.min_chunk_elements = config.min_chunk_elements;
        }
        const RunResult r = RunOnce(**built, query, options, config);
        if (base_ms == 0) base_ms = r.avg_ms;
        const double speedup = r.avg_ms > 0 ? base_ms / r.avg_ms : 0;
        // Chunk tasks that actually ran on the pool. Zero at threads>1
        // means the chunked path never engaged (a plumbing regression);
        // a positive count with speedup ~1.0x is what a single-core host
        // shows — the path ran, the hardware just can't overlap it.
        const uint64_t pool_tasks = pool ? pool->tasks_run() : 0;
        std::printf("%6s %18s %8zu %10.3f %10.1f %7.2fx %10" PRIu64
                    " %10" PRIu64 "\n",
                    disk ? "disk" : "memory", name.c_str(), threads, r.avg_ms,
                    r.qps, speedup, r.results, pool_tasks);
        // Machine-readable row for tools/bench_to_csv.py.
        std::printf(
            "{\"bench\":\"parallel_query\",\"regime\":\"%s\","
            "\"algorithm\":\"%s\",\"threads\":%zu,\"keywords\":%zu,"
            "\"frequency\":%" PRIu64 ",\"avg_ms\":%.4f,\"qps\":%.1f,"
            "\"speedup\":%.3f,\"queries\":%" PRIu64 ",\"results\":%" PRIu64
            ",\"pool_tasks\":%" PRIu64 "}\n",
            disk ? "disk" : "memory", name.c_str(), threads, config.keywords,
            config.frequency > 0 ? config.frequency
                                 : static_cast<uint64_t>(config.papers / 2),
            r.avg_ms, r.qps, speedup, r.queries, r.results, pool_tasks);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace xksearch

int main(int argc, char** argv) { return xksearch::Main(argc, argv); }
