// Figure 10: varying the number of keywords with all keyword lists the
// same size (10 / 100 / 1000 / 10000), hot cache.
//
// Expected shape: with no skew to exploit, Scan Eager is the best
// variant — Indexed Lookup pays a log factor per probe for nothing, and
// Stack is close to Scan but carries the full merge machinery.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunFig10(benchmark::State& state, AlgorithmChoice algorithm) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Corpus& corpus = Corpus::Get();

  const std::vector<uint64_t> frequencies(static_cast<size_t>(k), frequency);
  const auto queries = corpus.Queries(frequencies, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = algorithm;
  options.use_disk_index = true;
  WarmUp(corpus.system());

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatch(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["results_per_query"] =
      static_cast<double>(batch.total_results) /
      static_cast<double>(queries.size());
}

void Fig10Args(benchmark::internal::Benchmark* b) {
  for (int64_t frequency : {10, 100, 1000, 10000}) {
    for (int64_t k : {2, 3, 4, 5}) {
      b->Args({frequency, k});
    }
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunFig10, IndexedLookup,
                  AlgorithmChoice::kIndexedLookupEager)
    ->Apply(Fig10Args);
BENCHMARK_CAPTURE(RunFig10, ScanEager, AlgorithmChoice::kScanEager)
    ->Apply(Fig10Args);
BENCHMARK_CAPTURE(RunFig10, Stack, AlgorithmChoice::kStack)->Apply(Fig10Args);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
