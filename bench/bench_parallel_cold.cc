// Worker-count sweep over the concurrent disk read path: N closed-loop
// worker threads hammer one shared DiskSearcher (no serving layer, no
// result cache — this measures the sharded buffer pool itself) in two
// regimes:
//
//   hot   pools sized to hold both trees entirely, warmed before the
//         sweep: every fetch is a cache hit, so throughput isolates the
//         pool's lock path. Before the pools were sharded this curve was
//         flat (a global mutex serialized every query); with sharding it
//         must scale with workers.
//   cold  deliberately tiny pools: a steady-state miss stream with
//         constant eviction, the concurrent analogue of the paper's
//         cold-cache figures. Buffer-pool misses are the paper's "disk
//         accesses"; the JSON reports them per query.
//
// Standalone binary (like bench_serve_throughput), not a
// google-benchmark harness: it needs its own worker threads and
// per-regime index builds. Prints a table plus one JSON line per
// configuration for tools/bench_to_csv.py.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gen/query_sampler.h"

namespace xksearch {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  size_t papers = 20000;
  std::vector<size_t> workers = {1, 2, 4, 8};
  size_t pool_queries = 512;
  size_t duration_ms = 800;
  size_t warmup_ms = 200;
  /// Frames per pool in the cold regime; small enough that eviction
  /// never stops on any realistic corpus.
  size_t cold_pool_pages = 64;
  /// Leaf readahead for the cold regime (hot never misses, so readahead
  /// would be a no-op there).
  size_t readahead_pages = 0;
  /// Buffer-pool shards (0 = auto). --shards=1 reproduces the old
  /// single-LRU contention for comparison.
  size_t shards = 0;
};

struct RunResult {
  uint64_t ok = 0;
  uint64_t failed = 0;
  double qps = 0;
  uint64_t page_reads = 0;
  uint64_t page_hits = 0;
  uint64_t readaheads = 0;
};

RunResult RunOnce(const DiskSearcher& searcher,
                  const std::vector<std::vector<std::string>>& queries,
                  const Config& config, size_t workers) {
  struct WorkerState {
    uint64_t ok = 0;
    uint64_t failed = 0;
    QueryStats stats;
  };
  std::vector<WorkerState> states(workers);
  std::atomic<bool> warming{true};
  std::atomic<bool> running{true};

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerState& state = states[w];
      size_t i = w * 131;  // distinct per-thread walk through the pool
      while (running.load(std::memory_order_relaxed)) {
        const std::vector<std::string>& query =
            queries[(i += 7) % queries.size()];
        const Result<SearchResult> r = searcher.Search(query);
        if (warming.load(std::memory_order_relaxed)) continue;
        if (r.ok()) {
          ++state.ok;
          state.stats += r->stats;
        } else {
          ++state.failed;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(config.warmup_ms));
  warming.store(false, std::memory_order_relaxed);
  const Clock::time_point start = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
  running.store(false, std::memory_order_relaxed);
  const Clock::time_point end = Clock::now();
  for (std::thread& t : threads) t.join();

  RunResult result;
  for (const WorkerState& state : states) {
    result.ok += state.ok;
    result.failed += state.failed;
    result.page_reads += state.stats.page_reads;
    result.page_hits += state.stats.page_hits;
    result.readaheads += state.stats.readahead_reads;
  }
  const double seconds = std::chrono::duration<double>(end - start).count();
  result.qps = seconds > 0 ? static_cast<double>(result.ok) / seconds : 0;
  return result;
}

std::vector<std::vector<std::string>> BuildQueryPool(const XKSearch& system,
                                                     const Config& config) {
  QuerySampler sampler(system.index());
  Rng rng(4242);
  std::vector<std::vector<std::string>> usable;
  std::set<std::vector<std::string>> seen;
  for (int attempt = 0; attempt < 64 && usable.size() < config.pool_queries;
       ++attempt) {
    std::vector<std::vector<std::string>> batch = sampler.SampleQueries(
        &rng, config.pool_queries, {20, 400}, /*tolerance=*/0.9);
    for (auto& query : batch) {
      if (query.empty() || usable.size() >= config.pool_queries) continue;
      std::vector<std::string> canonical = query;
      std::sort(canonical.begin(), canonical.end());
      if (seen.insert(std::move(canonical)).second) {
        usable.push_back(std::move(query));
      }
    }
  }
  return usable;
}

Result<std::unique_ptr<XKSearch>> BuildSystem(const Config& config,
                                              bool hot) {
  DblpOptions gen;
  gen.papers = config.papers;
  gen.seed = 1234;
  gen.zipf_exponent = 1.0;
  XKS_ASSIGN_OR_RETURN(Document doc, GenerateDblp(gen));
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;  // page-identical to files, no FS noise
  build.disk.pool_shards = config.shards;
  if (hot) {
    // Oversized pools + WarmCaches below: everything resident.
    build.disk.il_pool_pages = 1 << 20;
    build.disk.scan_pool_pages = 1 << 20;
  } else {
    build.disk.il_pool_pages = config.cold_pool_pages;
    build.disk.scan_pool_pages = config.cold_pool_pages;
    build.disk.readahead_pages = config.readahead_pages;
  }
  return XKSearch::BuildFromDocument(std::move(doc), build);
}

uint64_t ParseU64(const char* text) {
  return static_cast<uint64_t>(std::strtoull(text, nullptr, 10));
}

std::vector<size_t> ParseList(const char* text) {
  std::vector<size_t> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) {
        out.push_back(static_cast<size_t>(ParseU64(item.c_str())));
      }
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--papers=")) {
      config.papers = ParseU64(v);
    } else if (const char* v = value("--workers=")) {
      config.workers = ParseList(v);
    } else if (const char* v = value("--pool-queries=")) {
      config.pool_queries = ParseU64(v);
    } else if (const char* v = value("--duration-ms=")) {
      config.duration_ms = ParseU64(v);
    } else if (const char* v = value("--warmup-ms=")) {
      config.warmup_ms = ParseU64(v);
    } else if (const char* v = value("--cold-pool-pages=")) {
      config.cold_pool_pages = ParseU64(v);
    } else if (const char* v = value("--readahead-pages=")) {
      config.readahead_pages = ParseU64(v);
    } else if (const char* v = value("--shards=")) {
      config.shards = ParseU64(v);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --papers= --workers=l "
                   "--pool-queries= --duration-ms= --warmup-ms= "
                   "--cold-pool-pages= --readahead-pages= --shards=\n",
                   arg);
      return 2;
    }
  }

  std::printf("%6s %8s %10s %8s %12s %12s %12s\n", "regime", "workers",
              "qps", "scaling", "reads/query", "hits/query", "ra/query");
  for (const bool hot : {true, false}) {
    std::fprintf(stderr, "building %s-cache index (%zu papers)...\n",
                 hot ? "hot" : "cold", config.papers);
    Result<std::unique_ptr<XKSearch>> built = BuildSystem(config, hot);
    if (!built.ok()) {
      std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
      return 1;
    }
    DiskIndex* index = (*built)->disk_index();
    if (hot) {
      const Status warmed = index->WarmCaches();
      if (!warmed.ok()) {
        std::fprintf(stderr, "warm: %s\n", warmed.ToString().c_str());
        return 1;
      }
    }
    const DiskSearcher searcher(index, index->tokenizer());
    const std::vector<std::vector<std::string>> queries =
        BuildQueryPool(**built, config);
    if (queries.empty()) {
      std::fprintf(stderr, "query pool came out empty; enlarge --papers\n");
      return 1;
    }

    double base_qps = 0;
    for (const size_t workers : config.workers) {
      const RunResult r = RunOnce(searcher, queries, config, workers);
      if (base_qps == 0) base_qps = r.qps;
      const double per_query = r.ok == 0 ? 0 : 1.0 / static_cast<double>(r.ok);
      std::printf("%6s %8zu %10.0f %7.2fx %12.1f %12.1f %12.1f\n",
                  hot ? "hot" : "cold", workers, r.qps,
                  base_qps > 0 ? r.qps / base_qps : 0.0,
                  static_cast<double>(r.page_reads) * per_query,
                  static_cast<double>(r.page_hits) * per_query,
                  static_cast<double>(r.readaheads) * per_query);
      // Machine-readable row for tools/bench_to_csv.py.
      std::printf(
          "{\"bench\":\"parallel_disk\",\"regime\":\"%s\",\"workers\":%zu,"
          "\"shards\":%zu,\"readahead_pages\":%zu,\"qps\":%.1f,"
          "\"qps_scaling\":%.3f,\"ok\":%" PRIu64 ",\"failed\":%" PRIu64
          ",\"page_reads\":%" PRIu64 ",\"page_hits\":%" PRIu64
          ",\"readaheads\":%" PRIu64 "}\n",
          hot ? "hot" : "cold", workers, config.shards,
          hot ? size_t{0} : config.readahead_pages, r.qps,
          base_qps > 0 ? r.qps / base_qps : 0.0, r.ok, r.failed, r.page_reads,
          r.page_hits, r.readaheads);
      std::fflush(stdout);
      if (r.failed != 0) {
        std::fprintf(stderr, "%" PRIu64 " queries failed\n", r.failed);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace xksearch

int main(int argc, char** argv) { return xksearch::Main(argc, argv); }
