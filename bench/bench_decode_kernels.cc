// Batch decode-kernel sweep (Ablation X13): throughput of the
// block-at-a-time posting decoders against the legacy entry-at-a-time
// DeltaBlockDecoder, over the identical delta-encoded wire bytes, plus a
// hot-list-cache on/off sweep over a planted engine query.
//
// Two sections:
//
//   decode  one delta stream of N sorted Dewey ids, decoded end to end:
//           the `legacy` row is DeltaBlockDecoder::Next per entry; each
//           kernel row is DecodeBlockWith in 256-entry batches with the
//           carry chained across calls (exactly the blocked cursors'
//           access pattern). MB/s is wire bytes consumed per second.
//
//   hot     a closed-loop two-keyword query against an in-memory engine,
//           with the serving layer's decoded hot-list cache off and on.
//           The "on" rows serve both posting lists as pinned decoded
//           vectors after admission — the per-query decode disappears.
//
// Standalone binary (like bench_parallel_query), not a google-benchmark
// harness. Prints a table plus one JSON line per configuration for
// tools/bench_to_csv.py.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dewey/codec.h"
#include "dewey/decode_kernels.h"
#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "serve/hot_list_cache.h"

namespace xksearch {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::vector<size_t> entries = {10'000, 100'000};
  size_t duration_ms = 300;
  size_t papers = 20'000;
  uint64_t hot_frequency = 0;  // 0 = papers / 2
  bool with_hot = true;
};

std::vector<DeweyId> RandomSortedIds(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<DeweyId> ids;
  ids.reserve(n + n / 4);
  while (ids.size() < n + n / 4) {
    std::vector<uint32_t> components;
    components.push_back(0);
    const size_t depth = 2 + static_cast<size_t>(rng.UniformInt(0, 8));
    for (size_t d = 1; d < depth; ++d) {
      // Mostly single-byte varints with a multi-byte tail mixed in —
      // the shape real document trees produce.
      const bool wide = rng.UniformInt(0, 9) == 0;
      components.push_back(static_cast<uint32_t>(
          rng.UniformInt(0, wide ? 100'000 : 120)));
    }
    ids.emplace_back(std::move(components));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > n) ids.resize(n);
  return ids;
}

std::vector<uint8_t> EncodeStream(const std::vector<DeweyId>& ids) {
  DeltaBlockEncoder encoder;
  for (const DeweyId& id : ids) encoder.Append(id);
  return encoder.Finish();
}

struct DecodeResult {
  double mb_per_s = 0;
  double mentries_per_s = 0;
  uint64_t passes = 0;
  uint64_t checksum = 0;  // defeats dead-code elimination
};

/// Repeats `decode_pass` (one full decode of the stream, returning a
/// checksum) until the time budget elapses.
template <typename Pass>
DecodeResult Measure(const Config& config, size_t bytes, size_t entries,
                     Pass decode_pass) {
  DecodeResult out;
  out.checksum = decode_pass();  // warmup
  const Clock::time_point start = Clock::now();
  const Clock::duration budget = std::chrono::milliseconds(config.duration_ms);
  Clock::time_point now;
  do {
    out.checksum ^= decode_pass();
    ++out.passes;
    now = Clock::now();
  } while (now - start < budget);
  const double seconds = std::chrono::duration<double>(now - start).count();
  const double total_bytes =
      static_cast<double>(bytes) * static_cast<double>(out.passes);
  const double total_entries =
      static_cast<double>(entries) * static_cast<double>(out.passes);
  out.mb_per_s = total_bytes / seconds / 1e6;
  out.mentries_per_s = total_entries / seconds / 1e6;
  return out;
}

void RunDecodeSection(const Config& config) {
  std::printf("%8s %8s %10s %12s %12s\n", "entries", "kernel", "wire_kb",
              "MB/s", "Mentries/s");
  for (const size_t n : config.entries) {
    const std::vector<DeweyId> ids = RandomSortedIds(42 + n, n);
    const std::vector<uint8_t> bytes = EncodeStream(ids);

    auto emit = [&](const char* kernel, const DecodeResult& r) {
      std::printf("%8zu %8s %10.1f %12.1f %12.2f\n", ids.size(), kernel,
                  static_cast<double>(bytes.size()) / 1e3, r.mb_per_s,
                  r.mentries_per_s);
      std::printf(
          "{\"bench\":\"decode_kernels\",\"section\":\"decode\","
          "\"entries\":%zu,\"kernel\":\"%s\",\"wire_bytes\":%zu,"
          "\"mb_per_s\":%.2f,\"mentries_per_s\":%.3f,\"passes\":%" PRIu64
          "}\n",
          ids.size(), kernel, bytes.size(), r.mb_per_s, r.mentries_per_s,
          r.passes);
      std::fflush(stdout);
    };

    // Legacy reference: the entry-at-a-time decoder the kernels replace.
    emit("legacy", Measure(config, bytes.size(), ids.size(), [&] {
           DeltaBlockDecoder decoder(bytes);
           DeweyId id;
           uint64_t sum = 0;
           while (decoder.Next(&id)) sum += id.depth();
           if (!decoder.status().ok()) std::abort();
           return sum;
         }));

    for (const DecodeKernel kernel : AvailableDecodeKernels()) {
      constexpr size_t kBatch = 256;
      DecodedBlock block;
      std::vector<uint32_t> carry;
      emit(DecodeKernelName(kernel),
           Measure(config, bytes.size(), ids.size(), [&] {
             uint64_t sum = 0;
             size_t pos = 0;
             carry.clear();
             while (pos < bytes.size()) {
               block.Clear();
               const Status status = DecodeBlockWith(
                   kernel, bytes.data(), bytes.size(), &pos, kBatch,
                   carry.empty() ? nullptr : carry.data(), carry.size(),
                   &block);
               if (!status.ok() || block.empty()) std::abort();
               for (size_t i = 0; i < block.count(); ++i) {
                 sum += block.entry(i).depth();
               }
               carry.assign(block.last_data(),
                            block.last_data() + block.last_len());
             }
             return sum;
           }));
    }
  }
}

void RunHotSection(const Config& config) {
  DblpOptions gen;
  gen.papers = config.papers;
  gen.seed = 7;
  const uint64_t freq = config.hot_frequency > 0
                            ? config.hot_frequency
                            : static_cast<uint64_t>(config.papers / 2);
  gen.plants = {{"hotterm", freq}, {"rareterm", freq / 50 + 1}};
  Result<Document> doc = GenerateDblp(gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "gen: %s\n", doc.status().ToString().c_str());
    std::exit(1);
  }
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  if (!system.ok()) {
    std::fprintf(stderr, "build: %s\n", system.status().ToString().c_str());
    std::exit(1);
  }
  const std::vector<std::string> query = {"rareterm", "hotterm"};

  std::printf("%8s %10s %10s %10s\n", "hot", "avg_us", "qps", "results");
  double base_us = 0;
  for (const bool hot : {false, true}) {
    serve::HotListCache::Options cache_options;
    cache_options.max_bytes = size_t{256} << 20;
    cache_options.admit_after = 1;
    serve::HotListCache cache(cache_options);
    SearchOptions options;
    options.algorithm = AlgorithmChoice::kScanEager;  // S1 scans both lists
    if (hot) options.hot_lists = &cache;

    uint64_t queries = 0;
    uint64_t results = 0;
    for (int warm = 0; warm < 3; ++warm) {
      if (!(*system)->Search(query, options).ok()) std::abort();
    }
    const Clock::time_point start = Clock::now();
    const Clock::duration budget =
        std::chrono::milliseconds(config.duration_ms);
    Clock::time_point now;
    do {
      const Result<SearchResult> r = (*system)->Search(query, options);
      if (!r.ok()) std::abort();
      results = r->nodes.size();
      ++queries;
      now = Clock::now();
    } while (now - start < budget);
    const double seconds = std::chrono::duration<double>(now - start).count();
    const double avg_us = seconds * 1e6 / static_cast<double>(queries);
    const double qps = static_cast<double>(queries) / seconds;
    if (base_us == 0) base_us = avg_us;
    std::printf("%8s %10.1f %10.1f %10" PRIu64 "\n", hot ? "on" : "off",
                avg_us, qps, results);
    std::printf(
        "{\"bench\":\"decode_kernels\",\"section\":\"hot_list\","
        "\"hot\":%d,\"frequency\":%" PRIu64 ",\"avg_us\":%.2f,\"qps\":%.1f,"
        "\"speedup\":%.3f,\"queries\":%" PRIu64 ",\"results\":%" PRIu64
        "}\n",
        hot ? 1 : 0, freq, avg_us, qps, avg_us > 0 ? base_us / avg_us : 0,
        queries, results);
    std::fflush(stdout);
  }
}

std::vector<size_t> ParseList(const char* text) {
  std::vector<size_t> out;
  for (const char* p = text; *p != '\0';) {
    out.push_back(static_cast<size_t>(std::strtoull(p, nullptr, 10)));
    p = std::strchr(p, ',');
    if (p == nullptr) break;
    ++p;
  }
  return out;
}

}  // namespace
}  // namespace xksearch

int main(int argc, char** argv) {
  xksearch::Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--entries=")) {
      config.entries = xksearch::ParseList(v);
    } else if (const char* v = value("--duration-ms=")) {
      config.duration_ms = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--papers=")) {
      config.papers = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("--frequency=")) {
      config.hot_frequency = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--no-hot") == 0) {
      config.with_hot = false;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --entries=l --duration-ms= "
                   "--papers= --frequency= --no-hot\n",
                   arg);
      return 2;
    }
  }
  std::fprintf(stderr, "active kernel: %s\n",
               xksearch::DecodeKernelName(xksearch::ActiveDecodeKernel()));
  xksearch::RunDecodeSection(config);
  if (config.with_hot) xksearch::RunHotSection(config);
  return 0;
}
