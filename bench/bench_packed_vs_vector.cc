// Layout ablation: the packed prefix-truncated posting arenas against the
// classic vector-of-DeweyId lists, on the same DBLP-shaped corpus.
//
//  * {Packed,Vector}Match{Ascending,Random}: one lm + one rm per
//    iteration, the unit of the paper's "# operations". Ascending probes
//    replay the nondecreasing sequences the eager SLCA chains generate
//    (the packed gallop hint's home turf); random probes force the cold
//    block binary search every time.
//  * AppendPacked/AppendVector: posting ingestion throughput, the build
//    side of the layout swap.
//  * IndexBuild: end-to-end InvertedIndex::Build on a DBLP slice.
//
// Before the timing runs, one JSON line per frequency class (plus a
// whole-index line) records bytes-per-posting of both layouts —
// tools/bench_to_csv.py turns them into packed_footprint.csv.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/rng.h"
#include "gen/dblp_generator.h"
#include "slca/keyword_list.h"
#include "slca/packed_list.h"

namespace xksearch {
namespace bench {
namespace {

const PackedDeweyList& PackedList(uint64_t frequency) {
  Corpus& corpus = Corpus::Get();
  const std::string& kw = corpus.KeywordsFor(frequency).front();
  const PackedDeweyList* list = corpus.system().index().Find(kw);
  CheckOk(list == nullptr ? Status::Internal("missing planted keyword list")
                          : Status::OK(),
          "PackedList");
  return *list;
}

const std::vector<DeweyId>& VectorList(uint64_t frequency) {
  static std::map<uint64_t, std::vector<DeweyId>>* cache =
      new std::map<uint64_t, std::vector<DeweyId>>();
  auto it = cache->find(frequency);
  if (it == cache->end()) {
    it = cache->emplace(frequency, PackedList(frequency).Materialize()).first;
  }
  return it->second;
}

// Probes drawn from the list itself: ascending replays the list densely
// in order (each probe >= the last, the shape the eager SLCA chains
// produce — they walk every posting of the smallest list); random draws
// uniformly so every hinted fast path misses.
std::vector<DeweyId> Probes(uint64_t frequency, bool ascending) {
  const std::vector<DeweyId>& list = VectorList(frequency);
  std::vector<DeweyId> probes;
  Rng rng(17);
  if (ascending) {
    probes = list;
  } else {
    for (size_t i = 0; i < 1024; ++i) {
      probes.push_back(list[rng.Uniform(list.size())]);
    }
  }
  return probes;
}

void MatchLoop(benchmark::State& state, KeywordList& list,
               const std::vector<DeweyId>& probes) {
  size_t i = 0;
  DeweyId out;
  for (auto _ : state) {
    const DeweyId& probe = probes[i];
    if (++i == probes.size()) i = 0;
    Result<bool> rm = list.RightMatch(probe, &out);
    benchmark::DoNotOptimize(rm.ok());
    Result<bool> lm = list.LeftMatch(probe, &out);
    benchmark::DoNotOptimize(lm.ok());
  }
  // One iteration = one lm + one rm.
  state.SetItemsProcessed(state.iterations() * 2);
}

void PackedMatchAscending(benchmark::State& state) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const std::vector<DeweyId> probes = Probes(frequency, /*ascending=*/true);
  QueryStats stats;
  PackedKeywordList list(&PackedList(frequency), &stats);
  MatchLoop(state, list, probes);
}

void VectorMatchAscending(benchmark::State& state) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const std::vector<DeweyId> probes = Probes(frequency, /*ascending=*/true);
  QueryStats stats;
  VectorKeywordList list(&VectorList(frequency), &stats);
  MatchLoop(state, list, probes);
}

void PackedMatchRandom(benchmark::State& state) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const std::vector<DeweyId> probes = Probes(frequency, /*ascending=*/false);
  QueryStats stats;
  PackedKeywordList list(&PackedList(frequency), &stats);
  MatchLoop(state, list, probes);
}

void VectorMatchRandom(benchmark::State& state) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const std::vector<DeweyId> probes = Probes(frequency, /*ascending=*/false);
  QueryStats stats;
  VectorKeywordList list(&VectorList(frequency), &stats);
  MatchLoop(state, list, probes);
}

void AppendPacked(benchmark::State& state) {
  const std::vector<DeweyId>& ids = VectorList(100000);
  for (auto _ : state) {
    PackedDeweyList list;
    for (const DeweyId& id : ids) list.Append(id);
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}

void AppendVector(benchmark::State& state) {
  const std::vector<DeweyId>& ids = VectorList(100000);
  for (auto _ : state) {
    std::vector<DeweyId> list;
    for (const DeweyId& id : ids) {
      if (list.empty() || !(list.back() == id)) list.push_back(id);
    }
    benchmark::DoNotOptimize(list.size());
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}

// End-to-end Figure 8 shape (two keywords, low frequency fixed at 100,
// high frequency = the arg) through the full engine, packed vs the
// vector escape hatch — the before/after pair EXPERIMENTS.md records.
void QueryBatch(benchmark::State& state, bool packed) {
  Corpus& corpus = Corpus::Get();
  const uint64_t high = static_cast<uint64_t>(state.range(0));
  const std::vector<std::vector<std::string>> queries =
      corpus.Queries({100, high}, kQueriesPerPoint);
  SearchOptions options;
  options.algorithm = AlgorithmChoice::kIndexedLookupEager;
  options.use_packed_lists = packed;
  size_t results = 0;
  for (auto _ : state) {
    results += RunBatch(corpus.system(), queries, options).total_results;
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(state.iterations() * queries.size());
}

void QueryHotPacked(benchmark::State& state) { QueryBatch(state, true); }
void QueryHotVector(benchmark::State& state) { QueryBatch(state, false); }

void IndexBuild(benchmark::State& state) {
  DblpOptions options;
  options.papers = static_cast<size_t>(state.range(0));
  options.seed = 20050614;
  Result<Document> doc = GenerateDblp(options);
  CheckOk(doc.status(), "GenerateDblp");
  for (auto _ : state) {
    InvertedIndex index = InvertedIndex::Build(*doc);
    benchmark::DoNotOptimize(index.total_postings());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(PackedMatchAscending)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond)
    ->MinTime(0.1);
BENCHMARK(VectorMatchAscending)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond)
    ->MinTime(0.1);
BENCHMARK(PackedMatchRandom)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond)
    ->MinTime(0.1);
BENCHMARK(VectorMatchRandom)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond)
    ->MinTime(0.1);
BENCHMARK(QueryHotPacked)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(QueryHotVector)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(AppendPacked)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(AppendVector)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(IndexBuild)->Arg(2000)->Unit(benchmark::kMillisecond)->MinTime(0.1);

// Resident bytes of a vector<DeweyId> list: the outer elements plus each
// id's heap block (sizes, not capacities — the generous-to-vector bound).
size_t VectorBytes(const std::vector<DeweyId>& ids) {
  size_t bytes = ids.size() * sizeof(DeweyId);
  for (const DeweyId& id : ids) bytes += id.depth() * sizeof(uint32_t);
  return bytes;
}

void EmitFootprint() {
  Corpus& corpus = Corpus::Get();
  for (uint64_t frequency : kFrequencies) {
    const PackedDeweyList& packed = PackedList(frequency);
    const std::vector<DeweyId>& ids = VectorList(frequency);
    const size_t vector_bytes = VectorBytes(ids);
    std::printf(
        "{\"bench\":\"packed_footprint\",\"frequency\":%llu,"
        "\"postings\":%zu,\"packed_bytes\":%zu,\"vector_bytes\":%zu,"
        "\"packed_bytes_per_posting\":%.2f,"
        "\"vector_bytes_per_posting\":%.2f,\"ratio\":%.2f}\n",
        static_cast<unsigned long long>(frequency), ids.size(),
        packed.memory_bytes(), vector_bytes,
        static_cast<double>(packed.memory_bytes()) /
            static_cast<double>(ids.size()),
        static_cast<double>(vector_bytes) / static_cast<double>(ids.size()),
        static_cast<double>(vector_bytes) /
            static_cast<double>(packed.memory_bytes()));
  }

  // Whole-index footprint, every term included.
  size_t packed_total = 0, vector_total = 0, postings = 0;
  for (const std::string& term : corpus.system().index().Terms()) {
    const PackedDeweyList* list = corpus.system().index().Find(term);
    packed_total += list->memory_bytes();
    vector_total += sizeof(std::vector<DeweyId>) +
                    VectorBytes(list->Materialize());
    postings += list->size();
  }
  std::printf(
      "{\"bench\":\"packed_footprint\",\"frequency\":0,"
      "\"postings\":%zu,\"packed_bytes\":%zu,\"vector_bytes\":%zu,"
      "\"packed_bytes_per_posting\":%.2f,"
      "\"vector_bytes_per_posting\":%.2f,\"ratio\":%.2f}\n",
      postings, packed_total, vector_total,
      static_cast<double>(packed_total) / static_cast<double>(postings),
      static_cast<double>(vector_total) / static_cast<double>(postings),
      static_cast<double>(vector_total) / static_cast<double>(packed_total));
}

}  // namespace
}  // namespace bench
}  // namespace xksearch

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  xksearch::bench::EmitFootprint();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
