// Micro-benchmark X4: the cost of a single lm/rm match operation, which
// is the unit of the paper's "# operations" column. Compares
//  * the in-memory binary search (O(d log |S|) comparisons),
//  * a hot B+tree probe over the Indexed Lookup layout, and
//  * a cursor scan positioned from the list head (what a lookup costs
//    if implemented by scanning, motivating the Indexed Lookup design).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "common/rng.h"
#include "slca/keyword_list.h"

namespace xksearch {
namespace bench {
namespace {

// The postings of a planted keyword, decoded out of the packed index.
// Cached per frequency: the benchmarks only need stable addresses, and
// decoding a 100k list on every benchmark registration would dominate
// startup.
const std::vector<DeweyId>& TargetList(uint64_t frequency) {
  static std::map<uint64_t, std::vector<DeweyId>>* cache =
      new std::map<uint64_t, std::vector<DeweyId>>();
  auto it = cache->find(frequency);
  if (it == cache->end()) {
    Corpus& corpus = Corpus::Get();
    const std::string& kw = corpus.KeywordsFor(frequency).front();
    std::vector<DeweyId> list = corpus.system().index().Materialize(kw);
    CheckOk(list.empty() ? Status::Internal("missing planted keyword list")
                         : Status::OK(),
            "TargetList");
    it = cache->emplace(frequency, std::move(list)).first;
  }
  return it->second;
}

// Random probe targets drawn from the corpus's largest planted list.
std::vector<DeweyId> ProbeTargets(size_t count) {
  const std::vector<DeweyId>& list = TargetList(100000);
  Rng rng(13);
  std::vector<DeweyId> probes;
  probes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    probes.push_back(list[rng.Uniform(list.size())]);
  }
  return probes;
}

void MemoryBinarySearch(benchmark::State& state) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const std::vector<DeweyId>& list = TargetList(frequency);
  const std::vector<DeweyId> probes = ProbeTargets(1024);
  QueryStats stats;
  VectorKeywordList kl(&list, &stats);
  size_t i = 0;
  DeweyId out;
  for (auto _ : state) {
    Result<bool> found = kl.RightMatch(probes[i++ & 1023], &out);
    benchmark::DoNotOptimize(found.ok());
  }
  state.SetItemsProcessed(state.iterations());
}

void DiskBtreeProbe(benchmark::State& state) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  Corpus& corpus = Corpus::Get();
  WarmUp(corpus.system());
  const DiskIndex::TermInfo* info = corpus.system().disk_index()->FindTerm(
      corpus.KeywordsFor(frequency).front());
  const std::vector<DeweyId> probes = ProbeTargets(1024);
  QueryStats stats;
  DiskKeywordList kl(corpus.system().disk_index(), info->id, info->frequency,
                     &stats);
  size_t i = 0;
  DeweyId out;
  for (auto _ : state) {
    Result<bool> found = kl.RightMatch(probes[i++ & 1023], &out);
    benchmark::DoNotOptimize(found.ok());
  }
  state.SetItemsProcessed(state.iterations());
}

void FullScanLookup(benchmark::State& state) {
  // What one lookup would cost without the index: stream the scan layout
  // from the head until reaching the target (expected |S|/2 postings).
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  Corpus& corpus = Corpus::Get();
  WarmUp(corpus.system());
  const DiskIndex::TermInfo* info = corpus.system().disk_index()->FindTerm(
      corpus.KeywordsFor(frequency).front());
  const std::vector<DeweyId> probes = ProbeTargets(64);
  QueryStats stats;
  DiskKeywordList kl(corpus.system().disk_index(), info->id, info->frequency,
                     &stats);
  size_t i = 0;
  for (auto _ : state) {
    const DeweyId& target = probes[i++ & 63];
    Result<std::unique_ptr<KeywordListIterator>> it = kl.NewIterator();
    CheckOk(it.status(), "NewIterator");
    DeweyId id;
    while ((*it)->Next(&id)) {
      if (id.Compare(target) >= 0) break;
    }
    benchmark::DoNotOptimize(id.depth());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(MemoryBinarySearch)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond)
    ->MinTime(0.1);
BENCHMARK(DiskBtreeProbe)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kNanosecond)
    ->MinTime(0.1);
BENCHMARK(FullScanLookup)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.1);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
