// Table 1: the paper's complexity summary, validated empirically.
//
//   algorithm | main-memory complexity    | disk accesses          | # ops
//   ----------+---------------------------+------------------------+------
//   IL        | O(k d |S1| log |S|)       | O(k |S1| (1 + log_B))  | 2(k-1)|S1| matches
//   Scan      | O(d sum|Si| + k d |S1|)   | O(sum |Si| / B)        | 2(k-1)|S1| matches
//   Stack     | O(k d sum|Si|)            | O(sum |Si| / B)        | merge of all lists
//
// This binary runs every algorithm across (|S1|, |Sk|, k) configurations
// and prints measured counters next to the analytic predictions, so the
// table's growth laws can be checked row by row: IL's counters must track
// |S1| log |S| and be independent of |Sk| otherwise; Scan/Stack counters
// must track sum |Si|.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

struct Config {
  uint64_t small;
  uint64_t large;
  int k;
};

void PrintHeader() {
  std::printf(
      "%-14s %8s %8s %2s | %12s %12s | %12s %12s | %10s %12s\n", "algorithm",
      "|S1|", "|Sk|", "k", "match_ops", "2(k-1)|S1|", "postings",
      "sum|Si|", "page_reads", "dewey_cmp");
  std::printf(
      "-------------------------------------------------------------------"
      "-------------------------------------------------\n");
}

void RunConfig(XKSearch& system, const Config& config) {
  Corpus& corpus = Corpus::Get();
  std::vector<uint64_t> frequencies = {config.small};
  for (int i = 1; i < config.k; ++i) frequencies.push_back(config.large);
  const auto queries = corpus.Queries(frequencies, 8);

  const uint64_t sum_si =
      config.small + static_cast<uint64_t>(config.k - 1) * config.large;
  const uint64_t predicted_matches =
      2 * static_cast<uint64_t>(config.k - 1) * config.small;

  for (AlgorithmChoice choice :
       {AlgorithmChoice::kIndexedLookupEager, AlgorithmChoice::kScanEager,
        AlgorithmChoice::kStack}) {
    SearchOptions options;
    options.algorithm = choice;
    options.use_disk_index = true;
    const BatchResult batch = RunBatchCold(system, queries, options);
    const double n = static_cast<double>(queries.size());
    std::printf(
        "%-14s %8" PRIu64 " %8" PRIu64 " %2d | %12.0f %12" PRIu64
        " | %12.0f %12" PRIu64 " | %10.0f %12.0f\n",
        choice == AlgorithmChoice::kIndexedLookupEager ? "IndexedLookup"
        : choice == AlgorithmChoice::kScanEager        ? "ScanEager"
                                                       : "Stack",
        config.small, config.large, config.k,
        static_cast<double>(batch.stats.match_ops) / n,
        choice == AlgorithmChoice::kStack ? uint64_t{0} : predicted_matches,
        static_cast<double>(batch.stats.postings_read) / n, sum_si,
        static_cast<double>(batch.stats.page_reads) / n,
        static_cast<double>(batch.stats.dewey_comparisons) / n);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace xksearch

int main() {
  using xksearch::bench::Config;
  using xksearch::bench::Corpus;

  Corpus& corpus = Corpus::Get();
  std::printf("\nTable 1 reproduction: measured per-query operation counts "
              "(cold cache, avg of 8 queries)\n\n");
  xksearch::bench::PrintHeader();

  const std::vector<Config> configs = {
      {10, 10, 2},       {10, 1000, 2},    {10, 100000, 2},
      {100, 100000, 2},  {1000, 100000, 2}, {10000, 100000, 2},
      {10, 100000, 3},   {10, 100000, 5},  {1000, 1000, 3},
  };
  for (const Config& config : configs) {
    xksearch::bench::RunConfig(corpus.system(), config);
  }

  std::printf(
      "Reading the table: IndexedLookup's match_ops column must equal the\n"
      "2(k-1)|S1| prediction and stay flat as |Sk| grows; ScanEager's and\n"
      "Stack's postings column must track sum|Si|. Page reads follow the\n"
      "same laws with the per-page blocking factor divided out.\n");
  return 0;
}
