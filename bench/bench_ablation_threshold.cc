// Ablation X5: the algorithm auto-selection threshold. The engine picks
// Indexed Lookup Eager when max_freq/min_freq >= threshold, else Scan
// Eager (the paper's guidance, Section 6). This sweep runs a mixed
// workload — skewed and balanced queries — under different thresholds:
// threshold 1 forces IL everywhere, a huge threshold forces Scan
// everywhere, and intermediate values should dominate both extremes.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunThreshold(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0));
  Corpus& corpus = Corpus::Get();

  // A mixed workload: heavy skew, mild skew, and balanced shapes.
  std::vector<std::vector<std::string>> queries;
  for (const std::vector<uint64_t>& shape :
       {std::vector<uint64_t>{10, 100000}, std::vector<uint64_t>{100, 10000},
        std::vector<uint64_t>{1000, 10000}, std::vector<uint64_t>{1000, 1000},
        std::vector<uint64_t>{10000, 10000}}) {
    for (auto& q : corpus.Queries(shape, 8)) queries.push_back(std::move(q));
  }

  SearchOptions options;
  options.algorithm = AlgorithmChoice::kAuto;
  options.auto_ratio_threshold = threshold;
  options.use_disk_index = true;
  WarmUp(corpus.system());

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatch(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}

BENCHMARK(RunThreshold)
    ->Arg(1)          // always Indexed Lookup
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)          // the engine default
    ->Arg(16)
    ->Arg(64)
    ->Arg(1000000)    // always Scan Eager
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
