#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "gen/dblp_generator.h"

namespace xksearch {
namespace bench {

namespace {

size_t PapersFromEnv() {
  const char* env = std::getenv("XKS_BENCH_PAPERS");
  if (env == nullptr) return 100000;
  const long long v = std::atoll(env);
  return v < 1000 ? 1000 : static_cast<size_t>(v);
}

// How many distinct keywords to plant per frequency class. Rare classes
// get more variants (they are cheap); the 100,000 class costs 200,000
// postings for its two variants alone.
size_t VariantsFor(uint64_t frequency) {
  if (frequency <= 100) return 10;
  if (frequency <= 1000) return 6;
  if (frequency <= 10000) return 5;
  // Figure 9 queries need up to four distinct 100,000-frequency lists.
  return 4;
}

}  // namespace

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

Corpus& Corpus::Get() {
  static Corpus* corpus = new Corpus();
  return *corpus;
}

Corpus::Corpus() : papers_(PapersFromEnv()) {
  DblpOptions options;
  options.papers = papers_;
  options.venues = 25;
  options.years_per_venue = 20;
  options.seed = 20050614;  // SIGMOD 2005

  for (uint64_t frequency : kFrequencies) {
    const uint64_t effective =
        std::min<uint64_t>(frequency, static_cast<uint64_t>(papers_));
    std::vector<std::string> names;
    for (size_t i = 0; i < VariantsFor(frequency); ++i) {
      std::string name =
          "kwf" + std::to_string(frequency) + "n" + std::to_string(i);
      options.plants.push_back({name, effective});
      names.push_back(std::move(name));
    }
    families_.emplace_back(frequency, std::move(names));
  }

  std::fprintf(stderr, "[bench] generating corpus (%zu papers)...\n",
               papers_);
  Result<Document> doc = GenerateDblp(options);
  CheckOk(doc.status(), "GenerateDblp");

  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  // Default: MemPageStore (page-count behaviour identical to files, no
  // tmp artifacts). XKS_BENCH_FILES=1 switches to real files so cold-run
  // timings include genuine file reads.
  if (std::getenv("XKS_BENCH_FILES") != nullptr) {
    build.disk.in_memory = false;
    build.disk_path_prefix = "/tmp/xks_bench_corpus";
  } else {
    build.disk.in_memory = true;
  }
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  CheckOk(system.status(), "XKSearch::BuildFromDocument");
  system_ = std::move(*system);
  std::fprintf(
      stderr,
      "[bench] corpus ready: %zu nodes, %zu terms, %llu postings, "
      "il=%u pages scan=%u pages\n",
      system_->document().node_count(), system_->index().term_count(),
      static_cast<unsigned long long>(system_->index().total_postings()),
      system_->disk_index()->il_page_count(),
      system_->disk_index()->scan_page_count());
}

const std::vector<std::string>& Corpus::KeywordsFor(uint64_t frequency) const {
  for (const auto& [freq, names] : families_) {
    if (freq == frequency) return names;
  }
  std::fprintf(stderr, "no keyword family for frequency %llu\n",
               static_cast<unsigned long long>(frequency));
  std::abort();
}

std::vector<std::vector<std::string>> Corpus::Queries(
    const std::vector<uint64_t>& frequencies, size_t count) const {
  // Deterministic per-shape sampling so every benchmark repetition sees
  // the same workload.
  uint64_t shape_seed = 0x9e3779b9;
  for (uint64_t f : frequencies) shape_seed = shape_seed * 1099511628211ull + f;
  Rng rng(shape_seed);

  std::vector<std::vector<std::string>> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    std::vector<std::string> query;
    std::vector<size_t> used_per_family(families_.size(), 0);
    for (uint64_t frequency : frequencies) {
      const std::vector<std::string>& family = KeywordsFor(frequency);
      // Distinct variants within one query (offset walk, random start).
      size_t family_index = 0;
      for (size_t i = 0; i < families_.size(); ++i) {
        if (families_[i].first == frequency) family_index = i;
      }
      const size_t start = rng.Uniform(family.size());
      const size_t pick =
          (start + used_per_family[family_index]) % family.size();
      ++used_per_family[family_index];
      query.push_back(family[pick]);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

BatchResult RunBatch(XKSearch& system,
                     const std::vector<std::vector<std::string>>& queries,
                     const SearchOptions& options) {
  BatchResult out;
  for (const std::vector<std::string>& query : queries) {
    Result<SearchResult> result = system.Search(query, options);
    CheckOk(result.status(), "Search");
    out.stats += result->stats;
    out.total_results += result->nodes.size();
  }
  return out;
}

BatchResult RunBatchCold(XKSearch& system,
                         const std::vector<std::vector<std::string>>& queries,
                         const SearchOptions& options) {
  BatchResult out;
  for (const std::vector<std::string>& query : queries) {
    CheckOk(system.disk_index()->DropCaches(), "DropCaches");
    Result<SearchResult> result = system.Search(query, options);
    CheckOk(result.status(), "Search");
    out.stats += result->stats;
    out.total_results += result->nodes.size();
  }
  return out;
}

void WarmUp(XKSearch& system) {
  CheckOk(system.disk_index()->WarmCaches(), "WarmCaches");
}

}  // namespace bench
}  // namespace xksearch
