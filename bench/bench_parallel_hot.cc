// Scalability micro-experiment: concurrent read-only queries over the
// in-memory index (the paper's system serves one web user at a time; a
// production deployment would multiplex). Query state is per-call and
// the index is immutable after build, so throughput should scale with
// threads until memory bandwidth saturates.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunParallel(benchmark::State& state) {
  Corpus& corpus = Corpus::Get();
  // One skewed query; in-memory lists (use_disk_index=false) so no
  // shared buffer pool is involved.
  const auto queries = corpus.Queries({10, 100000}, 8);
  SearchOptions options;
  options.algorithm = AlgorithmChoice::kIndexedLookupEager;

  for (auto _ : state) {
    const BatchResult batch = RunBatch(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}

BENCHMARK(RunParallel)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
