// Experiment X6: tree depth. Every complexity bound in Table 1 carries
// the maximum depth d as a factor (Dewey comparisons cost O(d)), and the
// Section 5 ancestor-checking pass does ~d checkLCA calls per SLCA. This
// bench runs identical frequency shapes over XMark-style corpora whose
// description recursion depth grows, holding everything else fixed.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "gen/xmark_generator.h"

namespace xksearch {
namespace bench {
namespace {

XKSearch& DepthCorpus(uint32_t description_depth) {
  // One lazily built engine per depth (a handful of depths only).
  static std::vector<std::pair<uint32_t, XKSearch*>>* cache =
      new std::vector<std::pair<uint32_t, XKSearch*>>();
  for (auto& [depth, system] : *cache) {
    if (depth == description_depth) return *system;
  }
  XmarkOptions options;
  options.items = 20000;
  options.people = 2000;
  options.description_depth = description_depth;
  options.plants = {{"rare", 10}, {"mid", 2000}, {"big", 20000}};
  Result<Document> doc = GenerateXmark(options);
  CheckOk(doc.status(), "GenerateXmark");
  std::fprintf(stderr, "[bench] xmark depth=%u: %zu nodes, max depth %u\n",
               description_depth, doc->node_count(), doc->max_depth());
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  CheckOk(system.status(), "BuildFromDocument");
  cache->emplace_back(description_depth, system->release());
  return *cache->back().second;
}

void RunDepth(benchmark::State& state, Semantics semantics) {
  XKSearch& system = DepthCorpus(static_cast<uint32_t>(state.range(0)));
  const std::vector<std::vector<std::string>> queries = {
      {"rare", "big"}, {"rare", "mid"}, {"mid", "big"}};

  SearchOptions options;
  options.algorithm = AlgorithmChoice::kIndexedLookupEager;
  options.use_disk_index = true;
  options.semantics = semantics;
  WarmUp(system);

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatch(system, queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["dewey_cmp_per_query"] =
      static_cast<double>(batch.stats.dewey_comparisons) /
      static_cast<double>(queries.size());
  state.counters["match_ops_per_query"] =
      static_cast<double>(batch.stats.match_ops) /
      static_cast<double>(queries.size());
}

BENCHMARK_CAPTURE(RunDepth, Slca, Semantics::kSlca)
    ->Arg(0)
    ->Arg(2)
    ->Arg(5)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK_CAPTURE(RunDepth, AllLca, Semantics::kAllLca)
    ->Arg(0)
    ->Arg(2)
    ->Arg(5)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
