// Ablation X1: the Indexed Lookup Eager buffer size B (Section 3.1).
//
// B controls how eagerly confirmed SLCAs are delivered: with B = 1 the
// first answer is pipelined out as soon as Lemma 2 confirms it; with
// B = |S1| the algorithm degenerates into a blocking one that reports
// everything at the end. The result set never changes — only the latency
// to the first answer does — so this ablation measures both total batch
// time and the time until the first emitted SLCA.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

void RunBlockSize(benchmark::State& state) {
  const size_t block_size = static_cast<size_t>(state.range(0));
  Corpus& corpus = Corpus::Get();
  // Sizeable small list so that emission batching is visible.
  const auto queries = corpus.Queries({10000, 100000}, 8);

  SearchOptions options;
  options.algorithm = AlgorithmChoice::kIndexedLookupEager;
  options.use_disk_index = true;
  options.block_size = block_size;
  WarmUp(corpus.system());

  double first_result_us = 0;
  size_t timed_queries = 0;
  for (auto _ : state) {
    for (const auto& query : queries) {
      const Clock::time_point start = Clock::now();
      bool first = true;
      Result<SearchResult> result = corpus.system().SearchStreaming(
          query, options, [&](const DeweyId&) {
            if (first) {
              first_result_us += std::chrono::duration<double, std::micro>(
                                     Clock::now() - start)
                                     .count();
              first = false;
            }
          });
      CheckOk(result.status(), "SearchStreaming");
      if (!first) ++timed_queries;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["first_result_us"] =
      timed_queries == 0 ? 0.0
                         : first_result_us / static_cast<double>(timed_queries);
}

BENCHMARK(RunBlockSize)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Arg(100000)  // effectively blocking: B >= |S1|
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
