#ifndef XKSEARCH_BENCH_BENCH_COMMON_H_
#define XKSEARCH_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/xksearch.h"

namespace xksearch {
namespace bench {

/// Frequency classes used throughout the paper's evaluation (Section 6).
inline constexpr uint64_t kFrequencies[] = {10, 100, 1000, 10000, 100000};

/// Number of queries averaged per experiment point ("a program randomly
/// chose forty queries for each experiment").
inline constexpr size_t kQueriesPerPoint = 40;

/// \brief The shared benchmark corpus: a DBLP-shaped document sized like
/// the paper's 83 MB snapshot, with keyword families planted at the exact
/// frequencies the experiments sweep.
///
/// Built once per benchmark binary (lazily); the scale can be reduced via
/// the XKS_BENCH_PAPERS environment variable (default 100000 papers,
/// which supports the full 100,000 frequency class).
class Corpus {
 public:
  /// The singleton instance, built on first use.
  static Corpus& Get();

  XKSearch& system() const { return *system_; }

  /// All planted keywords with exactly `frequency` occurrences. Classes
  /// above the corpus size are clamped to it (still reported under the
  /// requested class so sweeps stay uniform).
  const std::vector<std::string>& KeywordsFor(uint64_t frequency) const;

  /// `count` deterministic pseudo-random queries whose i-th keyword has
  /// frequency `frequencies[i]`; keywords within a query are distinct.
  std::vector<std::vector<std::string>> Queries(
      const std::vector<uint64_t>& frequencies, size_t count) const;

  size_t papers() const { return papers_; }

 private:
  Corpus();

  size_t papers_;
  std::unique_ptr<XKSearch> system_;
  std::vector<std::pair<uint64_t, std::vector<std::string>>> families_;
};

/// Runs one query batch and returns accumulated stats; aborts the process
/// on error (benchmarks have no useful failure mode).
struct BatchResult {
  QueryStats stats;
  size_t total_results = 0;
};
BatchResult RunBatch(XKSearch& system,
                     const std::vector<std::vector<std::string>>& queries,
                     const SearchOptions& options);

/// Cold-cache variant: drops the disk index's buffer pools before every
/// query, so stats.page_reads reflects a cold run of each query (the
/// paper's Figures 11-13 setting). Requires options.use_disk_index.
BatchResult RunBatchCold(XKSearch& system,
                         const std::vector<std::vector<std::string>>& queries,
                         const SearchOptions& options);

/// Ensures both buffer pools are fully warmed (hot-cache experiments).
void WarmUp(XKSearch& system);

/// Dies with a message if `status` is not OK.
void CheckOk(const Status& status, const char* what);

}  // namespace bench
}  // namespace xksearch

#endif  // XKSEARCH_BENCH_BENCH_COMMON_H_
