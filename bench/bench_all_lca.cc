// Experiment X3 (Section 5 extension): the cost of the ELCA (XRANK) and
// all-LCA semantics
// relative to only the smallest ones. The ancestor-checking pass adds at
// most 2k right-match probes per ancestor of each SLCA, so on shallow
// DBLP-like trees the overhead stays within a small constant factor.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunSemantics(benchmark::State& state, Semantics semantics) {
  const uint64_t small = static_cast<uint64_t>(state.range(0));
  const uint64_t large = static_cast<uint64_t>(state.range(1));
  Corpus& corpus = Corpus::Get();
  const auto queries = corpus.Queries({small, large}, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = AlgorithmChoice::kIndexedLookupEager;
  options.use_disk_index = true;
  options.semantics = semantics;
  WarmUp(corpus.system());

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatch(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["results_per_query"] =
      static_cast<double>(batch.total_results) /
      static_cast<double>(queries.size());
  state.counters["match_ops_per_query"] =
      static_cast<double>(batch.stats.match_ops) /
      static_cast<double>(queries.size());
}

void SemanticsArgs(benchmark::internal::Benchmark* b) {
  b->Args({10, 1000})
      ->Args({10, 100000})
      ->Args({1000, 100000})
      ->Args({10000, 100000})
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunSemantics, Slca, Semantics::kSlca)->Apply(SemanticsArgs);
BENCHMARK_CAPTURE(RunSemantics, Elca, Semantics::kElca)->Apply(SemanticsArgs);
BENCHMARK_CAPTURE(RunSemantics, AllLca, Semantics::kAllLca)
    ->Apply(SemanticsArgs);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
