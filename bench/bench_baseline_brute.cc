// Baseline: the O(d * prod |Si|) brute force of Section 3, versus the
// Indexed Lookup Eager algorithm, on small in-memory lists. The paper
// dismisses the brute force for being exponential in k and blocking;
// this bench shows the blow-up directly — every added list multiplies
// its cost while IL stays essentially linear in |S1|.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "slca/brute_force.h"
#include "slca/keyword_list.h"
#include "slca/slca.h"

namespace xksearch {
namespace bench {
namespace {

std::vector<std::vector<DeweyId>> MakeLists(size_t k, size_t size) {
  Rng rng(1234);
  std::vector<std::vector<DeweyId>> lists(k);
  for (auto& list : lists) {
    std::vector<DeweyId> ids;
    for (size_t i = 0; i < size; ++i) {
      ids.push_back(DeweyId({0, static_cast<uint32_t>(rng.Uniform(50)),
                             static_cast<uint32_t>(rng.Uniform(20)),
                             static_cast<uint32_t>(rng.Uniform(10))}));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    list = std::move(ids);
  }
  return lists;
}

void BruteForce(benchmark::State& state) {
  const auto lists = MakeLists(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    std::vector<DeweyId> result = BruteForceSlca(lists);
    benchmark::DoNotOptimize(result.size());
  }
}

void IndexedLookup(benchmark::State& state) {
  const auto lists = MakeLists(static_cast<size_t>(state.range(0)),
                               static_cast<size_t>(state.range(1)));
  QueryStats stats;
  std::vector<std::unique_ptr<KeywordList>> owned;
  std::vector<KeywordList*> ptrs;
  for (const auto& list : lists) {
    owned.push_back(std::make_unique<VectorKeywordList>(&list, &stats));
    ptrs.push_back(owned.back().get());
  }
  for (auto _ : state) {
    Result<std::vector<DeweyId>> result =
        ComputeSlcaList(SlcaAlgorithm::kIndexedLookupEager, ptrs, {}, &stats);
    benchmark::DoNotOptimize(result.ok());
  }
}

void BaselineArgs(benchmark::internal::Benchmark* b) {
  for (int64_t k : {2, 3, 4}) {
    for (int64_t size : {4, 8, 16, 32}) {
      b->Args({k, size});
    }
  }
  b->Unit(benchmark::kMicrosecond)->MinTime(0.05);
}

BENCHMARK(BruteForce)->Apply(BaselineArgs);
BENCHMARK(IndexedLookup)->Apply(BaselineArgs);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
