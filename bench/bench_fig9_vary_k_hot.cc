// Figure 9: varying the number of keywords with frequencies held
// constant, hot cache. Each query has one "small" list (frequency 10 /
// 100 / 1000 / 10000) and k-1 lists at frequency 100,000.
//
// Expected shape: Indexed Lookup Eager's cost grows only mildly with k
// (it performs 2(k-1)|S1| probes); Scan Eager and Stack pay for reading
// every added 100,000-node list in full.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunFig9(benchmark::State& state, AlgorithmChoice algorithm) {
  const uint64_t small = static_cast<uint64_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Corpus& corpus = Corpus::Get();

  std::vector<uint64_t> frequencies = {small};
  for (int i = 1; i < k; ++i) frequencies.push_back(100000);
  const auto queries = corpus.Queries(frequencies, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = algorithm;
  options.use_disk_index = true;
  WarmUp(corpus.system());

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatch(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["results_per_query"] =
      static_cast<double>(batch.total_results) /
      static_cast<double>(queries.size());
  state.counters["postings_per_query"] =
      static_cast<double>(batch.stats.postings_read) /
      static_cast<double>(queries.size());
}

void Fig9Args(benchmark::internal::Benchmark* b) {
  for (int64_t small : {10, 100, 1000, 10000}) {
    for (int64_t k : {2, 3, 4, 5}) {
      b->Args({small, k});
    }
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunFig9, IndexedLookup,
                  AlgorithmChoice::kIndexedLookupEager)
    ->Apply(Fig9Args);
BENCHMARK_CAPTURE(RunFig9, ScanEager, AlgorithmChoice::kScanEager)
    ->Apply(Fig9Args);
BENCHMARK_CAPTURE(RunFig9, Stack, AlgorithmChoice::kStack)->Apply(Fig9Args);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
