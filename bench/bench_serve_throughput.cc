// Closed-loop load generator for the serving layer: N client threads
// drive QueryService with Zipf-distributed queries (real keyword traffic
// is Zipf-shaped, so the result cache absorbs the head while the worker
// pool absorbs the tail) and we report throughput + tail latency as the
// worker count sweeps.
//
// Unlike the figure benches this is a standalone binary, not a
// google-benchmark harness: a load generator needs its own clients,
// warmup and per-request latency capture. Results go to stdout as a
// human-readable table plus one JSON object per configuration, which
// tools/bench_to_csv.py ingests alongside the google-benchmark output.
//
// Two regimes are swept by default:
//   io_floor_us=0    pure in-memory engine; on a single hardware thread
//                    this is CPU-bound and workers cannot help.
//   io_floor_us=200  each cache miss additionally waits 200us in the
//                    worker (QueryServiceOptions::synthetic_backend_latency),
//                    emulating a cold-cache storage tier; the pool
//                    overlaps those stalls, so throughput scales with
//                    workers even on one core.
//
// --batched switches to the cross-query batching sweep instead: result
// cache off (every request takes the cold path), batch window x client
// count grid at a fixed worker count and io floor. The window=0 rows run
// with single-flight off and no batcher -- the pre-batching dispatch
// path -- so the speedup column isolates what coalescing + shared-decode
// batching buy under overlapping Zipf traffic (EXPERIMENTS.md X14).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gen/query_sampler.h"
#include "serve/query_service.h"

namespace xksearch {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  size_t papers = 20000;
  size_t clients = 16;
  std::vector<size_t> workers = {1, 2, 4, 8};
  std::vector<uint64_t> io_floor_us = {0, 200};
  // A pool much larger than the cache budget: the Zipf head stays hot
  // (cache hits) while the tail keeps evicting, so steady state always
  // has a miss stream for the worker pool to absorb. A pool that fits
  // in cache entirely would measure nothing but the submit thread.
  size_t pool_queries = 4096;
  double zipf_s = 0.9;
  size_t duration_ms = 1500;
  // Long enough for the cache head to reach steady state even with one
  // worker, where the miss path fills the cache slowly.
  size_t warmup_ms = 1000;
  size_t queue_capacity = 4096;
  // Small enough that the Zipf tail keeps evicting at steady state (the
  // head stays resident); with the whole pool cached the run would
  // converge to 100% hits and measure only the submit thread.
  size_t cache_mb = 2;
  bool enable_cache = true;
  // --batched sweep: batch window x concurrent clients, cache disabled.
  bool batched_sweep = false;
  std::vector<uint64_t> windows_us = {0, 50, 200};
  std::vector<size_t> client_counts = {1, 2, 4, 8, 16};
  size_t batch_max = 16;
  size_t batched_workers = 4;
  uint64_t batched_io_floor_us = 200;
};

/// Inverse-CDF sampler over ranks 1..n with weight 1/rank^s.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(Rng* rng) const {
    const double u = rng->UniformDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct RunResult {
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
  double qps = 0;
  double hit_ratio = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t coalesced = 0;
  uint64_t batches = 0;
  uint64_t shared_decodes = 0;
};

uint64_t PercentileUs(std::vector<uint64_t>* nanos, double p) {
  if (nanos->empty()) return 0;
  const size_t idx = std::min(
      nanos->size() - 1,
      static_cast<size_t>(p * static_cast<double>(nanos->size())));
  std::nth_element(nanos->begin(), nanos->begin() + idx, nanos->end());
  return (*nanos)[idx] / 1000;
}

struct RunParams {
  size_t workers = 1;
  uint64_t io_floor_us = 0;
  size_t clients = 16;
  uint64_t window_us = 0;
  bool single_flight = true;
};

RunResult RunOnce(const XKSearch& system,
                  const std::vector<std::vector<std::string>>& queries,
                  const Config& config, const RunParams& params) {
  serve::QueryServiceOptions options;
  options.pool.workers = params.workers;
  options.pool.queue_capacity = config.queue_capacity;
  options.cache.capacity_bytes = config.cache_mb << 20;
  options.enable_cache = config.enable_cache;
  options.single_flight = params.single_flight;
  options.batch_window_us = params.window_us;
  options.batch_max = config.batch_max;
  options.synthetic_backend_latency =
      std::chrono::microseconds(params.io_floor_us);
  serve::QueryService service(&system, options);

  const ZipfSampler zipf(queries.size(), config.zipf_s);
  std::atomic<bool> warming{true};
  std::atomic<bool> running{true};
  struct ClientState {
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t failed = 0;
    std::vector<uint64_t> latencies_ns;
  };
  std::vector<ClientState> states(params.clients);

  std::vector<std::thread> clients;
  clients.reserve(params.clients);
  for (size_t c = 0; c < params.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0x5eed + c * 977 + params.workers * 31 + params.io_floor_us +
              params.window_us * 131);
      ClientState& state = states[c];
      state.latencies_ns.reserve(1 << 16);
      while (running.load(std::memory_order_relaxed)) {
        const std::vector<std::string>& query = queries[zipf.Sample(&rng)];
        const Clock::time_point start = Clock::now();
        const Result<serve::QueryResponse> response = service.Search(query);
        const Clock::time_point end = Clock::now();
        const bool measured = !warming.load(std::memory_order_relaxed);
        if (response.ok()) {
          if (measured) {
            ++state.ok;
            state.latencies_ns.push_back(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                     start)
                    .count()));
          }
        } else if (response.status().IsUnavailable()) {
          if (measured) ++state.rejected;
          std::this_thread::yield();  // back off instead of hammering
        } else if (measured) {
          ++state.failed;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(config.warmup_ms));
  const auto cache_before = service.cache_stats();
  warming.store(false, std::memory_order_relaxed);
  const Clock::time_point measure_start = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
  running.store(false, std::memory_order_relaxed);
  const Clock::time_point measure_end = Clock::now();
  for (std::thread& client : clients) client.join();
  const auto cache_after = service.cache_stats();

  RunResult result;
  std::vector<uint64_t> latencies;
  for (const ClientState& state : states) {
    result.ok += state.ok;
    result.rejected += state.rejected;
    result.failed += state.failed;
    latencies.insert(latencies.end(), state.latencies_ns.begin(),
                     state.latencies_ns.end());
  }
  const double seconds =
      std::chrono::duration<double>(measure_end - measure_start).count();
  result.qps = seconds > 0 ? static_cast<double>(result.ok) / seconds : 0;
  const uint64_t hits = cache_after.hits - cache_before.hits;
  const uint64_t misses = cache_after.misses - cache_before.misses;
  result.hit_ratio =
      hits + misses == 0
          ? 0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  result.p50_us = PercentileUs(&latencies, 0.50);
  result.p95_us = PercentileUs(&latencies, 0.95);
  result.p99_us = PercentileUs(&latencies, 0.99);
  result.coalesced = service.metrics().coalesced_queries;
  result.batches = service.metrics().batches;
  result.shared_decodes = service.metrics().shared_decodes;
  return result;
}

std::vector<std::vector<std::string>> BuildQueryPool(const XKSearch& system,
                                                     const Config& config) {
  QuerySampler sampler(system.index());
  Rng rng(4242);
  // Two-keyword queries with a skewed frequency pair, the paper's core
  // query shape; a wide tolerance keeps the pool diverse. Sample in
  // batches and dedupe (order-insensitively, matching the cache key)
  // until the pool is full of distinct queries — duplicates would alias
  // Zipf ranks and silently inflate the hit ratio.
  std::vector<std::vector<std::string>> usable;
  std::set<std::vector<std::string>> seen;
  for (int attempt = 0; attempt < 64 && usable.size() < config.pool_queries;
       ++attempt) {
    std::vector<std::vector<std::string>> batch = sampler.SampleQueries(
        &rng, config.pool_queries, {20, 400}, /*tolerance=*/0.9);
    for (auto& query : batch) {
      if (query.empty() || usable.size() >= config.pool_queries) continue;
      std::vector<std::string> canonical = query;
      std::sort(canonical.begin(), canonical.end());
      if (seen.insert(std::move(canonical)).second) {
        usable.push_back(std::move(query));
      }
    }
  }
  return usable;
}

uint64_t ParseU64(const char* text) {
  return static_cast<uint64_t>(std::strtoull(text, nullptr, 10));
}

std::vector<size_t> ParseList(const char* text) {
  std::vector<size_t> out;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!item.empty()) out.push_back(static_cast<size_t>(ParseU64(item.c_str())));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--papers=")) {
      config.papers = ParseU64(v);
    } else if (const char* v = value("--clients=")) {
      config.clients = ParseU64(v);
    } else if (const char* v = value("--workers=")) {
      config.workers = ParseList(v);
    } else if (const char* v = value("--io-floor-us=")) {
      const std::vector<size_t> list = ParseList(v);
      config.io_floor_us.assign(list.begin(), list.end());
    } else if (const char* v = value("--pool-queries=")) {
      config.pool_queries = ParseU64(v);
    } else if (const char* v = value("--zipf-s=")) {
      config.zipf_s = std::atof(v);
    } else if (const char* v = value("--duration-ms=")) {
      config.duration_ms = ParseU64(v);
    } else if (const char* v = value("--warmup-ms=")) {
      config.warmup_ms = ParseU64(v);
    } else if (const char* v = value("--cache-mb=")) {
      config.cache_mb = ParseU64(v);
    } else if (const char* v = value("--queue-capacity=")) {
      config.queue_capacity = ParseU64(v);
    } else if (const char* v = value("--windows-us=")) {
      const std::vector<size_t> list = ParseList(v);
      config.windows_us.assign(list.begin(), list.end());
    } else if (const char* v = value("--client-counts=")) {
      config.client_counts = ParseList(v);
    } else if (const char* v = value("--batch-max=")) {
      config.batch_max = ParseU64(v);
    } else if (std::strcmp(arg, "--batched") == 0) {
      config.batched_sweep = true;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      config.enable_cache = false;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --papers= --clients= --workers=l "
                   "--io-floor-us=l --pool-queries= --zipf-s= --duration-ms= "
                   "--warmup-ms= --cache-mb= --queue-capacity= --no-cache "
                   "--batched --windows-us=l --client-counts=l --batch-max=\n",
                   arg);
      return 2;
    }
  }

  std::fprintf(stderr, "building corpus (%zu papers)...\n", config.papers);
  DblpOptions gen;
  gen.papers = config.papers;
  gen.seed = 1234;
  gen.zipf_exponent = 1.0;
  Result<Document> doc = GenerateDblp(gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "corpus: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromDocument(std::move(*doc));
  if (!built.ok()) {
    std::fprintf(stderr, "index: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const XKSearch& system = **built;
  const std::vector<std::vector<std::string>> queries =
      BuildQueryPool(system, config);
  if (queries.empty()) {
    std::fprintf(stderr, "query pool came out empty; enlarge --papers\n");
    return 1;
  }
  std::fprintf(stderr, "query pool: %zu queries, zipf_s=%.2f, %zu clients\n",
               queries.size(), config.zipf_s, config.clients);

  if (config.batched_sweep) {
    // Cross-query batching sweep: cache off so every request is a cold
    // dispatch; window=0 rows disable single-flight and the batcher (the
    // pre-batching path), so speedup vs them isolates the batching win.
    config.enable_cache = false;
    std::printf("%10s %8s %10s %11s %9s %9s %9s %9s\n", "window_us", "clients",
                "qps", "coalesced", "batches", "p50_us", "p95_us", "p99_us");
    for (const size_t clients : config.client_counts) {
      double base_qps = 0;
      for (const uint64_t window : config.windows_us) {
        RunParams params;
        params.workers = config.batched_workers;
        params.io_floor_us = config.batched_io_floor_us;
        params.clients = clients;
        params.window_us = window;
        params.single_flight = window > 0;
        const RunResult r = RunOnce(system, queries, config, params);
        if (window == 0) base_qps = r.qps;
        std::printf("%10" PRIu64 " %8zu %10.0f %11" PRIu64 " %9" PRIu64
                    " %9" PRIu64 " %9" PRIu64 " %9" PRIu64 "  (%.2fx)\n",
                    window, clients, r.qps, r.coalesced, r.batches, r.p50_us,
                    r.p95_us, r.p99_us, base_qps > 0 ? r.qps / base_qps : 0.0);
        std::printf(
            "{\"bench\":\"serve_batched\",\"window_us\":%" PRIu64
            ",\"clients\":%zu,\"workers\":%zu,\"io_floor_us\":%" PRIu64
            ",\"qps\":%.1f,\"coalesced\":%" PRIu64 ",\"batches\":%" PRIu64
            ",\"shared_decodes\":%" PRIu64 ",\"p50_us\":%" PRIu64
            ",\"p95_us\":%" PRIu64 ",\"p99_us\":%" PRIu64 ",\"ok\":%" PRIu64
            ",\"rejected\":%" PRIu64 ",\"failed\":%" PRIu64 "}\n",
            window, clients, config.batched_workers, config.batched_io_floor_us,
            r.qps, r.coalesced, r.batches, r.shared_decodes, r.p50_us, r.p95_us,
            r.p99_us, r.ok, r.rejected, r.failed);
        std::fflush(stdout);
      }
    }
    return 0;
  }

  std::printf("%8s %12s %10s %8s %9s %9s %9s %10s\n", "workers", "io_floor_us",
              "qps", "hit", "p50_us", "p95_us", "p99_us", "rejected");
  for (const uint64_t io_floor : config.io_floor_us) {
    double base_qps = 0;
    for (const size_t workers : config.workers) {
      RunParams params;
      params.workers = workers;
      params.io_floor_us = io_floor;
      params.clients = config.clients;
      const RunResult r = RunOnce(system, queries, config, params);
      if (base_qps == 0) base_qps = r.qps;
      std::printf("%8zu %12" PRIu64 " %10.0f %7.2f%% %9" PRIu64 " %9" PRIu64
                  " %9" PRIu64 " %10" PRIu64 "  (%.2fx)\n",
                  workers, io_floor, r.qps, 100 * r.hit_ratio, r.p50_us,
                  r.p95_us, r.p99_us, r.rejected,
                  base_qps > 0 ? r.qps / base_qps : 0.0);
      // Machine-readable row for tools/bench_to_csv.py.
      std::printf(
          "{\"bench\":\"serve_throughput\",\"workers\":%zu,"
          "\"io_floor_us\":%" PRIu64 ",\"clients\":%zu,\"qps\":%.1f,"
          "\"hit_ratio\":%.4f,\"p50_us\":%" PRIu64 ",\"p95_us\":%" PRIu64
          ",\"p99_us\":%" PRIu64 ",\"ok\":%" PRIu64 ",\"rejected\":%" PRIu64
          ",\"failed\":%" PRIu64 "}\n",
          workers, io_floor, config.clients, r.qps, r.hit_ratio, r.p50_us,
          r.p95_us, r.p99_us, r.ok, r.rejected, r.failed);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace xksearch

int main(int argc, char** argv) { return xksearch::Main(argc, argv); }
