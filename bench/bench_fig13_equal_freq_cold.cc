// Figure 13: varying the number of keywords with equal-size lists, cold
// cache. With no skew the three algorithms fault in comparable numbers
// of pages; the cursor-scan variants win on constant factors, and the
// Indexed Lookup probes cost extra internal-node descents.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunFig13(benchmark::State& state, AlgorithmChoice algorithm) {
  const uint64_t frequency = static_cast<uint64_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Corpus& corpus = Corpus::Get();

  const std::vector<uint64_t> frequencies(static_cast<size_t>(k), frequency);
  const auto queries = corpus.Queries(frequencies, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = algorithm;
  options.use_disk_index = true;

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatchCold(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["page_reads_per_query"] =
      static_cast<double>(batch.stats.page_reads) /
      static_cast<double>(queries.size());
}

void Fig13Args(benchmark::internal::Benchmark* b) {
  for (int64_t frequency : {10, 100, 1000, 10000}) {
    for (int64_t k : {2, 3, 4, 5}) {
      b->Args({frequency, k});
    }
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunFig13, IndexedLookup,
                  AlgorithmChoice::kIndexedLookupEager)
    ->Apply(Fig13Args);
BENCHMARK_CAPTURE(RunFig13, ScanEager, AlgorithmChoice::kScanEager)
    ->Apply(Fig13Args);
BENCHMARK_CAPTURE(RunFig13, Stack, AlgorithmChoice::kStack)->Apply(Fig13Args);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
