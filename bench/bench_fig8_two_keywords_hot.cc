// Figure 8: two keywords, hot cache. The small list's frequency is held
// at 10 / 100 / 1000 while the large list's frequency sweeps up to
// 100,000. Each iteration runs the paper's batch of 40 random queries.
//
// Expected shape: Indexed Lookup Eager stays nearly flat as the large
// list grows (its cost depends on |S1| times a log of |S2|); Scan Eager
// and Stack grow linearly with the large list, losing by orders of
// magnitude at high skew.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunFig8(benchmark::State& state, AlgorithmChoice algorithm) {
  const uint64_t small = static_cast<uint64_t>(state.range(0));
  const uint64_t large = static_cast<uint64_t>(state.range(1));
  Corpus& corpus = Corpus::Get();
  const auto queries = corpus.Queries({small, large}, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = algorithm;
  options.use_disk_index = true;
  WarmUp(corpus.system());

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatch(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["results_per_query"] =
      static_cast<double>(batch.total_results) /
      static_cast<double>(queries.size());
  state.counters["match_ops_per_query"] =
      static_cast<double>(batch.stats.match_ops) /
      static_cast<double>(queries.size());
  state.counters["postings_per_query"] =
      static_cast<double>(batch.stats.postings_read) /
      static_cast<double>(queries.size());
}

void Fig8Args(benchmark::internal::Benchmark* b) {
  for (int64_t small : {10, 100, 1000}) {
    for (int64_t large : {10, 100, 1000, 10000, 100000}) {
      if (large >= small) b->Args({small, large});
    }
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunFig8, IndexedLookup,
                  AlgorithmChoice::kIndexedLookupEager)
    ->Apply(Fig8Args);
BENCHMARK_CAPTURE(RunFig8, ScanEager, AlgorithmChoice::kScanEager)
    ->Apply(Fig8Args);
BENCHMARK_CAPTURE(RunFig8, Stack, AlgorithmChoice::kStack)->Apply(Fig8Args);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
