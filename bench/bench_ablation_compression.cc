// Ablation X2: the Dewey compression machinery of Section 4 — the
// level-table bit packing of Indexed Lookup keys and the prefix-delta
// coding of scan blocks. Compares index size (pages) and query cost
// between compressed and uncompressed builds of the same corpus.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "gen/dblp_generator.h"

namespace xksearch {
namespace bench {
namespace {

// A self-contained mid-size corpus (independent of the shared one, so
// both variants can be built without doubling peak memory).
std::unique_ptr<XKSearch> BuildVariant(bool compressed) {
  DblpOptions gen;
  gen.papers = 30000;
  gen.seed = 7;
  gen.plants = {{"rare", 10}, {"mid", 1000}, {"big", 30000}};
  Result<Document> doc = GenerateDblp(gen);
  CheckOk(doc.status(), "GenerateDblp");

  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  build.disk.compress_dewey = compressed;
  build.disk.delta_compress = compressed;
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  CheckOk(system.status(), "BuildFromDocument");
  return std::move(*system);
}

XKSearch& Variant(bool compressed) {
  static XKSearch* on = BuildVariant(true).release();
  static XKSearch* off = BuildVariant(false).release();
  return compressed ? *on : *off;
}

void RunCompression(benchmark::State& state) {
  const bool compressed = state.range(0) != 0;
  XKSearch& system = Variant(compressed);
  const std::vector<std::vector<std::string>> queries = {
      {"rare", "big"}, {"mid", "big"}, {"rare", "mid", "big"}};

  SearchOptions options;
  options.use_disk_index = true;

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatchCold(system, queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["il_pages"] =
      static_cast<double>(system.disk_index()->il_page_count());
  state.counters["scan_pages"] =
      static_cast<double>(system.disk_index()->scan_page_count());
  state.counters["page_reads_per_query"] =
      static_cast<double>(batch.stats.page_reads) /
      static_cast<double>(queries.size());
}

BENCHMARK(RunCompression)
    ->Arg(1)  // compressed (paper Section 4)
    ->Arg(0)  // fixed-width keys, no delta coding
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
