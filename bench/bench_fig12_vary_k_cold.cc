// Figure 12: varying the number of keywords (one small list, the rest at
// frequency 100,000), cold cache. See bench_fig11 for the cold protocol.
//
// Expected shape: each extra 100,000-node list adds only ~2|S1| probe
// descents for Indexed Lookup, but a full list's worth of page faults
// for Scan Eager and Stack.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunFig12(benchmark::State& state, AlgorithmChoice algorithm) {
  const uint64_t small = static_cast<uint64_t>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Corpus& corpus = Corpus::Get();

  std::vector<uint64_t> frequencies = {small};
  for (int i = 1; i < k; ++i) frequencies.push_back(100000);
  const auto queries = corpus.Queries(frequencies, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = algorithm;
  options.use_disk_index = true;

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatchCold(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["page_reads_per_query"] =
      static_cast<double>(batch.stats.page_reads) /
      static_cast<double>(queries.size());
}

void Fig12Args(benchmark::internal::Benchmark* b) {
  for (int64_t small : {10, 100, 1000, 10000}) {
    for (int64_t k : {2, 3, 4, 5}) {
      b->Args({small, k});
    }
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunFig12, IndexedLookup,
                  AlgorithmChoice::kIndexedLookupEager)
    ->Apply(Fig12Args);
BENCHMARK_CAPTURE(RunFig12, ScanEager, AlgorithmChoice::kScanEager)
    ->Apply(Fig12Args);
BENCHMARK_CAPTURE(RunFig12, Stack, AlgorithmChoice::kStack)->Apply(Fig12Args);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
