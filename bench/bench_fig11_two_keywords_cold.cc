// Figure 11: two keywords, cold cache — the buffer pool is dropped
// before every query, so each query pays its full complement of disk
// accesses. The reported time includes those faults; the counter
// page_reads_per_query is the paper's "number of disk accesses".
//
// Expected shape: Indexed Lookup Eager needs O(k|S1| log) leaf fetches
// regardless of the large list's length, while Scan Eager and Stack
// fault in the entire large list block by block.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace xksearch {
namespace bench {
namespace {

void RunFig11(benchmark::State& state, AlgorithmChoice algorithm) {
  const uint64_t small = static_cast<uint64_t>(state.range(0));
  const uint64_t large = static_cast<uint64_t>(state.range(1));
  Corpus& corpus = Corpus::Get();
  const auto queries = corpus.Queries({small, large}, kQueriesPerPoint);

  SearchOptions options;
  options.algorithm = algorithm;
  options.use_disk_index = true;

  BatchResult batch;
  for (auto _ : state) {
    batch = RunBatchCold(corpus.system(), queries, options);
    benchmark::DoNotOptimize(batch.total_results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
  state.counters["page_reads_per_query"] =
      static_cast<double>(batch.stats.page_reads) /
      static_cast<double>(queries.size());
  state.counters["results_per_query"] =
      static_cast<double>(batch.total_results) /
      static_cast<double>(queries.size());
}

void Fig11Args(benchmark::internal::Benchmark* b) {
  for (int64_t small : {10, 100, 1000}) {
    for (int64_t large : {10, 100, 1000, 10000, 100000}) {
      if (large >= small) b->Args({small, large});
    }
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.1);
}

BENCHMARK_CAPTURE(RunFig11, IndexedLookup,
                  AlgorithmChoice::kIndexedLookupEager)
    ->Apply(Fig11Args);
BENCHMARK_CAPTURE(RunFig11, ScanEager, AlgorithmChoice::kScanEager)
    ->Apply(Fig11Args);
BENCHMARK_CAPTURE(RunFig11, Stack, AlgorithmChoice::kStack)->Apply(Fig11Args);

}  // namespace
}  // namespace bench
}  // namespace xksearch

BENCHMARK_MAIN();
