#!/usr/bin/env bash
# Local CI: configure, build, and test the presets that gate a change.
#
#   release  full fast test suite under the optimized build
#   asan     AddressSanitizer+UBSan over the same fast suite
#   tsan     ThreadSanitizer over the concurrency-sensitive suites
#            (preset filter in CMakePresets.json)
#
# The fast presets exclude tests labeled `slow`; those (the long-run
# differential fuzz stages) run as a separate `ctest -L slow` stage on
# the release build afterwards.
#
# Usage: tools/ci.sh [preset ...]     (default: release asan tsan + slow)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
run_slow=0
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan tsan)
  run_slow=1
fi

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset"
done

if [ "$run_slow" -eq 1 ]; then
  # Focused rerun of the sharded-collection suites on the release build.
  # They already ran inside the fast tier (and the concurrency-sensitive
  # ones again under tsan via the preset filter); this stage exists so a
  # sharding regression is reported as its own line, not buried in the
  # full-suite output.
  echo "==> [sharded] sharded scatter-gather stage (release build)"
  ctest --test-dir build/release \
    -R '(Shard|ScatterGather|BalancedPartition|TermFilter)' \
    --output-on-failure
  # Same idea for the intra-query chunked execution suites: parity,
  # stitcher, chunk planning and the engine wiring as one visible line.
  echo "==> [parallel-slca] chunked intra-query stage (release build)"
  ctest --test-dir build/release -R 'ParallelSlca' --output-on-failure
  # Cross-query batching: single-flight coalescing, the batch scheduler,
  # shared decoded-list providers and the vectored multi-page read path
  # as one visible line, plus a short xk_fuzz batch-parity smoke (the
  # full soak rides in -L slow as xk_fuzz_long_batched).
  echo "==> [batched] cross-query batching stage (release build)"
  ctest --test-dir build/release \
    -R '(Batcher|SingleFlight|BatchListProvider|BatchedService|FetchMany|ReadPages)' \
    --output-on-failure
  ./build/release/tools/xk_fuzz --cases=30 --seed=910 --batch=4 \
    --no-shards --no-chunks
  # Crash consistency: the WAL frame/recovery suites plus the exhaustive
  # crash-point sweep (fast scale; the scale-3 run rides in -L slow).
  echo "==> [crash-recovery] WAL + crash-point sweep stage (release build)"
  ctest --test-dir build/release -R '(Wal|StagedStore|CrashRecovery)' \
    --output-on-failure
  # Decode-kernel portability: the whole fast suite again with the batch
  # decoders pinned to the scalar kernel — what a non-x86 or pre-SSE4
  # machine runs unconditionally. Any SIMD-only behavior difference
  # (result sets, match-op counts, corruption handling) fails here.
  echo "==> [scalar-decode] forced-scalar decode stage (release build)"
  XK_FORCE_SCALAR_DECODE=1 ctest --test-dir build/release \
    -LE 'slow|bench-smoke' --output-on-failure
  echo "==> [slow] long-run fuzz/stress stage (ctest -L slow, release build)"
  ctest --test-dir build/release -L slow --output-on-failure
  echo "==> [bench-smoke] benchmark smoke stage (ctest -L bench-smoke)"
  ctest --test-dir build/release -L bench-smoke --output-on-failure
fi
echo "ci: all presets passed (${presets[*]})"
