#!/usr/bin/env bash
# Local CI: configure, build, and test the presets that gate a change.
#
#   release  full test suite under the optimized build
#   tsan     ThreadSanitizer over the concurrency-sensitive suites
#            (preset filter in CMakePresets.json)
#
# Usage: tools/ci.sh [preset ...]     (default: release tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release tsan)
fi

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset"
done
echo "ci: all presets passed (${presets[*]})"
