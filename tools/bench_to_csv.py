#!/usr/bin/env python3
"""Converts benchmark output recorded in bench_output.txt into one CSV
per experiment, ready for plotting.

Usage: tools/bench_to_csv.py [bench_output.txt] [out_dir]

Pass "-" as the input to read from stdin, e.g.
  ./build/bench/bench_parallel_cold | tools/bench_to_csv.py - bench_csv

Two line formats are understood and may be mixed in one file:

google-benchmark console lines like
  RunFig8/IndexedLookup/10/100000/min_time:0.100  0.84 ms  ...  k=v ...
become a CSV row
  series,arg0,arg1,time_ms,<counter columns...>
in out_dir/RunFig8.csv.

JSON lines (as emitted by bench_serve_throughput and
bench_parallel_cold) like
  {"bench":"serve_throughput","workers":8,"qps":51234.0,...}
  {"bench":"parallel_disk","regime":"hot","workers":4,"qps":...}
become one row per line in out_dir/<bench>.csv, with every scalar field
except "bench" as a column.
"""

import collections
import csv
import json
import os
import re
import sys


LINE = re.compile(
    r"^(?P<bench>[A-Za-z_][\w]*)(?:/(?P<series>[A-Za-z_]\w*))?"
    r"(?P<args>(?:/-?\d+)*)"
    r"(?:/min_time:[\d.]+)?(?:/real_time)?(?:/threads:(?P<threads>\d+))?\s+"
    r"(?P<time>[\d.]+) (?P<unit>ns|us|ms|s)\s")
COUNTER = re.compile(r"([\w/]+)=([\d.]+[kMG]?)")
SCALE = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}


def parse_value(text):
    if text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    os.makedirs(out_dir, exist_ok=True)

    tables = collections.defaultdict(list)
    with (sys.stdin if src == "-" else open(src)) as f:
        for line in f:
            line = line.strip()
            if line.startswith("{"):
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                bench = obj.pop("bench", None)
                if bench is None or not isinstance(obj, dict):
                    continue
                tables[bench].append(
                    {k: v for k, v in obj.items()
                     if isinstance(v, (int, float, str, bool))})
                continue
            m = LINE.match(line)
            if not m:
                continue
            row = {
                "series": m.group("series") or "",
                "time_ms": float(m.group("time")) * SCALE[m.group("unit")],
            }
            for i, arg in enumerate(a for a in m.group("args").split("/") if a):
                row[f"arg{i}"] = arg
            if m.group("threads"):
                row["threads"] = m.group("threads")
            # Counters after the iteration column.
            for key, value in COUNTER.findall(line):
                if key in ("min_time", "real_time"):
                    continue
                row[key.replace("/", "_per_")] = parse_value(value)
            tables[m.group("bench")].append(row)

    for bench, rows in tables.items():
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        path = os.path.join(out_dir, f"{bench}.csv")
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        print(f"{path}: {len(rows)} rows")


if __name__ == "__main__":
    main()
