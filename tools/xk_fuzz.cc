// Standalone differential fuzzer for long runs.
//
// Generates seeded random collections, cross-checks the four SLCA
// algorithms (Indexed Lookup Eager, Scan Eager, Stack, brute force) and
// the disk path against the linear-time tree oracle — optionally with
// transient read faults injected into the disk stores — and exits
// non-zero with a replayable (seed, query) repro on any divergence.
//
//   xk_fuzz --cases=5000 --seed=1 --faults
//   xk_fuzz --seed=12345 --cases=1      # replay one reported case
//
// The in-CI runs live in ctest (differential_fuzz_test and the `slow`
// labeled long runs registered in tools/CMakeLists.txt); this binary is
// for overnight soaking and repro.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dewey/decode_kernels.h"
#include "fuzz/harness.h"

namespace {

uint64_t ParseFlag(const char* arg, const char* name, uint64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return fallback;
  return std::strtoull(arg + len + 1, nullptr, 10);
}

void Usage() {
  std::fprintf(stderr,
               "usage: xk_fuzz [--cases=N] [--seed=S] [--queries=N]\n"
               "               [--faults | --no-faults] [--no-disk]\n"
               "               [--shards=N | --no-shards]\n"
               "               [--threads=N | --no-chunks]\n"
               "               [--crashes=N] [--batch=N] [--no-simd]\n"
               "  --shards=N   check only shard count N (default: 1,2,4,7)\n"
               "  --no-shards  skip the sharded-collection checks\n"
               "  --threads=N  chunk-pool workers for the intra-query\n"
               "               parallel-SLCA parity checks (default: 3);\n"
               "               chunk counts checked stay 1,2,3,8\n"
               "  --no-chunks  skip the chunked parallel-SLCA checks\n"
               "  --batch=N    concurrent clients of the cross-query batch\n"
               "               stage: every sampled query is submitted N\n"
               "               times through a QueryService with an open\n"
               "               batch window and checked against the\n"
               "               sequential unbatched run (default: 3);\n"
               "               --batch=0 disables the stage\n"
               "  --crashes=N  crash-recovery rounds per collection: a\n"
               "               file-backed copy of the index takes a seeded\n"
               "               update batch killed at a seeded durable\n"
               "               operation; the reopened index must be exactly\n"
               "               the pre- or post-batch state (default: 0)\n"
               "  --no-simd    force the scalar decode kernel for the whole\n"
               "               run (same as XK_FORCE_SCALAR_DECODE=1); this\n"
               "               also disables the per-case scalar-vs-dispatch\n"
               "               decode differential, which needs both kernels\n");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t cases = 1000;
  uint64_t seed = 1;
  xksearch::fuzz::FuzzOptions options;
  bool faults = true;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--cases=", 8) == 0) {
      cases = ParseFlag(arg, "--cases", cases);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = ParseFlag(arg, "--seed", seed);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      options.queries_per_collection =
          static_cast<size_t>(ParseFlag(arg, "--queries", 4));
    } else if (std::strcmp(arg, "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(arg, "--no-faults") == 0) {
      faults = false;
    } else if (std::strcmp(arg, "--no-disk") == 0) {
      options.with_disk = false;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      options.shard_counts = {
          static_cast<size_t>(ParseFlag(arg, "--shards", 1))};
    } else if (std::strcmp(arg, "--no-shards") == 0) {
      options.shard_counts.clear();
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.chunk_workers =
          static_cast<size_t>(ParseFlag(arg, "--threads", 3));
      if (options.chunk_workers == 0) options.chunk_counts.clear();
    } else if (std::strcmp(arg, "--no-chunks") == 0) {
      options.chunk_counts.clear();
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      options.batch_clients =
          static_cast<size_t>(ParseFlag(arg, "--batch", 3));
    } else if (std::strncmp(arg, "--crashes=", 10) == 0) {
      options.crash_rounds =
          static_cast<size_t>(ParseFlag(arg, "--crashes", 0));
    } else if (std::strcmp(arg, "--no-simd") == 0) {
      xksearch::ForceScalarDecode(true);
    } else {
      Usage();
      return 2;
    }
  }
  options.with_faults = faults && options.with_disk;

  std::string shards = "off";
  if (!options.shard_counts.empty()) {
    shards.clear();
    for (size_t n : options.shard_counts) {
      if (!shards.empty()) shards += ',';
      shards += std::to_string(n);
    }
  }
  std::printf(
      "xk_fuzz: %llu collections from seed %llu (disk=%s faults=%s "
      "shards=%s chunk-threads=%s batch=%zu crashes=%zu decode=%s)\n",
      static_cast<unsigned long long>(cases),
      static_cast<unsigned long long>(seed),
      options.with_disk ? "on" : "off", options.with_faults ? "on" : "off",
      shards.c_str(),
      options.chunk_counts.empty() ? "off"
                                   : std::to_string(options.chunk_workers)
                                         .c_str(),
      options.batch_clients, options.crash_rounds,
      xksearch::DecodeKernelName(xksearch::ActiveDecodeKernel()));

  xksearch::fuzz::FuzzReport total;
  const uint64_t report_every = cases >= 10 ? cases / 10 : 1;
  size_t printed = 0;
  for (uint64_t i = 0; i < cases; ++i) {
    total.Merge(xksearch::fuzz::RunFuzzCase(seed + i, options));
    // Print divergences as they appear and keep fuzzing (one run should
    // surface every distinct failure), but stop once clearly broken.
    while (printed < total.divergences.size()) {
      std::fprintf(
          stderr, "%s\n",
          xksearch::fuzz::FormatDivergence(total.divergences[printed++])
              .c_str());
    }
    if (total.divergences.size() >= 10) break;
    if ((i + 1) % report_every == 0) {
      std::printf("  ... %llu/%llu collections, %llu checks, "
                  "%llu clean fault errors\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(cases),
                  static_cast<unsigned long long>(total.cases),
                  static_cast<unsigned long long>(total.clean_fault_errors));
    }
  }

  std::printf("xk_fuzz: %llu collections, %llu differential checks, "
              "%llu clean fault errors, %llu fault survivals, "
              "%llu crash recoveries (pre=%llu post=%llu), "
              "%zu divergences\n",
              static_cast<unsigned long long>(total.collections),
              static_cast<unsigned long long>(total.cases),
              static_cast<unsigned long long>(total.clean_fault_errors),
              static_cast<unsigned long long>(total.fault_survivals),
              static_cast<unsigned long long>(total.crash_landed_pre +
                                              total.crash_landed_post),
              static_cast<unsigned long long>(total.crash_landed_pre),
              static_cast<unsigned long long>(total.crash_landed_post),
              total.divergences.size());
  return total.ok() ? 0 : 1;
}
