#include "dewey/packed_list.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/xksearch.h"
#include "gen/random_tree.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/keyword_list.h"
#include "slca/packed_list.h"
#include "test_util.h"

// --- Counting allocator ---------------------------------------------------
//
// Every global allocation in this binary bumps a counter; the no-alloc
// tests snapshot it around the hot match path. Replacing the sized and
// array forms keeps new/delete internally consistent (all go through
// malloc/free).

namespace {
uint64_t g_alloc_count = 0;
}  // namespace

// GCC can see `free` paired with the replaced (to it, opaque) operator
// new and flags a mismatch; the pairing is fine — both sides go through
// malloc/free below.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow and aligned forms must be replaced too: leaving any form
// on the default (or sanitizer) allocator while delete goes to free()
// is an alloc/dealloc mismatch (std::stable_sort's temporary buffer
// goes through nothrow new, for one).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t al) {
  ++g_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;
using testing_util::Strings;

// Sorted, unique, non-empty random Dewey ids with controlled depth —
// sibling runs share long prefixes like real document orders do.
std::vector<DeweyId> RandomSortedIds(Rng* rng, size_t count,
                                     uint32_t max_depth) {
  std::vector<DeweyId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t depth = 1 + rng->Uniform(max_depth);
    std::vector<uint32_t> comps;
    for (size_t d = 0; d < depth; ++d) {
      comps.push_back(static_cast<uint32_t>(rng->Uniform(6)));
    }
    ids.push_back(DeweyId(std::move(comps)));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

PackedDeweyList Pack(const std::vector<DeweyId>& ids, size_t block_size) {
  PackedDeweyList list(block_size);
  for (const DeweyId& id : ids) EXPECT_TRUE(list.Append(id));
  return list;
}

TEST(PackedDeweyListTest, RoundTripAcrossBlockSizesAndShapes) {
  Rng rng(42);
  for (size_t block_size : {1u, 2u, 3u, 7u, 32u, 1000u}) {
    for (size_t target : {0u, 1u, 2u, 31u, 32u, 33u, 257u}) {
      const std::vector<DeweyId> ids =
          RandomSortedIds(&rng, target, /*max_depth=*/9);
      const PackedDeweyList list = Pack(ids, block_size);
      EXPECT_EQ(list.size(), ids.size());
      EXPECT_EQ(list.block_count(),
                (ids.size() + block_size - 1) / block_size);
      EXPECT_EQ(Strings(list.Materialize()), Strings(ids))
          << "block_size=" << block_size << " n=" << target;

      // The streaming decoder agrees entry by entry, as views.
      PackedDeweyList::Decoder decoder(&list);
      DeweyView view;
      size_t i = 0;
      while (decoder.NextView(&view)) {
        ASSERT_LT(i, ids.size());
        EXPECT_EQ(DeweyId::FromView(view), ids[i]) << "entry " << i;
        ++i;
      }
      EXPECT_EQ(i, ids.size());
    }
  }
}

TEST(PackedDeweyListTest, AppendDeduplicatesConsecutive) {
  PackedDeweyList list;
  EXPECT_TRUE(list.Append(Id("0.1")));
  EXPECT_FALSE(list.Append(Id("0.1")));
  EXPECT_TRUE(list.Append(Id("0.1.0")));
  EXPECT_FALSE(list.Append(Id("0.1.0")));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(Strings(list.Materialize()),
            (std::vector<std::string>{"0.1", "0.1.0"}));
}

TEST(PackedDeweyListTest, PackedIsSmallerThanVectors) {
  // The acceptance gate in miniature: on a deep sibling-heavy list the
  // prefix-truncated arena (plus its skip structures) must undercut the
  // vector-of-vectors representation by well over 2x.
  Rng rng(7);
  const std::vector<DeweyId> ids = RandomSortedIds(&rng, 20000, 8);
  const PackedDeweyList list = Pack(ids, PackedDeweyList::kDefaultBlockSize);
  size_t vector_bytes = ids.size() * sizeof(DeweyId);
  for (const DeweyId& id : ids) vector_bytes += id.depth() * sizeof(uint32_t);
  EXPECT_LT(list.memory_bytes() * 2, vector_bytes)
      << "packed=" << list.memory_bytes() << " vector=" << vector_bytes;
}

// lm/rm through the PackedKeywordList adapter must agree with the
// classic VectorKeywordList over the same postings: 200+ seeded random
// collections, probing with present ids, absent ids, and boundary
// probes, in both hinted and cold mode.
TEST(PackedKeywordListTest, MatchesVectorListOn200Collections) {
  constexpr int kCollections = 220;
  for (int c = 0; c < kCollections; ++c) {
    Rng rng(40'000 + c);
    const size_t n = 1 + rng.Uniform(400);
    const std::vector<DeweyId> ids =
        RandomSortedIds(&rng, n, 2 + static_cast<uint32_t>(rng.Uniform(8)));
    const size_t block_size = 1 + rng.Uniform(64);
    const PackedDeweyList packed = Pack(ids, block_size);

    for (bool hinted : {true, false}) {
      QueryStats packed_stats, vector_stats;
      PackedKeywordList plist(&packed, &packed_stats, hinted);
      VectorKeywordList vlist(&ids, &vector_stats);

      // Nondecreasing probe sequence with occasional regressions, the
      // shape the eager algorithms generate — plus pure random probes.
      std::vector<DeweyId> probes;
      for (int p = 0; p < 64; ++p) {
        if (rng.Bernoulli(0.5) && !ids.empty()) {
          probes.push_back(ids[rng.Uniform(ids.size())]);
        } else {
          std::vector<uint32_t> comps;
          const size_t depth = 1 + rng.Uniform(9);
          for (size_t d = 0; d < depth; ++d) {
            comps.push_back(static_cast<uint32_t>(rng.Uniform(7)));
          }
          probes.push_back(DeweyId(std::move(comps)));
        }
      }
      std::sort(probes.begin(), probes.end());
      for (int p = 0; p < 16; ++p) {  // regressions exercise the fallback
        probes.push_back(probes[rng.Uniform(probes.size())]);
      }
      probes.push_back(DeweyId({0}));
      probes.push_back(DeweyId({1000000}));

      for (const DeweyId& probe : probes) {
        DeweyId got, want;
        Result<bool> pr = plist.RightMatch(probe, &got);
        Result<bool> vr = vlist.RightMatch(probe, &want);
        ASSERT_TRUE(pr.ok() && vr.ok());
        ASSERT_EQ(*pr, *vr) << "rm(" << probe.ToString() << ") c=" << c;
        if (*pr) {
          ASSERT_EQ(got, want) << "rm(" << probe.ToString() << ")";
        }

        Result<bool> pl = plist.LeftMatch(probe, &got);
        Result<bool> vl = vlist.LeftMatch(probe, &want);
        ASSERT_TRUE(pl.ok() && vl.ok());
        ASSERT_EQ(*pl, *vl) << "lm(" << probe.ToString() << ") c=" << c;
        if (*pl) {
          ASSERT_EQ(got, want) << "lm(" << probe.ToString() << ")";
        }
      }
      EXPECT_GT(packed_stats.dewey_comparisons.load(), 0u);
      EXPECT_GT(vector_stats.dewey_comparisons.load(), 0u);
    }
  }
}

// The gallop hint is an optimization, never a semantic: a hinted probe
// fed any target sequence must return exactly what a cold probe returns,
// including the seek-result flags and both views.
TEST(PackedDeweyListTest, HintedSeekEqualsColdSeek) {
  for (int c = 0; c < 60; ++c) {
    Rng rng(90'000 + c);
    const std::vector<DeweyId> ids =
        RandomSortedIds(&rng, 1 + rng.Uniform(600), 8);
    const PackedDeweyList list = Pack(ids, 1 + rng.Uniform(48));

    PackedDeweyList::Probe hinted_probe;
    for (int p = 0; p < 256; ++p) {
      std::vector<uint32_t> comps;
      const size_t depth = 1 + rng.Uniform(9);
      for (size_t d = 0; d < depth; ++d) {
        comps.push_back(static_cast<uint32_t>(rng.Uniform(6)));
      }
      const DeweyId target(std::move(comps));

      PackedDeweyList::Probe cold_probe;  // fresh: no hint to use
      const PackedDeweyList::SeekResult hot =
          list.Seek(target.view(), /*hinted=*/true, &hinted_probe);
      const PackedDeweyList::SeekResult cold =
          list.Seek(target.view(), /*hinted=*/false, &cold_probe);

      ASSERT_EQ(hot.has_lower_bound, cold.has_lower_bound)
          << "target=" << target.ToString() << " c=" << c;
      ASSERT_EQ(hot.exact, cold.exact) << "target=" << target.ToString();
      if (hot.has_lower_bound) {
        ASSERT_EQ(DeweyId::FromView(list.lower_bound(hinted_probe)),
                  DeweyId::FromView(list.lower_bound(cold_probe)))
            << "target=" << target.ToString();
      }
      if (!hot.exact) {
        ASSERT_EQ(hot.has_predecessor, cold.has_predecessor)
            << "target=" << target.ToString();
        if (hot.has_predecessor) {
          ASSERT_EQ(DeweyId::FromView(list.predecessor(hinted_probe)),
                    DeweyId::FromView(list.predecessor(cold_probe)))
              << "target=" << target.ToString();
        }
      }
    }
  }
}

TEST(DeweyViewTest, FromViewAndPrefixRoundTrip) {
  const DeweyId id = Id("0.3.1.4.1");
  EXPECT_EQ(DeweyId::FromView(id.view()), id);
  EXPECT_EQ(DeweyId::FromView(id.view().Prefix(2)), Id("0.3"));
  EXPECT_EQ(id.view().CommonPrefixLength(Id("0.3.2").view()), 2u);
  EXPECT_EQ(id.view().Compare(Id("0.3.1.4.1").view()), 0);
  EXPECT_LT(id.view().Compare(Id("0.3.2").view()), 0);
  EXPECT_GT(id.view().Compare(Id("0.3.1").view()), 0);
  EXPECT_TRUE(Id("0.3").view().IsAncestorOrSelf(id.view()));
  EXPECT_FALSE(id.view().IsAncestorOrSelf(Id("0.3").view()));
}

// The whole point of the packed layout: steady-state match operations
// allocate nothing. Warm one full ascending pass (growing the probe's
// scratch to the list's maximum depth), then assert the global
// allocation counter does not move across a second pass — views, Seek,
// Compare and CommonPrefixLength included.
TEST(PackedDeweyListTest, SteadyStateSeekDoesNotAllocate) {
  Rng rng(271828);
  const std::vector<DeweyId> ids = RandomSortedIds(&rng, 3000, 10);
  const PackedDeweyList list = Pack(ids, PackedDeweyList::kDefaultBlockSize);

  PackedDeweyList::Probe probe;
  for (const DeweyId& id : ids) {
    (void)list.Seek(id.view(), /*hinted=*/true, &probe);
  }

  uint64_t cmp = 0;
  const uint64_t before = g_alloc_count;
  size_t exact_hits = 0;
  int parity = 0;
  for (const DeweyId& id : ids) {
    const PackedDeweyList::SeekResult r =
        list.Seek(id.view(), /*hinted=*/true, &probe, &cmp);
    exact_hits += r.exact ? 1 : 0;
    const DeweyView lb = list.lower_bound(probe);
    parity += lb.Compare(id.view());
    parity += static_cast<int>(lb.CommonPrefixLength(id.view()));
  }
  const uint64_t after = g_alloc_count;
  EXPECT_EQ(after, before) << "hot match path allocated";
  EXPECT_EQ(exact_hits, ids.size());
  EXPECT_GT(cmp, 0u);
  EXPECT_GT(parity, 0);  // keeps the loop observable
}

// Regression gate for the layout swap: the packed and vector paths must
// issue the exact same number of lm/rm operations — Table 1's
// "# operations" is an algorithm property, not a layout property. Runs
// every algorithm over randomized documents through the real engine.
TEST(PackedKeywordListTest, MatchOpCountsEqualVectorPath) {
  Rng rng(5150);
  for (int round = 0; round < 10; ++round) {
    RandomTreeOptions tree;
    tree.node_count = 80 + rng.Uniform(600);
    tree.vocab_size = 2 + rng.Uniform(6);
    Document doc = GenerateRandomDocument(&rng, tree);
    const std::vector<std::string> vocab = RandomTreeVocabulary(tree);
    Result<std::unique_ptr<XKSearch>> engine =
        XKSearch::BuildFromDocument(std::move(doc), {});
    ASSERT_TRUE(engine.ok());

    std::vector<std::string> keywords = {vocab[rng.Uniform(vocab.size())],
                                         vocab[rng.Uniform(vocab.size())]};
    for (AlgorithmChoice algorithm :
         {AlgorithmChoice::kIndexedLookupEager, AlgorithmChoice::kScanEager,
          AlgorithmChoice::kStack}) {
      SearchOptions options;
      options.algorithm = algorithm;
      Result<SearchResult> packed = (*engine)->Search(keywords, options);
      options.use_packed_lists = false;
      Result<SearchResult> vec = (*engine)->Search(keywords, options);
      ASSERT_TRUE(packed.ok() && vec.ok());
      EXPECT_EQ(Strings(packed->nodes), Strings(vec->nodes));
      EXPECT_EQ(packed->stats.match_ops.load(), vec->stats.match_ops.load())
          << "round=" << round
          << " algorithm=" << static_cast<int>(algorithm);
    }
  }
}

}  // namespace
}  // namespace xksearch
