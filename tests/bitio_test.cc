#include "common/bitio.h"

#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace xksearch {
namespace {

TEST(BitWriterTest, SingleByteRoundTrip) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0b01, 2);
  EXPECT_EQ(w.bit_count(), 5u);
  std::vector<uint8_t> bytes = w.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  // 10101 followed by zero padding -> 1010'1000.
  EXPECT_EQ(bytes[0], 0b10101000);
}

TEST(BitWriterTest, ZeroWidthWritesNothing) {
  BitWriter w;
  w.WriteBits(0, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.Finish().empty());
}

TEST(BitWriterTest, FullWidth32) {
  BitWriter w;
  w.WriteBits(0xDEADBEEF, 32);
  std::vector<uint8_t> bytes = w.Finish();
  ASSERT_EQ(bytes.size(), 4u);
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(32), 0xDEADBEEFu);
}

TEST(BitReaderTest, ReadsAcrossByteBoundaries) {
  BitWriter w;
  w.WriteBits(0x3, 2);
  w.WriteBits(0x1FF, 9);   // spans bytes
  w.WriteBits(0x0, 1);
  w.WriteBits(0x5A, 7);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(2), 0x3u);
  EXPECT_EQ(r.ReadBits(9), 0x1FFu);
  EXPECT_EQ(r.ReadBits(1), 0x0u);
  EXPECT_EQ(r.ReadBits(7), 0x5Au);
}

TEST(BitReaderTest, AlignToByteSkipsPadding) {
  BitWriter w;
  w.WriteBits(1, 1);
  w.AlignToByte();
  w.WriteBits(0xAB, 8);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(1), 1u);
  r.AlignToByte();
  EXPECT_EQ(r.ReadBits(8), 0xABu);
}

TEST(BitIoTest, RandomRoundTrip) {
  Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<uint32_t, int>> fields;
    BitWriter w;
    const size_t n = 1 + rng.Uniform(64);
    for (size_t i = 0; i < n; ++i) {
      const int width = static_cast<int>(1 + rng.Uniform(32));
      const uint32_t value =
          width == 32 ? static_cast<uint32_t>(rng.Next())
                      : static_cast<uint32_t>(rng.Uniform(1u << width));
      fields.emplace_back(value, width);
      w.WriteBits(value, width);
    }
    std::vector<uint8_t> bytes = w.Finish();
    BitReader r(bytes);
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(r.ReadBits(width), value);
    }
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  PutVarint32(&buf, 0);
  PutVarint32(&buf, 127);
  EXPECT_EQ(buf.size(), 2u);
  size_t pos = 0;
  uint32_t v = 99;
  ASSERT_TRUE(GetVarint32(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetVarint32(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, 127u);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, BoundaryValues32) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 16383u, 16384u, 0xffffffffu}) {
    std::vector<uint8_t> buf;
    PutVarint32(&buf, v);
    size_t pos = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(GetVarint32(buf.data(), buf.size(), &pos, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, BoundaryValues64) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1} << 35, ~uint64_t{0}}) {
    std::vector<uint8_t> buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::vector<uint8_t> buf;
  PutVarint32(&buf, 1u << 20);
  buf.pop_back();
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(buf.data(), buf.size(), &pos, &v));
}

TEST(VarintTest, OverlongEncodingRejected) {
  // Five bytes whose final group carries bits beyond 32.
  const uint8_t bad[] = {0x80, 0x80, 0x80, 0x80, 0x7f};
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(bad, sizeof(bad), &pos, &v));
}

}  // namespace
}  // namespace xksearch
