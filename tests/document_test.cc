#include "xml/document.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;

Document MakeSample() {
  Document doc;
  const NodeId root = doc.CreateRoot("root");
  const NodeId a = doc.AppendElement(root, "a");
  doc.AppendText(a, "hello");
  doc.AppendElement(a, "leaf");
  const NodeId b = doc.AppendElement(root, "b");
  doc.AppendText(b, "world");
  doc.AppendText(b, "again");
  return doc;
}

TEST(DocumentTest, DeweyNumbersFollowStructure) {
  Document doc = MakeSample();
  EXPECT_EQ(doc.DeweyOf(0), Id("0"));
  // a = 0.0, its text = 0.0.0, leaf = 0.0.1, b = 0.1.
  Result<NodeId> a = doc.FindByDewey(Id("0.0"));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(doc.tag(*a), "a");
  Result<NodeId> leaf = doc.FindByDewey(Id("0.0.1"));
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(doc.tag(*leaf), "leaf");
  EXPECT_EQ(doc.DeweyOf(*leaf), Id("0.0.1"));
}

TEST(DocumentTest, FindByDeweyFailsOnMissing) {
  Document doc = MakeSample();
  EXPECT_TRUE(doc.FindByDewey(Id("0.9")).status().IsNotFound());
  EXPECT_TRUE(doc.FindByDewey(Id("1")).status().IsNotFound());
  EXPECT_TRUE(doc.FindByDewey(DeweyId()).status().IsNotFound());
}

TEST(DocumentTest, FindByDeweyInverseOfDeweyOf) {
  Document doc = MakeSample();
  for (NodeId n = 0; n < doc.node_count(); ++n) {
    Result<NodeId> found = doc.FindByDewey(doc.DeweyOf(n));
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, n);
  }
}

TEST(DocumentTest, ParentAndOrdinal) {
  Document doc = MakeSample();
  Result<NodeId> b = doc.FindByDewey(Id("0.1"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(doc.parent(*b), doc.root());
  EXPECT_EQ(doc.ordinal(*b), 1u);
  EXPECT_EQ(doc.parent(doc.root()), kInvalidNode);
}

TEST(DocumentTest, LevelsAndMaxDepth) {
  Document doc = MakeSample();
  EXPECT_EQ(doc.level(doc.root()), 0u);
  EXPECT_EQ(doc.max_depth(), 2u);
}

TEST(DocumentTest, DirectTextConcatenatesImmediateTextChildren) {
  Document doc = MakeSample();
  Result<NodeId> b = doc.FindByDewey(Id("0.1"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(doc.DirectText(*b), "world again");
  // Root has no direct text (only element children).
  EXPECT_EQ(doc.DirectText(doc.root()), "");
}

TEST(DocumentTest, TagInterning) {
  Document doc;
  const NodeId root = doc.CreateRoot("x");
  for (int i = 0; i < 100; ++i) doc.AppendElement(root, "repeated");
  EXPECT_EQ(doc.tag_count(), 2u);
}

TEST(DocumentTest, AttributesStoredPerElement) {
  Document doc;
  const NodeId root = doc.CreateRoot("x");
  doc.AddAttribute(root, "k", "v");
  doc.AddAttribute(root, "k2", "v2");
  ASSERT_EQ(doc.attributes(root).size(), 2u);
  const NodeId child = doc.AppendElement(root, "y");
  EXPECT_TRUE(doc.attributes(child).empty());
}

TEST(DocumentTest, CloneIsADeepIndependentCopy) {
  Document doc = MakeSample();
  doc.AddAttribute(doc.root(), "year", "2005");
  const Document clone = doc.Clone();
  ASSERT_EQ(clone.node_count(), doc.node_count());
  for (NodeId n = 0; n < doc.node_count(); ++n) {
    EXPECT_EQ(clone.DeweyOf(n), doc.DeweyOf(n));
    if (doc.IsText(n)) {
      EXPECT_EQ(clone.text(n), doc.text(n));
    } else {
      EXPECT_EQ(clone.tag(n), doc.tag(n));
    }
  }
  ASSERT_EQ(clone.attributes(clone.root()).size(), 1u);
  EXPECT_EQ(clone.attributes(clone.root())[0].second, "2005");

  // Growing the original must not leak into the clone (and vice versa):
  // the sharded builder clones one corpus document into several
  // collections, which only works if the copies share nothing.
  const size_t before = clone.node_count();
  doc.AppendElement(doc.root(), "added");
  doc.AddAttribute(doc.root(), "venue", "sigmod");
  EXPECT_EQ(clone.node_count(), before);
  EXPECT_EQ(clone.attributes(clone.root()).size(), 1u);
  EXPECT_TRUE(clone.FindByDewey(Id("0.2")).status().IsNotFound());
}

TEST(DocumentTest, MoveTransfersOwnership) {
  Document doc = MakeSample();
  const size_t n = doc.node_count();
  Document moved = std::move(doc);
  EXPECT_EQ(moved.node_count(), n);
  EXPECT_EQ(moved.tag(moved.root()), "root");
}

}  // namespace
}  // namespace xksearch
