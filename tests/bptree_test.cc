#include "storage/bptree.h"

#include <cstdio>
#include <map>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

std::string Value(int i) { return "value-" + std::to_string(i); }

// Builds a tree with n sequential entries into a fresh MemPageStore.
void BuildTree(MemPageStore* store, int n, std::vector<uint8_t> meta = {}) {
  BPlusTreeBuilder builder(store);
  if (!meta.empty()) builder.SetMetadata(std::move(meta));
  for (int i = 0; i < n; ++i) {
    XKS_ASSERT_OK(builder.Add(Key(i), Value(i)));
  }
  XKS_ASSERT_OK(builder.Finish());
}

TEST(CompareBytesTest, MemcmpSemantics) {
  EXPECT_EQ(CompareBytes("a", "a"), 0);
  EXPECT_LT(CompareBytes("a", "b"), 0);
  EXPECT_GT(CompareBytes("b", "a"), 0);
  EXPECT_LT(CompareBytes("a", "aa"), 0);   // prefix first
  EXPECT_LT(CompareBytes("", "a"), 0);
  EXPECT_EQ(CompareBytes("", ""), 0);
  EXPECT_LT(CompareBytes(std::string_view("\x01", 1),
                         std::string_view("\xff", 1)),
            0);  // unsigned bytes
}

TEST(BPlusTreeTest, EmptyTree) {
  MemPageStore store;
  BuildTree(&store, 0);
  BufferPool pool(&store, 16);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->entry_count(), 0u);
  EXPECT_EQ(tree->height(), 0u);
  EXPECT_TRUE(tree->Get("anything").status().IsNotFound());
  BPlusTree::Cursor cursor = tree->NewCursor();
  XKS_ASSERT_OK(cursor.Seek("x"));
  EXPECT_FALSE(cursor.Valid());
  XKS_ASSERT_OK(cursor.SeekToFirst());
  EXPECT_FALSE(cursor.Valid());
}

TEST(BPlusTreeTest, SingleEntry) {
  MemPageStore store;
  BuildTree(&store, 1);
  BufferPool pool(&store, 16);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 1u);
  Result<std::string> v = tree->Get(Key(0));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(0));
}

class BPlusTreeSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeSizeTest, GetFindsEveryKey) {
  const int n = GetParam();
  MemPageStore store;
  BuildTree(&store, n);
  BufferPool pool(&store, 256);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->entry_count(), static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += (n > 500 ? 7 : 1)) {
    Result<std::string> v = tree->Get(Key(i));
    ASSERT_TRUE(v.ok()) << Key(i);
    EXPECT_EQ(*v, Value(i));
  }
  EXPECT_TRUE(tree->Get("zzz").status().IsNotFound());
  EXPECT_TRUE(tree->Get("aaa").status().IsNotFound());
}

TEST_P(BPlusTreeSizeTest, ForwardScanVisitsAllInOrder) {
  const int n = GetParam();
  MemPageStore store;
  BuildTree(&store, n);
  BufferPool pool(&store, 256);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  BPlusTree::Cursor cursor = tree->NewCursor();
  XKS_ASSERT_OK(cursor.SeekToFirst());
  int count = 0;
  std::string prev;
  while (cursor.Valid()) {
    if (count > 0) {
      EXPECT_LT(CompareBytes(prev, cursor.key()), 0);
    }
    prev = std::string(cursor.key());
    ++count;
    XKS_ASSERT_OK(cursor.Next());
  }
  EXPECT_EQ(count, n);
}

TEST_P(BPlusTreeSizeTest, BackwardScanVisitsAllInOrder) {
  const int n = GetParam();
  MemPageStore store;
  BuildTree(&store, n);
  BufferPool pool(&store, 256);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  BPlusTree::Cursor cursor = tree->NewCursor();
  XKS_ASSERT_OK(cursor.SeekToLast());
  int count = 0;
  while (cursor.Valid()) {
    ++count;
    XKS_ASSERT_OK(cursor.Prev());
  }
  EXPECT_EQ(count, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeSizeTest,
                         ::testing::Values(2, 10, 100, 1000, 5000));

TEST(BPlusTreeTest, SeekLowerBoundSemantics) {
  MemPageStore store;
  // Keys key00000000, key00000002, ... (even only).
  {
    BPlusTreeBuilder builder(&store);
    for (int i = 0; i < 2000; i += 2) {
      XKS_ASSERT_OK(builder.Add(Key(i), Value(i)));
    }
    XKS_ASSERT_OK(builder.Finish());
  }
  BufferPool pool(&store, 256);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  BPlusTree::Cursor cursor = tree->NewCursor();

  // Exact key.
  XKS_ASSERT_OK(cursor.Seek(Key(10)));
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), Key(10));
  // Missing key -> next greater.
  XKS_ASSERT_OK(cursor.Seek(Key(11)));
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), Key(12));
  // Before the first key.
  XKS_ASSERT_OK(cursor.Seek("a"));
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), Key(0));
  // After the last key.
  XKS_ASSERT_OK(cursor.Seek("z"));
  EXPECT_FALSE(cursor.Valid());
}

TEST(BPlusTreeTest, SeekForPrevUpperBoundSemantics) {
  MemPageStore store;
  {
    BPlusTreeBuilder builder(&store);
    for (int i = 0; i < 2000; i += 2) {
      XKS_ASSERT_OK(builder.Add(Key(i), Value(i)));
    }
    XKS_ASSERT_OK(builder.Finish());
  }
  BufferPool pool(&store, 256);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  BPlusTree::Cursor cursor = tree->NewCursor();

  XKS_ASSERT_OK(cursor.SeekForPrev(Key(10)));
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), Key(10));
  XKS_ASSERT_OK(cursor.SeekForPrev(Key(11)));
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), Key(10));
  XKS_ASSERT_OK(cursor.SeekForPrev("a"));
  EXPECT_FALSE(cursor.Valid());
  XKS_ASSERT_OK(cursor.SeekForPrev("z"));
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.key(), Key(1998));
}

TEST(BPlusTreeTest, SeekAcrossLeafBoundaries) {
  // Keys sized so several land per leaf; probe every boundary.
  MemPageStore store;
  const int n = 3000;
  BuildTree(&store, n);
  BufferPool pool(&store, 512);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(4);
  BPlusTree::Cursor cursor = tree->NewCursor();
  for (int trial = 0; trial < 500; ++trial) {
    const int i = static_cast<int>(rng.Uniform(n));
    // Seek a key strictly between i and i+1.
    const std::string probe = Key(i) + "!";
    XKS_ASSERT_OK(cursor.Seek(probe));
    if (i + 1 < n) {
      ASSERT_TRUE(cursor.Valid());
      EXPECT_EQ(cursor.key(), Key(i + 1));
    } else {
      EXPECT_FALSE(cursor.Valid());
    }
    XKS_ASSERT_OK(cursor.SeekForPrev(probe));
    ASSERT_TRUE(cursor.Valid());
    EXPECT_EQ(cursor.key(), Key(i));
  }
}

TEST(BPlusTreeBuilderTest, RejectsNonIncreasingKeys) {
  MemPageStore store;
  BPlusTreeBuilder builder(&store);
  XKS_ASSERT_OK(builder.Add("b", "1"));
  EXPECT_TRUE(builder.Add("b", "2").IsInvalidArgument());
  EXPECT_TRUE(builder.Add("a", "3").IsInvalidArgument());
}

TEST(BPlusTreeBuilderTest, RejectsOversizedEntry) {
  MemPageStore store;
  BPlusTreeBuilder builder(&store);
  EXPECT_TRUE(
      builder.Add("k", std::string(kPageSize, 'x')).IsInvalidArgument());
}

TEST(BPlusTreeTest, MetadataRoundTrip) {
  MemPageStore store;
  BuildTree(&store, 5, {1, 2, 3, 255});
  BufferPool pool(&store, 16);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->metadata(), (std::vector<uint8_t>{1, 2, 3, 255}));
}

TEST(BPlusTreeTest, OpenRejectsGarbage) {
  MemPageStore store;
  ASSERT_TRUE(store.AllocatePage().ok());
  Page junk;
  junk.Zero();
  junk.WriteU32(0, 0xBADC0DE);
  XKS_ASSERT_OK(store.WritePage(0, junk));
  BufferPool pool(&store, 4);
  EXPECT_TRUE(BPlusTree::Open(&pool).status().IsCorruption());
}

TEST(BPlusTreeTest, PersistsAcrossFileReopen) {
  const std::string path = ::testing::TempDir() + "/bptree_persist.db";
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    BPlusTreeBuilder builder(store->get());
    for (int i = 0; i < 500; ++i) XKS_ASSERT_OK(builder.Add(Key(i), Value(i)));
    XKS_ASSERT_OK(builder.Finish());
  }
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Open(path);
    ASSERT_TRUE(store.ok());
    BufferPool pool(store->get(), 64);
    Result<BPlusTree> tree = BPlusTree::Open(&pool);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree->entry_count(), 500u);
    Result<std::string> v = tree->Get(Key(123));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, Value(123));
  }
  std::remove(path.c_str());
}

TEST(BPlusTreeTest, VariableLengthKeysAndValues) {
  MemPageStore store;
  std::map<std::string, std::string> expected;
  {
    BPlusTreeBuilder builder(&store);
    Rng rng(9);
    std::string key;
    for (int i = 0; i < 1500; ++i) {
      key += static_cast<char>('a' + rng.Uniform(4));  // growing keys
      const std::string value(rng.Uniform(60), 'v');
      XKS_ASSERT_OK(builder.Add(key, value));
      expected[key] = value;
    }
    XKS_ASSERT_OK(builder.Finish());
  }
  BufferPool pool(&store, 512);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  BPlusTree::Cursor cursor = tree->NewCursor();
  XKS_ASSERT_OK(cursor.SeekToFirst());
  auto it = expected.begin();
  while (cursor.Valid()) {
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(cursor.key(), it->first);
    EXPECT_EQ(cursor.value(), it->second);
    ++it;
    XKS_ASSERT_OK(cursor.Next());
  }
  EXPECT_EQ(it, expected.end());
}

TEST(BPlusTreeTest, TinyBufferPoolStillWorks) {
  MemPageStore store;
  BuildTree(&store, 2000);
  BufferPool pool(&store, 2);  // pathological: barely fits a root+leaf
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 2000; i += 97) {
    Result<std::string> v = tree->Get(Key(i));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(*v, Value(i));
  }
  EXPECT_GT(pool.total_misses(), 10u);
}

}  // namespace
}  // namespace xksearch
