#include "dewey/decode_kernels.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dewey/codec.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;

/// Reference decode: the entry-at-a-time DeltaBlockDecoder the kernels
/// must agree with bit for bit.
std::vector<DeweyId> ReferenceDecode(const std::vector<uint8_t>& bytes) {
  DeltaBlockDecoder decoder(bytes);
  std::vector<DeweyId> out;
  DeweyId id;
  while (decoder.Next(&id)) out.push_back(id);
  EXPECT_TRUE(decoder.status().ok()) << decoder.status().ToString();
  return out;
}

std::vector<uint8_t> Encode(const std::vector<DeweyId>& ids,
                            bool delta = true) {
  DeltaBlockEncoder encoder(delta);
  for (const DeweyId& id : ids) encoder.Append(id);
  return encoder.Finish();
}

void ExpectBlockEquals(const DecodedBlock& got,
                       const std::vector<DeweyId>& expected,
                       const std::string& context) {
  ASSERT_EQ(got.count(), expected.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(DeweyId::FromView(got.entry(i)), expected[i])
        << context << " entry " << i;
  }
}

/// A mix of shapes: deep chains, shared-prefix runs, multi-byte
/// components, and sibling fan-out — sorted, as every posting list is.
std::vector<DeweyId> MixedIds() {
  std::vector<DeweyId> ids = Ids({
      "0",
      "0.0.0.0.0.0.0.0",
      "0.0.0.0.0.0.0.1",
      "0.0.1",
      "0.1",
      "0.1.0.2.3.4",
      "0.1.0.2.3.5",
      "0.1.127",
      "0.1.128",          // first two-byte varint component
      "0.1.128.1000000",  // multi-byte tail after a shared prefix
      "0.2",
      "0.300.300.300",
  });
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  return ids;
}

std::vector<DeweyId> RandomSortedIds(uint64_t seed, size_t n,
                                     uint32_t max_component,
                                     size_t max_depth) {
  Rng rng(seed);
  std::vector<DeweyId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t depth =
        1 + static_cast<size_t>(rng.UniformInt(0, static_cast<int>(max_depth - 1)));
    std::vector<uint32_t> components;
    components.push_back(0);  // all documents root at 0
    for (size_t d = 1; d < depth; ++d) {
      components.push_back(static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int>(std::min<uint32_t>(
                                max_component, 1u << 30)))));
    }
    ids.emplace_back(std::move(components));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TEST(DecodeKernelTest, ScalarAndSwarAreAlwaysAvailable) {
  EXPECT_TRUE(DecodeKernelAvailable(DecodeKernel::kScalar));
  EXPECT_TRUE(DecodeKernelAvailable(DecodeKernel::kSwar));
  const std::vector<DecodeKernel> available = AvailableDecodeKernels();
  ASSERT_GE(available.size(), 2u);
  EXPECT_EQ(available[0], DecodeKernel::kScalar);
  EXPECT_EQ(available[1], DecodeKernel::kSwar);
  for (DecodeKernel kernel : available) {
    EXPECT_STRNE(DecodeKernelName(kernel), "unknown");
  }
}

TEST(DecodeKernelTest, ForceScalarOverridesDispatch) {
  ForceScalarDecode(true);
  EXPECT_EQ(ActiveDecodeKernel(), DecodeKernel::kScalar);
  ForceScalarDecode(false);
  // Whatever the widest kernel is, it must be one the machine supports.
  EXPECT_TRUE(DecodeKernelAvailable(ActiveDecodeKernel()));
}

TEST(DecodeKernelTest, EveryKernelMatchesReferenceOnMixedShapes) {
  const std::vector<DeweyId> ids = MixedIds();
  for (bool delta : {true, false}) {
    const std::vector<uint8_t> bytes = Encode(ids, delta);
    const std::vector<DeweyId> expected = ReferenceDecode(bytes);
    ASSERT_EQ(expected.size(), ids.size());
    for (DecodeKernel kernel : AvailableDecodeKernels()) {
      DecodedBlock block;
      size_t pos = 0;
      const Status status =
          DecodeBlockWith(kernel, bytes.data(), bytes.size(), &pos,
                          ids.size(), nullptr, 0, &block);
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_EQ(pos, bytes.size());
      ExpectBlockEquals(block, expected,
                        std::string("kernel ") + DecodeKernelName(kernel) +
                            (delta ? " delta" : " full"));
    }
  }
}

TEST(DecodeKernelTest, KernelsAgreeOnRandomListsAcrossBlockSizes) {
  for (const uint64_t seed : {1u, 7u, 99u}) {
    const std::vector<DeweyId> ids =
        RandomSortedIds(seed, 500, /*max_component=*/2000, /*max_depth=*/12);
    const std::vector<uint8_t> bytes = Encode(ids);
    const std::vector<DeweyId> expected = ReferenceDecode(bytes);
    for (DecodeKernel kernel : AvailableDecodeKernels()) {
      for (const size_t max_entries : {size_t{1}, size_t{2}, size_t{7},
                                       size_t{64}, expected.size()}) {
        // Decode the stream in max_entries-sized chunks, carrying the
        // previous chunk's last entry across calls exactly as a blocked
        // cursor would.
        std::vector<DeweyId> got;
        std::vector<uint32_t> carry;
        size_t pos = 0;
        while (pos < bytes.size()) {
          DecodedBlock block;
          const Status status = DecodeBlockWith(
              kernel, bytes.data(), bytes.size(), &pos, max_entries,
              carry.empty() ? nullptr : carry.data(), carry.size(), &block);
          ASSERT_TRUE(status.ok()) << status.ToString();
          ASSERT_GT(block.count(), 0u);  // progress on every call
          for (size_t i = 0; i < block.count(); ++i) {
            got.push_back(DeweyId::FromView(block.entry(i)));
          }
          carry.assign(block.last_data(),
                       block.last_data() + block.last_len());
        }
        ASSERT_EQ(got.size(), expected.size())
            << DecodeKernelName(kernel) << " chunk=" << max_entries;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], expected[i])
              << DecodeKernelName(kernel) << " chunk=" << max_entries
              << " entry " << i;
        }
      }
    }
  }
}

TEST(DecodeKernelTest, MaxWidthComponentsSurviveEveryKernel) {
  // Every component at the 5-byte varint ceiling, at depth 64: the worst
  // case for the single-byte fast paths (they must bail to the checked
  // slow path on every component without misreading a byte).
  std::vector<uint32_t> components(64, 0xFFFFFFFFu);
  components[0] = 0;
  std::vector<DeweyId> ids;
  ids.emplace_back(components);
  components.back() = 0;  // sorted order: ...0 sorts before ...max
  ids.emplace_back(std::move(components));
  std::swap(ids[0], ids[1]);
  const std::vector<uint8_t> bytes = Encode(ids);
  const std::vector<DeweyId> expected = ReferenceDecode(bytes);
  ASSERT_EQ(expected.size(), 2u);
  for (DecodeKernel kernel : AvailableDecodeKernels()) {
    DecodedBlock block;
    size_t pos = 0;
    const Status status = DecodeBlockWith(kernel, bytes.data(), bytes.size(),
                                          &pos, 2, nullptr, 0, &block);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ExpectBlockEquals(block, expected, DecodeKernelName(kernel));
  }
}

TEST(DecodeKernelTest, TruncatedTailsErrorOrStopAtEntryBoundary) {
  const std::vector<DeweyId> ids = MixedIds();
  const std::vector<uint8_t> bytes = Encode(ids);
  const std::vector<DeweyId> expected = ReferenceDecode(bytes);
  for (DecodeKernel kernel : AvailableDecodeKernels()) {
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      DecodedBlock block;
      size_t pos = 0;
      const Status status = DecodeBlockWith(kernel, bytes.data(), cut, &pos,
                                            ids.size(), nullptr, 0, &block);
      if (status.ok()) {
        // A clean stop is only legal exactly between entries, with the
        // decoded prefix matching the reference and all input consumed.
        EXPECT_EQ(pos, cut) << DecodeKernelName(kernel) << " cut=" << cut;
        ASSERT_LT(block.count(), expected.size());
        for (size_t i = 0; i < block.count(); ++i) {
          EXPECT_EQ(DeweyId::FromView(block.entry(i)), expected[i])
              << DecodeKernelName(kernel) << " cut=" << cut;
        }
      } else {
        EXPECT_TRUE(status.IsCorruption())
            << DecodeKernelName(kernel) << " cut=" << cut << ": "
            << status.ToString();
        // The failed entry must be rolled back whole: pos sits on an
        // entry start and the partial components are gone.
        for (size_t i = 0; i < block.count(); ++i) {
          EXPECT_EQ(DeweyId::FromView(block.entry(i)), expected[i]);
        }
      }
    }
  }
}

TEST(DecodeKernelTest, CorruptHeadersAreRejectedNotOverRead) {
  // shared=5 with no previous entry: exceeds the (empty) prefix.
  const std::vector<uint8_t> bad_shared = {5, 1, 3};
  // shared=0 added=0: an empty id.
  const std::vector<uint8_t> empty_id = {0, 0};
  // added with a pathological count (varint 0xFFFFFF7F ≈ 2^28): must be
  // rejected by the component-count bound, not attempted.
  const std::vector<uint8_t> huge_added = {0, 0xFF, 0xFF, 0xFF, 0x7F, 1};
  for (DecodeKernel kernel : AvailableDecodeKernels()) {
    for (const std::vector<uint8_t>* bytes :
         {&bad_shared, &empty_id, &huge_added}) {
      DecodedBlock block;
      size_t pos = 0;
      const Status status = DecodeBlockWith(kernel, bytes->data(),
                                            bytes->size(), &pos, 10, nullptr,
                                            0, &block);
      EXPECT_TRUE(status.IsCorruption()) << status.ToString();
      EXPECT_EQ(pos, 0u);
      EXPECT_EQ(block.count(), 0u);
    }
  }
}

TEST(DecodeKernelTest, CarrySeedsTheSharedPrefixChain) {
  // Encode a stream whose second entry shares a deep prefix with the
  // first, then decode only the tail with the first entry as carry.
  const std::vector<DeweyId> ids =
      Ids({"0.1.2.3.4.5", "0.1.2.3.4.9", "0.1.2.7"});
  const std::vector<uint8_t> bytes = Encode(ids);
  // Find the byte offset of the second entry by reference-decoding one
  // entry through the kernel API.
  DecodedBlock first;
  size_t pos = 0;
  ASSERT_TRUE(DecodeBlock(bytes.data(), bytes.size(), &pos, 1, nullptr, 0,
                          &first)
                  .ok());
  ASSERT_EQ(first.count(), 1u);
  const std::vector<uint32_t> carry(
      first.last_data(), first.last_data() + first.last_len());
  for (DecodeKernel kernel : AvailableDecodeKernels()) {
    DecodedBlock tail;
    size_t tail_pos = pos;
    const Status status =
        DecodeBlockWith(kernel, bytes.data(), bytes.size(), &tail_pos, 2,
                        carry.data(), carry.size(), &tail);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(tail.count(), 2u);
    EXPECT_EQ(DeweyId::FromView(tail.entry(0)), ids[1]);
    EXPECT_EQ(DeweyId::FromView(tail.entry(1)), ids[2]);
  }
}

TEST(DecodeKernelTest, DecodedBlockReusesCapacityAcrossClear) {
  DecodedBlock block;
  block.Append(Id("0.1.2").view());
  block.Append(Id("0.1.3").view());
  const size_t bytes = block.memory_bytes();
  EXPECT_GT(bytes, 0u);
  block.Clear();
  EXPECT_EQ(block.count(), 0u);
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.memory_bytes(), bytes);  // capacity retained
}

}  // namespace
}  // namespace xksearch
