#include "index/inverted_index.h"

#include <algorithm>

#include "gen/school.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Strings;

TEST(InvertedIndexTest, TextTokensAttributedToTextNodes) {
  Result<Document> doc = ParseXml("<r><a>john ben</a><b>john</b></r>");
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  ASSERT_NE(index.Find("john"), nullptr);
  // Text node of <a> is 0.0.0, of <b> is 0.1.0.
  EXPECT_EQ(Strings(index.Materialize("john")),
            (std::vector<std::string>{"0.0.0", "0.1.0"}));
  EXPECT_EQ(index.Frequency("ben"), 1u);
  EXPECT_EQ(index.Frequency("absent"), 0u);
}

TEST(InvertedIndexTest, TagsIndexedOnElements) {
  Result<Document> doc = ParseXml("<root><title>x</title></root>");
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  ASSERT_NE(index.Find("title"), nullptr);
  EXPECT_EQ(Strings(index.Materialize("title")),
            (std::vector<std::string>{"0.0"}));

  IndexOptions no_tags;
  no_tags.index_tags = false;
  InvertedIndex without = InvertedIndex::Build(*doc, no_tags);
  EXPECT_EQ(without.Find("title"), nullptr);
}

TEST(InvertedIndexTest, AttributesIndexedOnOwningElement) {
  Result<Document> doc = ParseXml("<r year=\"2005\"><x name=\"widget\"/></r>");
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  ASSERT_NE(index.Find("2005"), nullptr);
  EXPECT_EQ(Strings(index.Materialize("2005")),
            (std::vector<std::string>{"0"}));
  ASSERT_NE(index.Find("widget"), nullptr);
  // Attribute names are off by default.
  EXPECT_EQ(index.Find("name"), nullptr);

  IndexOptions with_names;
  with_names.index_attribute_names = true;
  InvertedIndex named = InvertedIndex::Build(*doc, with_names);
  EXPECT_NE(named.Find("name"), nullptr);
}

TEST(InvertedIndexTest, ListsAreSortedAndUnique) {
  Result<Document> doc =
      ParseXml("<r><a>dup dup dup</a><b><c>dup</c></b><d>dup</d></r>");
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  const std::vector<DeweyId> dup = index.Materialize("dup");
  // One entry per node even though <a>'s text mentions it three times.
  EXPECT_EQ(dup.size(), 3u);
  EXPECT_TRUE(std::is_sorted(dup.begin(), dup.end()));
}

TEST(InvertedIndexTest, LevelTableCoversObservedDepths) {
  Result<Document> doc = ParseXml("<r><a><b><c>deep</c></b></a></r>");
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  // Depth of the text node is 5 levels (root..text), so the table has 5
  // entries; the root level needs just the spare probe bit.
  EXPECT_EQ(index.level_table().depth(), 5u);
  EXPECT_EQ(index.level_table().BitsAt(0), 1);
}

TEST(InvertedIndexTest, SchoolDocumentKeywordLists) {
  InvertedIndex index = InvertedIndex::Build(BuildSchoolDocument());
  // John appears as CS2A instructor, CS3A lecturer, baseball player and
  // Robotics lead; Ben as CS2A TA, CS3A student and baseball player.
  EXPECT_EQ(index.Frequency("john"), 4u);
  EXPECT_EQ(index.Frequency("ben"), 3u);
  EXPECT_EQ(index.Frequency("mary"), 2u);
  EXPECT_GT(index.term_count(), 10u);
}

TEST(InvertedIndexTest, AddPostingDeduplicatesConsecutive) {
  InvertedIndex index;
  index.AddPosting("kw", Id("0.1"));
  index.AddPosting("kw", Id("0.1"));
  index.AddPosting("kw", Id("0.2"));
  EXPECT_EQ(index.Frequency("kw"), 2u);
  EXPECT_EQ(index.total_postings(), 2u);
}

TEST(InvertedIndexTest, TermsSorted) {
  InvertedIndex index;
  index.AddPosting("zebra", Id("0.1"));
  index.AddPosting("apple", Id("0.1"));
  index.AddPosting("mango", Id("0.1"));
  EXPECT_EQ(index.Terms(),
            (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(InvertedIndexTest, EmptyDocument) {
  Document empty;
  InvertedIndex index = InvertedIndex::Build(empty);
  EXPECT_EQ(index.term_count(), 0u);
  EXPECT_EQ(index.total_postings(), 0u);
}

}  // namespace
}  // namespace xksearch
