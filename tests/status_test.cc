#include "common/status.h"

#include "common/result.h"
#include "common/stats.h"
#include "gtest/gtest.h"

namespace xksearch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());

  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "missing key");
  EXPECT_EQ(st.ToString(), "Not found: missing key");
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::Corruption("bad page");
  Status copy = original;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad page");
  // Copying OK stays OK.
  Status ok;
  Status ok_copy = ok;
  EXPECT_TRUE(ok_copy.ok());
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status st = Status::IoError("disk gone");
  Status ok;
  st = ok;
  EXPECT_TRUE(st.ok());
  ok = Status::NotFound("later");
  EXPECT_TRUE(ok.IsNotFound());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status st = Status::Internal("boom");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsInternal());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    XKS_RETURN_NOT_OK(Status::OutOfRange("over"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsOutOfRange());

  auto succeeds = []() -> Status {
    XKS_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(succeeds().ok());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "Parse error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nothing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("no");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    XKS_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_TRUE(outer(true).status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(QueryStatsTest, AccumulateAndReset) {
  QueryStats a;
  a.match_ops = 2;
  a.dewey_comparisons = 10;
  a.page_reads = 1;
  QueryStats b;
  b.match_ops = 3;
  b.results = 7;
  b.page_hits = 4;
  a += b;
  EXPECT_EQ(a.match_ops, 5u);
  EXPECT_EQ(a.dewey_comparisons, 10u);
  EXPECT_EQ(a.results, 7u);
  EXPECT_EQ(a.page_hits, 4u);
  a.Reset();
  EXPECT_EQ(a.match_ops, 0u);
  EXPECT_EQ(a.page_reads, 0u);
}

TEST(QueryStatsTest, ToStringNamesEveryCounter) {
  QueryStats stats;
  stats.match_ops = 1;
  stats.results = 2;
  const std::string s = stats.ToString();
  for (const char* field : {"match_ops", "dewey_cmp", "lca_ops", "postings",
                            "page_reads", "page_hits", "results"}) {
    EXPECT_NE(s.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace xksearch
