#include "engine/query_executor.h"

#include <string>

#include "engine/search_types.h"

#include "gen/school.h"
#include "gtest/gtest.h"
#include "storage/disk_index.h"
#include "test_util.h"

namespace xksearch {
namespace {

class QueryExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = InvertedIndex::Build(BuildSchoolDocument());
    DiskIndexOptions mem;
    mem.in_memory = true;
    Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Build(index_, "", mem);
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(*disk);
  }

  InvertedIndex index_;
  std::unique_ptr<DiskIndex> disk_;
  QueryStats stats_;
};

TEST_F(QueryExecutorTest, OrdersBySmallestListFirst) {
  // mary(2) < ben(3) < john(4); input order must not matter.
  Result<PreparedQuery> q =
      PrepareQuery(index_, {"john", "mary", "ben"}, {}, &stats_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords,
            (std::vector<std::string>{"mary", "ben", "john"}));
  EXPECT_EQ(q->min_frequency, 2u);
  EXPECT_EQ(q->max_frequency, 4u);
  EXPECT_FALSE(q->missing);
  ASSERT_EQ(q->lists.size(), 3u);
  EXPECT_EQ(q->lists[0]->size(), 2u);
  EXPECT_EQ(q->lists[2]->size(), 4u);
}

TEST_F(QueryExecutorTest, StableOrderOnTies) {
  Result<PreparedQuery> a = PrepareQuery(index_, {"john", "ben"}, {}, &stats_);
  Result<PreparedQuery> b = PrepareQuery(index_, {"ben", "john"}, {}, &stats_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // ben(3) always precedes john(4) regardless of input order.
  EXPECT_EQ(a->keywords, b->keywords);
}

TEST_F(QueryExecutorTest, NormalizesLikeIndexer) {
  Result<PreparedQuery> q = PrepareQuery(index_, {"JOHN!", "Ben"}, {}, &stats_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords, (std::vector<std::string>{"ben", "john"}));
}

TEST_F(QueryExecutorTest, MissingKeywordFlagged) {
  Result<PreparedQuery> q =
      PrepareQuery(index_, {"john", "absentword"}, {}, &stats_);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->missing);
  EXPECT_EQ(q->min_frequency, 0u);
  // The missing keyword still gets a (empty) list so k is preserved.
  EXPECT_EQ(q->lists.size(), 2u);
  EXPECT_EQ(q->lists[0]->size(), 0u);
}

TEST_F(QueryExecutorTest, RejectsEmptyAndUnindexable) {
  EXPECT_TRUE(PrepareQuery(index_, {}, {}, &stats_).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PrepareQuery(index_, {"..."}, {}, &stats_).status()
                  .IsInvalidArgument());
}

TEST_F(QueryExecutorTest, DiskPreparationMirrorsMemory) {
  Result<PreparedQuery> mem =
      PrepareQuery(index_, {"john", "mary"}, {}, &stats_);
  Result<PreparedQuery> disk =
      PrepareQuery(*disk_, {"john", "mary"}, {}, &stats_);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(mem->keywords, disk->keywords);
  EXPECT_EQ(mem->min_frequency, disk->min_frequency);
  EXPECT_EQ(mem->max_frequency, disk->max_frequency);
  ASSERT_EQ(disk->lists.size(), 2u);
  EXPECT_EQ(disk->lists[0]->size(), mem->lists[0]->size());
}

TEST(ResolveAlgorithmTest, ThresholdBoundary) {
  SearchOptions options;
  options.auto_ratio_threshold = 8.0;
  EXPECT_EQ(ResolveAlgorithmChoice(options, 10, 80),
            SlcaAlgorithm::kIndexedLookupEager);  // exactly at threshold
  EXPECT_EQ(ResolveAlgorithmChoice(options, 10, 79),
            SlcaAlgorithm::kScanEager);
  EXPECT_EQ(ResolveAlgorithmChoice(options, 0, 5),
            SlcaAlgorithm::kIndexedLookupEager);  // missing keyword
  options.algorithm = AlgorithmChoice::kStack;
  EXPECT_EQ(ResolveAlgorithmChoice(options, 1, 1), SlcaAlgorithm::kStack);
}

}  // namespace
}  // namespace xksearch
