#include "common/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace xksearch {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= v == -2;
    hi |= v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace xksearch
