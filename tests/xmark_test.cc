#include "gen/xmark_generator.h"

#include <algorithm>

#include "engine/xksearch.h"
#include "gtest/gtest.h"
#include "index/inverted_index.h"
#include "slca/brute_force.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xksearch {
namespace {

using testing_util::Strings;

TEST(XmarkTest, ShapeMatchesSchema) {
  XmarkOptions options;
  options.items = 300;
  options.people = 100;
  Result<Document> doc = GenerateXmark(options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->tag(doc->root()), "site");
  const auto& kids = doc->children(doc->root());
  ASSERT_EQ(kids.size(), 4u);
  EXPECT_EQ(doc->tag(kids[0]), "people");
  EXPECT_EQ(doc->tag(kids[1]), "regions");
  EXPECT_EQ(doc->tag(kids[2]), "open_auctions");
  EXPECT_EQ(doc->tag(kids[3]), "closed_auctions");
}

TEST(XmarkTest, DescriptionsNestAndDeepenTheTree) {
  XmarkOptions flat;
  flat.items = 200;
  flat.description_depth = 0;
  XmarkOptions deep = flat;
  deep.description_depth = 5;
  Result<Document> flat_doc = GenerateXmark(flat);
  Result<Document> deep_doc = GenerateXmark(deep);
  ASSERT_TRUE(flat_doc.ok());
  ASSERT_TRUE(deep_doc.ok());
  EXPECT_GT(deep_doc->max_depth(), flat_doc->max_depth() + 4);
}

TEST(XmarkTest, PlantedFrequenciesAreExact) {
  XmarkOptions options;
  options.items = 1500;
  options.plants = {{"needle", 7}, {"common", 600}, {"everywhere", 1500}};
  Result<Document> doc = GenerateXmark(options);
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  EXPECT_EQ(index.Frequency("needle"), 7u);
  EXPECT_EQ(index.Frequency("common"), 600u);
  EXPECT_EQ(index.Frequency("everywhere"), 1500u);
}

TEST(XmarkTest, DeterministicForSeed) {
  XmarkOptions options;
  options.items = 200;
  options.plants = {{"kw", 20}};
  Result<Document> a = GenerateXmark(options);
  Result<Document> b = GenerateXmark(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeXml(*a), SerializeXml(*b));
}

TEST(XmarkTest, RejectsBadPlants) {
  XmarkOptions options;
  options.items = 10;
  options.plants = {{"kw", 11}};
  EXPECT_TRUE(GenerateXmark(options).status().IsInvalidArgument());
  XmarkOptions collision;
  collision.plants = {{"x5", 1}};
  EXPECT_TRUE(GenerateXmark(collision).status().IsInvalidArgument());
}

TEST(XmarkTest, QueriesAgreeWithOracleOnDeepTree) {
  XmarkOptions options;
  options.items = 800;
  options.description_depth = 5;
  options.plants = {{"alpha", 25}, {"beta", 400}};
  Result<Document> doc = GenerateXmark(options);
  ASSERT_TRUE(doc.ok());
  InvertedIndex index = InvertedIndex::Build(*doc);
  Result<std::vector<DeweyId>> expected =
      OracleSlca(*doc, index, {"alpha", "beta"});
  ASSERT_TRUE(expected.ok());

  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  ASSERT_TRUE(system.ok());
  for (AlgorithmChoice choice : {AlgorithmChoice::kIndexedLookupEager,
                                 AlgorithmChoice::kScanEager,
                                 AlgorithmChoice::kStack}) {
    SearchOptions opts;
    opts.algorithm = choice;
    Result<SearchResult> got = (*system)->Search({"alpha", "beta"}, opts);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Strings(got->nodes), Strings(*expected));
  }
  // All-LCA and ELCA still agree with their oracles on this deep shape.
  SearchOptions lca;
  lca.semantics = Semantics::kAllLca;
  Result<SearchResult> all = (*system)->Search({"alpha", "beta"}, lca);
  ASSERT_TRUE(all.ok());
  Result<std::vector<DeweyId>> lca_expected = OracleAllLca(
      (*system)->document(), (*system)->index(), {"alpha", "beta"});
  ASSERT_TRUE(lca_expected.ok());
  EXPECT_EQ(Strings(all->nodes), Strings(*lca_expected));
}

}  // namespace
}  // namespace xksearch
