#include "dewey/dewey_id.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;
using testing_util::Ids;

TEST(DeweyIdTest, ParseRoundTrip) {
  for (const std::string& text :
       {std::string("0"), std::string("0.1.2"), std::string("12.345.6789")}) {
    Result<DeweyId> parsed = DeweyId::Parse(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(DeweyIdTest, ParseEmptyIsSuperRoot) {
  Result<DeweyId> parsed = DeweyId::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
  EXPECT_EQ(parsed->ToString(), "");
}

TEST(DeweyIdTest, ParseRejectsMalformed) {
  EXPECT_TRUE(DeweyId::Parse(".1").status().IsInvalidArgument());
  EXPECT_TRUE(DeweyId::Parse("1.").status().IsInvalidArgument());
  EXPECT_TRUE(DeweyId::Parse("1..2").status().IsInvalidArgument());
  EXPECT_TRUE(DeweyId::Parse("a.b").status().IsInvalidArgument());
  EXPECT_TRUE(DeweyId::Parse("1,2").status().IsInvalidArgument());
  EXPECT_TRUE(DeweyId::Parse("99999999999").status().IsInvalidArgument());
}

TEST(DeweyIdTest, DocumentOrderComparison) {
  // The paper's example ordering: 0.1 < 0.1.0 < 0.1.1 < 0.2.
  EXPECT_LT(Id("0.1"), Id("0.1.0"));
  EXPECT_LT(Id("0.1.0"), Id("0.1.1"));
  EXPECT_LT(Id("0.1.1"), Id("0.2"));
  EXPECT_EQ(Id("0.1.2").Compare(Id("0.1.2")), 0);
  EXPECT_GT(Id("0.10"), Id("0.9"));  // numeric, not lexicographic
}

TEST(DeweyIdTest, ComparisonCountsComponentWork) {
  uint64_t count = 0;
  Id("0.1.2.3").Compare(Id("0.1.9"), &count);
  // Two equal components, one differing.
  EXPECT_EQ(count, 3u);
  count = 0;
  Id("0.1").Compare(Id("0.1"), &count);
  EXPECT_EQ(count, 3u);  // both components plus the length tiebreak
}

TEST(DeweyIdTest, AncestorRelations) {
  EXPECT_TRUE(Id("0").IsAncestorOf(Id("0.1.2")));
  EXPECT_TRUE(Id("0.1").IsAncestorOf(Id("0.1.2")));
  EXPECT_FALSE(Id("0.1.2").IsAncestorOf(Id("0.1.2")));
  EXPECT_TRUE(Id("0.1.2").IsAncestorOrSelf(Id("0.1.2")));
  EXPECT_FALSE(Id("0.2").IsAncestorOf(Id("0.1.2")));
  EXPECT_FALSE(Id("0.1.2").IsAncestorOf(Id("0.1")));
  // The empty super-root is an ancestor of everything.
  EXPECT_TRUE(DeweyId().IsAncestorOf(Id("0")));
}

TEST(DeweyIdTest, LcaIsLongestCommonPrefix) {
  // Paper Section 2: lca(0.0.1.0, 0.0.3) has Dewey number 0.0.
  EXPECT_EQ(Id("0.0.1.0").Lca(Id("0.0.3")), Id("0.0"));
  EXPECT_EQ(Id("0.1.2").Lca(Id("0.1.2")), Id("0.1.2"));
  EXPECT_EQ(Id("0.1").Lca(Id("0.1.5")), Id("0.1"));
  EXPECT_EQ(Id("0.1").Lca(Id("1.1")), DeweyId());
  EXPECT_TRUE(Id("0.3").Lca(DeweyId()).empty());
}

TEST(DeweyIdTest, LcaIsCommutativeAndIdempotent) {
  const auto ids = Ids({"0", "0.1", "0.1.2", "0.2.1", "0.1.2.3"});
  for (const DeweyId& a : ids) {
    EXPECT_EQ(a.Lca(a), a);
    for (const DeweyId& b : ids) {
      EXPECT_EQ(a.Lca(b), b.Lca(a));
      EXPECT_TRUE(a.Lca(b).IsAncestorOrSelf(a));
      EXPECT_TRUE(a.Lca(b).IsAncestorOrSelf(b));
    }
  }
}

TEST(DeweyIdTest, ParentChildSibling) {
  EXPECT_EQ(Id("0.1.2").Parent(), Id("0.1"));
  EXPECT_EQ(Id("0").Parent(), DeweyId());
  EXPECT_EQ(DeweyId().Parent(), DeweyId());
  EXPECT_EQ(Id("0.1").Child(4), Id("0.1.4"));
  EXPECT_EQ(DeweyId().Child(0), Id("0"));
  // The "uncle" construction of Section 5.
  EXPECT_EQ(Id("0.1.2").NextSibling(), Id("0.1.3"));
}

TEST(DeweyIdTest, PrefixTruncates) {
  EXPECT_EQ(Id("0.1.2.3").Prefix(2), Id("0.1"));
  EXPECT_EQ(Id("0.1.2.3").Prefix(0), DeweyId());
  EXPECT_EQ(Id("0.1").Prefix(2), Id("0.1"));
}

TEST(DeweyIdTest, CommonPrefixLength) {
  EXPECT_EQ(Id("0.1.2").CommonPrefixLength(Id("0.1.5")), 2u);
  EXPECT_EQ(Id("0.1").CommonPrefixLength(Id("0.1.5")), 2u);
  EXPECT_EQ(Id("1.1").CommonPrefixLength(Id("0.1")), 0u);
}

TEST(DeweyIdTest, DeeperPicksDescendantOrNonEmpty) {
  const DeweyId a = Id("0.1");
  const DeweyId b = Id("0.1.2");
  EXPECT_EQ(Deeper(a, b), b);
  EXPECT_EQ(Deeper(b, a), b);
  EXPECT_EQ(Deeper(DeweyId(), a), a);
  EXPECT_EQ(Deeper(a, DeweyId()), a);
  EXPECT_EQ(Deeper(a, a), a);
}

TEST(DeweyIdTest, SortOrderMatchesPreorder) {
  auto ids = Ids({"0.2", "0", "0.1.1", "0.1", "0.10", "0.1.0", "0.2.0.0"});
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(testing_util::Strings(ids),
            (std::vector<std::string>{"0", "0.1", "0.1.0", "0.1.1", "0.2",
                                      "0.2.0.0", "0.10"}));
}

TEST(DeweyIdTest, HashEqualIdsCollide) {
  DeweyId::Hash hash;
  EXPECT_EQ(hash(Id("0.1.2")), hash(Id("0.1.2")));
  // Different ids should (almost surely) differ.
  EXPECT_NE(hash(Id("0.1.2")), hash(Id("0.2.1")));
}

}  // namespace
}  // namespace xksearch
