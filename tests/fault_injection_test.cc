// Fault-injection coverage: the FaultInjectingPageStore schedule API
// itself, then every consumer above it — buffer pool (including the
// coalesced-load waiter protocol), B+tree cursors, DiskIndex match ops,
// DiskSearcher queries and the serving layer's io_error accounting.

#include "storage/fault_injection.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "gtest/gtest.h"
#include "serve/query_service.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_index.h"
#include "test_util.h"

namespace xksearch {
namespace {

// ---------------------------------------------------------------------
// Schedule API on a bare store.
// ---------------------------------------------------------------------

class FaultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      XKS_ASSERT_OK(mem_.AllocatePage().status());
    }
  }
  MemPageStore mem_;
};

TEST_F(FaultStoreTest, DisarmedScheduleIsPassThrough) {
  FaultInjectingPageStore store(&mem_);
  store.FailNthRead(1);
  Page page;
  XKS_EXPECT_OK(store.ReadPage(0, &page));
  EXPECT_EQ(store.reads(), 1u);
  EXPECT_EQ(store.injected_errors(), 0u);
}

TEST_F(FaultStoreTest, FailNthReadFiresExactlyOnce) {
  FaultInjectingPageStore store(&mem_);
  store.FailNthRead(3);
  store.Arm();
  Page page;
  XKS_EXPECT_OK(store.ReadPage(0, &page));
  XKS_EXPECT_OK(store.ReadPage(1, &page));
  const Status third = store.ReadPage(2, &page);
  EXPECT_TRUE(third.IsIoError()) << third.ToString();
  // Transient: the schedule exhausted, so the retry succeeds.
  XKS_EXPECT_OK(store.ReadPage(2, &page));
  EXPECT_EQ(store.injected_errors(), 1u);
}

TEST_F(FaultStoreTest, FailPageReadsMatchesOnlyThatPage) {
  FaultInjectingPageStore store(&mem_);
  store.FailPageReads(5, /*times=*/FaultRule::kForever);
  store.Arm();
  Page page;
  XKS_EXPECT_OK(store.ReadPage(4, &page));
  EXPECT_TRUE(store.ReadPage(5, &page).IsIoError());
  EXPECT_TRUE(store.ReadPage(5, &page).IsIoError());  // forever
  XKS_EXPECT_OK(store.ReadPage(6, &page));
}

TEST_F(FaultStoreTest, ProbabilisticFaultsAreSeedDeterministic) {
  auto run = [this](uint64_t seed) {
    FaultInjectingPageStore store(&mem_, seed);
    store.FailReadsWithProbability(0.5, FaultRule::kForever);
    store.Arm();
    std::vector<bool> outcomes;
    Page page;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(store.ReadPage(i % 8, &page).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // astronomically unlikely to collide
}

TEST_F(FaultStoreTest, TornWriteLeavesHalfThePage) {
  FaultInjectingPageStore store(&mem_);
  Page full;
  for (size_t i = 0; i < kPageSize; ++i) full.data[i] = 0xAB;
  store.TornWriteOnPage(2);
  store.Arm();
  const Status torn = store.WritePage(2, full);
  EXPECT_TRUE(torn.IsIoError()) << torn.ToString();
  Page after;
  XKS_ASSERT_OK(store.ReadPage(2, &after));
  EXPECT_EQ(after.data[0], 0xAB);                  // first half landed
  EXPECT_EQ(after.data[kPageSize / 2 - 1], 0xAB);
  EXPECT_EQ(after.data[kPageSize / 2], 0x00);      // second half did not
  EXPECT_EQ(after.data[kPageSize - 1], 0x00);
}

TEST_F(FaultStoreTest, TransientThenRecoverViaFireLimit) {
  FaultInjectingPageStore store(&mem_);
  store.FailPageReads(1, /*times=*/2);
  store.Arm();
  Page page;
  EXPECT_TRUE(store.ReadPage(1, &page).IsIoError());
  EXPECT_TRUE(store.ReadPage(1, &page).IsIoError());
  XKS_EXPECT_OK(store.ReadPage(1, &page));  // recovered
}

TEST_F(FaultStoreTest, LatencyRuleDelaysButSucceeds) {
  FaultInjectingPageStore store(&mem_);
  store.AddReadLatency(std::chrono::microseconds(2000));
  store.Arm();
  Page page;
  const auto start = std::chrono::steady_clock::now();
  XKS_EXPECT_OK(store.ReadPage(0, &page));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(1500));
  EXPECT_EQ(store.injected_errors(), 0u);
}

TEST_F(FaultStoreTest, FailNthSyncFiresAndCountsInInjectedStats) {
  FaultInjectingPageStore store(&mem_);
  store.FailNthSync(1);
  store.Arm();
  const Status failed = store.Sync();
  EXPECT_TRUE(failed.IsIoError()) << failed.ToString();
  EXPECT_EQ(store.injected_errors(), 1u);
  EXPECT_EQ(store.syncs(), 1u);
  // Transient: the retry reaches the inner store.
  XKS_EXPECT_OK(store.Sync());
  EXPECT_EQ(store.syncs(), 2u);
  EXPECT_EQ(store.injected_errors(), 1u);
}

TEST_F(FaultStoreTest, SimulateCrashDropsUnsyncedWritesOnly) {
  FaultInjectingPageStore store(&mem_);
  // Attaching a schedule (even one with no kill point) starts the
  // unsynced-write tracking SimulateCrash rolls back with.
  store.SetCrashSchedule(std::make_shared<CrashSchedule>());
  Page page;
  page.Zero();
  for (size_t i = 0; i < kPageSize; ++i) page.data[i] = 0xAA;
  XKS_ASSERT_OK(store.WritePage(0, page));
  XKS_ASSERT_OK(store.Sync());  // page 0 is now durable
  for (size_t i = 0; i < kPageSize; ++i) page.data[i] = 0xBB;
  XKS_ASSERT_OK(store.WritePage(1, page));       // unsynced overwrite
  Result<PageId> grown = store.AllocatePage();   // unsynced growth
  XKS_ASSERT_OK(grown.status());
  XKS_ASSERT_OK(store.WritePage(*grown, page));

  store.SimulateCrash();
  EXPECT_TRUE(store.crashed());
  // The dead store fails everything...
  EXPECT_TRUE(store.ReadPage(0, &page).IsIoError());
  EXPECT_TRUE(store.WritePage(0, page).IsIoError());
  EXPECT_TRUE(store.Sync().IsIoError());
  // ...and the inner store kept exactly the synced state: page 0's
  // bytes, page 1 rolled back to zeros, the allocation truncated away.
  EXPECT_EQ(mem_.page_count(), 8u);
  XKS_ASSERT_OK(mem_.ReadPage(0, &page));
  EXPECT_EQ(page.data[0], 0xAA);
  EXPECT_EQ(page.data[kPageSize - 1], 0xAA);
  XKS_ASSERT_OK(mem_.ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 0x00);
  EXPECT_EQ(page.data[kPageSize - 1], 0x00);
}

TEST_F(FaultStoreTest, CrashScheduleSharedClockKillsEveryStore) {
  // One schedule, two stores = one simulated process over two files.
  MemPageStore other;
  for (int i = 0; i < 4; ++i) XKS_ASSERT_OK(other.AllocatePage().status());
  FaultInjectingPageStore store_a(&mem_);
  FaultInjectingPageStore store_b(&other);
  auto schedule = std::make_shared<CrashSchedule>();
  store_a.SetCrashSchedule(schedule);
  store_b.SetCrashSchedule(schedule);
  schedule->CrashAtOperation(3);

  Page page;
  page.Zero();
  XKS_ASSERT_OK(store_a.WritePage(0, page));  // op 1
  XKS_ASSERT_OK(store_b.WritePage(0, page));  // op 2
  const Status fatal = store_a.WritePage(1, page);  // op 3: the kill point
  EXPECT_TRUE(fatal.IsIoError()) << fatal.ToString();
  EXPECT_TRUE(schedule->crashed());
  EXPECT_EQ(schedule->operations(), 3u);
  // The OTHER store died with the process, not just the triggering one.
  EXPECT_TRUE(store_a.crashed());
  EXPECT_TRUE(store_b.crashed());
  EXPECT_TRUE(store_b.WritePage(1, page).IsIoError());
}

TEST_F(FaultStoreTest, CrashClockTicksDurableOperationsNotReads) {
  FaultInjectingPageStore store(&mem_);
  auto schedule = std::make_shared<CrashSchedule>();
  store.SetCrashSchedule(schedule);
  Page page;
  XKS_ASSERT_OK(store.ReadPage(0, &page));
  XKS_ASSERT_OK(store.ReadPage(1, &page));
  EXPECT_EQ(schedule->operations(), 0u);  // reads are not durable ops
  page.Zero();
  XKS_ASSERT_OK(store.WritePage(0, page));
  XKS_ASSERT_OK(store.AllocatePage().status());
  XKS_ASSERT_OK(store.Truncate(8));
  XKS_ASSERT_OK(store.Sync());
  EXPECT_EQ(schedule->operations(), 4u);  // write + alloc + truncate + sync
  EXPECT_EQ(schedule->syncs(), 1u);
}

TEST_F(FaultStoreTest, CrashOnSyncBarrierKeepsPriorBarrierState) {
  FaultInjectingPageStore store(&mem_);
  auto schedule = std::make_shared<CrashSchedule>();
  store.SetCrashSchedule(schedule);
  schedule->CrashAtSync(2);
  Page page;
  page.Zero();
  for (size_t i = 0; i < kPageSize; ++i) page.data[i] = 0x11;
  XKS_ASSERT_OK(store.WritePage(0, page));
  XKS_ASSERT_OK(store.Sync());  // barrier 1 completes
  for (size_t i = 0; i < kPageSize; ++i) page.data[i] = 0x22;
  XKS_ASSERT_OK(store.WritePage(0, page));
  // Dying ON the barrier: the fsync does not complete, so the write it
  // was meant to make durable is lost.
  EXPECT_TRUE(store.Sync().IsIoError());
  EXPECT_TRUE(store.crashed());
  XKS_ASSERT_OK(mem_.ReadPage(0, &page));
  EXPECT_EQ(page.data[0], 0x11);
}

// ---------------------------------------------------------------------
// Buffer pool under faults.
// ---------------------------------------------------------------------

class FaultPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      XKS_ASSERT_OK(mem_.AllocatePage().status());
    }
    store_ = std::make_unique<FaultInjectingPageStore>(&mem_);
  }
  MemPageStore mem_;
  std::unique_ptr<FaultInjectingPageStore> store_;
};

TEST_F(FaultPoolTest, FailedMissPropagatesAndLeavesNoResidue) {
  BufferPool pool(store_.get(), 4, /*shards=*/1);
  store_->FailPageReads(3, /*times=*/1);
  store_->Arm();
  const Result<PageRef> ref = pool.Fetch(3);
  EXPECT_TRUE(ref.status().IsIoError()) << ref.status().ToString();
  // No loading placeholder, no pinned frame, nothing resident.
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  // The fault was transient, so the next fetch succeeds.
  XKS_EXPECT_OK(pool.Fetch(3).status());
}

// The satellite invariant: a failed coalesced load must wake every
// waiter with the loader's error — not leave them to re-issue the read.
// Latency injection holds the loading read open long enough for the
// waiters to pile onto the placeholder frame.
TEST_F(FaultPoolTest, FailedCoalescedLoadWakesAllWaitersWithError) {
  BufferPool pool(store_.get(), 4, /*shards=*/1);
  store_->AddReadLatency(std::chrono::microseconds(100'000));
  store_->FailPageReads(2, /*times=*/1);
  store_->Arm();

  // All threads rendezvous before fetching: the read latency then dwarfs
  // the time it takes the losers to reach PinFrame, so every thread joins
  // the single coalesced load (thread *startup* alone is not fast enough
  // under TSan).
  constexpr int kWaiters = 6;
  std::atomic<int> ready{0};
  std::vector<Status> results(kWaiters);
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&pool, &results, &ready, i] {
      ready.fetch_add(1);
      while (ready.load() < kWaiters) std::this_thread::yield();
      results[i] = pool.Fetch(2).status();
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one store read happened (everyone coalesced onto it), and
  // every thread saw the injected error.
  EXPECT_EQ(store_->reads(), 1u);
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_TRUE(results[i].IsIoError()) << "waiter " << i << ": "
                                        << results[i].ToString();
  }
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  // Pool still serves once the fault has passed.
  store_->Disarm();
  XKS_EXPECT_OK(pool.Fetch(2).status());
}

TEST_F(FaultPoolTest, EvictionWriteBackFailurePropagates) {
  BufferPool pool(store_.get(), 1, /*shards=*/1);
  {
    Result<MutPageRef> mut = pool.FetchMut(0);
    XKS_ASSERT_OK(mut.status());
    mut->page().Zero();
  }
  store_->FailNthWrite(1);
  store_->Arm();
  // Fetching another page must evict the dirty frame; its write-back
  // fails and the fetch reports it rather than dropping the bytes.
  const Result<PageRef> ref = pool.Fetch(1);
  EXPECT_TRUE(ref.status().IsIoError()) << ref.status().ToString();
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  store_->Disarm();
  XKS_EXPECT_OK(pool.Fetch(1).status());
}

TEST_F(FaultPoolTest, ReadaheadSwallowsFaultsButDemandFetchReports) {
  BufferPool pool(store_.get(), 4, /*shards=*/1);
  store_->FailPageReads(1, FaultRule::kForever);
  store_->Arm();
  // Readahead over the faulty page must not fail anything.
  pool.Readahead(0, 4);
  EXPECT_EQ(pool.DebugTotalPins(), 0u);
  // The demand fetch of the same page reports the error.
  EXPECT_TRUE(pool.Fetch(1).status().IsIoError());
  XKS_EXPECT_OK(pool.Fetch(0).status());
}

// ---------------------------------------------------------------------
// B+tree cursors over a faulty pool.
// ---------------------------------------------------------------------

TEST(FaultBptreeTest, CursorSurfacesReadErrorsCleanly) {
  MemPageStore mem;
  {
    BPlusTreeBuilder builder(&mem);
    // Enough entries for a multi-page tree.
    for (int i = 0; i < 2000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      XKS_ASSERT_OK(builder.Add(key, "value"));
    }
    XKS_ASSERT_OK(builder.Finish());
  }
  FaultInjectingPageStore store(&mem);
  BufferPool pool(&store, 4, /*shards=*/1);
  Result<BPlusTree> tree = BPlusTree::Open(&pool);
  XKS_ASSERT_OK(tree.status());

  store.FailReadsWithProbability(1.0, FaultRule::kForever);
  store.Arm();
  BPlusTree::Cursor cursor = tree->NewCursor();
  Status st = cursor.SeekToFirst();
  if (st.ok()) {
    // Everything needed was cached; advancing off it must fail instead.
    while (st.ok() && cursor.Valid()) st = cursor.Next();
  }
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  store.Disarm();
  EXPECT_EQ(pool.DebugTotalPins(), 0u);

  // Clean recovery: a fresh cursor walks the whole tree.
  BPlusTree::Cursor again = tree->NewCursor();
  XKS_ASSERT_OK(again.SeekToFirst());
  size_t n = 0;
  while (again.Valid()) {
    ++n;
    XKS_ASSERT_OK(again.Next());
  }
  EXPECT_EQ(n, 2000u);
}

// ---------------------------------------------------------------------
// DiskIndex / DiskSearcher / serve layer end to end.
// ---------------------------------------------------------------------

constexpr char kXml[] =
    "<dblp>"
    "  <article><title>keyword search in xml</title>"
    "    <author>jagadish</author></article>"
    "  <article><title>xml storage engines</title>"
    "    <author>widom</author></article>"
    "  <article><title>search engines</title>"
    "    <author>ullman</author></article>"
    "</dblp>";

struct FaultyEngine {
  std::unique_ptr<XKSearch> engine;
  std::vector<FaultInjectingPageStore*> wrappers;

  void Arm() {
    for (auto* w : wrappers) w->Arm();
  }
  void Disarm() {
    for (auto* w : wrappers) {
      w->Disarm();
      w->ClearFaults();
    }
  }
  uint64_t TotalPins() {
    return engine->disk_index()->il_pool()->DebugTotalPins() +
           engine->disk_index()->scan_pool()->DebugTotalPins();
  }
};

// Out-param (not a return value) because ASSERT_* requires a void
// function.
void BuildFaultyEngine(FaultyEngine* fe) {
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  // Tiny single-shard pools: every query touches the store.
  build.disk.il_pool_pages = 2;
  build.disk.scan_pool_pages = 2;
  build.disk.pool_shards = 1;
  build.disk.store_decorator = [fe](std::unique_ptr<PageStore> inner,
                                    std::string_view /*name*/) {
    auto wrapped =
        std::make_unique<FaultInjectingPageStore>(std::move(inner));
    fe->wrappers.push_back(wrapped.get());
    return std::unique_ptr<PageStore>(std::move(wrapped));
  };
  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromXml(kXml, build);
  XKS_ASSERT_OK(built.status());
  fe->engine = built.MoveValueUnsafe();
}

TEST(FaultDiskIndexTest, QueriesFailCleanlyAndRecover) {
  FaultyEngine fe;
  BuildFaultyEngine(&fe);
  const std::vector<std::string> query = {"xml", "search"};
  SearchOptions disk;
  disk.use_disk_index = true;

  // Baseline answer, fault-free.
  Result<SearchResult> expected = fe.engine->Search(query, disk);
  XKS_ASSERT_OK(expected.status());
  ASSERT_FALSE(expected->nodes.empty());

  // Cold caches, or the tiny index would be served from the pool and
  // the armed schedule would never see a read.
  XKS_ASSERT_OK(fe.engine->disk_index()->DropCaches());
  fe.Arm();
  // Every algorithm must fail with the injected error, pin-clean.
  for (AlgorithmChoice algorithm :
       {AlgorithmChoice::kIndexedLookupEager, AlgorithmChoice::kScanEager,
        AlgorithmChoice::kStack}) {
    for (auto* w : fe.wrappers) {
      w->ClearFaults();
      w->FailReadsWithProbability(1.0, FaultRule::kForever);
    }
    SearchOptions so = disk;
    so.algorithm = algorithm;
    const Result<SearchResult> got = fe.engine->Search(query, so);
    EXPECT_TRUE(got.status().IsIoError()) << got.status().ToString();
    EXPECT_EQ(fe.TotalPins(), 0u);
  }
  fe.Disarm();

  Result<SearchResult> after = fe.engine->Search(query, disk);
  XKS_ASSERT_OK(after.status());
  EXPECT_EQ(after->nodes, expected->nodes);
}

TEST(FaultServeTest, InjectedIoErrorCountsAndServiceRecovers) {
  FaultyEngine fe;
  BuildFaultyEngine(&fe);
  serve::QueryServiceOptions options;
  options.enable_cache = false;  // every submit hits the engine
  options.pool.workers = 2;
  serve::QueryService service(fe.engine.get(), options);

  SearchOptions disk;
  disk.use_disk_index = true;
  const std::vector<std::string> query = {"xml", "search"};

  for (auto* w : fe.wrappers) {
    w->FailReadsWithProbability(1.0, FaultRule::kForever);
  }
  fe.Arm();
  Result<serve::QueryResponse> failed = service.Search(query, disk);
  EXPECT_TRUE(failed.status().IsIoError()) << failed.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(service.metrics().failed), 1u);
  EXPECT_EQ(static_cast<uint64_t>(service.metrics().io_errors), 1u);
  EXPECT_EQ(fe.TotalPins(), 0u);

  // Disk recovered: the very next request succeeds and counts normally.
  fe.Disarm();
  Result<serve::QueryResponse> ok = service.Search(query, disk);
  XKS_ASSERT_OK(ok.status());
  EXPECT_FALSE(ok->result.nodes.empty());
  EXPECT_EQ(static_cast<uint64_t>(service.metrics().completed), 1u);
  EXPECT_EQ(static_cast<uint64_t>(service.metrics().io_errors), 1u);
  // The io_error line is part of the operator-facing report.
  EXPECT_NE(service.MetricsReport().find("io_errors"), std::string::npos);
}

}  // namespace
}  // namespace xksearch
