// The in-memory query path is read-only after build: a const XKSearch
// can serve concurrent queries from many threads. The disk path shares a
// buffer pool and is serialized internally on a mutex, so it too is safe
// (though not parallel) from many threads. These tests pin down that
// contract, plus QueryService — the layer that multiplexes both paths
// behind a thread pool and result cache.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gtest/gtest.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Strings;

std::unique_ptr<XKSearch> BuildCorpus() {
  DblpOptions gen;
  gen.papers = 3000;
  gen.seed = 99;
  gen.plants = {{"alpha", 20}, {"bravo", 300}, {"carol", 2500}};
  Result<Document> doc = GenerateDblp(gen);
  EXPECT_TRUE(doc.ok());
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

TEST(ConcurrencyTest, ParallelIdenticalQueriesAgree) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  Result<SearchResult> expected = system->Search({"alpha", "carol"});
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int r = 0; r < kRounds; ++r) {
        Result<SearchResult> got = system->Search({"alpha", "carol"});
        if (!got.ok()) {
          ++failures;
          return;
        }
        if (Strings(got->nodes) != Strings(expected->nodes)) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelMixedWorkload) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo", "carol"},
      {"alpha"},          {"carol"},
  };
  std::vector<std::vector<std::string>> expected;
  for (const auto& q : queries) {
    Result<SearchResult> r = system->Search(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(Strings(r->nodes));
  }

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < 40; ++r) {
        const size_t qi = static_cast<size_t>(t + r) % queries.size();
        SearchOptions options;
        // Exercise all three algorithms concurrently.
        options.algorithm = static_cast<AlgorithmChoice>(1 + (t + r) % 3);
        Result<SearchResult> got = system->Search(queries[qi], options);
        if (!got.ok() || Strings(got->nodes) != expected[qi]) ++bad;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyTest, ParallelSemantics) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  std::vector<std::vector<std::string>> expected(3);
  for (int s = 0; s < 3; ++s) {
    SearchOptions options;
    options.semantics = static_cast<Semantics>(s);
    Result<SearchResult> r = system->Search({"alpha", "bravo"}, options);
    ASSERT_TRUE(r.ok());
    expected[static_cast<size_t>(s)] = Strings(r->nodes);
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < 30; ++r) {
        const int s = (t + r) % 3;
        SearchOptions options;
        options.semantics = static_cast<Semantics>(s);
        Result<SearchResult> got = system->Search({"alpha", "bravo"}, options);
        if (!got.ok() ||
            Strings(got->nodes) != expected[static_cast<size_t>(s)]) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyTest, ParallelDiskQueriesAgree) {
  DblpOptions gen;
  gen.papers = 1500;
  gen.seed = 42;
  gen.plants = {{"alpha", 15}, {"carol", 1200}};
  Result<Document> doc = GenerateDblp(gen);
  ASSERT_TRUE(doc.ok());
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  ASSERT_TRUE(built.ok());
  const std::unique_ptr<XKSearch>& system = *built;

  SearchOptions options;
  options.use_disk_index = true;
  Result<SearchResult> expected = system->Search({"alpha", "carol"}, options);
  ASSERT_TRUE(expected.ok());

  // Disk queries mutate shared buffer-pool state; the engine serializes
  // them internally, so concurrent const callers must still agree.
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&]() {
      for (int r = 0; r < 20; ++r) {
        Result<SearchResult> got =
            system->Search({"alpha", "carol"}, options);
        if (!got.ok() || Strings(got->nodes) != Strings(expected->nodes)) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyTest, QueryServiceMixedHotColdHammer) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  // Hot queries repeat across every thread (cache-hit path); cold ones
  // are thread-unique variations that keep missing and exercising the
  // pool + engine concurrently with the hits.
  const std::vector<std::vector<std::string>> hot = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo"},
  };
  std::vector<std::vector<std::string>> hot_expected;
  for (const auto& q : hot) {
    Result<SearchResult> r = system->Search(q);
    ASSERT_TRUE(r.ok());
    hot_expected.push_back(Strings(r->nodes));
  }

  serve::QueryServiceOptions options;
  options.pool.workers = 4;
  options.pool.queue_capacity = 4096;
  serve::QueryService service(system.get(), options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 30;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < kRounds; ++r) {
        if (r % 2 == 0) {
          const size_t qi = static_cast<size_t>(t + r) % hot.size();
          Result<serve::QueryResponse> got = service.Search(hot[qi]);
          if (!got.ok() ||
              Strings(got->result.nodes) != hot_expected[qi]) {
            ++bad;
          }
        } else {
          // Cold: distinct block_size values defeat the cache key, so the
          // query always dispatches (answers must be identical anyway).
          SearchOptions cold;
          cold.block_size = 1 + static_cast<size_t>(t * kRounds + r);
          Result<serve::QueryResponse> got =
              service.Search(hot[0], cold);
          if (!got.ok() ||
              Strings(got->result.nodes) != hot_expected[0]) {
            ++bad;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(service.metrics().cache_hits, 0u);
  const auto cache = service.cache_stats();
  EXPECT_GT(cache.misses, 0u);
  EXPECT_EQ(service.metrics().failed, 0u);
  EXPECT_EQ(service.metrics().rejected, 0u);
}

}  // namespace
}  // namespace xksearch
