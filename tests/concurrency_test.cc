// The whole query surface is concurrent: the in-memory path is read-only
// after build, and the disk path runs on sharded thread-safe buffer
// pools with per-query stats — so a const XKSearch or DiskSearcher can
// serve parallel queries from many threads with no internal
// serialization. These tests pin down that contract, plus QueryService —
// the layer that multiplexes both paths behind a thread pool and result
// cache.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/disk_searcher.h"
#include "engine/xksearch.h"
#include "gen/dblp_generator.h"
#include "gtest/gtest.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Strings;

std::unique_ptr<XKSearch> BuildCorpus() {
  DblpOptions gen;
  gen.papers = 3000;
  gen.seed = 99;
  gen.plants = {{"alpha", 20}, {"bravo", 300}, {"carol", 2500}};
  Result<Document> doc = GenerateDblp(gen);
  EXPECT_TRUE(doc.ok());
  Result<std::unique_ptr<XKSearch>> system =
      XKSearch::BuildFromDocument(std::move(*doc));
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

TEST(ConcurrencyTest, ParallelIdenticalQueriesAgree) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  Result<SearchResult> expected = system->Search({"alpha", "carol"});
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int r = 0; r < kRounds; ++r) {
        Result<SearchResult> got = system->Search({"alpha", "carol"});
        if (!got.ok()) {
          ++failures;
          return;
        }
        if (Strings(got->nodes) != Strings(expected->nodes)) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelMixedWorkload) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo", "carol"},
      {"alpha"},          {"carol"},
  };
  std::vector<std::vector<std::string>> expected;
  for (const auto& q : queries) {
    Result<SearchResult> r = system->Search(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(Strings(r->nodes));
  }

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < 40; ++r) {
        const size_t qi = static_cast<size_t>(t + r) % queries.size();
        SearchOptions options;
        // Exercise all three algorithms concurrently.
        options.algorithm = static_cast<AlgorithmChoice>(1 + (t + r) % 3);
        Result<SearchResult> got = system->Search(queries[qi], options);
        if (!got.ok() || Strings(got->nodes) != expected[qi]) ++bad;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyTest, ParallelSemantics) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  std::vector<std::vector<std::string>> expected(3);
  for (int s = 0; s < 3; ++s) {
    SearchOptions options;
    options.semantics = static_cast<Semantics>(s);
    Result<SearchResult> r = system->Search({"alpha", "bravo"}, options);
    ASSERT_TRUE(r.ok());
    expected[static_cast<size_t>(s)] = Strings(r->nodes);
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < 30; ++r) {
        const int s = (t + r) % 3;
        SearchOptions options;
        options.semantics = static_cast<Semantics>(s);
        Result<SearchResult> got = system->Search({"alpha", "bravo"}, options);
        if (!got.ok() ||
            Strings(got->nodes) != expected[static_cast<size_t>(s)]) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyTest, ParallelDiskQueriesAgree) {
  DblpOptions gen;
  gen.papers = 1500;
  gen.seed = 42;
  gen.plants = {{"alpha", 15}, {"carol", 1200}};
  Result<Document> doc = GenerateDblp(gen);
  ASSERT_TRUE(doc.ok());
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  ASSERT_TRUE(built.ok());
  const std::unique_ptr<XKSearch>& system = *built;

  SearchOptions options;
  options.use_disk_index = true;
  Result<SearchResult> expected = system->Search({"alpha", "carol"}, options);
  ASSERT_TRUE(expected.ok());

  // Disk queries run fully in parallel on the sharded buffer pools;
  // concurrent const callers must still agree with the baseline.
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&]() {
      for (int r = 0; r < 20; ++r) {
        Result<SearchResult> got =
            system->Search({"alpha", "carol"}, options);
        if (!got.ok() || Strings(got->nodes) != Strings(expected->nodes)) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// Stress the fully concurrent disk read path: 8 threads hammer one
// shared DiskSearcher whose pools are deliberately tiny (constant
// eviction) with readahead on, while a chaos thread flips the caches
// between cold (DropCaches) and hot (WarmCaches). Written to run under
// tsan (the preset's test filter includes this suite); the asserted
// invariants are
//   * every concurrent result equals its single-threaded baseline,
//   * per-query stats charge every fetch exactly once (reads + hits),
//   * no pin leaks: once the threads join, DropCaches succeeds and both
//     pools are empty.
TEST(ConcurrencyTest, DiskSearcherParallelStress) {
  DblpOptions gen;
  gen.papers = 1200;
  gen.seed = 7;
  gen.plants = {{"alpha", 12}, {"bravo", 150}, {"carol", 900}};
  Result<Document> doc = GenerateDblp(gen);
  ASSERT_TRUE(doc.ok());
  XKSearch::BuildOptions build;
  build.build_disk_index = true;
  build.disk.in_memory = true;
  // Tiny pools force eviction on nearly every query; readahead adds the
  // speculative-load path to the interleavings tsan sees.
  build.disk.il_pool_pages = 64;
  build.disk.scan_pool_pages = 64;
  build.disk.readahead_pages = 4;
  Result<std::unique_ptr<XKSearch>> built =
      XKSearch::BuildFromDocument(std::move(*doc), build);
  ASSERT_TRUE(built.ok());
  DiskIndex* index = (*built)->disk_index();
  ASSERT_NE(index, nullptr);
  const DiskSearcher searcher(index, index->tokenizer());

  const std::vector<std::vector<std::string>> queries = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo", "carol"},
      {"alpha"},          {"bravo"},
  };
  std::vector<std::vector<std::string>> expected;
  std::vector<uint64_t> expected_results;
  for (const auto& q : queries) {
    Result<SearchResult> r = searcher.Search(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(Strings(r->nodes));
    expected_results.push_back(r->stats.results);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> bad{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < kRounds; ++r) {
        const size_t qi = static_cast<size_t>(t * 3 + r) % queries.size();
        SearchOptions options;
        options.algorithm = static_cast<AlgorithmChoice>(1 + (t + r) % 3);
        Result<SearchResult> got = searcher.Search(queries[qi], options);
        if (!got.ok() || Strings(got->nodes) != expected[qi] ||
            got->stats.results != expected_results[qi]) {
          ++bad;
          return;
        }
        // Per-query accounting is self-consistent: a disk query touches
        // at least one page, each charged as exactly one read or hit.
        if (got->stats.page_reads + got->stats.page_hits == 0) {
          ++bad;
          return;
        }
      }
    });
  }
  // Chaos thread: flip the caches hot/cold underneath the queries.
  // DropCaches legitimately fails while any query holds a pin.
  std::thread chaos([&]() {
    int flips = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (++flips % 2 == 0) {
        const Status st = index->DropCaches();
        if (!st.ok() && !st.IsInternal()) {
          ++bad;
          return;
        }
      } else if (!index->WarmCaches().ok()) {
        ++bad;
        return;
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();
  stop = true;
  chaos.join();
  EXPECT_EQ(bad.load(), 0);

  // No pins leaked: with every query finished, the caches drop cleanly.
  XKS_ASSERT_OK(index->DropCaches());
  EXPECT_EQ(index->il_pool()->resident(), 0u);
  EXPECT_EQ(index->scan_pool()->resident(), 0u);
}

TEST(ConcurrencyTest, QueryServiceMixedHotColdHammer) {
  std::unique_ptr<XKSearch> system = BuildCorpus();
  // Hot queries repeat across every thread (cache-hit path); cold ones
  // are thread-unique variations that keep missing and exercising the
  // pool + engine concurrently with the hits.
  const std::vector<std::vector<std::string>> hot = {
      {"alpha", "carol"}, {"bravo", "carol"}, {"alpha", "bravo"},
  };
  std::vector<std::vector<std::string>> hot_expected;
  for (const auto& q : hot) {
    Result<SearchResult> r = system->Search(q);
    ASSERT_TRUE(r.ok());
    hot_expected.push_back(Strings(r->nodes));
  }

  serve::QueryServiceOptions options;
  options.pool.workers = 4;
  options.pool.queue_capacity = 4096;
  serve::QueryService service(system.get(), options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 30;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < kRounds; ++r) {
        if (r % 2 == 0) {
          const size_t qi = static_cast<size_t>(t + r) % hot.size();
          Result<serve::QueryResponse> got = service.Search(hot[qi]);
          if (!got.ok() ||
              Strings(got->result.nodes) != hot_expected[qi]) {
            ++bad;
          }
        } else {
          // Cold: distinct block_size values defeat the cache key, so the
          // query always dispatches (answers must be identical anyway).
          SearchOptions cold;
          cold.block_size = 1 + static_cast<size_t>(t * kRounds + r);
          Result<serve::QueryResponse> got =
              service.Search(hot[0], cold);
          if (!got.ok() ||
              Strings(got->result.nodes) != hot_expected[0]) {
            ++bad;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(service.metrics().cache_hits, 0u);
  const auto cache = service.cache_stats();
  EXPECT_GT(cache.misses, 0u);
  EXPECT_EQ(service.metrics().failed, 0u);
  EXPECT_EQ(service.metrics().rejected, 0u);
}

}  // namespace
}  // namespace xksearch
