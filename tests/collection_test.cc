#include "engine/collection.h"

#include <string>

#include "gen/school.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Strings;

Collection MakeLibrary() {
  Collection collection;
  XKS_EXPECT_OK(collection.AddXml(
      "papers",
      "<papers><paper><title>keyword search</title><author>xu</author>"
      "</paper><paper><title>query rewriting</title><author>chen</author>"
      "</paper></papers>"));
  XKS_EXPECT_OK(collection.AddXml(
      "books",
      "<books><book><title>search engines</title><author>xu</author></book>"
      "<book><title>keyword indexing</title><author>xu</author></book>"
      "</books>"));
  XKS_EXPECT_OK(
      collection.AddDocument("school", BuildSchoolDocument()));
  return collection;
}

TEST(CollectionTest, AddAndEnumerate) {
  Collection collection = MakeLibrary();
  EXPECT_EQ(collection.size(), 3u);
  EXPECT_EQ(collection.Names(),
            (std::vector<std::string>{"papers", "books", "school"}));
  EXPECT_NE(collection.Find("books"), nullptr);
  EXPECT_EQ(collection.Find("missing"), nullptr);
}

TEST(CollectionTest, DuplicateNameRejected) {
  Collection collection;
  XKS_ASSERT_OK(collection.AddXml("a", "<r>x</r>"));
  EXPECT_TRUE(collection.AddXml("a", "<r>y</r>").IsInvalidArgument());
}

TEST(CollectionTest, BadXmlRejected) {
  Collection collection;
  EXPECT_TRUE(collection.AddXml("bad", "<r>").IsParseError());
  EXPECT_EQ(collection.size(), 0u);
}

TEST(CollectionTest, SearchSpansDocumentsButAnswersDoNot) {
  Collection collection = MakeLibrary();
  // "xu" appears in papers (1) and books (2); "keyword" in papers and
  // books. Answers are per-document subtrees.
  Result<std::vector<Collection::DocumentHit>> hits =
      collection.Search({"keyword", "xu"});
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_EQ(hits->size(), 2u);
  for (const auto& hit : *hits) {
    EXPECT_TRUE(hit.document == "papers" || hit.document == "books");
    EXPECT_FALSE(hit.result.nodes.empty());
  }
}

TEST(CollectionTest, HitsOrderedByAnswerCount) {
  Collection collection = MakeLibrary();
  // "xu" alone: books has 2 instances (2 answers), papers 1.
  Result<std::vector<Collection::DocumentHit>> hits =
      collection.Search({"xu"});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].document, "books");
  EXPECT_EQ((*hits)[0].result.nodes.size(), 2u);
  EXPECT_EQ((*hits)[1].document, "papers");
}

TEST(CollectionTest, DocumentsWithoutAnswersOmitted) {
  Collection collection = MakeLibrary();
  Result<std::vector<Collection::DocumentHit>> hits =
      collection.Search({"john", "ben"});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].document, "school");
  EXPECT_EQ((*hits)[0].result.nodes.size(), 3u);
}

TEST(CollectionTest, NoMatchesAnywhere) {
  Collection collection = MakeLibrary();
  Result<std::vector<Collection::DocumentHit>> hits =
      collection.Search({"zzzz"});
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(CollectionTest, FrequencyAggregates) {
  Collection collection = MakeLibrary();
  EXPECT_EQ(collection.Frequency("xu"), 3u);
  EXPECT_EQ(collection.Frequency("john"), 4u);
  EXPECT_EQ(collection.Frequency("nope"), 0u);
}

TEST(CollectionTest, OptionsPropagate) {
  Collection collection = MakeLibrary();
  SearchOptions stack;
  stack.algorithm = AlgorithmChoice::kStack;
  Result<std::vector<Collection::DocumentHit>> hits =
      collection.Search({"john", "ben"}, stack);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].result.algorithm, SlcaAlgorithm::kStack);
}

TEST(CollectionTest, SnippetsThroughFind) {
  Collection collection = MakeLibrary();
  Result<std::vector<Collection::DocumentHit>> hits =
      collection.Search({"john", "ben"});
  ASSERT_TRUE(hits.ok());
  const XKSearch* school = collection.Find((*hits)[0].document);
  ASSERT_NE(school, nullptr);
  Result<std::string> snippet =
      school->Snippet((*hits)[0].result.nodes[0]);
  ASSERT_TRUE(snippet.ok());
  EXPECT_NE(snippet->find("John"), std::string::npos);
}

}  // namespace
}  // namespace xksearch
