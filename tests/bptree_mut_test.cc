#include "storage/bptree_mut.h"

#include <map>
#include <string>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/bptree.h"
#include "storage/node_format.h"
#include "test_util.h"

namespace xksearch {
namespace {

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

std::string Value(int i) { return "value-" + std::to_string(i); }

class BPlusTreeMutTest : public ::testing::Test {
 protected:
  BPlusTreeMutTest() : pool_(&store_, 512) {}

  BPlusTreeMut MakeTree() {
    Result<BPlusTreeMut> tree = BPlusTreeMut::Create(&pool_);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return tree.MoveValueUnsafe();
  }

  // Flushes and re-opens the store with the read-only reader, checking
  // it sees exactly `expected` via a full cursor scan.
  void ExpectContents(BPlusTreeMut* tree,
                      const std::map<std::string, std::string>& expected) {
    XKS_ASSERT_OK(tree->Flush());
    Result<BPlusTree> reader = BPlusTree::Open(&pool_);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->entry_count(), expected.size());
    BPlusTree::Cursor cursor = reader->NewCursor();
    XKS_ASSERT_OK(cursor.SeekToFirst());
    auto it = expected.begin();
    while (cursor.Valid()) {
      ASSERT_NE(it, expected.end()) << "extra key " << cursor.key();
      EXPECT_EQ(cursor.key(), it->first);
      EXPECT_EQ(cursor.value(), it->second);
      ++it;
      XKS_ASSERT_OK(cursor.Next());
    }
    EXPECT_EQ(it, expected.end());
    // Backward scan agrees too (prev links stay intact across splits).
    XKS_ASSERT_OK(cursor.SeekToLast());
    auto rit = expected.rbegin();
    while (cursor.Valid()) {
      ASSERT_NE(rit, expected.rend());
      EXPECT_EQ(cursor.key(), rit->first);
      ++rit;
      XKS_ASSERT_OK(cursor.Prev());
    }
    EXPECT_EQ(rit, expected.rend());
  }

  MemPageStore store_;
  BufferPool pool_;
};

TEST_F(BPlusTreeMutTest, EmptyTree) {
  BPlusTreeMut tree = MakeTree();
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_TRUE(tree.Get("x").status().IsNotFound());
  EXPECT_TRUE(tree.Delete("x").IsNotFound());
  ExpectContents(&tree, {});
}

TEST_F(BPlusTreeMutTest, SingleInsertGetDelete) {
  BPlusTreeMut tree = MakeTree();
  XKS_ASSERT_OK(tree.Put("alpha", "1"));
  Result<std::string> v = tree.Get("alpha");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  EXPECT_EQ(tree.entry_count(), 1u);
  XKS_ASSERT_OK(tree.Delete("alpha"));
  EXPECT_TRUE(tree.Get("alpha").status().IsNotFound());
  EXPECT_EQ(tree.entry_count(), 0u);
  ExpectContents(&tree, {});
}

TEST_F(BPlusTreeMutTest, UpsertOverwrites) {
  BPlusTreeMut tree = MakeTree();
  XKS_ASSERT_OK(tree.Put("k", "old"));
  XKS_ASSERT_OK(tree.Put("k", "new"));
  EXPECT_EQ(tree.entry_count(), 1u);
  Result<std::string> v = tree.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "new");
}

TEST_F(BPlusTreeMutTest, SequentialInsertsSplitLeaves) {
  BPlusTreeMut tree = MakeTree();
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    XKS_ASSERT_OK(tree.Put(Key(i), Value(i)));
    expected[Key(i)] = Value(i);
  }
  EXPECT_GT(tree.height(), 1u);
  ExpectContents(&tree, expected);
}

TEST_F(BPlusTreeMutTest, ReverseOrderInserts) {
  BPlusTreeMut tree = MakeTree();
  std::map<std::string, std::string> expected;
  for (int i = 2000; i-- > 0;) {
    XKS_ASSERT_OK(tree.Put(Key(i), Value(i)));
    expected[Key(i)] = Value(i);
  }
  ExpectContents(&tree, expected);
}

TEST_F(BPlusTreeMutTest, RandomInsertsMatchStdMap) {
  BPlusTreeMut tree = MakeTree();
  std::map<std::string, std::string> expected;
  Rng rng(17);
  for (int op = 0; op < 4000; ++op) {
    const int k = static_cast<int>(rng.Uniform(1500));
    XKS_ASSERT_OK(tree.Put(Key(k), Value(op)));
    expected[Key(k)] = Value(op);
  }
  EXPECT_EQ(tree.entry_count(), expected.size());
  for (const auto& [k, v] : expected) {
    Result<std::string> got = tree.Get(k);
    ASSERT_TRUE(got.ok()) << k;
    EXPECT_EQ(*got, v);
  }
  ExpectContents(&tree, expected);
}

TEST_F(BPlusTreeMutTest, MixedInsertDeleteMatchesStdMap) {
  BPlusTreeMut tree = MakeTree();
  std::map<std::string, std::string> expected;
  Rng rng(23);
  for (int op = 0; op < 6000; ++op) {
    const int k = static_cast<int>(rng.Uniform(800));
    if (rng.Bernoulli(0.4)) {
      const Status st = tree.Delete(Key(k));
      if (expected.erase(Key(k)) > 0) {
        XKS_EXPECT_OK(st);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else {
      XKS_ASSERT_OK(tree.Put(Key(k), Value(op)));
      expected[Key(k)] = Value(op);
    }
  }
  EXPECT_EQ(tree.entry_count(), expected.size());
  ExpectContents(&tree, expected);
}

TEST_F(BPlusTreeMutTest, DeleteEverythingThenReuse) {
  BPlusTreeMut tree = MakeTree();
  for (int i = 0; i < 500; ++i) XKS_ASSERT_OK(tree.Put(Key(i), Value(i)));
  for (int i = 0; i < 500; ++i) XKS_ASSERT_OK(tree.Delete(Key(i)));
  EXPECT_EQ(tree.entry_count(), 0u);
  ExpectContents(&tree, {});
  // The tree is usable again after total erasure.
  XKS_ASSERT_OK(tree.Put("reborn", "yes"));
  ExpectContents(&tree, {{"reborn", "yes"}});
}

TEST_F(BPlusTreeMutTest, VariableLengthEntriesAndOversizeRejected) {
  BPlusTreeMut tree = MakeTree();
  std::map<std::string, std::string> expected;
  Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    const std::string key(1 + rng.Uniform(80), static_cast<char>('a' + i % 26));
    const std::string value(rng.Uniform(200), 'v');
    XKS_ASSERT_OK(tree.Put(key, value));
    expected[key] = value;
  }
  ExpectContents(&tree, expected);
  EXPECT_TRUE(tree.Put("big", std::string(kPageSize, 'x')).IsInvalidArgument());
}

TEST_F(BPlusTreeMutTest, OpenBulkLoadedTreeAndMutate) {
  // Interoperability: bulk load with the builder, mutate here.
  std::map<std::string, std::string> expected;
  {
    BPlusTreeBuilder builder(&store_);
    for (int i = 0; i < 1000; i += 2) {
      XKS_ASSERT_OK(builder.Add(Key(i), Value(i)));
      expected[Key(i)] = Value(i);
    }
    XKS_ASSERT_OK(builder.Finish());
  }
  Result<BPlusTreeMut> tree = BPlusTreeMut::Open(&pool_);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->entry_count(), expected.size());
  // Fill in the odd keys and delete a band of even ones.
  for (int i = 1; i < 1000; i += 2) {
    XKS_ASSERT_OK(tree->Put(Key(i), Value(i)));
    expected[Key(i)] = Value(i);
  }
  for (int i = 100; i < 200; i += 2) {
    XKS_ASSERT_OK(tree->Delete(Key(i)));
    expected.erase(Key(i));
  }
  ExpectContents(&*tree, expected);
}

TEST_F(BPlusTreeMutTest, MetadataPersistsAcrossFlush) {
  BPlusTreeMut tree = MakeTree();
  tree.SetMetadata({9, 8, 7});
  XKS_ASSERT_OK(tree.Put("a", "b"));
  XKS_ASSERT_OK(tree.Flush());
  Result<BPlusTreeMut> reopened = BPlusTreeMut::Open(&pool_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->metadata(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(reopened->entry_count(), 1u);
}

TEST_F(BPlusTreeMutTest, FlushSurvivesPoolDrop) {
  BPlusTreeMut tree = MakeTree();
  for (int i = 0; i < 800; ++i) XKS_ASSERT_OK(tree.Put(Key(i), Value(i)));
  XKS_ASSERT_OK(tree.Flush());
  // Simulate a restart: drop every cached page, then read back.
  XKS_ASSERT_OK(pool_.DropAll());
  Result<BPlusTreeMut> reopened = BPlusTreeMut::Open(&pool_);
  ASSERT_TRUE(reopened.ok());
  Result<std::string> v = reopened->Get(Key(555));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(555));
}

TEST_F(BPlusTreeMutTest, TinyPoolSpillsDirtyPages) {
  // A pool smaller than the working set forces dirty evictions mid-run.
  BufferPool tiny(&store_, 4);
  Result<BPlusTreeMut> tree = BPlusTreeMut::Create(&tiny);
  ASSERT_TRUE(tree.ok());
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 1500; ++i) {
    XKS_ASSERT_OK(tree->Put(Key(i), Value(i)));
    expected[Key(i)] = Value(i);
  }
  XKS_ASSERT_OK(tree->Flush());
  for (int i = 0; i < 1500; i += 101) {
    Result<std::string> v = tree->Get(Key(i));
    ASSERT_TRUE(v.ok()) << Key(i);
    EXPECT_EQ(*v, Value(i));
  }
}

TEST(BPlusTreeMutFileTest, PersistsAcrossProcessStyleReopen) {
  const std::string path = ::testing::TempDir() + "/bptree_mut_file.db";
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Create(path);
    ASSERT_TRUE(store.ok());
    BufferPool pool(store->get(), 64);
    Result<BPlusTreeMut> tree = BPlusTreeMut::Create(&pool);
    ASSERT_TRUE(tree.ok());
    for (int i = 0; i < 300; ++i) {
      XKS_ASSERT_OK(tree->Put(Key(i), Value(i)));
    }
    XKS_ASSERT_OK(tree->Flush());
  }
  {
    Result<std::unique_ptr<FilePageStore>> store = FilePageStore::Open(path);
    ASSERT_TRUE(store.ok());
    BufferPool pool(store->get(), 64);
    Result<BPlusTree> reader = BPlusTree::Open(&pool);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader->entry_count(), 300u);
    Result<std::string> v = reader->Get(Key(123));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, Value(123));
  }
  std::remove(path.c_str());
}

TEST(ParsedNodeTest, RoundTripThroughPage) {
  node_format::ParsedNode node;
  node.leaf = true;
  node.link_a = 42;
  node.link_b = 7;
  node.entries = {{"alpha", "1"}, {"beta", std::string(100, 'x')}, {"c", ""}};
  Page page;
  node.WriteTo(&page);
  Result<node_format::ParsedNode> back =
      node_format::ParsedNode::ReadFrom(page);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->leaf, node.leaf);
  EXPECT_EQ(back->link_a, node.link_a);
  EXPECT_EQ(back->link_b, node.link_b);
  EXPECT_EQ(back->entries, node.entries);
  EXPECT_EQ(back->SerializedSize(), node.SerializedSize());
}

TEST(ParsedNodeTest, InternalChildEncoding) {
  node_format::ParsedNode node;
  node.leaf = false;
  node.link_a = 10;
  node.entries = {{"m", node_format::ParsedNode::EncodeChild(11)},
                  {"t", node_format::ParsedNode::EncodeChild(12)}};
  EXPECT_EQ(node.ChildAt(0), 10u);
  EXPECT_EQ(node.ChildAt(1), 11u);
  EXPECT_EQ(node.ChildAt(2), 12u);
}

}  // namespace
}  // namespace xksearch
