#include "xml/parser.h"

#include "common/rng.h"
#include "gen/random_tree.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

using testing_util::Id;

TEST(XmlParserTest, MinimalDocument) {
  Result<Document> doc = ParseXml("<root/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->node_count(), 1u);
  EXPECT_EQ(doc->tag(doc->root()), "root");
  EXPECT_EQ(doc->DeweyOf(doc->root()), Id("0"));
}

TEST(XmlParserTest, NestedElementsGetDeweyNumbers) {
  Result<Document> doc =
      ParseXml("<a><b><c/></b><b/><d>text</d></a>");
  ASSERT_TRUE(doc.ok());
  const Document& d = *doc;
  ASSERT_EQ(d.node_count(), 6u);
  Result<NodeId> c = d.FindByDewey(Id("0.0.0"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(d.tag(*c), "c");
  Result<NodeId> text = d.FindByDewey(Id("0.2.0"));
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(d.IsText(*text));
  EXPECT_EQ(d.text(*text), "text");
}

TEST(XmlParserTest, AttributesParsed) {
  Result<Document> doc = ParseXml(
      "<r a=\"1\" b='two' c=\"a&amp;b\"><x key=\"v\"/></r>");
  ASSERT_TRUE(doc.ok());
  const auto& attrs = doc->attributes(doc->root());
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].first, "a");
  EXPECT_EQ(attrs[0].second, "1");
  EXPECT_EQ(attrs[1].second, "two");
  EXPECT_EQ(attrs[2].second, "a&b");
}

TEST(XmlParserTest, EntitiesDecoded) {
  Result<Document> doc =
      ParseXml("<r>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->DirectText(doc->root()), "<tag> & \"q\" 'a' AB");
}

TEST(XmlParserTest, NumericEntityUtf8) {
  Result<Document> doc = ParseXml("<r>&#233;&#x4e2d;</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->DirectText(doc->root()), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(XmlParserTest, CdataPreservedVerbatim) {
  Result<Document> doc = ParseXml("<r><![CDATA[<not>&parsed;]]></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->DirectText(doc->root()), "<not>&parsed;");
}

TEST(XmlParserTest, CommentsAndPisSkipped) {
  Result<Document> doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- top --><r><!-- in -->a<?pi data?>b</r>"
      "<!-- tail -->");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->DirectText(doc->root()), "ab");
}

TEST(XmlParserTest, DoctypeWithInternalSubsetSkipped) {
  Result<Document> doc = ParseXml(
      "<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r>ok</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->DirectText(doc->root()), "ok");
}

TEST(XmlParserTest, WhitespaceOnlyTextDroppedByDefault) {
  Result<Document> doc = ParseXml("<r>\n  <a/>\n  <b/>\n</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->child_count(doc->root()), 2u);

  ParserOptions keep;
  keep.keep_whitespace_text = true;
  Result<Document> kept = ParseXml("<r>\n  <a/>\n</r>", keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->child_count(kept->root()), 3u);
}

TEST(XmlParserTest, MixedContentOrderPreserved) {
  Result<Document> doc = ParseXml("<r>one<b>two</b>three</r>");
  ASSERT_TRUE(doc.ok());
  const auto& kids = doc->children(doc->root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_TRUE(doc->IsText(kids[0]));
  EXPECT_TRUE(doc->IsElement(kids[1]));
  EXPECT_TRUE(doc->IsText(kids[2]));
  EXPECT_EQ(doc->text(kids[2]), "three");
}

TEST(XmlParserTest, Utf8BomAccepted) {
  Result<Document> doc = ParseXml("\xEF\xBB\xBF<r/>");
  ASSERT_TRUE(doc.ok());
}

struct BadInput {
  const char* name;
  const char* xml;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserErrorTest, RejectsMalformedInput) {
  Result<Document> doc = ParseXml(GetParam().xml);
  EXPECT_FALSE(doc.ok()) << GetParam().name;
  EXPECT_TRUE(doc.status().IsParseError());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"text_only", "hello"},
        BadInput{"unclosed_root", "<r>"},
        BadInput{"mismatched_tags", "<a><b></a></b>"},
        BadInput{"content_after_root", "<a/><b/>"},
        BadInput{"unterminated_comment", "<a><!-- oops</a>"},
        BadInput{"bad_entity", "<a>&bogus;</a>"},
        BadInput{"unterminated_entity", "<a>&#12</a>"},
        BadInput{"lt_in_attribute", "<a b=\"<\"/>"},
        BadInput{"unquoted_attribute", "<a b=c/>"},
        BadInput{"unterminated_attr", "<a b=\"c/>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"bad_name", "<1abc/>"},
        BadInput{"stray_end_tag", "<a></a></b>"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(XmlParserTest, ErrorsCarryLineAndColumn) {
  Result<Document> doc = ParseXml("<a>\n<b>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("3:"), std::string::npos)
      << doc.status().ToString();
}

TEST(XmlParserTest, DepthLimitEnforced) {
  std::string xml;
  for (int i = 0; i < 30; ++i) xml += "<a>";
  xml += "x";
  for (int i = 0; i < 30; ++i) xml += "</a>";
  ParserOptions shallow;
  shallow.max_depth = 10;
  EXPECT_FALSE(ParseXml(xml, shallow).ok());
  EXPECT_TRUE(ParseXml(xml).ok());
}

TEST(XmlSerializeTest, RoundTripPreservesStructure) {
  const char* xml =
      "<school><class name=\"CS2A\"><instructor>John &amp; co</instructor>"
      "<ta>Ben</ta></class><empty/></school>";
  Result<Document> doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  const std::string serialized = SerializeXml(*doc);
  Result<Document> again = ParseXml(serialized);
  ASSERT_TRUE(again.ok()) << serialized;
  EXPECT_EQ(SerializeXml(*again), serialized);
  EXPECT_EQ(doc->node_count(), again->node_count());
}

TEST(XmlSerializeTest, EscapesSpecials) {
  EXPECT_EQ(EscapeXml("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlSerializeTest, RandomDocumentsRoundTrip) {
  // Property: serialize(parse(serialize(doc))) is a fixed point and the
  // node count is preserved, over many random tree shapes.
  Rng rng(31337);
  for (int round = 0; round < 25; ++round) {
    RandomTreeOptions options;
    options.node_count = 10 + rng.Uniform(400);
    options.max_depth = static_cast<uint32_t>(2 + rng.Uniform(10));
    options.vocab_size = 1 + rng.Uniform(8);
    const Document doc = GenerateRandomDocument(&rng, options);
    const std::string xml = SerializeXml(doc);
    Result<Document> reparsed = ParseXml(xml);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(reparsed->node_count(), doc.node_count());
    EXPECT_EQ(SerializeXml(*reparsed), xml);
    // Indented output parses back to the same structure too.
    Result<Document> indented = ParseXml(SerializeXml(doc, /*indent=*/true));
    ASSERT_TRUE(indented.ok());
    EXPECT_EQ(SerializeXml(*indented), xml);
  }
}

// Robustness: random mutations of well-formed input must never crash or
// corrupt state — the parser either succeeds or returns a ParseError.
TEST(XmlParserTest, MutationFuzzNeverCrashes) {
  Rng rng(0xF022);
  RandomTreeOptions options;
  options.node_count = 60;
  options.vocab_size = 4;
  const Document doc = GenerateRandomDocument(&rng, options);
  const std::string base = SerializeXml(doc);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = base;
    const size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits && !mutated.empty(); ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    Result<Document> parsed = ParseXml(mutated);
    if (parsed.ok()) {
      // If it parsed, it must serialize and re-parse consistently.
      Result<Document> again = ParseXml(SerializeXml(*parsed));
      EXPECT_TRUE(again.ok());
    } else {
      EXPECT_TRUE(parsed.status().IsParseError());
    }
  }
}

TEST(XmlParserTest, ParseFileMissingGivesIoError) {
  Result<Document> doc = ParseXmlFile("/nonexistent/path/file.xml");
  EXPECT_TRUE(doc.status().IsIoError());
}

// Unterminated constructs of every flavor: the parser must report a
// clean ParseError (never crash, hang or return a half-built document).
TEST(XmlParserTest, UnterminatedTagsGiveParseError) {
  for (const char* xml : {
           "<a>",                    // missing close tag
           "<a><b></a>",             // mismatched close tag
           "<a",                     // open tag never closed
           "<a foo=\"bar\"",         // attribute list never closed
           "<a foo=\"bar>text",      // attribute value never closed
           "<a>text",                // document ends inside content
           "<a><!-- comment </a>",   // comment never closed
           "<a><![CDATA[stuff</a>",  // CDATA never closed
           "<a></",                  // close tag cut short
           "</a>",                   // close with no open
       }) {
    Result<Document> doc = ParseXml(xml);
    EXPECT_TRUE(doc.status().IsParseError())
        << "input: " << xml << " -> " << doc.status().ToString();
  }
}

TEST(XmlParserTest, BadEntitiesGiveParseError) {
  for (const char* xml : {
           "<a>&bogus;</a>",     // unknown named entity
           "<a>&unterminated",   // entity never closed
           "<a>&#xZZ;</a>",      // non-hex digits
           "<a>&#;</a>",         // empty numeric entity
           "<a>&#x110000;</a>",  // beyond the Unicode range
       }) {
    Result<Document> doc = ParseXml(xml);
    EXPECT_TRUE(doc.status().IsParseError())
        << "input: " << xml << " -> " << doc.status().ToString();
  }
  // The well-formed entities still work.
  Result<Document> ok = ParseXml("<a>&amp;&lt;&gt;&#65;</a>");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(XmlParserTest, NestingBeyondMaxDepthGivesParseError) {
  ParserOptions options;
  options.max_depth = 64;
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<d>";
    close += "</d>";
  }
  Result<Document> deep = ParseXml(open + close, options);
  EXPECT_TRUE(deep.status().IsParseError()) << deep.status().ToString();

  // Exactly at the limit parses fine.
  std::string at_open, at_close;
  for (uint32_t i = 0; i < options.max_depth; ++i) {
    at_open += "<d>";
    at_close += "</d>";
  }
  Result<Document> at_limit = ParseXml(at_open + at_close, options);
  EXPECT_TRUE(at_limit.ok()) << at_limit.status().ToString();
}

}  // namespace
}  // namespace xksearch
