// Write-ahead log unit coverage: frame round-trips, torn-tail rejection
// by checksum, commit-record atomicity (a batch with no durable commit
// frame is never applied), idempotent recovery (crash during recovery =
// recover again), the fsync barrier in Commit(), and the StagedPageStore
// overlay the updater stacks under its buffer pools.

#include "storage/wal.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/fault_injection.h"
#include "storage/pager.h"
#include "test_util.h"

namespace xksearch {
namespace {

Page FilledPage(uint8_t byte) {
  Page page;
  page.data.fill(byte);
  return page;
}

// Reads the whole log file as a flat byte string (for corruption and
// restore-the-log tests).
std::vector<uint8_t> DumpStore(PageStore* store) {
  std::vector<uint8_t> bytes;
  Page page;
  for (PageId id = 0; id < store->page_count(); ++id) {
    EXPECT_TRUE(store->ReadPage(id, &page).ok());
    bytes.insert(bytes.end(), page.data.begin(), page.data.end());
  }
  return bytes;
}

void RestoreStore(PageStore* store, const std::vector<uint8_t>& bytes) {
  ASSERT_EQ(bytes.size() % kPageSize, 0u);
  ASSERT_TRUE(store->Truncate(0).ok());
  Page page;
  for (size_t off = 0; off < bytes.size(); off += kPageSize) {
    std::memcpy(page.data.data(), bytes.data() + off, kPageSize);
    ASSERT_TRUE(store->AllocatePage().ok());
    ASSERT_TRUE(
        store->WritePage(static_cast<PageId>(off / kPageSize), page).ok());
  }
}

// A Wal over a MemPageStore, with the store still reachable for
// inspection and corruption.
struct TestWal {
  MemPageStore* store = nullptr;  // owned by wal
  std::unique_ptr<Wal> wal;
};

TestWal OpenTestWal() {
  auto owned = std::make_unique<MemPageStore>();
  TestWal t;
  t.store = owned.get();
  Result<std::unique_ptr<Wal>> wal = Wal::Open(std::move(owned));
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  t.wal = wal.MoveValueUnsafe();
  return t;
}

Wal::StoreResolver SingleStore(PageStore* target) {
  return [target](uint8_t id) -> PageStore* {
    return id == 0 ? target : nullptr;
  };
}

TEST(WalTest, EmptyLogRecoversNothing) {
  TestWal t = OpenTestWal();
  MemPageStore target;
  Result<WalRecoveryStats> stats = t.wal->Recover(SingleStore(&target));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 0u);
  EXPECT_EQ(stats->frames_applied, 0u);
  EXPECT_EQ(target.page_count(), 0u);
}

TEST(WalTest, CommittedBatchReplaysIntoTarget) {
  TestWal t = OpenTestWal();
  XKS_ASSERT_OK(t.wal->AppendBegin(7));
  XKS_ASSERT_OK(t.wal->AppendTruncate(0, 3));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0xaa)));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 2, FilledPage(0xbb)));
  XKS_ASSERT_OK(t.wal->Commit());

  MemPageStore target;
  Result<WalRecoveryStats> stats = t.wal->Recover(SingleStore(&target));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 1u);
  EXPECT_EQ(stats->frames_applied, 3u);
  ASSERT_EQ(target.page_count(), 3u);
  Page page;
  XKS_ASSERT_OK(target.ReadPage(0, &page));
  EXPECT_EQ(page.data[kPageSize - 1], 0xaa);
  XKS_ASSERT_OK(target.ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 0x00);  // truncate-grown, never imaged
  XKS_ASSERT_OK(target.ReadPage(2, &page));
  EXPECT_EQ(page.data[0], 0xbb);
  // Recovery resets the log.
  EXPECT_EQ(t.wal->size_bytes(), 0u);
}

TEST(WalTest, UncommittedBatchIsDiscardedUntouched) {
  TestWal t = OpenTestWal();
  XKS_ASSERT_OK(t.wal->AppendBegin(1));
  // Page-image frames are bigger than one log page, so these bytes reach
  // the store even though Commit never runs — the shape a crash between
  // the appends and the commit fsync leaves behind.
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0x11)));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 1, FilledPage(0x22)));
  ASSERT_GT(t.store->page_count(), 0u);

  // "Crash": abandon the Wal object, reopen over the same bytes.
  std::vector<uint8_t> bytes = DumpStore(t.store);
  auto reopened_store = std::make_unique<MemPageStore>();
  RestoreStore(reopened_store.get(), bytes);
  Result<std::unique_ptr<Wal>> reopened = Wal::Open(std::move(reopened_store));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  MemPageStore target;
  Result<WalRecoveryStats> stats = (*reopened)->Recover(SingleStore(&target));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 0u);
  EXPECT_EQ(target.page_count(), 0u) << "uncommitted batch must not apply";
}

TEST(WalTest, ChecksumRejectsCorruptedFrame) {
  TestWal t = OpenTestWal();
  XKS_ASSERT_OK(t.wal->AppendBegin(1));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0x33)));
  XKS_ASSERT_OK(t.wal->Commit());

  // Flip one payload byte in the middle of the log: the scan must stop
  // there and treat everything from that frame on as a torn tail.
  Page page;
  XKS_ASSERT_OK(t.store->ReadPage(0, &page));
  page.data[600] ^= 0xff;
  XKS_ASSERT_OK(t.store->WritePage(0, page));

  MemPageStore target;
  Result<WalRecoveryStats> stats = t.wal->Recover(SingleStore(&target));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 0u);
  EXPECT_EQ(target.page_count(), 0u);
}

TEST(WalTest, TrailingGarbageAfterCommitIsIgnored) {
  TestWal t = OpenTestWal();
  XKS_ASSERT_OK(t.wal->AppendBegin(1));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0x44)));
  XKS_ASSERT_OK(t.wal->Commit());
  const uint64_t intact = t.wal->size_bytes();

  // Scribble garbage after the committed bytes (a torn next batch).
  const PageId tail_page = static_cast<PageId>(intact / kPageSize);
  Page page;
  if (tail_page < t.store->page_count()) {
    XKS_ASSERT_OK(t.store->ReadPage(tail_page, &page));
  } else {
    XKS_ASSERT_OK(t.store->AllocatePage().status());
    page.Zero();
  }
  for (size_t off = intact % kPageSize; off < kPageSize; ++off) {
    page.data[off] = 0x5a;
  }
  XKS_ASSERT_OK(t.store->WritePage(tail_page, page));

  auto reopened_store = std::make_unique<MemPageStore>();
  RestoreStore(reopened_store.get(), DumpStore(t.store));
  Result<std::unique_ptr<Wal>> reopened = Wal::Open(std::move(reopened_store));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  MemPageStore target;
  Result<WalRecoveryStats> stats = (*reopened)->Recover(SingleStore(&target));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 1u);
  ASSERT_EQ(target.page_count(), 1u);
  XKS_ASSERT_OK(target.ReadPage(0, &page));
  EXPECT_EQ(page.data[0], 0x44);
}

TEST(WalTest, ForgedCommitFrameCountMismatchIsCorruption) {
  // Hand-craft a batch whose commit frame claims the wrong frame count:
  // begin, one image, commit claiming two. The commit's integrity check
  // must refuse to apply it.
  auto append_frame = [](std::vector<uint8_t>* log, uint8_t type,
                         const std::vector<uint8_t>& body) {
    std::vector<uint8_t> payload;
    payload.push_back(type);
    payload.insert(payload.end(), body.begin(), body.end());
    const uint32_t length = static_cast<uint32_t>(payload.size());
    const uint32_t crc = WalCrc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) {
      log->push_back(static_cast<uint8_t>((length >> (8 * i)) & 0xff));
    }
    for (int i = 0; i < 4; ++i) {
      log->push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
    }
    log->insert(log->end(), payload.begin(), payload.end());
  };

  std::vector<uint8_t> log;
  append_frame(&log, /*kBeginFrame=*/1, {9});  // varint64 batch_id=9
  std::vector<uint8_t> image_body(2 + kPageSize, 0x66);
  image_body[0] = 0;  // store id
  image_body[1] = 0;  // varint32 page 0
  append_frame(&log, /*kPageImageFrame=*/2, image_body);
  append_frame(&log, /*kCommitFrame=*/4, {9, 2});  // claims 2 frames, has 1
  log.resize((log.size() + kPageSize - 1) / kPageSize * kPageSize, 0);

  auto store = std::make_unique<MemPageStore>();
  RestoreStore(store.get(), log);
  Result<std::unique_ptr<Wal>> wal = Wal::Open(std::move(store));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  MemPageStore target;
  Result<WalRecoveryStats> stats = (*wal)->Recover(SingleStore(&target));
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status().ToString();
  EXPECT_EQ(target.page_count(), 0u);
}

TEST(WalTest, DoubleRecoverIsIdempotent) {
  TestWal t = OpenTestWal();
  XKS_ASSERT_OK(t.wal->AppendBegin(1));
  XKS_ASSERT_OK(t.wal->AppendTruncate(0, 2));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0x77)));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 1, FilledPage(0x88)));
  XKS_ASSERT_OK(t.wal->Commit());
  const std::vector<uint8_t> committed_log = DumpStore(t.store);

  MemPageStore target;
  Result<WalRecoveryStats> first = t.wal->Recover(SingleStore(&target));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->batches_applied, 1u);
  const std::vector<uint8_t> after_first = DumpStore(&target);

  // Crash-during-recovery model: the images were applied but the log was
  // not reset. Put the committed log back and recover again — page-image
  // redo must converge to the identical state.
  auto store = std::make_unique<MemPageStore>();
  RestoreStore(store.get(), committed_log);
  Result<std::unique_ptr<Wal>> again = Wal::Open(std::move(store));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  Result<WalRecoveryStats> second = (*again)->Recover(SingleStore(&target));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->batches_applied, 1u);
  EXPECT_EQ(DumpStore(&target), after_first);

  // And a third pass over the now-reset log is a no-op.
  Result<WalRecoveryStats> third = (*again)->Recover(SingleStore(&target));
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->batches_applied, 0u);
  EXPECT_EQ(DumpStore(&target), after_first);
}

TEST(WalTest, BatchesReplayInLogOrder) {
  TestWal t = OpenTestWal();
  XKS_ASSERT_OK(t.wal->AppendBegin(1));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0x01)));
  XKS_ASSERT_OK(t.wal->Commit());
  XKS_ASSERT_OK(t.wal->AppendBegin(2));
  XKS_ASSERT_OK(t.wal->AppendPageImage(0, 0, FilledPage(0x02)));
  XKS_ASSERT_OK(t.wal->Commit());

  // Both batches are in the log only when recovery runs over a copy
  // taken before the first Recover(); reopen from the dumped bytes.
  auto store = std::make_unique<MemPageStore>();
  RestoreStore(store.get(), DumpStore(t.store));
  Result<std::unique_ptr<Wal>> wal = Wal::Open(std::move(store));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  MemPageStore target;
  Result<WalRecoveryStats> stats = (*wal)->Recover(SingleStore(&target));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->batches_applied, 2u);
  Page page;
  XKS_ASSERT_OK(target.ReadPage(0, &page));
  EXPECT_EQ(page.data[0], 0x02) << "later batch must win";
}

TEST(WalTest, CommitFailsWhenFsyncFails) {
  auto mem = std::make_unique<MemPageStore>();
  auto faulty =
      std::make_unique<FaultInjectingPageStore>(std::move(mem), /*seed=*/3);
  FaultInjectingPageStore* fault = faulty.get();
  fault->FailNthSync(1);
  fault->Arm();
  Result<std::unique_ptr<Wal>> wal = Wal::Open(std::move(faulty));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  XKS_ASSERT_OK((*wal)->AppendBegin(1));
  XKS_ASSERT_OK((*wal)->AppendPageImage(0, 0, FilledPage(0x99)));
  const Status commit = (*wal)->Commit();
  EXPECT_TRUE(commit.IsIoError()) << commit.ToString();
  EXPECT_EQ(fault->injected_errors(), 1u);
  EXPECT_EQ(fault->syncs(), 1u);
}

TEST(WalTest, CrashAtCommitSyncLeavesBatchUnapplied) {
  // The barrier itself is the kill point: every log page was written but
  // the fsync never completed, so the simulated kernel may drop them.
  auto mem = std::make_unique<MemPageStore>();
  auto faulty =
      std::make_unique<FaultInjectingPageStore>(std::move(mem), /*seed=*/3);
  FaultInjectingPageStore* fault = faulty.get();
  auto schedule = std::make_shared<CrashSchedule>();
  fault->SetCrashSchedule(schedule);
  schedule->CrashAtSync(1);
  Result<std::unique_ptr<Wal>> wal = Wal::Open(std::move(faulty));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  XKS_ASSERT_OK((*wal)->AppendBegin(1));
  XKS_ASSERT_OK((*wal)->AppendPageImage(0, 0, FilledPage(0x13)));
  const Status commit = (*wal)->Commit();
  EXPECT_TRUE(commit.IsIoError()) << commit.ToString();
  EXPECT_TRUE(schedule->crashed());
  EXPECT_TRUE(fault->crashed());
  // The unsynced log pages were dropped: the inner file is empty, so a
  // post-crash recovery finds nothing to apply.
  EXPECT_EQ(fault->inner()->page_count(), 0u);
}

// ---------------------------------------------------------------------
// StagedPageStore overlay.
// ---------------------------------------------------------------------

class StagedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(inner_.AllocatePage().ok());
      ASSERT_TRUE(
          inner_.WritePage(static_cast<PageId>(i), FilledPage(0x10 + i)).ok());
    }
  }
  MemPageStore inner_;
};

TEST_F(StagedStoreTest, ReadsFallThroughWritesDoNot) {
  StagedPageStore staged(&inner_);
  Page page;
  XKS_ASSERT_OK(staged.ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 0x11);

  XKS_ASSERT_OK(staged.WritePage(1, FilledPage(0xee)));
  XKS_ASSERT_OK(staged.ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 0xee);
  XKS_ASSERT_OK(inner_.ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 0x11) << "inner store must stay untouched";
  EXPECT_EQ(staged.staged_count(), 1u);
}

TEST_F(StagedStoreTest, AllocationsStayStaged) {
  StagedPageStore staged(&inner_);
  Result<PageId> id = staged.AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 4u);
  EXPECT_EQ(staged.page_count(), 5u);
  EXPECT_EQ(inner_.page_count(), 4u);
  Page page;
  XKS_ASSERT_OK(staged.ReadPage(4, &page));
  EXPECT_EQ(page.data[0], 0x00);
}

TEST_F(StagedStoreTest, TruncateShrinkHidesInnerPages) {
  StagedPageStore staged(&inner_);
  XKS_ASSERT_OK(staged.Truncate(0));
  EXPECT_EQ(staged.page_count(), 0u);
  EXPECT_EQ(inner_.page_count(), 4u);
  Page page;
  EXPECT_TRUE(staged.ReadPage(0, &page).IsOutOfRange());

  // Regrow: the old inner bytes must NOT shine through the truncation.
  XKS_ASSERT_OK(staged.Truncate(2));
  XKS_ASSERT_OK(staged.ReadPage(0, &page));
  EXPECT_EQ(page.data[0], 0x00);
}

TEST_F(StagedStoreTest, StagedPageIdsAreSortedAndComplete) {
  StagedPageStore staged(&inner_);
  XKS_ASSERT_OK(staged.WritePage(3, FilledPage(1)));
  XKS_ASSERT_OK(staged.WritePage(0, FilledPage(2)));
  ASSERT_TRUE(staged.AllocatePage().ok());
  const std::vector<PageId> ids = staged.StagedPageIds();
  EXPECT_EQ(ids, (std::vector<PageId>{0, 3, 4}));
  ASSERT_NE(staged.StagedPage(3), nullptr);
  EXPECT_EQ(staged.StagedPage(3)->data[0], 1);
  EXPECT_EQ(staged.StagedPage(1), nullptr);
}

}  // namespace
}  // namespace xksearch
