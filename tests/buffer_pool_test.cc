#include "storage/buffer_pool.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace xksearch {
namespace {

// A store that fails reads on demand, for error-path coverage.
class FlakyStore : public PageStore {
 public:
  Status ReadPage(PageId id, Page* out) override {
    ++reads;
    if (fail_reads) return Status::IoError("injected failure");
    return mem.ReadPage(id, out);
  }
  Status WritePage(PageId id, const Page& page) override {
    return mem.WritePage(id, page);
  }
  Result<PageId> AllocatePage() override { return mem.AllocatePage(); }
  PageId page_count() const override { return mem.page_count(); }
  Status Sync() override { return Status::OK(); }

  MemPageStore mem;
  int reads = 0;
  bool fail_reads = false;
};

Page Stamped(uint8_t v) {
  Page p;
  p.Zero();
  p.WriteU8(0, v);
  return p;
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (uint8_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(store_.AllocatePage().ok());
      XKS_ASSERT_OK(store_.WritePage(i, Stamped(i)));
    }
  }
  FlakyStore store_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&store_, 4);
  {
    Result<PageRef> ref = pool.Fetch(3);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->page().ReadU8(0), 3);
  }
  EXPECT_EQ(pool.total_misses(), 1u);
  {
    Result<PageRef> ref = pool.Fetch(3);
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(pool.total_misses(), 1u);
  EXPECT_EQ(pool.total_hits(), 1u);
  EXPECT_EQ(store_.reads, 1);
}

TEST_F(BufferPoolTest, LruEvictsColdestUnpinned) {
  BufferPool pool(&store_, 2);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  // Touch 0 so 1 is the LRU victim.
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }  // evicts 1
  EXPECT_EQ(pool.total_misses(), 3u);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }  // still resident
  EXPECT_EQ(pool.total_misses(), 3u);
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }  // was evicted
  EXPECT_EQ(pool.total_misses(), 4u);
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  BufferPool pool(&store_, 2);
  Result<PageRef> pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }  // must evict 1, not 0
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), 3u);
  // The pinned page's bytes stayed valid throughout.
  EXPECT_EQ(pinned->page().ReadU8(0), 0);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(&store_, 2);
  Result<PageRef> a = pool.Fetch(0);
  Result<PageRef> b = pool.Fetch(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Result<PageRef> c = pool.Fetch(2);
  EXPECT_TRUE(c.status().IsInternal());
}

TEST_F(BufferPoolTest, StatsAttachedPerQuery) {
  BufferPool pool(&store_, 4);
  QueryStats stats;
  pool.AttachStats(&stats);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(stats.page_reads, 1u);
  EXPECT_EQ(stats.page_hits, 1u);
  pool.AttachStats(nullptr);
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(stats.page_reads, 1u);  // detached
}

TEST_F(BufferPoolTest, DropAllEmulatesColdCache) {
  BufferPool pool(&store_, 4);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.resident(), 1u);
  XKS_ASSERT_OK(pool.DropAll());
  EXPECT_EQ(pool.resident(), 0u);
  { auto r = pool.Fetch(0); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), 2u);
}

TEST_F(BufferPoolTest, DropAllRefusesWhilePinned) {
  BufferPool pool(&store_, 4);
  Result<PageRef> pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_TRUE(pool.DropAll().IsInternal());
  pinned->Release();
  XKS_ASSERT_OK(pool.DropAll());
}

TEST_F(BufferPoolTest, WarmAllPrefetches) {
  BufferPool pool(&store_, 16);
  XKS_ASSERT_OK(pool.WarmAll());
  EXPECT_EQ(pool.resident(), 8u);
  const uint64_t misses = pool.total_misses();
  { auto r = pool.Fetch(5); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.total_misses(), misses);  // hot
}

TEST_F(BufferPoolTest, WarmAllRespectsCapacity) {
  BufferPool pool(&store_, 3);
  XKS_ASSERT_OK(pool.WarmAll());
  EXPECT_LE(pool.resident(), 3u);
}

TEST_F(BufferPoolTest, ReadFailurePropagates) {
  BufferPool pool(&store_, 4);
  store_.fail_reads = true;
  EXPECT_TRUE(pool.Fetch(0).status().IsIoError());
  store_.fail_reads = false;
  EXPECT_TRUE(pool.Fetch(0).ok());
}

TEST_F(BufferPoolTest, DirtyPagesReachStoreOnFlush) {
  BufferPool pool(&store_, 4);
  {
    Result<MutPageRef> ref = pool.FetchMut(2);
    ASSERT_TRUE(ref.ok());
    ref->page().WriteU8(0, 0xEE);
  }
  // Not yet in the store...
  Page raw;
  XKS_ASSERT_OK(store_.mem.ReadPage(2, &raw));
  EXPECT_EQ(raw.ReadU8(0), 2);
  XKS_ASSERT_OK(pool.FlushAll());
  XKS_ASSERT_OK(store_.mem.ReadPage(2, &raw));
  EXPECT_EQ(raw.ReadU8(0), 0xEE);
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  BufferPool pool(&store_, 2);
  {
    Result<MutPageRef> ref = pool.FetchMut(0);
    ASSERT_TRUE(ref.ok());
    ref->page().WriteU8(0, 0xAA);
  }
  // Two more fetches force page 0 out.
  { auto r = pool.Fetch(1); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2); ASSERT_TRUE(r.ok()); }
  Page raw;
  XKS_ASSERT_OK(store_.mem.ReadPage(0, &raw));
  EXPECT_EQ(raw.ReadU8(0), 0xAA);
  // Re-reading through the pool sees the written value.
  Result<PageRef> back = pool.Fetch(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->page().ReadU8(0), 0xAA);
}

TEST_F(BufferPoolTest, DropAllFlushesDirtyFrames) {
  BufferPool pool(&store_, 4);
  {
    Result<MutPageRef> ref = pool.FetchMut(5);
    ASSERT_TRUE(ref.ok());
    ref->page().WriteU8(0, 0x55);
  }
  XKS_ASSERT_OK(pool.DropAll());
  Page raw;
  XKS_ASSERT_OK(store_.mem.ReadPage(5, &raw));
  EXPECT_EQ(raw.ReadU8(0), 0x55);
}

TEST_F(BufferPoolTest, NewPageAllocatesZeroedAndCached) {
  BufferPool pool(&store_, 4);
  PageId fresh;
  {
    Result<MutPageRef> ref = pool.NewPage();
    ASSERT_TRUE(ref.ok());
    fresh = ref->id();
    EXPECT_EQ(ref->page().ReadU8(0), 0);
    ref->page().WriteU8(0, 0x77);
  }
  EXPECT_EQ(fresh, 8u);  // after the 8 pre-allocated pages
  Result<PageRef> back = pool.Fetch(fresh);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->page().ReadU8(0), 0x77);
}

TEST_F(BufferPoolTest, MoveOnlyPageRefTransfersPin) {
  BufferPool pool(&store_, 2);
  Result<PageRef> a = pool.Fetch(0);
  ASSERT_TRUE(a.ok());
  PageRef moved = std::move(*a);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  // Pin released exactly once: the pool can now be dropped.
  XKS_ASSERT_OK(pool.DropAll());
}

}  // namespace
}  // namespace xksearch
